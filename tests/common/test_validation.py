"""Unit tests for argument-validation helpers."""

import pytest

from repro.common import ConfigurationError
from repro.common.validation import (
    require,
    require_in_range,
    require_length,
    require_non_negative,
    require_positive,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never shown")

    def test_raises_with_message(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")


class TestRequirePositive:
    def test_accepts_and_returns(self):
        assert require_positive(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1, 1.5, "3", True])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError, match="x must be"):
            require_positive(value, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0, "x") == 0

    @pytest.mark.parametrize("value", [-1, 0.0, False])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            require_non_negative(value, "x")


class TestRequireInRange:
    def test_inclusive_bounds(self):
        assert require_in_range(0.0, 0.0, 1.0, "p") == 0.0
        assert require_in_range(1.0, 0.0, 1.0, "p") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            require_in_range(1.01, 0.0, 1.0, "p")


class TestRequireLength:
    def test_accepts(self):
        assert require_length([1, 2], 2, "xs") == [1, 2]

    def test_rejects(self):
        with pytest.raises(ConfigurationError, match="length 3"):
            require_length([1], 3, "xs")
