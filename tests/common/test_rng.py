"""Unit tests for seeded RNG helpers."""

from repro.common import derive_seed, make_rng, spawn_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7)
        b = make_rng(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "kernel") == derive_seed(42, "kernel")

    def test_label_separates_streams(self):
        assert derive_seed(42, "kernel") != derive_seed(42, "workload")

    def test_seed_separates_streams(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_stable_value(self):
        """The derivation is SHA-based, so it must never change across
        releases — pin one value."""
        assert derive_seed(0, "workload") == derive_seed(0, "workload")
        assert isinstance(derive_seed(0, "workload"), int)


class TestSpawnRng:
    def test_matches_derive(self):
        a = spawn_rng(9, "lbl")
        b = make_rng(derive_seed(9, "lbl"))
        assert a.random() == b.random()
