"""Unit tests for shared value types."""

import pytest

from repro.common import NO_STATE, WORD_BITS, StateRef


class TestConstants:
    def test_no_state_is_zero(self):
        assert NO_STATE == 0

    def test_word_bits(self):
        assert WORD_BITS == 32


class TestStateRef:
    def test_fields(self):
        s = StateRef(2, 5)
        assert s.pid == 2 and s.interval == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StateRef(-1, 1)
        with pytest.raises(ValueError):
            StateRef(0, -1)

    def test_zero_interval_allowed(self):
        """Interval 0 is the paper's 'no state yet' sentinel."""
        StateRef(0, 0)

    def test_value_semantics(self):
        assert StateRef(1, 2) == StateRef(1, 2)
        assert len({StateRef(1, 2), StateRef(1, 2)}) == 1

    def test_ordering_pid_major(self):
        assert StateRef(0, 9) < StateRef(1, 1)
        assert StateRef(1, 1) < StateRef(1, 2)

    def test_str(self):
        assert str(StateRef(3, 4)) == "(P3, 4)"
