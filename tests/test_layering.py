"""Tier-1 guard for the protocol-stack import discipline.

Runs the same AST check as the CI lint job
(``tools/check_layering.py``): detection cores may only reach the
transport / membership layers through the :mod:`repro.detect.stack`
facade.  Keeping it in tier-1 means a layering regression fails the
ordinary test run, not just the lint job.
"""

import ast
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKER = REPO / "tools" / "check_layering.py"

sys.path.insert(0, str(CHECKER.parent))
import check_layering  # noqa: E402

sys.path.pop(0)


def test_detection_cores_respect_stack_facade():
    proc = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr


def test_checker_flags_a_planted_violation():
    """The checker itself must not be vacuous: a core importing a layer
    internal (outside TYPE_CHECKING) is reported; the same import under
    ``if TYPE_CHECKING:`` is allowed."""
    tree = ast.parse(
        "from typing import TYPE_CHECKING\n"
        "from repro.detect.stack.transport import TokenFrame\n"
        "import repro.detect.stack.membership\n"
        "from repro.detect.stack import harden\n"
        "if TYPE_CHECKING:\n"
        "    from repro.simulation.faults import FaultPlan\n"
    )
    visitor = check_layering._ImportVisitor()
    visitor.visit(tree)
    assert [m for _, m in visitor.violations] == [
        "repro.detect.stack.transport",
        "repro.detect.stack.membership",
    ]


def test_every_online_core_is_covered():
    """The module list actually contains the four token cores — the
    lint cannot silently go vacuous if files move."""
    stems = {p.stem for p in check_layering.core_modules()}
    assert {
        "token_vc",
        "token_vc_multi",
        "direct_dep",
        "direct_dep_parallel",
        "base",
    } <= stems
    assert "reliability" not in stems and "runner" not in stems
