"""Documentation correctness: every Python block in the docs must run.

Code blocks are executed sequentially in a shared namespace (later
cookbook recipes reuse names defined by earlier ones), so the docs can't
silently rot as the API evolves.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: pathlib.Path) -> list[str]:
    return _BLOCK.findall(path.read_text(encoding="utf-8"))


class TestCookbook:
    def test_all_blocks_execute(self, capsys):
        blocks = python_blocks(ROOT / "docs" / "cookbook.md")
        assert len(blocks) >= 7
        namespace: dict = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"cookbook.md[block {i}]", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"cookbook block {i} failed: {exc}\n{block}")


class TestTutorial:
    def test_all_blocks_execute(self):
        blocks = python_blocks(ROOT / "docs" / "tutorial.md")
        assert len(blocks) >= 4
        namespace: dict = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"tutorial.md[block {i}]", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"tutorial block {i} failed: {exc}\n{block}")


class TestFaultsDoc:
    def test_all_blocks_execute(self):
        blocks = python_blocks(ROOT / "docs" / "faults.md")
        assert len(blocks) >= 3
        namespace: dict = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"faults.md[block {i}]", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"faults block {i} failed: {exc}\n{block}")


class TestAlgorithmsDoc:
    def test_all_blocks_execute(self):
        blocks = python_blocks(ROOT / "docs" / "algorithms.md")
        assert len(blocks) >= 1, "algorithms.md should demo harden()"
        namespace: dict = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"algorithms.md[block {i}]", "exec"),
                     namespace)
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"algorithms block {i} failed: {exc}\n{block}")


class TestObservabilityDoc:
    def test_all_blocks_execute(self):
        blocks = python_blocks(ROOT / "docs" / "observability.md")
        assert len(blocks) >= 3
        namespace: dict = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"observability.md[block {i}]", "exec"),
                     namespace)
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"observability block {i} failed: {exc}\n{block}")


class TestBenchmarkingDoc:
    def test_all_blocks_execute(self):
        blocks = python_blocks(ROOT / "docs" / "benchmarking.md")
        assert len(blocks) >= 3
        namespace: dict = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"benchmarking.md[block {i}]", "exec"),
                     namespace)
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"benchmarking block {i} failed: {exc}\n{block}")


class TestReadme:
    def test_quickstart_blocks_execute(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README should contain python examples"
        namespace: dict = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"README.md[block {i}]", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"README block {i} failed: {exc}\n{block}")


class TestModuleDocstring:
    def test_package_quickstart_runs(self):
        import repro

        match = re.search(r"Quickstart::\n\n(.*)\Z", repro.__doc__ or "",
                          re.DOTALL)
        code = "\n".join(
            line[4:] if line.startswith("    ") else line
            for line in (match.group(1) if match else "").splitlines()
        )
        assert "run_detector" in code
        exec(compile(code, "repro.__doc__", "exec"), {})
