"""Unit tests for WeakConjunctivePredicate."""

import pytest

from repro.common import ConfigurationError
from repro.predicates import WeakConjunctivePredicate, var_true


class TestWCP:
    def test_pids_sorted(self):
        wcp = WeakConjunctivePredicate({3: var_true("a"), 1: var_true("b")})
        assert wcp.pids == (1, 3)
        assert wcp.n == 2

    def test_slot_mapping(self):
        wcp = WeakConjunctivePredicate.of_flags([5, 2, 9])
        assert wcp.slot(2) == 0
        assert wcp.slot(5) == 1
        assert wcp.slot(9) == 2

    def test_slot_unknown_pid(self):
        with pytest.raises(ConfigurationError):
            WeakConjunctivePredicate.of_flags([0]).slot(1)

    def test_clause_lookup(self):
        p = var_true("x")
        wcp = WeakConjunctivePredicate({0: p})
        assert wcp.clause(0) is p
        with pytest.raises(ConfigurationError):
            wcp.clause(1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            WeakConjunctivePredicate({})

    def test_negative_pid_rejected(self):
        with pytest.raises(ConfigurationError):
            WeakConjunctivePredicate({-1: var_true("x")})

    def test_of_flags(self):
        wcp = WeakConjunctivePredicate.of_flags([0, 1], var="cs")
        assert wcp.clause(0)({"cs": True})
        assert not wcp.clause(1)({"cs": False})

    def test_predicate_map_is_copy(self):
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        m = wcp.predicate_map()
        m[0] = None  # type: ignore[assignment]
        assert wcp.clause(0) is not None

    def test_items_in_slot_order(self):
        wcp = WeakConjunctivePredicate.of_flags([4, 1])
        assert [pid for pid, _ in wcp.items()] == [1, 4]

    def test_check_against(self):
        wcp = WeakConjunctivePredicate.of_flags([0, 5])
        wcp.check_against(6)
        with pytest.raises(ConfigurationError, match="only 4"):
            wcp.check_against(4)
