"""Unit tests for local predicates and combinators."""

import pytest

from repro.common import ConfigurationError
from repro.predicates import (
    LocalPredicate,
    all_of,
    always_true,
    any_of,
    flag_predicate,
    negation,
    never_true,
    var_at_least,
    var_equals,
    var_true,
)


class TestBasicPredicates:
    def test_flag_predicate(self):
        p = flag_predicate()
        assert p({"flag": True})
        assert not p({"flag": False})
        assert not p({})

    def test_flag_custom_var(self):
        p = flag_predicate("cs")
        assert p({"cs": True})

    def test_var_equals(self):
        p = var_equals("state", "ready")
        assert p({"state": "ready"})
        assert not p({"state": "busy"})
        assert not p({})

    def test_var_true_truthiness(self):
        p = var_true("count")
        assert p({"count": 3})
        assert not p({"count": 0})

    def test_var_at_least(self):
        p = var_at_least("load", 0.8)
        assert p({"load": 0.9})
        assert p({"load": 0.8})
        assert not p({"load": 0.5})
        assert not p({"load": "high"})
        assert not p({})

    def test_constants(self):
        assert always_true()({})
        assert not never_true()({"anything": 1})

    def test_callable_returns_bool(self):
        p = LocalPredicate("n", lambda s: s.get("x"))
        assert p({"x": 5}) is True
        assert p({}) is False

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            LocalPredicate("bad", 42)  # type: ignore[arg-type]

    def test_names(self):
        assert str(var_equals("a", 1)) == "a==1"
        assert negation(var_true("b")).name == "!(b)"


class TestCombinators:
    def test_negation(self):
        p = negation(var_true("x"))
        assert p({})
        assert not p({"x": 1})

    def test_all_of(self):
        p = all_of(var_true("a"), var_true("b"))
        assert p({"a": 1, "b": 1})
        assert not p({"a": 1})

    def test_any_of(self):
        p = any_of(var_true("a"), var_true("b"))
        assert p({"b": 1})
        assert not p({})

    def test_empty_combinators_rejected(self):
        with pytest.raises(ConfigurationError):
            all_of()
        with pytest.raises(ConfigurationError):
            any_of()

    def test_nested(self):
        p = all_of(var_true("a"), negation(var_true("b")))
        assert p({"a": 1})
        assert not p({"a": 1, "b": 1})
