"""Unit tests for channel predicates (the GCP extension)."""

import pytest

from repro.common import ConfigurationError
from repro.predicates import (
    at_most_in_transit,
    empty_channel,
    exactly_in_transit,
    in_transit_messages,
)
from repro.trace import ComputationBuilder, Cut


def channel_comp():
    """P0 sends two messages to P1; P1 receives both.

    P0 intervals: 1 |send m0| 2 |send m1| 3
    P1 intervals: 1 |recv m0| 2 |recv m1| 3
    """
    b = ComputationBuilder(2)
    m0 = b.send(0, 1)
    m1 = b.send(0, 1)
    b.recv(1, m0)
    b.recv(1, m1)
    return b.build()


class TestInTransit:
    def test_nothing_before_send(self):
        comp = channel_comp()
        cut = Cut((0, 1), (1, 1))
        assert in_transit_messages(comp, cut, 0, 1) == ()

    def test_one_in_flight(self):
        comp = channel_comp()
        # P0 past its first send, P1 not yet received.
        cut = Cut((0, 1), (2, 1))
        assert in_transit_messages(comp, cut, 0, 1) == (0,)

    def test_two_in_flight(self):
        comp = channel_comp()
        cut = Cut((0, 1), (3, 1))
        assert in_transit_messages(comp, cut, 0, 1) == (0, 1)

    def test_received_not_in_flight(self):
        comp = channel_comp()
        cut = Cut((0, 1), (3, 3))
        assert in_transit_messages(comp, cut, 0, 1) == ()

    def test_reverse_channel_empty(self):
        comp = channel_comp()
        cut = Cut((0, 1), (3, 1))
        assert in_transit_messages(comp, cut, 1, 0) == ()

    def test_unreceived_message_counts(self):
        b = ComputationBuilder(2)
        b.send(0, 1)
        comp = b.build(allow_unreceived=True)
        cut = Cut((0, 1), (2, 1))
        assert in_transit_messages(comp, cut, 0, 1) == (0,)


class TestChannelPredicates:
    def test_empty_channel(self):
        comp = channel_comp()
        p = empty_channel(0, 1)
        assert p.evaluate(comp, Cut((0, 1), (1, 1)))
        assert not p.evaluate(comp, Cut((0, 1), (2, 1)))

    def test_at_most(self):
        comp = channel_comp()
        p = at_most_in_transit(0, 1, 1)
        assert p.evaluate(comp, Cut((0, 1), (2, 1)))
        assert not p.evaluate(comp, Cut((0, 1), (3, 1)))

    def test_exactly(self):
        comp = channel_comp()
        p = exactly_in_transit(0, 1, 2)
        assert p.evaluate(comp, Cut((0, 1), (3, 1)))
        assert not p.evaluate(comp, Cut((0, 1), (2, 1)))

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            empty_channel(1, 1)

    def test_negative_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            at_most_in_transit(0, 1, -1)
        with pytest.raises(ConfigurationError):
            exactly_in_transit(0, 1, -2)

    def test_str(self):
        assert "P0->P1" in str(empty_channel(0, 1))
