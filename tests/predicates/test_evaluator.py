"""Unit tests for ground-truth predicate evaluation on cuts."""

import pytest

from repro.common import CutError
from repro.predicates import (
    WeakConjunctivePredicate,
    brute_force_first_cut,
    candidate_intervals,
    clause_holds_in_interval,
    cut_satisfies,
)
from repro.trace import ComputationBuilder, Cut, random_computation
from repro.trace.generators import FLAG_VAR


def simple_comp():
    """P0 raises the flag in interval 1; P1 raises it in interval 2."""
    b = ComputationBuilder(2, initial_vars={p: {FLAG_VAR: False} for p in (0, 1)})
    b.internal(0, {FLAG_VAR: True})
    m = b.send(0, 1)
    b.recv(1, m)
    b.internal(1, {FLAG_VAR: True})
    return b.build()


class TestCandidateIntervals:
    def test_simple(self):
        comp = simple_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        cands = candidate_intervals(comp, wcp)
        # P0: flag stays true from interval 1 onwards (2 intervals);
        # P1: true only in interval 2.
        assert cands[0] == [1, 2]
        assert cands[1] == [2]

    def test_validates_pids(self):
        comp = simple_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 7])
        with pytest.raises(Exception):
            candidate_intervals(comp, wcp)


class TestClauseInInterval:
    def test_holds(self):
        comp = simple_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        assert clause_holds_in_interval(comp, wcp, 0, 1)
        assert not clause_holds_in_interval(comp, wcp, 1, 1)
        assert clause_holds_in_interval(comp, wcp, 1, 2)


class TestCutSatisfies:
    def test_satisfying_cut(self):
        comp = simple_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        # (0, 2) and (1, 2): P0 past its send, P1 past its receive — is
        # that consistent?  (0,1) -> (1,2) but (0,2) || (1,2).
        assert cut_satisfies(comp, wcp, Cut((0, 1), (2, 2)))

    def test_inconsistent_cut_fails(self):
        comp = simple_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        assert not cut_satisfies(comp, wcp, Cut((0, 1), (1, 2)))

    def test_predicate_false_fails(self):
        comp = simple_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        assert not cut_satisfies(comp, wcp, Cut((0, 1), (1, 1)))

    def test_partial_cut_false(self):
        comp = simple_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        assert not cut_satisfies(comp, wcp, Cut((0, 1), (0, 1)))

    def test_wrong_pids_raise(self):
        comp = simple_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        with pytest.raises(CutError):
            cut_satisfies(comp, wcp, Cut((0,), (1,)))


class TestBruteForce:
    def test_finds_first_cut(self):
        comp = simple_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        cut = brute_force_first_cut(comp, wcp)
        assert cut == Cut((0, 1), (2, 2))

    def test_none_when_unsatisfiable(self):
        b = ComputationBuilder(2, initial_vars={p: {FLAG_VAR: False} for p in (0, 1)})
        b.internal(0, {FLAG_VAR: True})
        comp = b.build()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        assert brute_force_first_cut(comp, wcp) is None

    def test_result_is_minimal(self):
        """The returned cut is dominated by every other satisfying cut."""
        for seed in range(6):
            comp = random_computation(
                3, 4, seed=seed, predicate_density=0.5
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
            first = brute_force_first_cut(comp, wcp)
            if first is None:
                continue
            from repro.trace import iter_consistent_cuts

            a = comp.analysis()
            for cut in iter_consistent_cuts(a, wcp.pids):
                if cut_satisfies(comp, wcp, cut):
                    assert cut.dominates(first)

    def test_result_satisfies(self):
        for seed in range(6):
            comp = random_computation(3, 4, seed=100 + seed, predicate_density=0.4)
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
            cut = brute_force_first_cut(comp, wcp)
            if cut is not None:
                assert cut_satisfies(comp, wcp, cut)
