"""Unit tests for boolean expressions and the DNF-to-WCP reduction."""

import pytest

from repro.common import ConfigurationError
from repro.predicates import var_true
from repro.predicates.boolexpr import And, Atom, Not, Or, atom


A = atom(0, var_true("a"))
B = atom(1, var_true("b"))
C = atom(2, var_true("c"))


def clause_sig(clause):
    return sorted((a.pid, a.predicate.name, a.negated) for a in clause)


class TestOperators:
    def test_and_or_invert_build_nodes(self):
        assert isinstance(A & B, And)
        assert isinstance(A | B, Or)
        assert isinstance(~A, Not)

    def test_negative_pid_rejected(self):
        with pytest.raises(ConfigurationError):
            atom(-1, var_true("x"))


class TestDNF:
    def test_single_atom(self):
        assert (A.to_dnf()) == [[A]]

    def test_conjunction_single_clause(self):
        clauses = (A & B).to_dnf()
        assert len(clauses) == 1
        assert clause_sig(clauses[0]) == [
            (0, "a", False),
            (1, "b", False),
        ]

    def test_disjunction_two_clauses(self):
        assert len((A | B).to_dnf()) == 2

    def test_distribution(self):
        # A & (B | C) -> (A & B) | (A & C)
        clauses = (A & (B | C)).to_dnf()
        assert len(clauses) == 2
        assert all(len(c) == 2 for c in clauses)

    def test_de_morgan_on_and(self):
        clauses = (~(A & B)).to_dnf()
        # !(A & B) = !A | !B
        assert len(clauses) == 2
        assert all(len(c) == 1 and c[0].negated for c in clauses)

    def test_de_morgan_on_or(self):
        clauses = (~(A | B)).to_dnf()
        # !(A | B) = !A & !B
        assert len(clauses) == 1
        assert clause_sig(clauses[0]) == [(0, "a", True), (1, "b", True)]

    def test_double_negation(self):
        clauses = (~~A).to_dnf()
        assert clauses == [[A]]

    def test_nested(self):
        expr = (A | B) & (~C | B)
        clauses = expr.to_dnf()
        assert len(clauses) == 4


class TestToWCPs:
    def test_simple_conjunction(self):
        wcps = (A & B).to_wcps()
        assert len(wcps) == 1
        assert wcps[0].pids == (0, 1)

    def test_same_process_atoms_fused(self):
        expr = atom(0, var_true("x")) & atom(0, var_true("y")) & B
        wcps = expr.to_wcps()
        assert len(wcps) == 1
        assert wcps[0].pids == (0, 1)
        clause0 = wcps[0].clause(0)
        assert clause0({"x": 1, "y": 1})
        assert not clause0({"x": 1})

    def test_negated_atom_semantics(self):
        wcps = (~A).to_wcps()
        clause = wcps[0].clause(0)
        assert clause({})
        assert not clause({"a": True})

    def test_disjunction_gives_multiple_wcps(self):
        wcps = ((A & B) | C).to_wcps()
        assert len(wcps) == 2
        assert {w.pids for w in wcps} == {(0, 1), (2,)}
