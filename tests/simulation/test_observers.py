"""Tests for kernel observers, event logs and protocol invariants."""

import pytest

from repro.common import ProtocolError
from repro.detect import run_detector
from repro.predicates import WeakConjunctivePredicate
from repro.simulation import Actor, FixedLatency, Kernel
from repro.simulation.faults import CrashEvent, FaultPlan, FaultRule
from repro.simulation.observers import (
    TERMINAL_PHASES,
    ActorPhase,
    EventLog,
    InvariantChecker,
    MessagePhase,
    token_uniqueness_checker,
)
from repro.trace import random_computation, spiral_computation


class PingPong(Actor):
    def __init__(self, name, peer, rounds):
        super().__init__(name)
        self.peer = peer
        self.rounds = rounds

    def run(self):
        for _ in range(self.rounds):
            yield self.send(self.peer, None, kind="ping")
            yield self.receive("ping")


class TestEventLog:
    def run_pair(self, log):
        kernel = Kernel(observers=[log])
        kernel.add_actor(PingPong("a", "b", 3))
        kernel.add_actor(PingPong("b", "a", 3))
        kernel.run()

    def test_records_all_phases(self):
        log = EventLog()
        self.run_pair(log)
        assert len(log.of_phase(MessagePhase.SENT)) == 6
        assert len(log.of_phase(MessagePhase.DELIVERED)) == 6
        assert len(log.of_phase(MessagePhase.CONSUMED)) == 6

    def test_filter_by_kind(self):
        log = EventLog()
        self.run_pair(log)
        assert len(log.of_kind("ping")) == 18
        assert log.of_kind("pong") == []

    def test_sends_accessor(self):
        log = EventLog()
        self.run_pair(log)
        assert len(log.sends("ping")) == 6
        assert len(log.sends()) == 6

    def test_timeline_readable(self):
        log = EventLog()
        self.run_pair(log)
        lines = log.timeline()
        assert len(lines) == 18
        assert "a -> b" in lines[0]

    def test_phases_ordered_per_message(self):
        log = EventLog()
        self.run_pair(log)
        by_seq = {}
        for e in log.events:
            by_seq.setdefault(e.message.seq, []).append(e.phase)
        for phases in by_seq.values():
            assert phases == [
                MessagePhase.SENT,
                MessagePhase.DELIVERED,
                MessagePhase.CONSUMED,
            ]


class SleepySink(Actor):
    """Receives nothing until ``wake``; then drains ``rounds`` messages."""

    def __init__(self, name, wake, rounds):
        super().__init__(name)
        self.wake = wake
        self.rounds = rounds

    def run(self):
        yield self.sleep(self.wake)
        for _ in range(self.rounds):
            yield self.receive("m")


class Burst(Actor):
    def __init__(self, name, dest, count):
        super().__init__(name)
        self.dest = dest
        self.count = count

    def run(self):
        for _ in range(self.count):
            yield self.send(self.dest, 0, kind="m", size_bits=8)


class TestTerminalPhaseLedger:
    """Every message must reach CONSUMED, DROPPED or LOST — no blind
    spots in the event log, even under faults."""

    def test_clean_run_fully_terminal(self):
        log = EventLog()
        kernel = Kernel(observers=[log])
        kernel.add_actor(PingPong("a", "b", 3))
        kernel.add_actor(PingPong("b", "a", 3))
        kernel.run()
        assert log.unterminated() == []
        log.assert_terminal()
        for phases in log.message_ledger().values():
            assert phases[-1] in TERMINAL_PHASES

    def test_buffered_unread_message_is_unterminated(self):
        log = EventLog()
        kernel = Kernel(channel_model=FixedLatency(1.0), observers=[log])
        kernel.add_actor(SleepySink("sink", wake=50, rounds=1))
        kernel.add_actor(Burst("src", "sink", 2))  # one never read
        kernel.run()
        leftovers = log.unterminated()
        assert len(leftovers) == 1
        assert leftovers[0].kind == "m"
        with pytest.raises(ProtocolError, match="never reached a terminal"):
            log.assert_terminal()

    def test_dropped_sends_terminate_as_dropped(self):
        log = EventLog()
        plan = FaultPlan(rules=(FaultRule(kind="m", drop=1.0),))
        kernel = Kernel(observers=[log], faults=plan, seed=1)
        kernel.add_actor(SleepySink("sink", wake=0, rounds=0))
        kernel.add_actor(Burst("src", "sink", 3))
        kernel.run()
        assert len(log.of_phase(MessagePhase.DROPPED)) == 3
        log.assert_terminal()
        for phases in log.message_ledger().values():
            assert MessagePhase.DROPPED in phases
            assert MessagePhase.DELIVERED not in phases

    def test_crash_loses_buffered_messages(self):
        """Messages sitting in a crashed actor's mailbox end as LOST,
        inside the crash epoch, and the restart is observed too."""
        log = EventLog()
        plan = FaultPlan(
            crashes=(CrashEvent("sink", at=5.0, restart_at=8.0),)
        )
        kernel = Kernel(
            channel_model=FixedLatency(1.0), observers=[log], faults=plan
        )
        kernel.add_actor(SleepySink("sink", wake=100, rounds=0))
        kernel.add_actor(Burst("src", "sink", 3))
        kernel.run()
        lost = log.of_phase(MessagePhase.LOST)
        assert len(lost) == 3
        assert all(e.time == 5.0 for e in lost)
        log.assert_terminal()
        for phases in log.message_ledger().values():
            assert phases == [
                MessagePhase.SENT,
                MessagePhase.DELIVERED,
                MessagePhase.LOST,
            ]
        assert [(e.phase, e.actor, e.time) for e in log.actor_events] == [
            (ActorPhase.CRASHED, "sink", 5.0),
            (ActorPhase.RESTARTED, "sink", 8.0),
        ]

    def test_hardened_faulty_detection_leaves_no_blind_spots(self):
        """A full hardened run under drops and a crash/restart: every
        message the kernel ever reported reaches a terminal phase."""
        log = EventLog()
        plan = FaultPlan(
            rules=(FaultRule(kind="token", drop=0.3),),
            crashes=(CrashEvent("mon-1", at=6.0, restart_at=12.0),),
        )
        comp = spiral_computation(4, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        report = run_detector(
            "token_vc", comp, wcp, seed=5, faults=plan, hardened=True,
            observers=[log],
        )
        assert report.detected
        ledger = log.message_ledger()
        terminal = sum(
            1 for phases in ledger.values()
            if phases[-1] in TERMINAL_PHASES
        )
        # The protocol drains everything except messages still buffered
        # at halt time; those are exactly what unterminated() reports.
        assert terminal + len(log.unterminated()) == len(ledger)
        assert any(
            e.phase is ActorPhase.CRASHED for e in log.actor_events
        )


class TestInvariantChecker:
    def test_violation_raises_with_context(self):
        checker = InvariantChecker().add(
            "no_pings", lambda e: e.message.kind != "ping"
        )
        kernel = Kernel(observers=[checker])
        kernel.add_actor(PingPong("a", "b", 1))
        kernel.add_actor(PingPong("b", "a", 1))
        with pytest.raises(Exception) as exc_info:
            kernel.run()
        assert "no_pings" in str(exc_info.value)

    def test_passing_invariant_is_silent(self):
        checker = InvariantChecker().add("anything", lambda e: True)
        kernel = Kernel(observers=[checker])
        kernel.add_actor(PingPong("a", "b", 2))
        kernel.add_actor(PingPong("b", "a", 2))
        kernel.run()

    def test_add_observer_after_construction(self):
        log = EventLog()
        kernel = Kernel()
        kernel.add_observer(log)
        kernel.add_actor(PingPong("a", "b", 1))
        kernel.add_actor(PingPong("b", "a", 1))
        kernel.run()
        assert log.events


class TestProtocolInvariants:
    """The paper's safety arguments, checked on real detection runs."""

    def test_single_token_invariant_token_vc(self):
        comp = spiral_computation(5, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(5))
        checker = token_uniqueness_checker()
        report = run_detector("token_vc", comp, wcp, observers=[checker])
        assert report.detected

    def test_single_token_invariant_direct_dep(self):
        comp = spiral_computation(5, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(5))
        checker = token_uniqueness_checker()
        report = run_detector("direct_dep", comp, wcp, observers=[checker])
        assert report.detected

    def test_single_token_invariant_parallel_dd(self):
        for seed in range(4):
            comp = random_computation(
                4, 4, seed=seed, predicate_density=0.3, plant_final_cut=True
            )
            wcp = WeakConjunctivePredicate.of_flags(range(4))
            checker = token_uniqueness_checker()
            run_detector(
                "direct_dep_parallel", comp, wcp, seed=seed,
                observers=[checker],
            )

    def test_poll_response_pairing(self):
        """Every poll gets exactly one response, and responses never
        outnumber polls at any instant."""
        outstanding = {"polls": 0}

        def pairing(event):
            if event.phase is not MessagePhase.SENT:
                return True
            if event.message.kind == "poll":
                outstanding["polls"] += 1
            elif event.message.kind == "poll_response":
                outstanding["polls"] -= 1
                return outstanding["polls"] >= 0
            return True

        checker = InvariantChecker().add("poll_pairing", pairing)
        comp = spiral_computation(4, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        report = run_detector("direct_dep", comp, wcp, observers=[checker])
        assert report.detected
        assert outstanding["polls"] == 0

    def test_token_log_matches_extras(self):
        log = EventLog()
        comp = spiral_computation(4, 3)
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        report = run_detector("token_vc", comp, wcp, observers=[log])
        # token hops (monitor-to-monitor) = token sends minus injection.
        token_sends = [
            m for m in log.sends("token") if m.src.startswith("mon-")
        ]
        assert len(token_sends) == report.extras["token_hops"]
