"""Tests for kernel observers, event logs and protocol invariants."""

import pytest

from repro.common import ProtocolError
from repro.detect import run_detector
from repro.predicates import WeakConjunctivePredicate
from repro.simulation import Actor, Kernel
from repro.simulation.observers import (
    EventLog,
    InvariantChecker,
    MessagePhase,
    token_uniqueness_checker,
)
from repro.trace import random_computation, spiral_computation


class PingPong(Actor):
    def __init__(self, name, peer, rounds):
        super().__init__(name)
        self.peer = peer
        self.rounds = rounds

    def run(self):
        for _ in range(self.rounds):
            yield self.send(self.peer, None, kind="ping")
            yield self.receive("ping")


class TestEventLog:
    def run_pair(self, log):
        kernel = Kernel(observers=[log])
        kernel.add_actor(PingPong("a", "b", 3))
        kernel.add_actor(PingPong("b", "a", 3))
        kernel.run()

    def test_records_all_phases(self):
        log = EventLog()
        self.run_pair(log)
        assert len(log.of_phase(MessagePhase.SENT)) == 6
        assert len(log.of_phase(MessagePhase.DELIVERED)) == 6
        assert len(log.of_phase(MessagePhase.CONSUMED)) == 6

    def test_filter_by_kind(self):
        log = EventLog()
        self.run_pair(log)
        assert len(log.of_kind("ping")) == 18
        assert log.of_kind("pong") == []

    def test_sends_accessor(self):
        log = EventLog()
        self.run_pair(log)
        assert len(log.sends("ping")) == 6
        assert len(log.sends()) == 6

    def test_timeline_readable(self):
        log = EventLog()
        self.run_pair(log)
        lines = log.timeline()
        assert len(lines) == 18
        assert "a -> b" in lines[0]

    def test_phases_ordered_per_message(self):
        log = EventLog()
        self.run_pair(log)
        by_seq = {}
        for e in log.events:
            by_seq.setdefault(e.message.seq, []).append(e.phase)
        for phases in by_seq.values():
            assert phases == [
                MessagePhase.SENT,
                MessagePhase.DELIVERED,
                MessagePhase.CONSUMED,
            ]


class TestInvariantChecker:
    def test_violation_raises_with_context(self):
        checker = InvariantChecker().add(
            "no_pings", lambda e: e.message.kind != "ping"
        )
        kernel = Kernel(observers=[checker])
        kernel.add_actor(PingPong("a", "b", 1))
        kernel.add_actor(PingPong("b", "a", 1))
        with pytest.raises(Exception) as exc_info:
            kernel.run()
        assert "no_pings" in str(exc_info.value)

    def test_passing_invariant_is_silent(self):
        checker = InvariantChecker().add("anything", lambda e: True)
        kernel = Kernel(observers=[checker])
        kernel.add_actor(PingPong("a", "b", 2))
        kernel.add_actor(PingPong("b", "a", 2))
        kernel.run()

    def test_add_observer_after_construction(self):
        log = EventLog()
        kernel = Kernel()
        kernel.add_observer(log)
        kernel.add_actor(PingPong("a", "b", 1))
        kernel.add_actor(PingPong("b", "a", 1))
        kernel.run()
        assert log.events


class TestProtocolInvariants:
    """The paper's safety arguments, checked on real detection runs."""

    def test_single_token_invariant_token_vc(self):
        comp = spiral_computation(5, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(5))
        checker = token_uniqueness_checker()
        report = run_detector("token_vc", comp, wcp, observers=[checker])
        assert report.detected

    def test_single_token_invariant_direct_dep(self):
        comp = spiral_computation(5, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(5))
        checker = token_uniqueness_checker()
        report = run_detector("direct_dep", comp, wcp, observers=[checker])
        assert report.detected

    def test_single_token_invariant_parallel_dd(self):
        for seed in range(4):
            comp = random_computation(
                4, 4, seed=seed, predicate_density=0.3, plant_final_cut=True
            )
            wcp = WeakConjunctivePredicate.of_flags(range(4))
            checker = token_uniqueness_checker()
            run_detector(
                "direct_dep_parallel", comp, wcp, seed=seed,
                observers=[checker],
            )

    def test_poll_response_pairing(self):
        """Every poll gets exactly one response, and responses never
        outnumber polls at any instant."""
        outstanding = {"polls": 0}

        def pairing(event):
            if event.phase is not MessagePhase.SENT:
                return True
            if event.message.kind == "poll":
                outstanding["polls"] += 1
            elif event.message.kind == "poll_response":
                outstanding["polls"] -= 1
                return outstanding["polls"] >= 0
            return True

        checker = InvariantChecker().add("poll_pairing", pairing)
        comp = spiral_computation(4, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        report = run_detector("direct_dep", comp, wcp, observers=[checker])
        assert report.detected
        assert outstanding["polls"] == 0

    def test_token_log_matches_extras(self):
        log = EventLog()
        comp = spiral_computation(4, 3)
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        report = run_detector("token_vc", comp, wcp, observers=[log])
        # token hops (monitor-to-monitor) = token sends minus injection.
        token_sends = [
            m for m in log.sends("token") if m.src.startswith("mon-")
        ]
        assert len(token_sends) == report.extras["token_hops"]
