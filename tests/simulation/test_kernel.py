"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common import SimulationError
from repro.simulation import (
    Actor,
    ExponentialLatency,
    FixedLatency,
    Kernel,
    Receive,
    Send,
    Sleep,
    Work,
    kind_is,
)


class Echo(Actor):
    """Replies to every ping with a pong; stops on 'stop'."""

    def run(self):
        while True:
            msg = yield self.receive("ping", "stop")
            if msg.kind == "stop":
                return
            yield self.send(msg.src, msg.payload, kind="pong")


class Once(Actor):
    def __init__(self, name, effects):
        super().__init__(name)
        self.effects = effects
        self.results = []

    def run(self):
        for effect in self.effects:
            result = yield effect
            self.results.append(result)


class TestBasics:
    def test_send_receive_round_trip(self):
        k = Kernel()
        k.add_actor(Echo("echo"))

        class Client(Actor):
            def __init__(self):
                super().__init__("client")
                self.reply = None

            def run(self):
                yield self.send("echo", 42, kind="ping")
                msg = yield self.receive("pong")
                self.reply = msg.payload
                yield self.send("echo", None, kind="stop")

        c = Client()
        k.add_actor(c)
        result = k.run()
        assert c.reply == 42
        assert not result.deadlocked

    def test_duplicate_actor_name_rejected(self):
        k = Kernel()
        k.add_actor(Echo("a"))
        with pytest.raises(SimulationError, match="duplicate"):
            k.add_actor(Echo("a"))

    def test_send_to_unknown_actor(self):
        k = Kernel()
        k.add_actor(Once("a", [Send("ghost", 1)]))
        with pytest.raises(SimulationError, match="unknown actor"):
            k.run()

    def test_non_generator_run_rejected(self):
        class Bad(Actor):
            def run(self):
                return None

        k = Kernel()
        k.add_actor(Bad("bad"))
        with pytest.raises(SimulationError, match="generator"):
            k.run()

    def test_actor_exception_wrapped(self):
        class Boom(Actor):
            def run(self):
                yield self.sleep(1)
                raise ValueError("kapow")

        k = Kernel()
        k.add_actor(Boom("boom"))
        with pytest.raises(SimulationError, match="kapow"):
            k.run()

    def test_unknown_effect_rejected(self):
        k = Kernel()
        k.add_actor(Once("a", ["not an effect"]))
        with pytest.raises(SimulationError, match="unsupported effect"):
            k.run()

    def test_actor_lookup(self):
        k = Kernel()
        e = Echo("e")
        k.add_actor(e)
        assert k.actor("e") is e
        with pytest.raises(SimulationError):
            k.actor("nope")


class TestTimeAndOrdering:
    def test_sleep_advances_time(self):
        k = Kernel()
        k.add_actor(Once("a", [Sleep(5.0), Sleep(2.5)]))
        result = k.run()
        assert result.time == 7.5

    def test_fixed_latency_delivery_time(self):
        k = Kernel(channel_model=FixedLatency(3.0))

        class Receiver(Actor):
            def __init__(self):
                super().__init__("r")
                self.at = None

            def run(self):
                yield self.receive("m")
                self.at = self.now

        r = Receiver()
        k.add_actor(r)
        k.add_actor(Once("s", [Send("r", 1, kind="m")]))
        k.run()
        assert r.at == 3.0

    def test_fifo_preserved(self):
        k = Kernel(channel_model=ExponentialLatency(mean=1.0, fifo=True), seed=3)

        class Sink(Actor):
            def __init__(self):
                super().__init__("sink")
                self.order = []

            def run(self):
                for _ in range(20):
                    msg = yield self.receive("m")
                    self.order.append(msg.payload)

        sink = Sink()
        k.add_actor(sink)
        k.add_actor(Once("src", [Send("sink", i, kind="m") for i in range(20)]))
        k.run()
        assert sink.order == list(range(20))

    def test_non_fifo_can_reorder(self):
        # With high-variance latency and no FIFO clamp, some seed must
        # reorder 20 messages.
        reordered = False
        for seed in range(10):
            k = Kernel(
                channel_model=ExponentialLatency(mean=1.0, fifo=False), seed=seed
            )

            class Sink(Actor):
                def __init__(self):
                    super().__init__("sink")
                    self.order = []

                def run(self):
                    for _ in range(20):
                        msg = yield self.receive("m")
                        self.order.append(msg.payload)

            sink = Sink()
            k.add_actor(sink)
            k.add_actor(
                Once("src", [Send("sink", i, kind="m") for i in range(20)])
            )
            k.run()
            if sink.order != sorted(sink.order):
                reordered = True
                break
        assert reordered

    def test_determinism(self):
        def run_once():
            k = Kernel(channel_model=ExponentialLatency(mean=1.0), seed=7)

            class Sink(Actor):
                def __init__(self):
                    super().__init__("sink")
                    self.times = []

                def run(self):
                    for _ in range(5):
                        yield self.receive("m")
                        self.times.append(self.now)

            sink = Sink()
            k.add_actor(sink)
            k.add_actor(Once("src", [Send("sink", i, kind="m") for i in range(5)]))
            k.run()
            return sink.times

        assert run_once() == run_once()


class TestBlockingAndDeadlock:
    def test_deadlock_reported(self):
        k = Kernel()
        k.add_actor(Once("waiter", [Receive(kind_is("never"), "waiting forever")]))
        result = k.run()
        assert result.deadlocked
        assert result.blocked == {"waiter": "waiting forever"}

    def test_no_deadlock_when_all_finish(self):
        k = Kernel()
        k.add_actor(Once("a", [Sleep(1)]))
        assert not k.run().deadlocked

    def test_matching_receive_skips_other_kinds(self):
        class Picky(Actor):
            def __init__(self):
                super().__init__("picky")
                self.got = []

            def run(self):
                msg = yield self.receive("b")
                self.got.append(msg.payload)
                msg = yield self.receive("a")
                self.got.append(msg.payload)

        k = Kernel()
        p = Picky()
        k.add_actor(p)
        k.add_actor(
            Once("src", [Send("picky", 1, kind="a"), Send("picky", 2, kind="b")])
        )
        k.run()
        assert p.got == [2, 1]

    def test_receive_any_matches_everything(self):
        class AnyOne(Actor):
            def __init__(self):
                super().__init__("any")
                self.got = None

            def run(self):
                msg = yield self.receive()
                self.got = msg.kind

        k = Kernel()
        a = AnyOne()
        k.add_actor(a)
        k.add_actor(Once("src", [Send("any", 0, kind="whatever")]))
        k.run()
        assert a.got == "whatever"

    def test_messages_to_finished_actor_are_buffered(self):
        k = Kernel()
        k.add_actor(Once("gone", []))
        k.add_actor(Once("src", [Sleep(1), Send("gone", 1, kind="m")]))
        result = k.run()
        assert result.messages_delivered == 1
        assert not result.deadlocked


class TestWorkAccounting:
    def test_work_charges_metrics(self):
        k = Kernel()
        k.add_actor(Once("a", [Work(5), Work(3)]))
        k.run()
        assert k.metrics.of("a").work_units == 8

    def test_work_is_instant_by_default(self):
        k = Kernel()
        k.add_actor(Once("a", [Work(100)]))
        assert k.run().time == 0.0

    def test_work_time_scale(self):
        k = Kernel(work_time_scale=0.5)
        k.add_actor(Once("a", [Work(10)]))
        assert k.run().time == 5.0

    def test_send_list_effect(self):
        class Fan(Actor):
            def run(self):
                yield [self.send("x", i, kind="m") for i in range(3)]

        class Sink(Actor):
            def __init__(self):
                super().__init__("x")
                self.n = 0

            def run(self):
                for _ in range(3):
                    yield self.receive("m")
                    self.n += 1

        k = Kernel()
        s = Sink()
        k.add_actor(s)
        k.add_actor(Fan("fan"))
        k.run()
        assert s.n == 3

    def test_list_with_non_send_rejected(self):
        class Bad(Actor):
            def run(self):
                yield [Sleep(1)]

        k = Kernel()
        k.add_actor(Bad("bad"))
        with pytest.raises(SimulationError, match="only Send lists"):
            k.run()

    def test_max_steps_guard(self):
        class Pair(Actor):
            def __init__(self, name, peer):
                super().__init__(name)
                self.peer = peer

            def run(self):
                yield self.send(self.peer, 0, kind="m")
                while True:
                    yield self.receive("m")
                    yield self.send(self.peer, 0, kind="m")

        k = Kernel(max_steps=100)
        k.add_actor(Pair("a", "b"))
        k.add_actor(Pair("b", "a"))
        with pytest.raises(SimulationError, match="max_steps"):
            k.run()

    def test_run_until(self):
        k = Kernel()
        k.add_actor(Once("a", [Sleep(10)]))
        result = k.run(until=5.0)
        assert result.time <= 5.0

    def test_invalid_config(self):
        with pytest.raises(SimulationError):
            Kernel(work_time_scale=-1)
        with pytest.raises(SimulationError):
            Kernel(max_steps=0)
