"""Unit tests for channel models."""

import random

import pytest

from repro.common import ConfigurationError
from repro.simulation import (
    ChannelModel,
    ExponentialLatency,
    FixedLatency,
    UniformLatency,
)


class TestFixedLatency:
    def test_constant(self):
        m = FixedLatency(2.5)
        rng = random.Random(0)
        assert m.latency("a", "b", "k", rng) == 2.5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(-1.0)

    def test_fifo_flag(self):
        assert FixedLatency(1.0).is_fifo("a", "b", "k")
        assert not FixedLatency(1.0, fifo=False).is_fifo("a", "b", "k")


class TestExponentialLatency:
    def test_positive_draws(self):
        m = ExponentialLatency(mean=2.0)
        rng = random.Random(1)
        draws = [m.latency("a", "b", "k", rng) for _ in range(100)]
        assert all(d >= 0 for d in draws)

    def test_mean_roughly_right(self):
        m = ExponentialLatency(mean=2.0)
        rng = random.Random(2)
        draws = [m.latency("a", "b", "k", rng) for _ in range(5000)]
        assert 1.8 < sum(draws) / len(draws) < 2.2

    def test_zero_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialLatency(mean=0)


class TestUniformLatency:
    def test_in_range(self):
        m = UniformLatency(0.5, 1.5)
        rng = random.Random(3)
        for _ in range(100):
            assert 0.5 <= m.latency("a", "b", "k", rng) <= 1.5

    def test_bad_range_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            UniformLatency(-1.0, 1.0)


class TestBaseModel:
    def test_default_unit_fifo(self):
        m = ChannelModel()
        assert m.latency("a", "b", "k", random.Random(0)) == 1.0
        assert m.is_fifo("a", "b", "k")
