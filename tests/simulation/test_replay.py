"""Unit tests for the snapshot feeder."""

import pytest

from repro.common import ConfigurationError
from repro.simulation import (
    Actor,
    CANDIDATE_KIND,
    END_OF_TRACE_KIND,
    FeedItem,
    Kernel,
    SnapshotFeeder,
)


class Collector(Actor):
    def __init__(self, name="mon"):
        super().__init__(name)
        self.items = []
        self.done = False

    def run(self):
        while True:
            msg = yield self.receive(CANDIDATE_KIND, END_OF_TRACE_KIND)
            if msg.kind == END_OF_TRACE_KIND:
                self.done = True
                return
            self.items.append((msg.payload, msg.delivered_at))


class TestSnapshotFeeder:
    def test_delivers_in_order_then_eot(self):
        k = Kernel()
        c = Collector()
        k.add_actor(c)
        k.add_actor(
            SnapshotFeeder(
                "app", "mon",
                [FeedItem("a", 8, 1.0), FeedItem("b", 8, 2.0)],
            )
        )
        k.run()
        assert [p for p, _ in c.items] == ["a", "b"]
        assert c.done

    def test_timed_emission(self):
        k = Kernel()  # unit latency
        c = Collector()
        k.add_actor(c)
        k.add_actor(
            SnapshotFeeder("app", "mon", [FeedItem("x", 8, 5.0)])
        )
        k.run()
        assert c.items[0][1] == 6.0  # emitted at 5, +1 latency

    def test_untimed_uses_spacing(self):
        k = Kernel()
        c = Collector()
        k.add_actor(c)
        k.add_actor(
            SnapshotFeeder(
                "app", "mon",
                [FeedItem("x", 8, None), FeedItem("y", 8, None)],
                spacing=2.0,
            )
        )
        k.run()
        assert [t for _, t in c.items] == [3.0, 5.0]

    def test_empty_stream_sends_only_eot(self):
        k = Kernel()
        c = Collector()
        k.add_actor(c)
        k.add_actor(SnapshotFeeder("app", "mon", []))
        k.run()
        assert c.items == []
        assert c.done

    def test_decreasing_times_rejected(self):
        with pytest.raises(ConfigurationError):
            SnapshotFeeder(
                "app", "mon",
                [FeedItem("a", 8, 5.0), FeedItem("b", 8, 1.0)],
            )

    def test_bad_spacing_rejected(self):
        with pytest.raises(ConfigurationError):
            SnapshotFeeder("app", "mon", [], spacing=0)

    def test_bits_accounted(self):
        k = Kernel()
        k.add_actor(Collector())
        k.add_actor(SnapshotFeeder("app", "mon", [FeedItem("a", 77, 1.0)]))
        k.run()
        assert k.metrics.of("app").bits_sent == 77 + 1  # candidate + EOT
