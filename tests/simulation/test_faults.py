"""Tests for the fault-injection layer: plans, kernel semantics, replay.

Covers the :mod:`repro.simulation.faults` value types (validation,
``draw``, ``parse``, ``merge``, ``describe``), the kernel's
crash/restart/mailbox-loss semantics, the fault counters on the
metrics board, and the reproducibility contract: a fault schedule is a
pure function of ``(seed, plan, workload)``.
"""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.detect import run_detector
from repro.predicates import WeakConjunctivePredicate
from repro.simulation import Actor, Kernel
from repro.simulation.faults import (
    CrashEvent,
    FaultPlan,
    FaultRule,
    PartitionEvent,
)
from repro.simulation.observers import EventLog, MessagePhase
from repro.trace import random_computation


# ----------------------------------------------------------------------
# Value types
# ----------------------------------------------------------------------
class TestFaultRule:
    def test_probability_validation(self):
        with pytest.raises(ConfigurationError):
            FaultRule(drop=1.5)
        with pytest.raises(ConfigurationError):
            FaultRule(duplicate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultRule(corrupt=2.0)

    def test_wildcard_normalizes_to_none(self):
        rule = FaultRule(kind="*", src="*", dest="*")
        assert (rule.kind, rule.src, rule.dest) == (None, None, None)

    def test_matching(self):
        rule = FaultRule(kind="token", src="mon-0")
        assert rule.matches("mon-0", "mon-1", "token")
        assert not rule.matches("mon-1", "mon-0", "token")
        assert not rule.matches("mon-0", "mon-1", "candidate")
        assert FaultRule().matches("a", "b", "anything")


class TestCrashEvent:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashEvent("", 1.0)
        with pytest.raises(ConfigurationError):
            CrashEvent("a", -1.0)
        with pytest.raises(ConfigurationError):
            CrashEvent("a", 5.0, restart_at=5.0)
        assert CrashEvent("a", 5.0, restart_at=6.0).restart_at == 6.0


class TestPartitionEvent:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionEvent(-1.0, (frozenset({"a"}),))
        with pytest.raises(ConfigurationError):
            PartitionEvent(5.0, (frozenset({"a"}),), heal_at=5.0)
        with pytest.raises(ConfigurationError):
            PartitionEvent(1.0, ())
        with pytest.raises(ConfigurationError):
            PartitionEvent(1.0, (frozenset(),))
        with pytest.raises(ConfigurationError):
            PartitionEvent(1.0, (frozenset({"a"}), frozenset({"a", "b"})))

    def test_separates_explicit_groups(self):
        p = PartitionEvent(1.0, (frozenset({"a"}), frozenset({"b"})))
        assert p.separates("a", "b")
        assert not p.separates("a", "a")
        # Actors in no group share the implicit rest component.
        assert p.separates("a", "c")
        assert not p.separates("c", "d")

    def test_single_group_isolates_from_rest(self):
        p = PartitionEvent(1.0, (frozenset({"mon-0", "app-0"}),))
        assert not p.separates("mon-0", "app-0")
        assert p.separates("mon-0", "mon-1")
        assert not p.separates("mon-1", "mon-2")

    def test_describe(self):
        p = PartitionEvent(4.0, (frozenset({"b", "a"}),), heal_at=20.0)
        assert p.describe() == "partition:a+b@4..20"
        forever = PartitionEvent(4.0, (frozenset({"a"}),))
        assert forever.describe() == "partition:a@4.."


class TestFaultPlanDraw:
    def test_no_matching_rule_is_clean_delivery(self):
        plan = FaultPlan(rules=(FaultRule(kind="token", drop=1.0),))
        assert plan.draw("a", "b", "candidate", random.Random(0)) == [False]

    def test_certain_drop(self):
        plan = FaultPlan(rules=(FaultRule(drop=1.0),))
        assert plan.draw("a", "b", "m", random.Random(0)) == []

    def test_certain_duplicate_and_corrupt(self):
        plan = FaultPlan(rules=(FaultRule(duplicate=1.0, corrupt=1.0),))
        assert plan.draw("a", "b", "m", random.Random(0)) == [True, True]

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="token", drop=0.0),
            FaultRule(drop=1.0),
        ))
        rng = random.Random(0)
        assert plan.draw("a", "b", "token", rng) == [False]
        assert plan.draw("a", "b", "other", rng) == []

    def test_affects_messages(self):
        assert not FaultPlan().affects_messages
        assert not FaultPlan(crashes=(CrashEvent("a", 1.0),)).affects_messages
        assert FaultPlan(rules=(FaultRule(drop=0.1),)).affects_messages


class TestParseMergeDescribe:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse("drop:token:0.2,dup:*:0.05,crash:mon-1:4:9")
        assert plan.rules == (
            FaultRule(kind="token", drop=0.2),
            FaultRule(kind=None, duplicate=0.05),
        )
        assert plan.crashes == (CrashEvent("mon-1", 4.0, 9.0),)

    def test_parse_merges_clauses_for_same_kind(self):
        plan = FaultPlan.parse("drop:token:0.2,corrupt:token:0.1")
        assert plan.rules == (FaultRule(kind="token", drop=0.2, corrupt=0.1),)

    def test_parse_crash_stop(self):
        plan = FaultPlan.parse("crash:app-0:3")
        assert plan.crashes == (CrashEvent("app-0", 3.0, None),)

    @pytest.mark.parametrize("spec", [
        "explode:token:0.5",
        "drop:token",
        "drop:token:nan-ish",
        "drop:token:1.5",
        "crash:mon-0",
        "crash:mon-0:abc",
        "crash:mon-0:5:4",
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(spec)

    def test_parse_partition_clause(self):
        plan = FaultPlan.parse("partition:4:20:mon-0+app-0|mon-1")
        assert plan.partitions == (
            PartitionEvent(
                4.0,
                (frozenset({"mon-0", "app-0"}), frozenset({"mon-1"})),
                heal_at=20.0,
            ),
        )

    def test_parse_partition_never_heals(self):
        plan = FaultPlan.parse("partition:4::mon-0")
        assert plan.partitions == (
            PartitionEvent(4.0, (frozenset({"mon-0"}),), heal_at=None),
        )

    @pytest.mark.parametrize("spec", [
        "partition:4:20",            # missing groups
        "partition:abc:20:mon-0",    # bad time
        "partition:4:3:mon-0",       # heal before start
        "partition:4:20:",           # empty group list
    ])
    def test_parse_rejects_bad_partitions(self, spec):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(spec)

    def test_merge_concatenates_in_order(self):
        a = FaultPlan(rules=(FaultRule(kind="token", drop=1.0),))
        b = FaultPlan(rules=(FaultRule(drop=0.0),),
                      crashes=(CrashEvent("x", 1.0),))
        merged = a.merge(b)
        assert merged.rules == a.rules + b.rules
        assert merged.crashes == b.crashes
        # a's specific rule still shadows b's broad one
        assert merged.draw("p", "q", "token", random.Random(0)) == []

    def test_describe(self):
        plan = FaultPlan.parse("drop:token:0.2,dup:*:0.05,crash:mon-1:4:9")
        text = plan.describe()
        assert "token[drop=0.2]" in text
        assert "*[dup=0.05]" in text
        assert "crash:mon-1@4..9" in text
        assert FaultPlan().describe() == "(no faults)"


# ----------------------------------------------------------------------
# Kernel semantics
# ----------------------------------------------------------------------
class Pinger(Actor):
    """Sends ``count`` messages one time unit apart."""

    def __init__(self, dest, count=3):
        super().__init__("pinger")
        self.dest = dest
        self.count = count

    def run(self):
        for i in range(self.count):
            yield self.send(self.dest, i, kind="m")
            yield self.sleep(1.0)


class Collector(Actor):
    """Receives with a timeout until the channel goes quiet."""

    def __init__(self, name="collector", patience=10.0):
        super().__init__(name)
        self.patience = patience
        self.got = []

    def run(self):
        while True:
            msg = yield self.receive_timeout("m", timeout=self.patience)
            if msg is None:
                return
            self.got.append((msg.payload, msg.corrupted))


class TestKernelFaults:
    def test_drop_all(self):
        plan = FaultPlan(rules=(FaultRule(kind="m", drop=1.0),))
        k = Kernel(faults=plan)
        c = Collector(patience=5.0)
        k.add_actor(c)
        k.add_actor(Pinger("collector"))
        result = k.run()
        assert c.got == []
        assert result.faults is not None
        assert result.faults.dropped == 3
        assert result.faults.total_message_faults == 3

    def test_duplicate_all(self):
        plan = FaultPlan(rules=(FaultRule(kind="m", duplicate=1.0),))
        k = Kernel(faults=plan)
        c = Collector(patience=5.0)
        k.add_actor(c)
        k.add_actor(Pinger("collector"))
        result = k.run()
        assert [p for p, _ in c.got] == [0, 0, 1, 1, 2, 2]
        assert result.faults.duplicated == 3

    def test_corrupt_all_marks_not_mangles(self):
        plan = FaultPlan(rules=(FaultRule(kind="m", corrupt=1.0),))
        k = Kernel(faults=plan)
        c = Collector(patience=5.0)
        k.add_actor(c)
        k.add_actor(Pinger("collector"))
        result = k.run()
        # Payloads intact, every copy flagged.
        assert c.got == [(0, True), (1, True), (2, True)]
        assert result.faults.corrupted == 3

    def test_no_plan_reports_no_fault_summary(self):
        k = Kernel()
        c = Collector(patience=5.0)
        k.add_actor(c)
        k.add_actor(Pinger("collector"))
        result = k.run()
        assert result.faults is None
        assert result.crashed == ()

    def test_crash_stop_loses_mailbox_and_in_flight(self):
        # Crash at t=2.5: messages 0 and 1 (arriving t=1, t=2) are
        # consumed... no — collector is blocked, so each is consumed on
        # arrival.  Use a sleeping actor so messages queue in the
        # mailbox instead.
        class Sleeper(Actor):
            def __init__(self):
                super().__init__("collector")
                self.got = []

            def run(self):
                yield self.sleep(100.0)
                while True:  # pragma: no cover - crashed before this
                    msg = yield self.receive("m")
                    self.got.append(msg.payload)

        plan = FaultPlan(crashes=(CrashEvent("collector", 2.5),))
        k = Kernel(faults=plan)
        s = Sleeper()
        k.add_actor(s)
        k.add_actor(Pinger("collector"))  # arrivals at 1.0, 2.0, 3.0
        result = k.run()
        assert s.got == []
        assert "collector" in result.crashed
        assert result.faults.crashes == 1
        assert result.faults.restarts == 0
        # two queued messages emptied at crash time + one in-flight
        # arrival at t=3.0 into the dead actor
        assert result.faults.lost_to_crash == 3

    def test_restart_reruns_with_attributes_preserved(self):
        class Phoenix(Actor):
            def __init__(self):
                super().__init__("phoenix")
                self.lives = 0

            def run(self):
                self.lives += 1
                yield self.sleep(10.0)

        plan = FaultPlan(crashes=(CrashEvent("phoenix", 2.0, 5.0),))
        k = Kernel(faults=plan)
        p = Phoenix()
        k.add_actor(p)
        result = k.run()
        assert p.lives == 2  # initial run + restart, attribute survived
        assert result.crashed == ()
        assert result.faults.crashes == 1
        assert result.faults.restarts == 1
        assert result.time == 15.0  # restart at 5.0 + full 10.0 sleep


class TestKernelPartitions:
    def test_cross_component_sends_dropped_while_live(self):
        plan = FaultPlan(partitions=(
            PartitionEvent(0.5, (frozenset({"pinger"}),), heal_at=2.5),
        ))
        k = Kernel(faults=plan)
        c = Collector(patience=5.0)
        k.add_actor(c)
        k.add_actor(Pinger("collector"))  # sends at t=0, 1, 2, arrive +1
        result = k.run()
        # The t=0 send predates the partition; sends at t=1 and t=2 are
        # cross-component while it is live and vanish at the network.
        assert [p for p, _ in c.got] == [0]
        assert result.faults.partitioned == 2
        assert result.faults.partitions == 1

    def test_heal_restores_delivery(self):
        plan = FaultPlan(partitions=(
            PartitionEvent(0.5, (frozenset({"pinger"}),), heal_at=1.5),
        ))
        k = Kernel(faults=plan)
        c = Collector(patience=5.0)
        k.add_actor(c)
        k.add_actor(Pinger("collector"))
        result = k.run()
        assert [p for p, _ in c.got] == [0, 2]
        assert result.faults.partitioned == 1

    def test_same_component_unaffected(self):
        plan = FaultPlan(partitions=(
            PartitionEvent(0.0, (frozenset({"pinger", "collector"}),)),
        ))
        k = Kernel(faults=plan)
        c = Collector(patience=5.0)
        k.add_actor(c)
        k.add_actor(Pinger("collector"))
        result = k.run()
        assert [p for p, _ in c.got] == [0, 1, 2]
        assert result.faults.partitioned == 0


# ----------------------------------------------------------------------
# Reproducibility: same (seed, plan, workload) => identical runs
# ----------------------------------------------------------------------
def _run_logged(seed):
    plan = FaultPlan(
        rules=(FaultRule(drop=0.3, duplicate=0.2, corrupt=0.1),),
        crashes=(CrashEvent("collector", 2.5, 4.0),),
    )
    log = EventLog()
    k = Kernel(seed=seed, observers=[log], faults=plan)
    k.add_actor(Collector(patience=6.0))
    k.add_actor(Pinger("collector", count=8))
    result = k.run()
    return result, log


class TestDeterministicReplay:
    def test_same_seed_same_plan_identical_timeline(self):
        """The fault schedule is a pure function of (seed, plan,
        workload): two identical runs produce byte-identical event-log
        timelines, including drop/loss events."""
        result_a, log_a = _run_logged(seed=7)
        result_b, log_b = _run_logged(seed=7)
        assert "\n".join(log_a.timeline()) == "\n".join(log_b.timeline())
        assert result_a.time == result_b.time
        assert result_a.faults == result_b.faults
        phases = {e.phase for e in log_a.events}
        assert MessagePhase.DROPPED in phases  # the plan actually bit

    def test_different_seed_different_schedule(self):
        _, log_a = _run_logged(seed=7)
        _, log_b = _run_logged(seed=8)
        assert "\n".join(log_a.timeline()) != "\n".join(log_b.timeline())

    def test_detector_runs_are_reproducible_under_faults(self):
        """End-to-end: the hardened detector's full report — verdict,
        cut, timing, counters — is identical across identical runs."""
        comp = random_computation(3, 4, seed=11, predicate_density=0.3,
                                  plant_final_cut=True)
        wcp = WeakConjunctivePredicate.of_flags((0, 1, 2))
        plan = FaultPlan.parse("drop:token:0.2,dup:*:0.1,crash:mon-1:4:9")
        reports = [
            run_detector("token_vc", comp, wcp, seed=5, faults=plan)
            for _ in range(2)
        ]
        a, b = reports
        assert (a.detected, a.cut) == (b.detected, b.cut)
        assert a.detection_time == b.detection_time
        assert a.extras == b.extras
        assert a.sim.faults == b.sim.faults
