"""Unit tests for effect value types."""

import pytest

from repro.simulation import Message, Receive, Send, Sleep, Work, kind_is


class TestSend:
    def test_fields(self):
        s = Send("dest", {"x": 1}, kind="token", size_bits=64)
        assert s.dest == "dest"
        assert s.kind == "token"
        assert s.size_bits == 64

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Send("d", None, size_bits=-1)

    def test_defaults(self):
        s = Send("d", None)
        assert s.kind == "msg" and s.size_bits == 0


class TestSleepAndWork:
    def test_sleep_negative_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-0.1)

    def test_work_negative_rejected(self):
        with pytest.raises(ValueError):
            Work(-1)

    def test_work_zero_allowed(self):
        assert Work(0).units == 0


class TestKindIs:
    def make_msg(self, kind):
        return Message(
            seq=1, src="a", dest="b", kind=kind, payload=None,
            size_bits=0, sent_at=0.0, delivered_at=1.0,
        )

    def test_single_kind(self):
        match = kind_is("token")
        assert match(self.make_msg("token"))
        assert not match(self.make_msg("poll"))

    def test_multiple_kinds(self):
        match = kind_is("a", "b")
        assert match(self.make_msg("a"))
        assert match(self.make_msg("b"))
        assert not match(self.make_msg("c"))

    def test_receive_default_matches_any(self):
        r = Receive()
        assert r.match is None
