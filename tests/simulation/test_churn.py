"""Churn faults: rolling crash/restart schedules, and late actor spawn.

:class:`ChurnEvent` is declarative sugar over the kernel's proven
crash/restart machinery — it expands round-robin into
:class:`CrashEvent` instances via :meth:`FaultPlan.all_crashes`.  The
kernel's ``spawn_at`` complements it for workloads where actors join
the simulation after t=0.
"""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.simulation import Actor, Kernel
from repro.simulation.faults import ChurnEvent, CrashEvent, FaultPlan


class TestChurnEvent:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnEvent((), 1.0, 2.0, 1.0)
        with pytest.raises(ConfigurationError):
            ChurnEvent(("a",), -1.0, 2.0, 1.0)
        with pytest.raises(ConfigurationError):
            ChurnEvent(("a",), 1.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            ChurnEvent(("a",), 1.0, 2.0, 0.0)
        with pytest.raises(ConfigurationError):
            ChurnEvent(("a",), 1.0, 2.0, 1.0, rounds=0)

    def test_round_robin_expansion(self):
        churn = ChurnEvent(("a", "b"), 4.0, 10.0, 5.0, rounds=2)
        crashes = churn.crashes()
        assert crashes == (
            CrashEvent("a", 4.0, 9.0),
            CrashEvent("b", 14.0, 19.0),
            CrashEvent("a", 24.0, 29.0),
            CrashEvent("b", 34.0, 39.0),
        )

    def test_single_actor_single_round(self):
        churn = ChurnEvent(("m",), 1.0, 3.0, 2.0)
        assert churn.crashes() == (CrashEvent("m", 1.0, 3.0),)

    def test_describe(self):
        churn = ChurnEvent(("a", "b"), 4.0, 10.0, 5.0, rounds=2)
        assert churn.describe() == "churn:a+b@4x10~5*2"
        assert ChurnEvent(("m",), 1.0, 3.0, 2.0).describe() == (
            "churn:m@1x3~2"
        )


class TestFaultPlanChurn:
    def test_all_crashes_merges_explicit_and_churn(self):
        plan = FaultPlan(
            crashes=(CrashEvent("x", 1.0, 2.0),),
            churns=(ChurnEvent(("a",), 5.0, 4.0, 2.0, rounds=2),),
        )
        assert plan.all_crashes() == (
            CrashEvent("x", 1.0, 2.0),
            CrashEvent("a", 5.0, 7.0),
            CrashEvent("a", 9.0, 11.0),
        )

    def test_parse_churn_spec(self):
        plan = FaultPlan.parse("churn:mon-1+mon-2:4:10:5:2")
        assert plan.churns == (
            ChurnEvent(("mon-1", "mon-2"), 4.0, 10.0, 5.0, rounds=2),
        )
        # rounds defaults to 1 with the 5-part form
        plan = FaultPlan.parse("churn:mon-1:4:10:5")
        assert plan.churns[0].rounds == 1

    def test_parse_rejects_malformed_churn(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("churn:mon-1:4:10")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("churn:mon-1:4:10:5:2:9")

    def test_describe_and_merge_round_trip(self):
        plan = FaultPlan.parse("drop:token:0.1,churn:a+b:4:10:5:2")
        assert "churn:a+b@4x10~5*2" in plan.describe()
        merged = plan.merge(FaultPlan.parse("churn:c:1:2:1"))
        assert len(merged.churns) == 2


class _Beacon(Actor):
    """Sends one message to a peer at every run entry."""

    def __init__(self, name, peer=None):
        super().__init__(name)
        self.started_at = None

    def run(self):
        self.started_at = self.now
        return
        yield  # pragma: no cover - generator marker


class TestSpawnAt:
    def test_actor_starts_at_requested_time(self):
        kernel = Kernel()
        late = _Beacon("late")
        kernel.spawn_at(5.0, late)
        kernel.run()
        assert late.started_at == 5.0

    def test_rejects_past_and_duplicate(self):
        kernel = Kernel()
        kernel.add_actor(_Beacon("a"))
        with pytest.raises(SimulationError):
            kernel.spawn_at(1.0, _Beacon("a"))
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.spawn_at(-1.0, _Beacon("b"))
