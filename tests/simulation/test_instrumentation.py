"""Unit tests for metrics accounting."""

import pytest

from repro.common import SimulationError
from repro.simulation import (
    Actor,
    FixedLatency,
    Kernel,
    MetricsBoard,
    Send,
)
from repro.simulation.instrumentation import ActorMetrics, FaultSummary


class TestActorMetrics:
    def test_send_receive_counters(self):
        m = ActorMetrics("a")
        m.charge_send("token", 64)
        m.charge_send("token", 64)
        m.charge_receive("candidate", 32)
        assert m.messages_sent == 2
        assert m.bits_sent == 128
        assert m.messages_received == 1
        assert m.bits_received == 32
        assert m.sent_by_kind == {"token": 2}
        assert m.received_by_kind == {"candidate": 1}

    def test_space_gauge_and_high_water(self):
        m = ActorMetrics("a")
        m.adjust_space(100)
        m.adjust_space(50)
        m.adjust_space(-120)
        assert m.buffered_bits == 30
        assert m.buffered_bits_high_water == 150

    def test_negative_gauge_rejected(self):
        m = ActorMetrics("a")
        m.adjust_space(10)
        with pytest.raises(SimulationError):
            m.adjust_space(-20)

    def test_work(self):
        m = ActorMetrics("a")
        m.charge_work(7)
        assert m.work_units == 7


class TestMetricsBoard:
    def test_register_idempotent(self):
        b = MetricsBoard()
        m1 = b.register("x")
        m2 = b.register("x")
        assert m1 is m2

    def test_of_unknown_raises(self):
        with pytest.raises(SimulationError):
            MetricsBoard().of("nobody")

    def test_aggregates_with_prefix(self):
        b = MetricsBoard()
        b.register("mon-0").charge_send("token", 10)
        b.register("mon-1").charge_send("token", 20)
        b.register("app-0").charge_send("candidate", 100)
        assert b.total_messages() == 3
        assert b.total_messages("mon-") == 2
        assert b.total_bits("mon-") == 30
        assert b.messages_of_kind("token") == 2
        assert b.messages_of_kind("candidate") == 1

    def test_work_and_space_maxima(self):
        b = MetricsBoard()
        b.register("mon-0").charge_work(5)
        b.register("mon-1").charge_work(9)
        b.register("mon-1").adjust_space(40)
        assert b.total_work("mon-") == 14
        assert b.max_work_per_actor("mon-") == 9
        assert b.max_space_per_actor("mon-") == 40
        assert b.max_work_per_actor("zzz") == 0

    def test_space_high_water_survives_drain(self):
        """The paper's space bound is a high-water mark: draining a
        buffer must not lower it, and refilling below the peak must not
        raise it."""
        m = MetricsBoard().register("mon-0")
        m.adjust_space(100)
        m.adjust_space(-100)
        assert m.buffered_bits == 0
        assert m.buffered_bits_high_water == 100
        m.adjust_space(60)
        assert m.buffered_bits_high_water == 100  # below the old peak
        m.adjust_space(50)
        assert m.buffered_bits_high_water == 110  # new peak

    def test_aggregate_space_is_max_of_peaks_not_sum_or_current(self):
        """Per-actor peaks can happen at different times; the aggregate
        is the max peak, never the sum and never the current gauge."""
        b = MetricsBoard()
        a0, a1 = b.register("mon-0"), b.register("mon-1")
        a0.adjust_space(100)
        a0.adjust_space(-100)        # mon-0 peaked at 100, now empty
        a1.adjust_space(80)
        a1.adjust_space(40)          # mon-1 peaks at 120
        a1.adjust_space(-110)        # ... now holds 10
        assert b.max_space_per_actor() == 120
        assert a0.buffered_bits + a1.buffered_bits == 10

    def test_snapshot_shape(self):
        b = MetricsBoard()
        m = b.register("mon-0")
        m.charge_send("token", 64)
        m.charge_receive("candidate", 32)
        m.charge_work(3)
        m.adjust_space(32)
        snap = b.snapshot()
        # Totals count sends (each message is charged once, at the sender).
        assert snap["totals"] == {
            "messages": 1,
            "bits": 64,
            "work": 3,
            "max_work_per_actor": 3,
            "max_space_bits_per_actor": 32,
            "liveness_bytes": 0,
        }
        actor = snap["actors"]["mon-0"]
        assert actor["sent_by_kind"] == {"token": 1}
        assert actor["sent_bits_by_kind"] == {"token": 64}
        assert actor["received_by_kind"] == {"candidate": 1}
        assert actor["space_high_water_bits"] == 32
        # No fault data recorded -> no fault keys in the snapshot.
        assert "channel_faults" not in snap
        assert "crashes" not in snap


class TestFaultSummary:
    def test_total_message_faults_excludes_lifecycle(self):
        s = FaultSummary(
            dropped=3, duplicated=2, corrupted=1, lost_to_crash=4,
            crashes=5, restarts=5,
        )
        assert s.total_message_faults == 10

    def test_as_dict_includes_derived_total(self):
        s = FaultSummary(dropped=1, crashes=2, restarts=1)
        d = s.as_dict()
        assert d["dropped"] == 1
        assert d["crashes"] == 2
        assert d["restarts"] == 1
        assert d["total_message_faults"] == 1

    def test_zero_faults(self):
        assert FaultSummary().total_message_faults == 0
        assert FaultSummary().as_dict()["total_message_faults"] == 0


class TestKernelCharging:
    def test_mailbox_space_high_water(self):
        """Messages buffered in a mailbox count toward space until
        consumed."""

        class LazySink(Actor):
            def run(self):
                yield self.sleep(100)  # let messages pile up
                for _ in range(3):
                    yield self.receive("m")

        class Src(Actor):
            def run(self):
                for _ in range(3):
                    yield self.send("sink", 0, kind="m", size_bits=10)

        k = Kernel(channel_model=FixedLatency(1.0))
        k.add_actor(LazySink("sink"))
        k.add_actor(Src("src"))
        k.run()
        m = k.metrics.of("sink")
        assert m.buffered_bits_high_water == 30
        assert m.buffered_bits == 0  # all consumed by the end

    def test_kernel_charges_sender_and_receiver(self):
        class Sink(Actor):
            def run(self):
                yield self.receive("m")

        k = Kernel()
        k.add_actor(Sink("sink"))

        class Src(Actor):
            def run(self):
                yield self.send("sink", 0, kind="m", size_bits=99)

        k.add_actor(Src("src"))
        k.run()
        assert k.metrics.of("src").bits_sent == 99
        assert k.metrics.of("sink").bits_received == 99
