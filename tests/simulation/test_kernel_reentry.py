"""Kernel lifecycle: multiple run() calls, late actors, un-deadlocking."""

from repro.simulation import Actor, Kernel, Send, Sleep


class Beacon(Actor):
    """Sends one message to a target after a delay."""

    def __init__(self, name, target, delay):
        super().__init__(name)
        self.target = target
        self.delay = delay

    def run(self):
        yield self.sleep(self.delay)
        yield self.send(self.target, "wake", kind="m")


class Sleeper(Actor):
    def __init__(self, name):
        super().__init__(name)
        self.woken = False

    def run(self):
        yield self.receive("m")
        self.woken = True


class TestRunReentry:
    def test_run_until_then_continue(self):
        k = Kernel()
        s = Sleeper("s")
        k.add_actor(s)
        k.add_actor(Beacon("b", "s", delay=10.0))
        first = k.run(until=5.0)
        assert not s.woken
        assert first.time <= 5.0
        second = k.run()
        assert s.woken
        assert second.time == 11.0

    def test_deadlock_then_new_actor_unblocks(self):
        """A deadlocked kernel resumes when a later actor supplies the
        awaited message — detection runners rely on quiescence being
        resumable, not fatal."""
        k = Kernel()
        s = Sleeper("s")
        k.add_actor(s)
        first = k.run()
        assert first.deadlocked
        assert "s" in first.blocked
        k.add_actor(Beacon("late", "s", delay=1.0))
        second = k.run()
        assert s.woken
        assert not second.deadlocked

    def test_run_after_everything_finished_is_noop(self):
        k = Kernel()
        k.add_actor(Beacon("b", "b2", delay=1.0))
        k.add_actor(Sleeper("b2"))
        end = k.run()
        again = k.run()
        assert again.time == end.time
        assert again.steps == end.steps

    def test_time_monotone_across_runs(self):
        k = Kernel()
        k.add_actor(Beacon("b", "s", delay=3.0))
        k.add_actor(Sleeper("s"))
        t1 = k.run(until=1.0).time
        t2 = k.run(until=2.0).time
        t3 = k.run().time
        assert t1 <= t2 <= t3

    def test_steps_accumulate(self):
        k = Kernel()
        k.add_actor(Beacon("b", "s", delay=2.0))
        k.add_actor(Sleeper("s"))
        s1 = k.run(until=1.0).steps
        s2 = k.run().steps
        assert s2 >= s1
