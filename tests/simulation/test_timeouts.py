"""Tests for receive timeouts in the kernel."""

import pytest

from repro.simulation import Actor, Kernel, Receive, Send


class Waiter(Actor):
    def __init__(self, name, timeout):
        super().__init__(name)
        self.timeout = timeout
        self.result = "unset"
        self.resumed_at = None

    def run(self):
        msg = yield self.receive_timeout("m", timeout=self.timeout)
        self.result = None if msg is None else msg.payload
        self.resumed_at = self.now


class Later(Actor):
    def __init__(self, dest, delay, payload="hello"):
        super().__init__("later")
        self.dest = dest
        self.delay = delay
        self.payload = payload

    def run(self):
        yield self.sleep(self.delay)
        yield self.send(self.dest, self.payload, kind="m")


class TestReceiveTimeout:
    def test_times_out_when_no_message(self):
        k = Kernel()
        w = Waiter("w", timeout=3.0)
        k.add_actor(w)
        result = k.run()
        assert w.result is None
        assert w.resumed_at == 3.0
        assert not result.deadlocked

    def test_message_beats_timeout(self):
        k = Kernel()  # unit latency
        w = Waiter("w", timeout=5.0)
        k.add_actor(w)
        k.add_actor(Later("w", delay=1.0))  # arrives at 2.0 < 5.0
        k.run()
        assert w.result == "hello"
        assert w.resumed_at == 2.0

    def test_timeout_beats_slow_message(self):
        k = Kernel()
        w = Waiter("w", timeout=0.5)
        k.add_actor(w)
        k.add_actor(Later("w", delay=5.0))
        k.run()
        assert w.result is None

    def test_stale_timeout_ignored_after_reblock(self):
        """An actor that unblocks (by message) and blocks again must not
        be woken by the first receive's stale timeout."""

        class TwoWaits(Actor):
            def __init__(self):
                super().__init__("tw")
                self.history = []

            def run(self):
                msg = yield self.receive_timeout("m", timeout=10.0)
                self.history.append(msg.payload)
                msg = yield self.receive_timeout("m", timeout=30.0)
                self.history.append(None if msg is None else msg.payload)

        k = Kernel()
        tw = TwoWaits()
        k.add_actor(tw)
        k.add_actor(Later("tw", delay=1.0, payload="first"))
        result = k.run()
        # The second wait must run its FULL 30-unit timeout (ending at
        # 2.0 + 30.0), not get cut short at t=10 by the stale timer.
        assert tw.history == ["first", None]
        assert result.time == 32.0

    def test_zero_timeout_rejected(self):
        with pytest.raises(ValueError):
            Receive(None, timeout=0)

    def test_delivery_at_exact_deadline_loses_to_timeout(self):
        """A message whose delivery lands exactly on the receive's
        deadline does not beat the timeout: the timeout event was
        scheduled when the actor blocked, so at equal times it has the
        lower sequence number and pops first."""
        k = Kernel()  # unit latency
        w = Waiter("w", timeout=2.0)
        k.add_actor(w)
        k.add_actor(Later("w", delay=1.0))  # arrives at exactly 2.0
        k.run()
        assert w.result is None
        assert w.resumed_at == 2.0

    def test_message_tied_with_deadline_is_not_lost(self):
        """The message that tied with the deadline must survive in the
        mailbox: the next receive consumes it at the same instant even
        though the delivery targeted a now-stale block epoch."""

        class RetryAfterTimeout(Actor):
            def __init__(self):
                super().__init__("w")
                self.history = []

            def run(self):
                msg = yield self.receive_timeout("m", timeout=2.0)
                self.history.append((None, self.now) if msg is None
                                    else (msg.payload, self.now))
                msg = yield self.receive_timeout("m", timeout=5.0)
                self.history.append((None, self.now) if msg is None
                                    else (msg.payload, self.now))

        k = Kernel()
        w = RetryAfterTimeout()
        k.add_actor(w)
        k.add_actor(Later("w", delay=1.0))  # delivery ties at t=2.0
        result = k.run()
        assert w.history == [(None, 2.0), ("hello", 2.0)]
        assert not result.deadlocked

    def test_delivery_just_before_deadline_wins(self):
        k = Kernel()
        w = Waiter("w", timeout=2.0 + 1e-9)
        k.add_actor(w)
        k.add_actor(Later("w", delay=1.0))  # arrives at 2.0 < deadline
        k.run()
        assert w.result == "hello"
        assert w.resumed_at == 2.0

    def test_timed_wait_is_not_deadlock(self):
        """Blocked-with-timeout actors always have a pending event, so
        the run ends via timeout, never as a deadlock."""
        k = Kernel()
        k.add_actor(Waiter("w", timeout=1.0))
        result = k.run()
        assert not result.deadlocked
        assert result.blocked == {}
