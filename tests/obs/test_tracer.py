"""SpanTracer integration tests on real detection runs.

The tracer is a pure observer: these tests run the actual protocols and
check the synthesized spans against the reports' own accounting
(``extras``), so span synthesis cannot drift from protocol reality.
"""

from repro.detect import run_detector
from repro.detect.stack import FailureDetectorConfig
from repro.obs import SpanTracer
from repro.predicates import WeakConjunctivePredicate
from repro.simulation.faults import (
    CrashEvent,
    FaultPlan,
    FaultRule,
    PartitionEvent,
)
from repro.trace import random_computation, spiral_computation


def traced_run(detector="token_vc", n=4, m=3, **options):
    comp = spiral_computation(n, m)
    wcp = WeakConjunctivePredicate.of_flags(range(n))
    tracer = SpanTracer()
    options.setdefault("observers", []).append(tracer)
    report = run_detector(detector, comp, wcp, **options)
    trace = tracer.finish(report.sim.time if report.sim else None)
    return report, trace


class TestTokenVC:
    def test_spans_match_report_extras(self):
        report, trace = traced_run()
        assert report.detected
        trace.validate()
        # Monitor-to-monitor hops + the injection hop.
        hops = trace.by_name("token_hop")
        assert len(hops) == report.extras["token_hops"] + 1
        assert len(trace.by_name("token_visit")) == \
            report.extras["token_visits"]
        consumed = [s for s in trace.by_name("candidate")
                    if s.attrs.get("terminal") == "consumed"]
        assert len(consumed) == report.extras["candidates_sent"]
        assert trace.by_name("halt")

    def test_injection_hop_marked(self):
        _, trace = traced_run()
        first = trace.by_name("token_hop")[0]
        assert first.attrs.get("injected") is True
        assert not first.actor.startswith("mon-")

    def test_every_span_closed_and_timestamped(self):
        report, trace = traced_run()
        for span in trace:
            assert span.end is not None, span.name
            assert span.end >= span.start
        assert trace.bounds()[1] <= report.sim.time

    def test_critical_path_threads_the_token(self):
        report, trace = traced_run()
        chain = trace.critical_path()
        assert chain[0].name == "run"
        assert chain[-1].name in ("halt", "token_visit")
        names = {s.name for s in chain}
        assert "token_hop" in names and "token_visit" in names
        # The chain alternates through every elimination round.
        assert len(chain) >= 2 * report.extras["token_hops"]

    def test_itinerary_covers_all_hops(self):
        report, trace = traced_run()
        hops = trace.token_itinerary()
        assert len(hops) == report.extras["token_hops"] + 1
        assert all(h.arrived_at is not None for h in hops)
        # Red-slot explanations come from the live token payload.
        assert any("still red" in h.why for h in hops[1:])

    def test_visits_count_candidates(self):
        report, trace = traced_run()
        counted = sum(
            s.attrs.get("candidates", 0) for s in trace.by_name("token_visit")
        )
        assert counted == report.extras["candidates_sent"]

    def test_trace_is_deterministic(self):
        def spans_of():
            _, trace = traced_run(seed=3)
            return [
                (s.name, s.actor, s.start, s.end) for s in trace.spans
            ]

        assert spans_of() == spans_of()


class TestOtherDetectors:
    def test_direct_dep_poll_rtts_pair_up(self):
        report, trace = traced_run("direct_dep")
        assert report.detected
        trace.validate()
        rtts = trace.by_name("poll_rtt")
        assert rtts
        assert all(not s.attrs.get("unanswered") for s in rtts)
        assert len(trace.by_name("poll")) == len(trace.by_name("poll_response"))

    def test_multi_token_gids_distinguished(self):
        comp = random_computation(
            6, 4, seed=1, predicate_density=0.3, plant_final_cut=True
        )
        wcp = WeakConjunctivePredicate.of_flags(range(6))
        tracer = SpanTracer()
        report = run_detector(
            "token_vc_multi", comp, wcp, groups=2, observers=[tracer]
        )
        trace = tracer.finish(report.sim.time)
        trace.validate()
        gids = {h.gid for h in trace.token_itinerary()}
        assert len(gids) == 2

    def test_centralized_has_no_token_spans(self):
        report, trace = traced_run("centralized")
        assert report.detected
        assert trace.token_itinerary() == []
        assert trace.by_name("candidate")


class TestFaultOverlay:
    def plan(self):
        return FaultPlan(
            rules=(FaultRule(kind="token", drop=0.3),),
            crashes=(CrashEvent("mon-1", at=6.0, restart_at=12.0),),
        )

    def test_drop_markers_and_crash_epochs(self):
        report, trace = traced_run(
            "token_vc", n=4, m=4, seed=5, faults=self.plan(), hardened=True
        )
        assert report.detected
        trace.validate()
        drops = trace.by_name("fault:drop")
        assert len(drops) == report.sim.faults.dropped
        crashes = trace.by_name("crash")
        assert [c.actor for c in crashes] == ["mon-1"]
        assert crashes[0].start == 6.0
        assert crashes[0].attrs["restarted"] is True
        assert crashes[0].end == 12.0

    def test_crash_stop_left_open_until_finish(self):
        plan = FaultPlan(crashes=(CrashEvent("mon-2", at=4.0),))
        report, trace = traced_run(
            "token_vc", n=4, m=4, faults=plan, hardened=True
        )
        crash = trace.by_name("crash")[0]
        assert crash.attrs["restarted"] is False
        assert crash.end is not None  # closed by finish()

    def test_duplicate_copies_marked(self):
        plan = FaultPlan(rules=(FaultRule(kind="token", duplicate=0.5),))
        report, trace = traced_run(
            "token_vc", n=4, m=4, seed=2, faults=plan, hardened=True
        )
        dups = [s for s in trace if s.attrs.get("duplicate")]
        assert len(dups) == report.sim.faults.duplicated

    def test_partition_epoch_spans(self):
        healed = FaultPlan(partitions=(PartitionEvent(
            at=4.0, groups=(frozenset({"mon-0", "app-0"}),), heal_at=9.0,
        ),))
        report, trace = traced_run(
            "token_vc", n=3, m=4, faults=healed, hardened=True
        )
        trace.validate()
        spans = trace.by_name("partition")
        assert [s.actor for s in spans] == ["net"]
        assert spans[0].start == 4.0 and spans[0].end == 9.0
        assert spans[0].attrs["healed"] is True
        assert spans[0].attrs["groups"] == ["app-0 + mon-0"]
        assert report.sim.faults.partitions == 1

    def test_unhealed_partition_closed_by_finish(self):
        forever = FaultPlan(partitions=(PartitionEvent(
            at=4.0, groups=(frozenset({"mon-2"}),), heal_at=None,
        ),))
        _, trace = traced_run(
            "token_vc", n=3, m=4, faults=forever, hardened=True
        )
        span = trace.by_name("partition")[0]
        assert span.attrs["healed"] is False
        assert span.end is not None  # closed by finish()

    def test_failure_detector_kinds_get_first_class_names(self):
        forever = FaultPlan(partitions=(PartitionEvent(
            at=0.5, groups=(frozenset({"mon-0"}),), heal_at=None,
        ),))
        report, trace = traced_run(
            "token_vc", n=3, m=4, faults=forever, hardened=True,
            failure_detector=FailureDetectorConfig(),
        )
        assert trace.by_name("heartbeat")
        assert trace.by_name("elect")  # survivors proposed a takeover
        assert not trace.by_name("msg:heartbeat")
        assert not trace.by_name("msg:elect")
        assert report.extras["elections"] >= 1


class TestFinish:
    def test_finish_idempotent_and_merges_meta(self):
        _, trace = traced_run()
        tracer = SpanTracer()
        report = run_detector(
            "token_vc", spiral_computation(3, 3),
            WeakConjunctivePredicate.of_flags(range(3)),
            observers=[tracer],
        )
        t1 = tracer.finish(report.sim.time, detector="token_vc")
        t2 = tracer.finish(report.sim.time, outcome="detected")
        assert t1 is t2
        assert t1.meta == {"detector": "token_vc", "outcome": "detected"}

    def test_finish_without_time_uses_latest_seen(self):
        tracer = SpanTracer()
        run_detector(
            "token_vc", spiral_computation(3, 3),
            WeakConjunctivePredicate.of_flags(range(3)),
            observers=[tracer],
        )
        trace = tracer.finish()
        assert all(s.end is not None for s in trace)

    def test_custom_trace_id(self):
        assert SpanTracer(trace_id="fixed").trace.trace_id == "fixed"
        # Falsy ids fall back to a generated one.
        assert SpanTracer(trace_id="").trace.trace_id
