"""Tests for the runtime-verification layer (invariant monitors).

Covers the five invariant families with hand-built fact streams, the
mutation-style guarantees from the issue (flip a frame epoch / reorder a
candidate / double-deliver a token -> the *precise* family fires), the
flight recorder's ring semantics, and offline replay parity.
"""

from __future__ import annotations

import pytest

from repro.detect import run_detector
from repro.detect.base import TOKEN_KIND
from repro.detect.stack import (
    ELECT_KIND,
    FEED_JOIN_KIND,
    JOIN_ACK_KIND,
    JOIN_KIND,
    PING_KIND,
    STATE_SYNC_KIND,
    FailureDetectorConfig,
    FeedJoin,
    GossipUpdate,
    Join,
    JoinWelcome,
    Sequenced,
    StateSync,
    TokenFrame,
)
from repro.detect.stack.gossip import Announcement, Ping
from repro.detect.stack.membership import Elect
from repro.obs import (
    INVARIANT_FAMILIES,
    FlightRecorder,
    InvariantMonitor,
    SpanTracer,
    load_jsonl,
    message_facts,
    replay_trace,
)
from repro.obs.invariants import _vc_of
from repro.obs.spans import Span
from repro.predicates import WeakConjunctivePredicate
from repro.simulation.effects import Message
from repro.simulation.observers import (
    ActorEvent,
    ActorPhase,
    MessageEvent,
    MessagePhase,
    PartitionNotice,
    PartitionPhase,
)
from repro.simulation.replay import CANDIDATE_KIND
from repro.trace import spiral_computation


def frame(hop, epoch=0, gid=0, gossip=()):
    return TokenFrame(hop=hop, body=object(), gid=gid, epoch=epoch,
                      gossip=tuple(gossip))


def families(monitor):
    return sorted({v.invariant for v in monitor.violations})


class TestMessageFacts:
    def test_token_frame_facts(self):
        facts = message_facts(TOKEN_KIND, frame(3, epoch=2, gid=1))
        assert facts["frame"] is True
        assert facts["hop"] == 3
        assert facts["epoch"] == 2
        assert facts["gid"] == 1

    def test_token_frame_gossip_piggyback_folded(self):
        facts = message_facts(TOKEN_KIND, frame(1, gossip=(
            GossipUpdate(slot=2, status="suspect", incarnation=1),
            Announcement(kind="elect", epoch=3, slot=0),
        )))
        assert facts["updates"] == [[2, "suspect", 1]]
        assert facts["announcements"] == [["elect", 3, 0]]

    def test_sequenced_candidate_facts(self):
        facts = message_facts(
            CANDIDATE_KIND, Sequenced(seq=4, payload=(1, 2, 3), final=True)
        )
        assert facts == {"cseq": 4, "final": True, "vc": [1, 2, 3]}

    def test_elect_facts(self):
        assert message_facts(ELECT_KIND, Elect(epoch=5, slot=1)) == {
            "epoch": 5, "slot": 1,
        }

    def test_ping_updates(self):
        ping = Ping(seq=1, slot=0, incarnation=0, reply_to=None,
                    holding=False, updates=(
                        GossipUpdate(slot=1, status="alive", incarnation=2),
                    ))
        assert message_facts(PING_KIND, ping)["updates"] == [[1, "alive", 2]]

    def test_unknown_payload_is_factless(self):
        assert message_facts("halt", object()) == {}


class TestVcExtraction:
    def test_scalar_clock_attr(self):
        class Dep:
            clock = 7
        assert _vc_of(Dep()) == (7,)

    def test_numeric_tuple(self):
        assert _vc_of((1, 2, 3)) == (1, 2, 3)

    def test_slot_vc_pair(self):
        assert _vc_of((2, (0, 5, 1))) == (0, 5, 1)

    def test_unstampable_payloads(self):
        assert _vc_of(object()) is None
        assert _vc_of(()) is None
        assert _vc_of(("a", "b")) is None


class TestTokenConservation:
    def test_duplicate_origin_is_two_live_tokens(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, TOKEN_KIND, "mon-0", "mon-1", frame(1))
        mon.ingest(2.0, TOKEN_KIND, "mon-2", "mon-1", frame(1))
        assert families(mon) == ["token_conservation"]
        assert "two live tokens" in mon.violations[0].detail

    def test_retransmission_by_same_origin_is_clean(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, TOKEN_KIND, "mon-0", "mon-1", frame(1))
        mon.ingest(2.0, TOKEN_KIND, "mon-0", "mon-1", frame(1))
        assert mon.violations == []

    def test_hop_jump_within_epoch(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, TOKEN_KIND, "mon-0", "mon-1", frame(1))
        mon.ingest(2.0, TOKEN_KIND, "mon-1", "mon-2", frame(3))
        assert families(mon) == ["token_conservation"]
        assert "hop jumped 1 -> 3" in mon.violations[0].detail

    def test_stale_epoch_traffic_is_fencing_not_violation(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, ELECT_KIND, "mon-1", "mon-2", Elect(epoch=1, slot=1))
        mon.ingest(2.0, TOKEN_KIND, "mon-1", "mon-2", frame(5, epoch=1))
        # A deposed lineage retransmitting below the high water is the
        # epoch fencing *working*.
        mon.ingest(3.0, TOKEN_KIND, "mon-0", "mon-1", frame(9, epoch=0))
        assert mon.violations == []

    def test_gids_tracked_independently(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, TOKEN_KIND, "mon-0", "mon-1", frame(1, gid=0))
        mon.ingest(2.0, TOKEN_KIND, "mon-2", "mon-0", frame(1, gid=1))
        assert mon.violations == []

    def test_plain_token_double_deliver(self):
        mon = InvariantMonitor()

        class PlainToken:
            group = 0
            token = object()

        mon.ingest(1.0, TOKEN_KIND, "mon-0", "mon-1", PlainToken())
        mon.ingest(2.0, TOKEN_KIND, "mon-1", "mon-2", PlainToken())
        assert mon.violations == []
        # mon-0 sends again while mon-2 holds it: a duplicated token.
        mon.ingest(3.0, TOKEN_KIND, "mon-0", "mon-1", PlainToken())
        assert families(mon) == ["token_conservation"]
        assert "duplicated token" in mon.violations[0].detail


class TestEpochFencing:
    def test_unfenced_epoch_advance_is_forged(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, TOKEN_KIND, "mon-0", "mon-1", frame(1, epoch=0))
        mon.ingest(2.0, TOKEN_KIND, "mon-1", "mon-2", frame(1, epoch=3))
        assert families(mon) == ["election_safety"]
        assert "forged or flipped frame epoch" in mon.violations[0].detail

    def test_proposed_epoch_advance_is_clean(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, TOKEN_KIND, "mon-0", "mon-1", frame(1, epoch=0))
        mon.ingest(2.0, ELECT_KIND, "mon-2", "mon-1", Elect(epoch=3, slot=2))
        mon.ingest(3.0, TOKEN_KIND, "mon-2", "mon-0", frame(1, epoch=3))
        assert mon.violations == []

    def test_gossip_announcement_also_fences(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, TOKEN_KIND, "mon-0", "mon-1", frame(1, epoch=0))
        ping = Ping(seq=1, slot=2, incarnation=0, reply_to=None,
                    holding=False,
                    updates=(Announcement(kind="elect", epoch=2, slot=2),))
        mon.ingest(2.0, PING_KIND, "mon-2", "mon-0", ping)
        mon.ingest(3.0, TOKEN_KIND, "mon-2", "mon-0", frame(1, epoch=2))
        assert mon.violations == []

    def test_fence_can_be_disabled_for_windowed_replays(self):
        mon = InvariantMonitor(windowed=True)
        mon.ingest(1.0, TOKEN_KIND, "mon-0", "mon-1", frame(1, epoch=0))
        mon.ingest(2.0, TOKEN_KIND, "mon-1", "mon-2", frame(1, epoch=3))
        assert mon.violations == []


def seq_candidate(mon, t, seq, vc, final=False, src="app-0", dest="mon-0"):
    mon.ingest(t, CANDIDATE_KIND, src, dest,
               Sequenced(seq=seq, payload=tuple(vc), final=final))


class TestCandidateOrder:
    def test_in_order_stream_with_retransmits_is_clean(self):
        mon = InvariantMonitor()
        seq_candidate(mon, 1.0, 1, (1, 0))
        seq_candidate(mon, 2.0, 2, (2, 0))
        seq_candidate(mon, 3.0, 2, (2, 0))  # faithful retransmit
        seq_candidate(mon, 4.0, 3, (2, 1), final=True)
        assert mon.violations == []

    def test_gap_fires(self):
        mon = InvariantMonitor()
        seq_candidate(mon, 1.0, 1, (1, 0))
        seq_candidate(mon, 2.0, 3, (3, 0))
        assert families(mon) == ["candidate_order"]
        assert "candidate gap" in mon.violations[0].detail

    def test_send_after_final_fires(self):
        mon = InvariantMonitor()
        seq_candidate(mon, 1.0, 1, (1, 0), final=True)
        seq_candidate(mon, 2.0, 2, (2, 0))
        assert families(mon) == ["candidate_order"]
        assert "after the final" in mon.violations[0].detail

    def test_mutated_retransmit_fires(self):
        mon = InvariantMonitor()
        seq_candidate(mon, 1.0, 1, (1, 0))
        seq_candidate(mon, 2.0, 2, (2, 0))
        seq_candidate(mon, 3.0, 1, (9, 9))  # same seq, different payload
        assert families(mon) == ["candidate_order"]
        assert "reordered or mutated" in mon.violations[0].detail

    def test_streams_are_per_endpoint_pair(self):
        mon = InvariantMonitor()
        seq_candidate(mon, 1.0, 1, (1, 0), dest="mon-0")
        seq_candidate(mon, 2.0, 1, (1, 0), dest="mon-1")
        assert mon.violations == []

    def test_vc_regression_on_sequenced_stream(self):
        mon = InvariantMonitor()
        seq_candidate(mon, 1.0, 1, (2, 2))
        seq_candidate(mon, 2.0, 2, (1, 3))
        assert families(mon) == ["vc_monotonicity"]
        assert "causality violated" in mon.violations[0].detail

    def test_vc_regression_on_plain_stream(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, CANDIDATE_KIND, "app-0", "mon-0", (3, 1))
        mon.ingest(2.0, CANDIDATE_KIND, "app-0", "mon-0", (2, 5))
        assert families(mon) == ["vc_monotonicity"]


class TestElectionSafety:
    def test_epoch_regression_per_initiator(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, ELECT_KIND, "mon-1", "mon-2", Elect(epoch=4, slot=1))
        mon.ingest(2.0, ELECT_KIND, "mon-1", "mon-0", Elect(epoch=2, slot=1))
        assert families(mon) == ["election_safety"]
        assert "must never regress" in mon.violations[0].detail

    def test_independent_initiators_do_not_interfere(self):
        mon = InvariantMonitor()
        mon.ingest(1.0, ELECT_KIND, "mon-1", "mon-2", Elect(epoch=4, slot=1))
        mon.ingest(2.0, ELECT_KIND, "mon-2", "mon-0", Elect(epoch=2, slot=2))
        assert mon.violations == []


def gossip(mon, t, sender, slot, status, inc):
    ping = Ping(seq=1, slot=0, incarnation=0, reply_to=None, holding=False,
                updates=(GossipUpdate(slot=slot, status=status,
                                      incarnation=inc),))
    mon.ingest(t, PING_KIND, sender, "mon-9", ping)


class TestSwimLifecycle:
    def test_precedence_regression(self):
        mon = InvariantMonitor()
        gossip(mon, 1.0, "mon-0", 1, "suspect", 2)
        gossip(mon, 2.0, "mon-0", 1, "alive", 1)
        assert families(mon) == ["swim_lifecycle"]
        assert "precedence violated" in mon.violations[0].detail

    def test_refutation_overrides_suspicion(self):
        mon = InvariantMonitor()
        gossip(mon, 1.0, "mon-0", 1, "suspect", 1)
        gossip(mon, 2.0, "mon-0", 1, "alive", 2)  # higher incarnation wins
        assert mon.violations == []

    def test_confirm_without_suspicion(self):
        mon = InvariantMonitor(refutation_window=16.0)
        gossip(mon, 20.0, "mon-0", 1, "confirm", 0)
        assert families(mon) == ["swim_lifecycle"]
        assert "without any gossiped suspicion" in mon.violations[0].detail

    def test_early_confirm(self):
        mon = InvariantMonitor(refutation_window=16.0, probe_interval=4.0)
        gossip(mon, 1.0, "mon-0", 1, "suspect", 0)
        gossip(mon, 3.0, "mon-2", 1, "confirm", 0)
        assert families(mon) == ["swim_lifecycle"]
        assert "refutation window" in mon.violations[0].detail

    def test_patient_confirm_is_clean(self):
        mon = InvariantMonitor(refutation_window=16.0, probe_interval=4.0)
        gossip(mon, 1.0, "mon-0", 1, "suspect", 0)
        gossip(mon, 14.0, "mon-2", 1, "confirm", 0)
        assert mon.violations == []

    def test_timing_check_off_without_window(self):
        mon = InvariantMonitor(refutation_window=None)
        gossip(mon, 1.0, "mon-0", 1, "suspect", 0)
        gossip(mon, 1.5, "mon-2", 1, "confirm", 0)
        assert mon.violations == []


class TestPartitionSuppression:
    def dup_origin(self, mon, t):
        mon.ingest(t, TOKEN_KIND, "mon-0", "mon-1", frame(1))
        mon.ingest(t + 0.5, TOKEN_KIND, "mon-2", "mon-1", frame(1))

    def test_suppressed_while_partition_live(self):
        mon = InvariantMonitor()
        mon.on_partition_event(
            PartitionNotice(1.0, PartitionPhase.STARTED, ())
        )
        self.dup_origin(mon, 2.0)
        assert mon.violations == []
        assert mon.suppressed == 1

    def test_suppressed_during_post_heal_grace(self):
        mon = InvariantMonitor(partition_grace=30.0)
        mon.on_partition_event(
            PartitionNotice(1.0, PartitionPhase.STARTED, ())
        )
        mon.on_partition_event(
            PartitionNotice(5.0, PartitionPhase.HEALED, ())
        )
        self.dup_origin(mon, 20.0)  # < 5 + 30
        assert mon.violations == []
        assert mon.suppressed == 1

    def test_armed_again_after_grace(self):
        mon = InvariantMonitor(partition_grace=30.0)
        mon.on_partition_event(
            PartitionNotice(1.0, PartitionPhase.STARTED, ())
        )
        mon.on_partition_event(
            PartitionNotice(5.0, PartitionPhase.HEALED, ())
        )
        self.dup_origin(mon, 50.0)
        assert families(mon) == ["token_conservation"]

    def test_non_ambiguous_checks_stay_armed(self):
        mon = InvariantMonitor()
        mon.on_partition_event(
            PartitionNotice(1.0, PartitionPhase.STARTED, ())
        )
        seq_candidate(mon, 2.0, 1, (1, 0))
        seq_candidate(mon, 3.0, 3, (3, 0))
        assert families(mon) == ["candidate_order"]


class TestBoundsAndSummary:
    def test_violation_cap_overflows(self):
        mon = InvariantMonitor(max_violations=2)
        for t in range(4):
            seq_candidate(mon, float(t), 1, (t, 9 - t), src=f"app-{t}")
            seq_candidate(mon, float(t) + 0.5, 3, (t, 0), src=f"app-{t}")
        assert len(mon.violations) == 2
        assert mon.overflowed > 0

    def test_summary_shape(self):
        mon = InvariantMonitor()
        seq_candidate(mon, 1.0, 1, (1, 0))
        seq_candidate(mon, 2.0, 3, (3, 0))
        digest = mon.summary()
        assert digest["violations"] == 1
        assert digest["by_family"]["candidate_order"] == 1
        assert set(digest["by_family"]) == set(INVARIANT_FAMILIES)
        violation = mon.violations[0]
        assert violation.as_dict()["invariant"] == "candidate_order"
        assert "candidate_order" in violation.describe()


class TestMembershipJoin:
    """The elastic-join lifecycle family (live-join tentpole)."""

    def handshake(self, mon, at=10.0, joiner="mon-7", contact="mon-0",
                  baseline=5):
        mon.ingest(at, JOIN_KIND, joiner, contact, Join(3, joiner))
        mon.ingest(
            at + 0.5, JOIN_ACK_KIND, contact, joiner,
            JoinWelcome(members=((0, contact, 0, "alive"),), epoch=0),
        )
        mon.ingest(
            at + 0.5, STATE_SYNC_KIND, contact, joiner,
            StateSync(baselines=(("app-0", baseline),)),
        )
        mon.ingest(
            at + 0.5, FEED_JOIN_KIND, contact, "app-0",
            FeedJoin(joiner, baseline),
        )

    def test_clean_handshake_is_quiet(self):
        mon = InvariantMonitor()
        self.handshake(mon, baseline=5)
        mon.ingest(12.0, CANDIDATE_KIND, "app-0", "mon-7",
                   Sequenced(6, (1, 2, 3)))
        mon.ingest(13.0, CANDIDATE_KIND, "app-0", "mon-7",
                   Sequenced(7, (2, 2, 3)))
        assert mon.violations == []

    def test_candidate_before_ack_fires(self):
        mon = InvariantMonitor()
        mon.ingest(10.0, JOIN_KIND, "mon-7", "mon-0", Join(3, "mon-7"))
        mon.ingest(10.5, CANDIDATE_KIND, "app-0", "mon-7",
                   Sequenced(1, (1, 2, 3)))
        assert families(mon) == ["membership_join"]
        assert "before its join was acked" in mon.violations[0].detail

    def test_frame_before_ack_fires(self):
        mon = InvariantMonitor()
        mon.ingest(10.0, JOIN_KIND, "mon-7", "mon-0", Join(3, "mon-7"))
        mon.ingest(10.5, TOKEN_KIND, "mon-7", "mon-1", frame(1))
        assert families(mon) == ["membership_join"]

    def test_nonzero_join_incarnation_fires(self):
        mon = InvariantMonitor()
        mon.ingest(10.0, JOIN_KIND, "mon-7", "mon-0",
                   Join(3, "mon-7", incarnation=2))
        assert families(mon) == ["membership_join"]
        assert "starts at 0" in mon.violations[0].detail

    def test_early_confirm_after_join_fires_exactly_this_family(self):
        # Stale pre-join suspicion must not justify a quick confirm of
        # the newcomer: the swim timing check is satisfied (13 >= 12)
        # but the joiner's own window is not (4 < 12).
        mon = InvariantMonitor(refutation_window=16.0, probe_interval=4.0)
        gossip(mon, 1.0, "mon-0", 3, "suspect", 0)
        self.handshake(mon, at=10.0)
        gossip(mon, 14.0, "mon-2", 3, "confirm", 0)
        assert families(mon) == ["membership_join"]
        assert "after its welcome" in mon.violations[0].detail

    def test_patient_confirm_after_join_is_clean(self):
        mon = InvariantMonitor(refutation_window=16.0, probe_interval=4.0)
        self.handshake(mon, at=10.0)
        gossip(mon, 11.0, "mon-0", 3, "suspect", 0)
        gossip(mon, 24.0, "mon-2", 3, "confirm", 0)
        assert mon.violations == []

    def test_unsynced_mid_stream_open_is_still_a_gap(self):
        # The baseline relaxation is earned by an observed state_sync /
        # feed_join — a stream that simply opens mid-sequence without
        # one is a real candidate gap.
        mon = InvariantMonitor()
        mon.ingest(12.0, CANDIDATE_KIND, "app-0", "mon-7",
                   Sequenced(6, (1, 2, 3)))
        assert families(mon) == ["candidate_order"]

    def join_trace(self, seed=1):
        # The join lands early in a longer run (m=8, t=4) so the
        # feeder's anti-entropy suffix to the joiner is non-empty and
        # candidate traffic to it actually appears in the trace.
        plan = FaultPlan_join()
        return traced_run(
            seed=seed, m=8, faults=plan, hardened=True,
            failure_detector=FailureDetectorConfig(membership="gossip"),
        )

    def test_live_join_run_replays_clean(self):
        report, trace = self.join_trace()
        assert report.extras["joined"] == 1
        assert replay_trace(trace) == []

    def test_mutation_strip_welcome_fires_exactly_this_family(self):
        _, trace = self.join_trace()
        welcomes = [s for s in trace.spans if s.name == "join_welcome"]
        assert welcomes
        for span in welcomes:
            trace.spans.remove(span)
        violations = replay_trace(trace)
        assert violations
        assert {v.invariant for v in violations} == {"membership_join"}

    def test_mutation_flip_join_incarnation_fires(self):
        _, trace = self.join_trace()
        joins = [s for s in trace.spans if s.name == "join"]
        assert joins
        joins[0].attrs["incarnation"] = 3
        violations = replay_trace(trace)
        assert {v.invariant for v in violations} == {"membership_join"}
        assert any("starts at 0" in v.detail for v in violations)


def FaultPlan_join():
    from repro.simulation.faults import FaultPlan

    return FaultPlan.parse("drop:token:0.1,join:mon-7:4:mon-0")


def traced_run(detector="token_vc", n=3, m=4, **options):
    """A real hardened run, returning (report, finished trace)."""
    comp = spiral_computation(n, m)
    wcp = WeakConjunctivePredicate.of_flags(range(n))
    tracer = SpanTracer()
    options.setdefault("observers", []).append(tracer)
    report = run_detector(detector, comp, wcp, **options)
    return report, tracer.finish(
        report.sim.time if report.sim else None,
        detector=detector, outcome=report.outcome,
    )


class TestLiveMonitoring:
    @pytest.mark.parametrize("detector", [
        "centralized", "token_vc", "token_vc_multi",
        "direct_dep", "direct_dep_parallel",
    ])
    def test_clean_runs_have_zero_violations(self, detector):
        report = run_detector(
            detector, spiral_computation(3, 3),
            WeakConjunctivePredicate.of_flags(range(3)),
            check_invariants=True,
        )
        assert report.extras["invariant_violations"] == 0
        assert "invariant_summary" not in report.extras

    def test_offline_detector_rejected(self):
        with pytest.raises(Exception, match="check_invariants"):
            run_detector(
                "reference", spiral_computation(3, 3),
                WeakConjunctivePredicate.of_flags(range(3)),
                check_invariants=True,
            )

    def test_monitor_is_passive(self):
        comp = spiral_computation(3, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(3))
        plain = run_detector("token_vc", comp, wcp, seed=3)
        checked = run_detector("token_vc", comp, wcp, seed=3,
                               check_invariants=True)
        assert checked.outcome == plain.outcome
        assert checked.detection_time == plain.detection_time
        assert (checked.metrics.total_messages()
                == plain.metrics.total_messages())


class TestReplayParity:
    def test_clean_trace_replays_clean(self):
        _, trace = traced_run(hardened=True, seed=1)
        assert replay_trace(trace) == []

    def test_fault_markers_are_not_sends(self):
        # Drop/loss markers carry the victim's kind and endpoints; a
        # replay that mistook them for sends would see the token in
        # two hands at once and cry duplicated token.
        _, trace = traced_run(hardened=True, seed=1)
        next_id = max(s.span_id for s in trace.spans) + 1
        for i, (name, attrs) in enumerate((
            ("fault:lost", {"kind": "token", "src": "mon-0"}),
            ("fault:drop", {"kind": "token", "dest": "leader"}),
        )):
            trace.add(Span(
                trace_id=trace.trace_id,
                span_id=next_id + i,
                name=name,
                actor=f"mon-{i}",
                start=2.0 + i,
                end=2.0 + i,
                attrs=attrs,
            ))
        assert replay_trace(trace) == []

    def test_mutation_flip_frame_epoch(self):
        _, trace = traced_run(hardened=True, seed=1)
        frames = [s for s in trace.spans
                  if s.name == "token_hop" and s.attrs.get("frame")]
        assert frames
        frames[-1].attrs["epoch"] = int(frames[-1].attrs.get("epoch", 0)) + 7
        violations = replay_trace(trace)
        assert {v.invariant for v in violations} == {"election_safety"}
        assert any("forged or flipped" in v.detail for v in violations)

    def test_mutation_reorder_candidate(self):
        _, trace = traced_run(hardened=True, seed=1)
        cands = [s for s in trace.spans
                 if s.name == "candidate" and int(s.attrs.get("cseq", 0)) >= 2]
        assert cands
        victim = cands[0]
        victim.attrs["cseq"] = int(victim.attrs["cseq"]) - 1
        violations = replay_trace(trace)
        assert {v.invariant for v in violations} == {"candidate_order"}

    def test_mutation_double_deliver_token(self):
        _, trace = traced_run(hardened=True, seed=1)
        frames = [s for s in trace.spans
                  if s.name == "token_hop" and s.attrs.get("frame")]
        assert frames
        original = frames[0]
        forged = dict(original.attrs)
        forged["src"] = "mon-9"
        trace.add(Span(
            trace_id=trace.trace_id,
            span_id=max(s.span_id for s in trace.spans) + 1,
            name="token_hop",
            actor="mon-9",
            start=original.start + 0.25,
            end=original.start + 0.25,
            attrs=forged,
        ))
        violations = replay_trace(trace)
        assert {v.invariant for v in violations} == {"token_conservation"}
        assert any("two live tokens" in v.detail for v in violations)

    def test_flight_dump_relaxes_epoch_fence(self):
        rec = FlightRecorder()

        def sent(t, src, dest, payload):
            rec(MessageEvent(t, MessagePhase.SENT, Message(
                seq=int(t), src=src, dest=dest, kind=TOKEN_KIND,
                payload=payload, size_bits=8, sent_at=t,
                delivered_at=t + 1.0,
            )))

        sent(1.0, "mon-0", "mon-1", frame(1, epoch=0))
        sent(2.0, "mon-1", "mon-2", frame(1, epoch=3))  # fence evicted
        windowed = rec.to_trace()
        assert replay_trace(windowed) == []
        # An explicit monitor keeps whatever the caller configured.
        strict = InvariantMonitor()
        replay_trace(windowed, monitor=strict)
        assert families(strict) == ["election_safety"]


class TestFlightRecorder:
    def make_event(self, t, src="mon-0", dest="mon-1", kind="heartbeat"):
        return MessageEvent(t, MessagePhase.SENT, Message(
            seq=int(t), src=src, dest=dest, kind=kind, payload=None,
            size_bits=8, sent_at=t, delivered_at=t + 1.0,
        ))

    def test_ring_is_bounded_per_actor(self):
        rec = FlightRecorder(capacity=4)
        for t in range(10):
            rec(self.make_event(float(t)))
        assert len(rec) == 4
        assert rec.events_seen == 10

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_lifecycle_events_recorded(self):
        rec = FlightRecorder()
        rec(self.make_event(1.0))
        rec.on_actor_event(ActorEvent(2.0, ActorPhase.CRASHED, "mon-1"))
        trace = rec.to_trace()
        assert [s.name for s in trace.spans] == ["heartbeat", "crashed"]

    def test_dump_is_a_loadable_trace(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        for t in range(6):
            rec(self.make_event(float(t), src=f"mon-{t % 2}"))
        path = rec.dump(tmp_path / "crash.flight.jsonl",
                        detector="token_vc", outcome="degraded")
        back = load_jsonl(path)
        assert back.meta["flight_recorder"] is True
        assert back.meta["capacity"] == 8
        assert back.meta["events_seen"] == 6
        assert back.meta["outcome"] == "degraded"
        assert len(back) == 6
        starts = [s.start for s in back.spans]
        assert starts == sorted(starts)

    def test_real_run_flight_dump_replays_clean(self, tmp_path):
        rec = FlightRecorder(capacity=32)
        run_detector(
            "token_vc", spiral_computation(3, 4),
            WeakConjunctivePredicate.of_flags(range(3)),
            hardened=True, seed=2, observers=[rec],
        )
        path = rec.dump(tmp_path / "run.flight.jsonl")
        assert replay_trace(load_jsonl(path)) == []
