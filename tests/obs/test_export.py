"""Tests for the JSONL trace wire format."""

import json

import pytest

from repro.common import ObservabilityError
from repro.obs import (
    Span,
    Trace,
    dump_jsonl,
    dumps_jsonl,
    iter_spans,
    load_jsonl,
    loads_jsonl,
)


def small_trace():
    t = Trace("abc123", meta={"detector": "token_vc", "outcome": "detected"})
    t.add(Span("abc123", 1, "run", "kernel", 0.0, end=5.0))
    t.add(Span("abc123", 2, "token_hop", "mon-0", 1.0, end=2.0,
               parent_id=1, attrs={"dest": "mon-1", "reds": [0, 1]}))
    return t


class TestDumps:
    def test_header_then_spans(self):
        lines = dumps_jsonl(small_trace()).strip().splitlines()
        assert len(lines) == 3
        header = json.loads(lines[0])
        assert header["type"] == "run"
        assert header["trace_id"] == "abc123"
        assert header["detector"] == "token_vc"
        for line in lines[1:]:
            record = json.loads(line)
            assert record["type"] == "span"
            assert record["trace_id"] == "abc123"
            assert isinstance(record["span_id"], int)
            assert isinstance(record["start"], float)

    def test_non_json_values_coerced(self):
        t = Trace("t1", meta={"pids": (0, 1), "tags": {"x"}})
        t.add(Span("t1", 1, "run", "kernel", 0.0, attrs={"G": (3, 4)}))
        back = loads_jsonl(dumps_jsonl(t))
        assert back.meta["pids"] == [0, 1]
        assert back.meta["tags"] == ["x"]
        assert back.spans[0].attrs["G"] == [3, 4]


class TestLoads:
    def test_roundtrip(self):
        t = small_trace()
        back = loads_jsonl(dumps_jsonl(t))
        assert back.trace_id == t.trace_id
        assert back.meta["outcome"] == "detected"
        assert [s.as_dict() for s in back.spans] == \
               [s.as_dict() for s in t.spans]

    def test_headerless_input_tolerated(self):
        lines = dumps_jsonl(small_trace()).strip().splitlines()[1:]
        back = loads_jsonl("\n".join(lines))
        assert back.trace_id == "abc123"
        assert len(back) == 2

    def test_unknown_record_types_skipped(self):
        text = dumps_jsonl(small_trace()) + \
            '{"type": "profiler", "sections": {}}\n'
        assert len(loads_jsonl(text)) == 2

    def test_bad_json_raises_with_lineno(self):
        # A bad line that is *not* the final one can't be crash
        # truncation, so it still raises with its line number.
        good = dumps_jsonl(small_trace()).strip().splitlines()[0]
        with pytest.raises(ObservabilityError, match="line 1"):
            loads_jsonl("this is not json\n" + good)

    def test_non_object_line_rejected(self):
        with pytest.raises(ObservabilityError, match="expected an object"):
            loads_jsonl("[1, 2, 3]")

    def test_empty_input_rejected(self):
        with pytest.raises(ObservabilityError, match="empty trace"):
            loads_jsonl("\n\n")

    def test_validate_flag(self):
        t = Trace("t1", [Span("t1", 1, "x", "a", 0.0, parent_id=99)])
        text = dumps_jsonl(t)
        with pytest.raises(ObservabilityError, match="unknown parent"):
            loads_jsonl(text)
        assert len(loads_jsonl(text, validate=False)) == 1


class TestCrashTruncation:
    """A crash mid-write tears the final line; loading must survive it."""

    def test_torn_final_line_sets_truncated_flag(self):
        text = dumps_jsonl(small_trace())
        torn = text.rstrip("\n")[:-15]  # cut mid way through the last span
        back = loads_jsonl(torn)
        assert back.meta["truncated"] is True
        assert len(back) == 1
        assert back.spans[0].name == "run"

    def test_intact_trace_has_no_truncated_flag(self):
        back = loads_jsonl(dumps_jsonl(small_trace()))
        assert "truncated" not in back.meta

    def test_mid_file_garbage_still_raises(self):
        lines = dumps_jsonl(small_trace()).strip().splitlines()
        lines.insert(1, '{"type": "span", "torn...')
        with pytest.raises(ObservabilityError, match="line 2"):
            loads_jsonl("\n".join(lines))

    def test_only_a_torn_line_is_still_empty(self):
        with pytest.raises(ObservabilityError, match="empty trace"):
            loads_jsonl('{"type": "run", "trace_id"')

    def test_torn_file_on_disk(self, tmp_path):
        path = dump_jsonl(small_trace(), tmp_path / "crash.jsonl")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 20])
        back = load_jsonl(path)
        assert back.meta["truncated"] is True
        assert len(back) == 1

    def test_duplicate_span_rejected(self):
        lines = dumps_jsonl(small_trace()).strip().splitlines()
        lines.append(lines[-1])  # replay the final span record verbatim
        with pytest.raises(ObservabilityError, match="duplicate span_id"):
            loads_jsonl("\n".join(lines))


class TestFiles:
    def test_dump_and_load(self, tmp_path):
        path = dump_jsonl(small_trace(), tmp_path / "run.jsonl")
        assert path.exists()
        assert len(load_jsonl(path)) == 2

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no such trace"):
            load_jsonl(tmp_path / "nope.jsonl")

    def test_iter_spans_streams(self, tmp_path):
        path = dump_jsonl(small_trace(), tmp_path / "run.jsonl")
        names = [s.name for s in iter_spans(path)]
        assert names == ["run", "token_hop"]
