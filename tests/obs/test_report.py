"""Tests for the ASCII run-report renderer."""

from repro.detect import run_detector
from repro.detect.stack import FailureDetectorConfig
from repro.obs import SpanTracer, render_report, render_timeline
from repro.predicates import WeakConjunctivePredicate
from repro.simulation.faults import (
    CrashEvent,
    FaultPlan,
    FaultRule,
    PartitionEvent,
)
from repro.trace import spiral_computation


def traced(detector="token_vc", n=4, m=3, **options):
    comp = spiral_computation(n, m)
    wcp = WeakConjunctivePredicate.of_flags(range(n))
    tracer = SpanTracer()
    options.setdefault("observers", []).append(tracer)
    report = run_detector(detector, comp, wcp, **options)
    meta = {"detector": detector, "outcome": report.outcome,
            "metrics": report.metrics.snapshot() if report.metrics else None}
    if report.sim is not None and report.sim.faults is not None:
        meta["faults"] = report.sim.faults.as_dict()
    return tracer.finish(report.sim.time if report.sim else None, **meta)


class TestTimeline:
    def test_one_lane_per_actor_with_token_marks(self):
        trace = traced()
        text = render_timeline(trace, width=60)
        lines = text.splitlines()
        # Header + one lane per actor + legend.
        actors = {s.actor for s in trace.spans if s.actor != "kernel"}
        assert len(lines) == len(actors) + 2
        assert lines[-1].startswith("legend:")
        mon_lines = [ln for ln in lines if ln.startswith("mon-")]
        assert mon_lines[0].split()[0] == "mon-0"  # numeric lane order
        assert any("T" in ln for ln in mon_lines)  # token arrivals
        assert any("=" in ln for ln in mon_lines)  # elimination rounds
        assert any("c" in ln for ln in lines if ln.startswith("app-"))

    def test_width_respected(self):
        trace = traced()
        for width in (40, 100):
            lanes = [
                ln for ln in render_timeline(trace, width).splitlines()
                if ln.startswith(("mon-", "app-"))
            ]
            name_w = max(len(s.actor) for s in trace.spans
                         if s.actor != "kernel")
            assert all(len(ln) == name_w + 2 + width for ln in lanes)

    def test_crash_epoch_marks(self):
        plan = FaultPlan(crashes=(CrashEvent("mon-1", at=6.0,
                                             restart_at=12.0),))
        trace = traced(n=4, m=4, faults=plan, hardened=True)
        mon1 = next(
            ln for ln in render_timeline(trace).splitlines()
            if ln.startswith("mon-1")
        )
        assert "X" in mon1 and "R" in mon1

    def test_drop_marks_overlaid(self):
        plan = FaultPlan(rules=(FaultRule(kind="token", drop=0.3),))
        trace = traced(n=4, m=4, seed=5, faults=plan, hardened=True)
        assert "!" in render_timeline(trace)

    def test_partition_paints_net_lane(self):
        plan = FaultPlan(partitions=(PartitionEvent(
            at=4.0, groups=(frozenset({"mon-0", "app-0"}),), heal_at=9.0,
        ),))
        trace = traced(n=3, m=4, faults=plan, hardened=True)
        net = next(
            ln for ln in render_timeline(trace).splitlines()
            if ln.startswith("net")
        )
        assert "#" in net

    def test_election_marks_on_initiator_lane(self):
        # Isolate mon-0 (the first token holder) forever: the survivors'
        # failure detector must elect a takeover once grace expires.
        plan = FaultPlan(partitions=(PartitionEvent(
            at=0.5, groups=(frozenset({"mon-0"}),), heal_at=None,
        ),))
        trace = traced(n=3, m=4, faults=plan, hardened=True,
                       failure_detector=FailureDetectorConfig())
        timeline = render_timeline(trace)
        elect_lanes = [
            ln.split()[0] for ln in timeline.splitlines()
            if ln.startswith("mon-") and "E" in ln
        ]
        assert elect_lanes  # at least one monitor proposed a takeover
        assert "mon-0" not in elect_lanes  # the isolated holder cannot


class TestReport:
    def test_sections_present(self):
        report = render_report(traced())
        assert "--- timeline ---" in report
        assert "--- token itinerary ---" in report
        assert "--- work/space breakdown (paper units) ---" in report
        assert "initial injection" in report
        assert "totals: messages=" in report
        assert "--- critical path ---" in report
        assert "token_visit" in report

    def test_meta_header(self):
        report = render_report(traced())
        assert "detector=token_vc" in report
        assert "outcome=detected" in report

    def test_fault_overlay_section(self):
        plan = FaultPlan(crashes=(CrashEvent("mon-1", at=6.0,
                                             restart_at=12.0),))
        report = render_report(traced(n=4, m=4, faults=plan, hardened=True))
        assert "--- fault overlay ---" in report
        assert "crash    mon-1 (restarted t=12)" in report
        assert "crashes=1" in report

    def test_no_fault_section_on_clean_run(self):
        assert "--- fault overlay ---" not in render_report(traced())

    def test_partition_lines_in_fault_overlay(self):
        healed = FaultPlan(partitions=(PartitionEvent(
            at=4.0, groups=(frozenset({"mon-0", "app-0"}),), heal_at=9.0,
        ),))
        report = render_report(traced(n=3, m=4, faults=healed, hardened=True))
        assert "partition app-0 + mon-0 (healed t=9)" in report
        forever = FaultPlan(partitions=(PartitionEvent(
            at=4.0, groups=(frozenset({"mon-2"}),), heal_at=None,
        ),))
        report = render_report(traced(n=3, m=4, faults=forever, hardened=True))
        assert "partition mon-2 (never healed)" in report

    def test_gossip_probe_marks_and_section(self):
        plan = FaultPlan(crashes=(CrashEvent("mon-1", at=6.0,
                                             restart_at=60.0),))
        trace = traced(n=3, m=4, faults=plan, hardened=True,
                       failure_detector=FailureDetectorConfig(
                           membership="gossip"))
        timeline = render_timeline(trace)
        mon_lanes = [ln for ln in timeline.splitlines()
                     if ln.startswith("mon-")]
        assert any("p" in ln for ln in mon_lanes)  # ping sends
        report = render_report(trace)
        assert "--- gossip / liveness ---" in report
        assert "probes: ping=" in report
        assert "liveness bytes:" in report
        assert "ping_ack=" in report  # by-kind breakdown

    def test_suspect_and_confirm_marks_on_subject_lane(self):
        # A long crash: the survivors must suspect, then confirm, mon-1.
        plan = FaultPlan(crashes=(CrashEvent("mon-1", at=6.0,
                                             restart_at=60.0),))
        trace = traced(n=3, m=4, faults=plan, hardened=True,
                       failure_detector=FailureDetectorConfig(
                           membership="gossip"))
        mon1 = next(ln for ln in render_timeline(trace).splitlines()
                    if ln.startswith("mon-1"))
        assert "s" in mon1  # suspected, visible over the crash band
        assert "C" in mon1  # confirmed failed
        report = render_report(trace)
        assert "suspect  mon-1" in report
        assert "confirm  mon-1" in report

    def test_no_gossip_section_without_liveness_traffic(self):
        assert "--- gossip / liveness ---" not in render_report(traced())

    def test_join_marks_and_handshake_section(self):
        # A live join early in a longer run: the joiner's lane gets a J,
        # and the gossip section itemises the handshake and the event.
        plan = FaultPlan.parse("join:mon-9:4:mon-0")
        trace = traced(n=3, m=8, faults=plan, hardened=True,
                       failure_detector=FailureDetectorConfig(
                           membership="gossip"))
        joiner = next(ln for ln in render_timeline(trace).splitlines()
                      if ln.startswith("mon-9"))
        assert "J" in joiner
        report = render_report(trace)
        assert "join handshake: join=1 join_welcome=1" in report
        assert "joined   mon-9" in report
        assert "join=" in report.split("liveness bytes:")[1]

    def test_leave_marks_on_departing_lane(self):
        plan = FaultPlan.parse("join:mon-9:4:mon-0,leave:mon-9:30")
        trace = traced(n=3, m=8, faults=plan, hardened=True,
                       failure_detector=FailureDetectorConfig(
                           membership="gossip"))
        joiner = next(ln for ln in render_timeline(trace).splitlines()
                      if ln.startswith("mon-9"))
        assert "J" in joiner and "L" in joiner
        assert "left     mon-9" in render_report(trace)

    def test_heartbeat_mode_shows_liveness_bytes_only(self):
        plan = FaultPlan(crashes=(CrashEvent("mon-1", at=6.0,
                                             restart_at=12.0),))
        report = render_report(traced(
            n=3, m=4, faults=plan, hardened=True,
            failure_detector=FailureDetectorConfig(),
        ))
        assert "liveness bytes:" in report
        assert "probes:" not in report

    def test_metrics_free_trace_degrades_gracefully(self):
        tracer = SpanTracer()
        run_detector(
            "token_vc", spiral_computation(3, 3),
            WeakConjunctivePredicate.of_flags(range(3)),
            observers=[tracer],
        )
        report = render_report(tracer.finish())
        assert "(no metrics snapshot in the trace header)" in report
