"""Tests for wall-clock hot-path profiling."""

from repro.obs import HotPathProfiler, profiled
from repro.simulation import Actor, Kernel


class Ping(Actor):
    def __init__(self, name, peer, rounds):
        super().__init__(name)
        self.peer = peer
        self.rounds = rounds

    def run(self):
        for _ in range(self.rounds):
            yield self.send(self.peer, None, kind="ping")
            yield self.receive("ping")


class TestHotPathProfiler:
    def test_start_stop_accumulates(self):
        prof = HotPathProfiler()
        for _ in range(3):
            prof.stop("x", prof.start())
        assert prof.calls("x") == 3
        assert prof.seconds("x") >= 0.0
        assert prof.calls("missing") == 0
        assert prof.seconds("missing") == 0.0

    def test_section_context_manager(self):
        prof = HotPathProfiler()
        with prof.section("phase"):
            pass
        assert prof.calls("phase") == 1

    def test_snapshot_sorted_by_time(self):
        prof = HotPathProfiler()
        prof._sections["slow"] = [1, 2.0]
        prof._sections["fast"] = [10, 0.5]
        snap = prof.snapshot()
        assert list(snap) == ["slow", "fast"]
        assert snap["slow"] == {
            "calls": 1, "seconds": 2.0, "mean_us": 2_000_000.0
        }

    def test_render_and_clear(self):
        prof = HotPathProfiler()
        assert prof.render() == "(no profiled sections)"
        prof.stop("a", prof.start())
        assert "a" in prof.render()
        prof.clear()
        assert prof.snapshot() == {}

    def test_profiled_decorator(self):
        prof = HotPathProfiler()

        @profiled(prof, "f")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert prof.calls("f") == 1

    def test_decorator_charges_on_exception(self):
        prof = HotPathProfiler()

        @profiled(prof, "boom")
        def boom():
            raise ValueError

        try:
            boom()
        except ValueError:
            pass
        assert prof.calls("boom") == 1


class TestKernelProfiling:
    def run_pair(self, profiler):
        kernel = Kernel(profiler=profiler)
        kernel.add_actor(Ping("a", "b", 3))
        kernel.add_actor(Ping("b", "a", 3))
        kernel.run()
        return kernel

    def test_kernel_sections_recorded(self):
        prof = HotPathProfiler()
        self.run_pair(prof)
        snap = prof.snapshot()
        assert any(name.startswith("kernel.") for name in snap)
        assert prof.calls("kernel.schedule") > 0

    def test_profiler_off_by_default(self):
        kernel = self.run_pair(None)
        assert kernel._profiler is None

    def test_profiling_does_not_change_simulation(self):
        times = []
        for profiler in (None, HotPathProfiler()):
            kernel = self.run_pair(profiler)
            times.append((kernel.time, kernel.metrics.total_messages()))
        assert times[0] == times[1]
