"""Tests for the structured benchmark-result schema."""

import json

from repro.analysis import ExperimentResult
from repro.obs import BENCH_SCHEMA, structured_result, write_benchmark_json


class FakeFit:
    n_exponent = 1.97
    m_exponent = 1.02
    r_squared = 0.999

    def __str__(self):
        return "~ n^1.97 m^1.02 (R^2=0.999)"


def result():
    return ExperimentResult(
        "E1 token complexity",
        ["n", "m", "mon_msgs", "mon_bits", "total_work", "max_space_bits"],
        [
            [4, 8, 10, 100, 50, 64],
            [8, 8, 20, 400, 200, 128],
        ],
        fits={"total_work": FakeFit()},
        notes=["seeded"],
    )


class TestStructuredResult:
    def test_schema_fields(self):
        data = structured_result(
            result(), params={"ns": (4, 8)}, wall_time_s=1.5
        )
        assert data["schema"] == BENCH_SCHEMA
        assert data["experiment"] == "E1 token complexity"
        assert data["params"] == {"ns": (4, 8)}
        assert data["wall_time_s"] == 1.5
        assert data["rows"][0] == [4, 8, 10, 100, 50, 64]
        assert data["notes"] == ["seeded"]

    def test_summary_totals_in_paper_units(self):
        summary = structured_result(result())["summary"]
        assert summary["messages"] == 30      # summed
        assert summary["bits"] == 500         # summed
        assert summary["work"] == 250         # summed
        assert summary["space"] == 128        # high-water: max, not sum

    def test_summary_skips_absent_columns(self):
        r = ExperimentResult("x", ["n", "ratio"], [[1, 0.5]])
        assert structured_result(r)["summary"] == {}

    def test_fit_numeric_attrs_extracted(self):
        fits = structured_result(result())["fits"]
        assert fits["total_work"]["n_exponent"] == 1.97
        assert fits["total_work"]["r_squared"] == 0.999
        assert "text" in fits["total_work"]

    def test_params_default_empty(self):
        data = structured_result(result())
        assert data["params"] == {}
        assert data["wall_time_s"] is None


class TestWriteBenchmarkJson:
    def test_writes_valid_json(self, tmp_path):
        path = write_benchmark_json(
            result(), tmp_path / "e1.json",
            params={"ns": (4, 8)}, wall_time_s=0.25,
        )
        data = json.loads(path.read_text())
        assert data["schema"] == BENCH_SCHEMA
        # Tuples must serialize to lists, not str().
        assert data["params"]["ns"] == [4, 8]
        assert data["wall_time_s"] == 0.25
