"""Unit tests for the span model and the in-memory query API."""

import pytest

from repro.common import ObservabilityError
from repro.obs import Span, Trace


def make_span(span_id, name="work", actor="mon-0", start=0.0, end=None,
              parent_id=None, **attrs):
    return Span(
        trace_id="t1", span_id=span_id, name=name, actor=actor,
        start=start, end=end, parent_id=parent_id, attrs=attrs,
    )


class TestSpan:
    def test_close_is_idempotent(self):
        s = make_span(1, start=1.0)
        assert s.is_open
        s.close(5.0)
        s.close(99.0)  # no-op
        assert s.end == 5.0
        assert s.duration == 4.0

    def test_close_before_start_rejected(self):
        s = make_span(1, start=10.0)
        with pytest.raises(ObservabilityError, match="before its start"):
            s.close(3.0)

    def test_dict_roundtrip(self):
        s = make_span(3, start=1.5, end=2.5, parent_id=1, kind="token")
        back = Span.from_dict(s.as_dict())
        assert back == s

    def test_from_dict_malformed(self):
        with pytest.raises(ObservabilityError, match="malformed span"):
            Span.from_dict({"span_id": 1})


class TestTraceQueries:
    def test_requires_trace_id(self):
        with pytest.raises(ObservabilityError):
            Trace("")

    def test_by_name_and_by_actor(self):
        t = Trace("t1")
        t.add(make_span(1, name="run", actor="kernel"))
        t.add(make_span(2, name="token_hop", actor="mon-0"))
        t.add(make_span(3, name="token_hop", actor="mon-1"))
        assert [s.span_id for s in t.by_name("token_hop")] == [2, 3]
        lanes = t.spans_by_actor()
        assert set(lanes) == {"kernel", "mon-0", "mon-1"}
        assert len(t) == 3

    def test_span_lookup(self):
        t = Trace("t1", [make_span(7)])
        assert t.span(7).span_id == 7
        with pytest.raises(ObservabilityError, match="no span 9"):
            t.span(9)

    def test_bounds(self):
        t = Trace("t1")
        assert t.bounds() == (0.0, 0.0)
        t.add(make_span(1, start=1.0, end=4.0))
        t.add(make_span(2, start=2.0))  # open span counts its start
        assert t.bounds() == (1.0, 4.0)

    def test_critical_path_follows_deepest_chain(self):
        t = Trace("t1")
        t.add(make_span(1, name="run", start=0.0, end=10.0))
        t.add(make_span(2, name="a", start=0.0, end=2.0, parent_id=1))
        t.add(make_span(3, name="b", start=2.0, end=4.0, parent_id=2))
        # A later-ending but shallow span must not win over the deep chain.
        t.add(make_span(4, name="straggler", start=0.0, end=9.0, parent_id=1))
        assert [s.span_id for s in t.critical_path()] == [1, 2, 3]

    def test_critical_path_empty_trace(self):
        assert Trace("t1").critical_path() == []

    def test_token_itinerary(self):
        t = Trace("t1")
        t.add(make_span(1, name="token_hop", actor="inj", start=0.0, end=1.0,
                        dest="mon-0", injected=True))
        t.add(make_span(2, name="token_hop", actor="mon-0", start=2.0,
                        end=3.0, dest="mon-1", reds=[1, 2]))
        t.add(make_span(3, name="token_hop", actor="mon-1", start=4.0,
                        end=None, dest="mon-2", terminal="lost"))
        hops = t.token_itinerary()
        assert [h.dest for h in hops] == ["mon-0", "mon-1", "mon-2"]
        assert "injection" in hops[0].why
        assert "slots [1, 2] still red" == hops[1].why
        assert hops[2].arrived_at is None
        assert "lost" in hops[2].describe()


class TestTraceValidation:
    def test_valid_trace_passes(self):
        t = Trace("t1")
        t.add(make_span(1))
        t.add(make_span(2, parent_id=1))
        t.validate()

    def test_wrong_trace_id(self):
        t = Trace("t1")
        t.add(Span(trace_id="other", span_id=1, name="x", actor="a",
                   start=0.0))
        with pytest.raises(ObservabilityError, match="trace_id"):
            t.validate()

    def test_duplicate_span_id(self):
        t = Trace("t1", [make_span(1), make_span(1)])
        with pytest.raises(ObservabilityError, match="duplicate span_id"):
            t.validate()

    def test_unknown_parent(self):
        t = Trace("t1", [make_span(1, parent_id=42)])
        with pytest.raises(ObservabilityError, match="unknown parent"):
            t.validate()

    def test_cyclic_parents(self):
        t = Trace("t1", [make_span(1, parent_id=2), make_span(2, parent_id=1)])
        with pytest.raises(ObservabilityError, match="cyclic"):
            t.validate()
