"""Integration: multi-predicate service exactness vs independent runs.

The acceptance invariant for the detection service (ISSUE 10): every
predicate registered with :func:`repro.detect.run_service` reports
exactly the verdict and first cut of an independent single-predicate
:func:`repro.detect.run_detector` run over the same computation, seed
and fault plan — for the transport-multiplexed ``token_vc`` path and
the amortized families alike, under message loss, crashes, partitions
that heal, and membership churn.  Detection *time* is explicitly not
compared: Theorem 3.2 makes the first cut schedule-independent, the
latency is not.

Fault plans that name actors (crashes, churn, partition groups that
must bite in every run) only name ``mon-0``/``app-0``, and every
overlapping predicate set contains pid 0, so the named actors exist in
each independent reference run too.  Disjoint sets use loss and
partitions only — partition groups naming absent actors are harmless
no-ops, never configuration errors.

50 seeded workloads total, split across P in {2, 16, 64}.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.detect import run_detector, run_service
from repro.detect.service import PredicateRegistry, SharedCausalityDispatcher
from repro.predicates import WeakConjunctivePredicate
from repro.simulation.faults import FaultPlan
from repro.trace import random_computation

HARDENED = ("token_vc", "token_vc_multi", "direct_dep", "direct_dep_parallel")

LOSS_CRASH = FaultPlan.parse("drop:token:0.2,crash:mon-0:4:9")
PARTITION_HEAL = FaultPlan.parse(
    "drop:token:0.15,partition:4:20:mon-0+app-0|mon-1"
)
CHURN = FaultPlan.parse("churn:mon-0:5:12:6:2")
LOSS_ONLY = FaultPlan.parse("drop:token:0.2")


def _overlapping_sets(count, num_processes, width):
    """``count`` pid sets of ``width``, every one containing pid 0."""
    rest = num_processes - 1
    return [
        tuple(sorted({0} | {1 + (k + j) % rest for j in range(width - 1)}))
        for k in range(count)
    ]


def _entries(pid_sets):
    return [
        (f"q{k}", WeakConjunctivePredicate.of_flags(pids))
        for k, pids in enumerate(pid_sets)
    ]


def _assert_matches_reference(detector, comp, entries, seed, faults):
    """Each predicate's service outcome equals its independent run.

    References are cached by pid set: predicates with identical pid
    sets (distinct ids) necessarily share one reference.
    """
    report = run_service(detector, comp, entries, seed=seed, faults=faults)
    cache = {}
    for pred_id, wcp in entries:
        if wcp.pids not in cache:
            cache[wcp.pids] = run_detector(
                detector, comp, wcp, seed=seed, faults=faults
            )
        ref = cache[wcp.pids]
        out = report.outcomes[pred_id]
        assert out.outcome == ref.outcome, (
            f"{detector} {pred_id}: service says {out.outcome}, "
            f"independent run says {ref.outcome}"
        )
        assert out.cut == ref.cut, (
            f"{detector} {pred_id}: service cut {out.cut} != "
            f"reference cut {ref.cut}"
        )


class TestLossCrashExactness:
    """P=2 overlapping sets, all four hardened detectors (15 seeds)."""

    @pytest.mark.parametrize("seed", range(15))
    def test_p2_overlapping(self, seed):
        detector = HARDENED[seed % len(HARDENED)]
        comp = random_computation(
            4, 4, seed=seed, predicate_density=0.3,
            plant_final_cut=(seed % 2 == 0),
        )
        entries = _entries([(0, 1, 2), (0, 2, 3)])
        _assert_matches_reference(detector, comp, entries, seed, LOSS_CRASH)


class TestPartitionHealExactness:
    """P=2 disjoint sets, multiplexed token_vc (10 seeds)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_p2_disjoint(self, seed):
        comp = random_computation(
            4, 4, seed=100 + seed, predicate_density=0.3,
            plant_final_cut=(seed % 2 == 0),
        )
        entries = _entries([(0, 1), (2, 3)])
        _assert_matches_reference(
            "token_vc", comp, entries, seed, PARTITION_HEAL
        )


class TestChurnExactness:
    """P=16 overlapping sets under churn, multiplexed token_vc (10 seeds)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_p16_churn(self, seed):
        comp = random_computation(
            5, 4, seed=200 + seed, predicate_density=0.4,
            plant_final_cut=(seed % 2 == 0),
        )
        entries = _entries(_overlapping_sets(16, 5, 3))
        _assert_matches_reference("token_vc", comp, entries, seed, CHURN)


class TestAmortizedExactness:
    """P=16 overlapping sets on the amortized families (10 seeds)."""

    AMORTIZED = ("token_vc_multi", "direct_dep", "direct_dep_parallel")

    @pytest.mark.parametrize("seed", range(10))
    def test_p16_loss_crash(self, seed):
        detector = self.AMORTIZED[seed % len(self.AMORTIZED)]
        comp = random_computation(
            4, 4, seed=300 + seed, predicate_density=0.4,
            plant_final_cut=(seed % 2 == 0),
        )
        entries = _entries(_overlapping_sets(16, 4, 3))
        _assert_matches_reference(detector, comp, entries, seed, LOSS_CRASH)


class TestWideServiceExactness:
    """P=64 multiplexed under token loss (5 seeds)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_p64_loss(self, seed):
        comp = random_computation(
            4, 3, seed=400 + seed, predicate_density=0.4,
            plant_final_cut=(seed % 2 == 0),
        )
        entries = _entries(_overlapping_sets(64, 4, 2))
        _assert_matches_reference("token_vc", comp, entries, seed, LOSS_ONLY)


class TestRegistry:
    """Unit semantics of the predicate registry."""

    def _wcp(self, *pids):
        return WeakConjunctivePredicate.of_flags(pids)

    def test_duplicate_ids_rejected(self):
        registry = PredicateRegistry()
        registry.register("q0", self._wcp(0, 1))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("q0", self._wcp(0, 1))

    def test_empty_registry_rejected(self):
        comp = random_computation(3, 2, seed=0)
        with pytest.raises(ConfigurationError, match="empty"):
            run_service("token_vc", comp, PredicateRegistry())

    def test_empty_id_rejected(self):
        registry = PredicateRegistry()
        with pytest.raises(ConfigurationError, match="non-empty"):
            registry.register("", self._wcp(0))

    def test_deregister_returns_and_forgets(self):
        registry = PredicateRegistry()
        wcp = self._wcp(0, 1)
        registry.register("q0", wcp)
        registry.register("q1", self._wcp(1, 2))
        assert registry.deregister("q0") is wcp
        assert "q0" not in registry and len(registry) == 1
        with pytest.raises(ConfigurationError, match="no predicate"):
            registry.deregister("q0")
        # The freed id is reusable.
        registry.register("q0", wcp)
        assert registry.ids() == ("q1", "q0")

    def test_deregister_mid_run_does_not_affect_snapshot(self):
        """A launched dispatcher runs the registry as it was at launch;
        the mutation only shapes the *next* run."""
        comp = random_computation(3, 3, seed=1, plant_final_cut=True)
        registry = PredicateRegistry()
        registry.register("q0", self._wcp(0, 1))
        registry.register("q1", self._wcp(1, 2))
        dispatcher = SharedCausalityDispatcher(registry, comp)
        registry.deregister("q1")
        report = dispatcher.run()
        assert set(report.outcomes) == {"q0", "q1"}
        second = run_service("token_vc", comp, registry)
        assert set(second.outcomes) == {"q0"}
