"""Integration: streaming invariant monitors never cry wolf.

The monitors in :mod:`repro.obs.invariants` watch every sent message on
the simulated network and flag protocol violations — duplicated tokens,
unfenced epoch flips, reordered candidates, illegal SWIM transitions.
A *correct* hardened run must therefore produce zero violations no
matter how hostile the fault schedule is: loss + crash, partition +
heal, and rolling monitor churn are all conditions the protocol is
designed to survive, so anything the monitor reports on those runs
would be a false positive.

These suites mirror tests/integration/test_gossip_membership.py: the
same 50 seeded workloads and the same three fault plans, but with
``check_invariants=True`` and the assertion flipped from "agrees with
the reference" to "the monitor stayed silent".
"""

import pytest

from repro.detect import run_detector
from repro.detect.stack import FailureDetectorConfig
from repro.predicates import WeakConjunctivePredicate
from repro.simulation.faults import (
    ChurnEvent,
    CrashEvent,
    FaultPlan,
    FaultRule,
    PartitionEvent,
)
from repro.trace import random_computation

HARDENED = ("token_vc", "token_vc_multi", "direct_dep", "direct_dep_parallel")

GOSSIP = FailureDetectorConfig(membership="gossip")

LOSSY = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.2),),
    crashes=(CrashEvent("mon-1", 4.0, 9.0),),
)

PARTITIONED = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.15),),
    crashes=(CrashEvent("mon-1", 6.0, 60.0),),
    partitions=(
        PartitionEvent(10.0, (frozenset({"mon-0", "app-0"}),), 25.0),
    ),
)

CHURN = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.1),),
    churns=(ChurnEvent(("mon-1", "mon-2"), 4.0, 10.0, 5.0, rounds=2),),
)


def _case(seed):
    comp = random_computation(
        3, 4, seed=seed, predicate_density=0.3,
        plant_final_cut=(seed % 2 == 0),
    )
    return comp, WeakConjunctivePredicate.of_flags(range(3))


def _assert_silent(name, comp, wcp, seed, plan, **extra):
    rep = run_detector(
        name, comp, wcp, seed=seed, faults=plan,
        hardened=True, check_invariants=True, **extra,
    )
    violations = rep.extras["invariant_violations"]
    detail = rep.extras.get("invariant_violation_details", [])
    assert violations == 0, (
        f"{name} seed={seed}: {violations} false positive(s): {detail}"
    )
    return rep


class TestLossAndCrashSilence:
    """50 seeded workloads x 4 hardened detectors: loss + crash runs
    are correct, so the monitors must report nothing."""

    @pytest.mark.parametrize("seed", range(50))
    def test_no_false_positives(self, seed):
        comp, wcp = _case(seed)
        for name in HARDENED:
            _assert_silent(name, comp, wcp, seed, LOSSY)


class TestPartitionHealSilence:
    """Partition + long crash + loss: retransmissions, takeover
    elections and post-heal catch-up are all protocol-legal, and the
    monitor's partition grace window must absorb the hop churn."""

    @pytest.mark.parametrize("seed", range(50))
    def test_no_false_positives(self, seed):
        comp, wcp = _case(seed)
        for name in HARDENED:
            _assert_silent(
                name, comp, wcp, seed, PARTITIONED,
                failure_detector=FailureDetectorConfig(),
            )

    def test_elections_happen_yet_stay_fenced(self):
        """The epoch-fencing invariant is exercised for real: seeds
        where takeovers fire still produce zero violations because
        every frame-epoch advance was announced by an election."""
        takeovers = 0
        for seed in range(10):
            comp, wcp = _case(seed)
            rep = _assert_silent(
                "token_vc", comp, wcp, seed, PARTITIONED,
                failure_detector=FailureDetectorConfig(),
            )
            takeovers += rep.extras["takeovers"]
        assert takeovers > 0


class TestChurnSilence:
    """Rolling monitor churn under gossip membership: suspicion,
    confirmation and incarnation-numbered rejoin are all legal SWIM
    transitions, so the lifecycle monitor must stay silent."""

    @pytest.mark.parametrize("seed", range(50))
    def test_no_false_positives(self, seed):
        comp, wcp = _case(seed)
        for name in HARDENED:
            _assert_silent(
                name, comp, wcp, seed, CHURN, failure_detector=GOSSIP,
            )

    def test_gossip_traffic_is_actually_monitored(self):
        """Guard against vacuous silence: the churn runs really do
        carry SWIM probe traffic through the monitored network."""
        comp, wcp = _case(2)
        rep = _assert_silent(
            "token_vc", comp, wcp, 2, CHURN, failure_detector=GOSSIP,
        )
        assert rep.metrics.messages_of_kind("ping") > 0
        assert rep.sim.faults.crashes >= 2


class TestMonitorPassivity:
    """The monitor observes; it must never steer. Verdict, cut and
    paper units are bitwise identical with and without it."""

    @pytest.mark.parametrize("seed", range(10))
    def test_units_unchanged_under_faults(self, seed):
        comp, wcp = _case(seed)
        plain = run_detector(
            "token_vc", comp, wcp, seed=seed, faults=LOSSY, hardened=True,
        )
        watched = run_detector(
            "token_vc", comp, wcp, seed=seed, faults=LOSSY, hardened=True,
            check_invariants=True,
        )
        assert watched.extras["invariant_violations"] == 0
        assert (watched.detected, watched.cut) == (plain.detected, plain.cut)
        assert watched.outcome == plain.outcome
        assert watched.detection_time == plain.detection_time
        assert watched.metrics.total_messages() == \
            plain.metrics.total_messages()
