"""Adversarial message scheduling: correctness is speed-independent.

The proofs never assume anything about relative message speeds.  These
tests starve individual message kinds (slow token, slow polls, slow
snapshots) and check the detected first cut never changes.
"""

import pytest

from repro.detect import run_detector
from repro.predicates import WeakConjunctivePredicate
from repro.simulation import KindBiasedLatency
from repro.trace import random_computation, spiral_computation

SCHEDULES = {
    "slow_token": KindBiasedLatency({"token": 25.0}, default_mean=0.5),
    "slow_candidates": KindBiasedLatency({"candidate": 25.0}, default_mean=0.5),
    "slow_polls": KindBiasedLatency(
        {"poll": 25.0, "poll_response": 25.0}, default_mean=0.5
    ),
    "fast_everything": KindBiasedLatency({}, default_mean=0.01),
}


@pytest.mark.parametrize("schedule", sorted(SCHEDULES), ids=str)
@pytest.mark.parametrize(
    "detector", ["token_vc", "direct_dep", "direct_dep_parallel"]
)
def test_first_cut_is_schedule_independent(schedule, detector):
    comp = spiral_computation(4, 3)
    wcp = WeakConjunctivePredicate.of_flags(range(4))
    ref = run_detector("reference", comp, wcp)
    report = run_detector(
        detector, comp, wcp, seed=3, channel_model=SCHEDULES[schedule]
    )
    assert report.detected == ref.detected
    assert report.cut == ref.cut


@pytest.mark.parametrize("seed", range(4))
def test_random_workloads_under_starved_tokens(seed):
    comp = random_computation(
        4, 4, seed=seed, predicate_density=0.3, plant_final_cut=True
    )
    wcp = WeakConjunctivePredicate.of_flags(range(4))
    ref = run_detector("reference", comp, wcp)
    for detector in ("token_vc", "direct_dep_parallel"):
        report = run_detector(
            detector, comp, wcp, seed=seed,
            channel_model=SCHEDULES["slow_token"],
        )
        assert report.cut == ref.cut, detector


def test_kind_biased_validation():
    from repro.common import ConfigurationError

    with pytest.raises(ConfigurationError):
        KindBiasedLatency({"token": 0.0})
    with pytest.raises(ConfigurationError):
        KindBiasedLatency({}, default_mean=-1.0)
