"""Integration: hardened detectors under injected faults.

The acceptance invariant for the fault-tolerance layer: under message
loss, duplication, corruption-marking and a mid-run monitor crash with
restart — but eventual delivery — every hardened detector terminates
and reports exactly the same verdict and first cut as the fault-free
reference.  Detection is delayed, never wrong.
"""

import pytest

from repro.detect import run_detector
from repro.predicates import WeakConjunctivePredicate
from repro.simulation.faults import CrashEvent, FaultPlan, FaultRule
from repro.trace import random_computation

HARDENED = ("token_vc", "token_vc_multi", "direct_dep")

#: 20% token loss plus one monitor down from t=4 to t=9 — by which
#: point every run below is typically mid-protocol.
LOSSY = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.2),),
    crashes=(CrashEvent("mon-1", 4.0, 9.0),),
)


def _case(seed):
    comp = random_computation(
        3, 4, seed=seed, predicate_density=0.3,
        plant_final_cut=(seed % 2 == 0),
    )
    return comp, WeakConjunctivePredicate.of_flags(range(3))


class TestLossAndCrashAgreement:
    """50 seeded workloads x 3 hardened detectors vs the reference."""

    @pytest.mark.parametrize("seed", range(50))
    def test_agrees_with_reference(self, seed):
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            rep = run_detector(name, comp, wcp, seed=seed, faults=LOSSY)
            assert not rep.extras["gave_up"], f"{name} exhausted retries"
            assert rep.detected == ref.detected, f"{name} verdict"
            assert rep.cut == ref.cut, f"{name} cut"
            if not rep.detected:
                # Eventual delivery => the candidate stream was fully
                # examined, so a negative verdict is conclusive.
                assert rep.outcome == "not_detected"

    @pytest.mark.parametrize("seed", range(6))
    def test_heavy_faults_all_kinds(self, seed):
        plan = FaultPlan(
            rules=(FaultRule(drop=0.15, duplicate=0.1, corrupt=0.05),),
            crashes=(
                CrashEvent("mon-1", 3.0, 10.0),
                CrashEvent("mon-0", 15.0, 22.0),
                CrashEvent("app-2", 5.0, 12.0),
            ),
        )
        comp, wcp = _case(seed + 500)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            rep = run_detector(name, comp, wcp, seed=seed, faults=plan)
            assert not rep.extras["gave_up"], name
            assert (rep.detected, rep.cut) == (ref.detected, ref.cut), name


class TestHardenedWithoutFaults:
    """The hardened protocol is a refinement: with zero faults it is
    the plain algorithm plus acks, so verdict and cut are unchanged."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("name", HARDENED)
    def test_matches_plain_variant(self, name, seed):
        comp, wcp = _case(seed + 900)
        plain = run_detector(name, comp, wcp, seed=seed)
        hard = run_detector(name, comp, wcp, seed=seed, hardened=True)
        assert hard.extras["hardened"]
        assert not hard.extras["gave_up"]
        assert (hard.detected, hard.cut) == (plain.detected, plain.cut)
        # No faults injected => a not-detected verdict is conclusive.
        if not hard.detected:
            assert hard.outcome == "not_detected"


class TestOutcomes:
    def test_negative_verdict_is_conclusive_under_eventual_delivery(self):
        # predicate_density=0 => the WCP can never hold.  Losses delay
        # the protocol but every candidate is eventually examined, so
        # the negative verdict is as conclusive as the fault-free one.
        comp = random_computation(3, 3, seed=1, predicate_density=0.0)
        wcp = WeakConjunctivePredicate.of_flags(range(3))
        clean = run_detector("token_vc", comp, wcp, seed=1)
        assert clean.outcome == "not_detected"
        lossy = run_detector("token_vc", comp, wcp, seed=1, faults=LOSSY)
        assert not lossy.detected
        assert lossy.outcome == "not_detected"

    def test_detected_is_never_degraded(self):
        comp, wcp = _case(2)  # even seed => plant_final_cut
        rep = run_detector("token_vc", comp, wcp, seed=2, faults=LOSSY)
        assert rep.detected
        assert not rep.degraded
        assert rep.outcome == "detected"

    def test_total_token_loss_terminates_degraded(self):
        """With 100% token drop no protocol can succeed; the bounded
        retry policy must give up — and report the run as degraded
        (inconclusive) — instead of livelocking."""
        from repro.detect.reliability import RetryPolicy

        plan = FaultPlan(rules=(FaultRule(kind="token", drop=1.0),))
        comp, wcp = _case(0)
        rep = run_detector(
            "token_vc", comp, wcp, seed=0, faults=plan,
            retry=RetryPolicy(base_timeout=2.0, cap=8.0, max_attempts=3),
        )
        assert not rep.detected
        assert rep.extras["gave_up"]
        assert rep.outcome == "degraded"

    def test_fault_summary_reported(self):
        comp, wcp = _case(4)
        rep = run_detector("token_vc", comp, wcp, seed=4, faults=LOSSY)
        summary = rep.sim.faults
        assert summary is not None
        assert summary.crashes == 1
        assert summary.restarts == 1
        assert summary.dropped >= 0
