"""Integration: hardened detectors under injected faults.

The acceptance invariant for the fault-tolerance layer: under message
loss, duplication, corruption-marking and a mid-run monitor crash with
restart — but eventual delivery — every hardened detector terminates
and reports exactly the same verdict and first cut as the fault-free
reference.  Detection is delayed, never wrong.
"""

import pytest

from repro.detect import run_detector
from repro.detect.stack import FailureDetectorConfig
from repro.simulation.faults import (
    CrashEvent,
    FaultPlan,
    FaultRule,
    PartitionEvent,
)
from repro.predicates import WeakConjunctivePredicate
from repro.trace import random_computation

HARDENED = ("token_vc", "token_vc_multi", "direct_dep", "direct_dep_parallel")

#: 20% token loss plus one monitor down from t=4 to t=9 — by which
#: point every run below is typically mid-protocol.
LOSSY = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.2),),
    crashes=(CrashEvent("mon-1", 4.0, 9.0),),
)

#: Partition-and-heal schedule with a long monitor outage layered on
#: top of token loss — adversarial enough to force takeover elections
#: in the vector-clock family while every fault eventually heals.
PARTITIONED = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.15),),
    crashes=(CrashEvent("mon-1", 6.0, 60.0),),
    partitions=(
        PartitionEvent(10.0, (frozenset({"mon-0", "app-0"}),), 25.0),
    ),
)


def _case(seed):
    comp = random_computation(
        3, 4, seed=seed, predicate_density=0.3,
        plant_final_cut=(seed % 2 == 0),
    )
    return comp, WeakConjunctivePredicate.of_flags(range(3))


class TestLossAndCrashAgreement:
    """50 seeded workloads x 3 hardened detectors vs the reference."""

    @pytest.mark.parametrize("seed", range(50))
    def test_agrees_with_reference(self, seed):
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            rep = run_detector(name, comp, wcp, seed=seed, faults=LOSSY)
            assert not rep.extras["gave_up"], f"{name} exhausted retries"
            assert rep.detected == ref.detected, f"{name} verdict"
            assert rep.cut == ref.cut, f"{name} cut"
            if not rep.detected:
                # Eventual delivery => the candidate stream was fully
                # examined, so a negative verdict is conclusive.
                assert rep.outcome == "not_detected"

    @pytest.mark.parametrize("seed", range(6))
    def test_heavy_faults_all_kinds(self, seed):
        plan = FaultPlan(
            rules=(FaultRule(drop=0.15, duplicate=0.1, corrupt=0.05),),
            crashes=(
                CrashEvent("mon-1", 3.0, 10.0),
                CrashEvent("mon-0", 15.0, 22.0),
                CrashEvent("app-2", 5.0, 12.0),
            ),
        )
        comp, wcp = _case(seed + 500)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            rep = run_detector(name, comp, wcp, seed=seed, faults=plan)
            assert not rep.extras["gave_up"], name
            assert (rep.detected, rep.cut) == (ref.detected, ref.cut), name


class TestPartitionHealAgreement:
    """Self-healing detection: partitions, a long crash and token loss
    with the failure detector enabled still yield exactly the fault-free
    verdict and first cut once everything heals.  Takeover elections in
    the vector-clock family regenerate the token from persisted frames;
    stale-epoch tokens are discarded, so no run double-detects."""

    @pytest.mark.parametrize("seed", range(50))
    def test_agrees_with_reference(self, seed):
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            rep = run_detector(
                name, comp, wcp, seed=seed, faults=PARTITIONED,
                hardened=True, failure_detector=FailureDetectorConfig(),
            )
            assert rep.detected == ref.detected, f"{name} verdict"
            assert rep.cut == ref.cut, f"{name} cut"
            if not rep.detected:
                assert rep.outcome == "not_detected", name

    def test_partition_faults_are_counted(self):
        comp, wcp = _case(2)
        rep = run_detector(
            "token_vc", comp, wcp, seed=2, faults=PARTITIONED,
            hardened=True, failure_detector=FailureDetectorConfig(),
        )
        summary = rep.sim.faults
        assert summary.partitions == 1
        assert summary.partitioned > 0

    def test_takeovers_fire_and_stay_single_winner(self):
        """At least one seed in the schedule forces an election; the
        regenerated token must still produce at most one detection."""
        takeovers = 0
        for seed in range(10):
            comp, wcp = _case(seed)
            ref = run_detector("reference", comp, wcp)
            rep = run_detector(
                "token_vc", comp, wcp, seed=seed, faults=PARTITIONED,
                hardened=True, failure_detector=FailureDetectorConfig(),
            )
            takeovers += rep.extras["takeovers"]
            assert rep.detected == ref.detected
            assert rep.cut == ref.cut
        assert takeovers > 0

    def test_permanent_monitor_death_degrades_with_partial_cut(self):
        comp, wcp = _case(2)  # even seed => planted final cut
        plan = FaultPlan(crashes=(CrashEvent("mon-1", 5.0, None),))
        for name in HARDENED:
            rep = run_detector(
                name, comp, wcp, seed=2, faults=plan,
                hardened=True, failure_detector=FailureDetectorConfig(),
            )
            assert not rep.detected, name
            assert rep.outcome == "degraded", name
            assert rep.extras["unobservable"] == [1], name
            partial = rep.extras["partial_cut"]
            assert len(partial) == 3, name

    def test_permanent_feeder_death_degrades(self):
        comp, wcp = _case(2)
        plan = FaultPlan(crashes=(CrashEvent("app-1", 0.5, None),))
        rep = run_detector(
            "token_vc", comp, wcp, seed=2, faults=plan,
            hardened=True, failure_detector=FailureDetectorConfig(),
        )
        assert rep.outcome == "degraded"
        assert rep.extras["unobservable"] == [1]

    def test_direct_dep_never_initiates_takeover(self):
        """The §4 baton carries no recoverable state — its failure
        detector heartbeats but must not regenerate tokens."""
        for seed in range(6):
            comp, wcp = _case(seed)
            rep = run_detector(
                "direct_dep", comp, wcp, seed=seed, faults=PARTITIONED,
                hardened=True, failure_detector=FailureDetectorConfig(),
            )
            assert rep.extras["takeovers"] == 0


class TestHardenedWithoutFaults:
    """The hardened protocol is a refinement: with zero faults it is
    the plain algorithm plus acks, so verdict and cut are unchanged."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("name", HARDENED)
    def test_matches_plain_variant(self, name, seed):
        comp, wcp = _case(seed + 900)
        plain = run_detector(name, comp, wcp, seed=seed)
        hard = run_detector(name, comp, wcp, seed=seed, hardened=True)
        assert hard.extras["hardened"]
        assert not hard.extras["gave_up"]
        assert (hard.detected, hard.cut) == (plain.detected, plain.cut)
        # No faults injected => a not-detected verdict is conclusive.
        if not hard.detected:
            assert hard.outcome == "not_detected"


class TestOutcomes:
    def test_negative_verdict_is_conclusive_under_eventual_delivery(self):
        # predicate_density=0 => the WCP can never hold.  Losses delay
        # the protocol but every candidate is eventually examined, so
        # the negative verdict is as conclusive as the fault-free one.
        comp = random_computation(3, 3, seed=1, predicate_density=0.0)
        wcp = WeakConjunctivePredicate.of_flags(range(3))
        clean = run_detector("token_vc", comp, wcp, seed=1)
        assert clean.outcome == "not_detected"
        lossy = run_detector("token_vc", comp, wcp, seed=1, faults=LOSSY)
        assert not lossy.detected
        assert lossy.outcome == "not_detected"

    def test_detected_is_never_degraded(self):
        comp, wcp = _case(2)  # even seed => plant_final_cut
        rep = run_detector("token_vc", comp, wcp, seed=2, faults=LOSSY)
        assert rep.detected
        assert not rep.degraded
        assert rep.outcome == "detected"

    def test_total_token_loss_terminates_degraded(self):
        """With 100% token drop no protocol can succeed; the bounded
        retry policy must give up — and report the run as degraded
        (inconclusive) — instead of livelocking."""
        from repro.detect.stack import RetryPolicy

        plan = FaultPlan(rules=(FaultRule(kind="token", drop=1.0),))
        comp, wcp = _case(0)
        rep = run_detector(
            "token_vc", comp, wcp, seed=0, faults=plan,
            retry=RetryPolicy(base_timeout=2.0, cap=8.0, max_attempts=3),
        )
        assert not rep.detected
        assert rep.extras["gave_up"]
        assert rep.outcome == "degraded"

    def test_fault_summary_reported(self):
        comp, wcp = _case(4)
        rep = run_detector("token_vc", comp, wcp, seed=4, faults=LOSSY)
        summary = rep.sim.faults
        assert summary is not None
        assert summary.crashes == 1
        assert summary.restarts == 1
        assert summary.dropped >= 0
