"""Deep randomized agreement sweep — the heavy regression net.

A few hundred (workload × detector × channel) combinations, all checked
against the reference for verdict and first-cut equality.  This is where
subtle protocol races get caught (the §4.5 chain-head race was found by
exactly this kind of sweep), so breadth matters more than speed; the
whole module still runs in seconds.
"""

import pytest

from repro.detect import run_detector
from repro.predicates import WeakConjunctivePredicate
from repro.simulation import ExponentialLatency, FixedLatency, UniformLatency
from repro.trace import (
    generate,
    WorkloadSpec,
    skewed_concurrent_computation,
    spiral_computation,
)

ONLINE = (
    "centralized",
    "token_vc",
    "token_vc_multi",
    "direct_dep",
    "direct_dep_parallel",
)

CHANNELS = {
    "unit": FixedLatency(1.0),
    "jitter": ExponentialLatency(mean=0.8),
    "spread": UniformLatency(0.2, 2.5),
}


def workloads():
    """A diverse workload zoo, keyed for test ids."""
    zoo = {}
    for pattern in ("uniform", "ring", "client_server", "pairs"):
        for seed in (0, 1):
            zoo[f"{pattern}-{seed}"] = generate(
                WorkloadSpec(
                    num_processes=5,
                    sends_per_process=4,
                    pattern=pattern,
                    seed=seed * 31 + 7,
                    predicate_density=0.3,
                    plant_final_cut=(seed == 0),
                )
            )
    zoo["spiral"] = spiral_computation(5, 3)
    zoo["skewed"] = skewed_concurrent_computation(4, 6)
    zoo["dense"] = generate(
        WorkloadSpec(
            num_processes=4, sends_per_process=8, seed=99,
            predicate_density=0.7, internal_rate=0.9,
        )
    )
    zoo["sparse"] = generate(
        WorkloadSpec(
            num_processes=6, sends_per_process=2, seed=5,
            predicate_density=0.15, internal_rate=0.2,
            plant_final_cut=True,
        )
    )
    return zoo


WORKLOADS = workloads()


@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=str)
@pytest.mark.parametrize("detector", ONLINE)
@pytest.mark.parametrize("channel", sorted(CHANNELS), ids=str)
def test_agreement_matrix(workload, detector, channel):
    comp = WORKLOADS[workload]
    wcp = WeakConjunctivePredicate.of_flags(range(comp.num_processes))
    ref = run_detector("reference", comp, wcp)
    opts = {"groups": 2} if detector == "token_vc_multi" else {}
    report = run_detector(
        detector, comp, wcp, seed=13,
        channel_model=CHANNELS[channel], **opts,
    )
    assert report.detected == ref.detected
    assert report.cut == ref.cut
    if not report.detected:
        assert not report.sim.deadlocked, "undetected runs must abort cleanly"
