"""Integration: live online detection ≡ replayed offline detection.

The same application behaviour is executed twice: once live (application
actors exchanging real messages with monitors attached), and once by
recording the equivalent trace and replaying it through the detectors.
Both must find the same first cut — evidence that the live Fig. 2 / §4.1
implementations and the trace-extraction implementations agree.
"""

from repro.apps import (
    build_mutex_system,
    mutex_wcp,
    run_live_direct_dep,
    run_live_token_vc,
)
from repro.detect import run_detector
from repro.predicates import WeakConjunctivePredicate
from repro.trace import ComputationBuilder


def mutex_trace(bug: bool):
    """The recorded counterpart of a 2-client mutex run.

    Coordinator P0; clients P1, P2 each do one CS round; with ``bug``
    the coordinator grants P2 before P1's release.
    """
    b = ComputationBuilder(
        3, initial_vars={1: {"cs": False}, 2: {"cs": False}}
    )
    r1 = b.send(1, 0)          # P1 requests
    r2 = b.send(2, 0)          # P2 requests
    b.recv(0, r1)
    g1 = b.send(0, 1)          # grant P1
    b.recv(1, g1, {"cs": True})
    b.recv(0, r2)
    if bug:
        g2 = b.send(0, 2)      # BUG: grant P2 without release
        b.recv(2, g2, {"cs": True})
        b.internal(2, {"cs": False})
        rel1 = b.send(1, 0, {"cs": False})
        b.recv(0, rel1)
        rel2 = b.send(2, 0)
        b.recv(0, rel2)
    else:
        rel1 = b.send(1, 0, {"cs": False})
        b.recv(0, rel1)
        g2 = b.send(0, 2)
        b.recv(2, g2, {"cs": True})
        rel2 = b.send(2, 0, {"cs": False})
        b.recv(0, rel2)
    return b.build()


class TestMutexLiveVsReplay:
    def test_buggy_run_detected_in_both_modes(self):
        wcp = mutex_wcp(1, 2)
        # Live.
        apps = build_mutex_system(2, rounds=1, bug_every=1, wcp=wcp, mode="vc")
        live = run_live_token_vc(apps, wcp, seed=3)
        # Replay of the equivalent hand trace.
        comp = mutex_trace(bug=True)
        replay = run_detector("token_vc", comp, wcp, seed=3)
        assert live.detected and replay.detected

    def test_correct_run_clean_in_both_modes(self):
        wcp = mutex_wcp(1, 2)
        apps = build_mutex_system(2, rounds=1, bug_every=0, wcp=wcp, mode="vc")
        live = run_live_token_vc(apps, wcp, seed=3)
        comp = mutex_trace(bug=False)
        replay = run_detector("token_vc", comp, wcp, seed=3)
        assert not live.detected and not replay.detected

    def test_replayed_trace_cut_matches_reference(self):
        wcp = mutex_wcp(1, 2)
        comp = mutex_trace(bug=True)
        for name in ("token_vc", "direct_dep", "centralized"):
            rep = run_detector(name, comp, wcp, seed=1)
            ref = run_detector("reference", comp, wcp)
            assert rep.cut == ref.cut


class TestLiveVCvsLiveDD:
    def test_same_cut_across_algorithm_families(self):
        wcp = mutex_wcp(1, 2)
        vc_apps = build_mutex_system(3, rounds=2, bug_every=1, wcp=wcp, mode="vc")
        dd_apps = build_mutex_system(3, rounds=2, bug_every=1, wcp=wcp, mode="dd")
        vc = run_live_token_vc(vc_apps, wcp, seed=4)
        dd = run_live_direct_dep(dd_apps, wcp, seed=4)
        assert vc.detected == dd.detected
        assert vc.cut == dd.cut

    def test_live_detection_deterministic(self):
        wcp = mutex_wcp(1, 2)

        def once():
            apps = build_mutex_system(
                3, rounds=2, bug_every=2, wcp=wcp, mode="vc"
            )
            return run_live_token_vc(apps, wcp, seed=5)

        a, b = once(), once()
        assert (a.detected, a.cut, a.detection_time) == (
            b.detected,
            b.cut,
            b.detection_time,
        )
