"""Integration: every detector finds the same verdict and first cut.

This is the library's master correctness check — Theorems 3.2, 4.3 and
4.4 say the distributed algorithms detect exactly the first satisfying
cut; the reference (and, on small runs, exhaustive search) provides the
ground truth.
"""

import pytest

from repro.detect import run_detector
from repro.detect.runner import DETECTORS
from repro.predicates import brute_force_first_cut
from repro.predicates import WeakConjunctivePredicate
from repro.simulation import ExponentialLatency, FixedLatency, UniformLatency
from repro.trace import (
    empty_computation,
    random_computation,
    ring_computation,
    skewed_concurrent_computation,
    spiral_computation,
)

ONLINE = [n for n in DETECTORS if n not in ("reference", "lattice")]


def assert_all_agree(comp, wcp, seed=0, **per_detector_opts):
    ref = run_detector("reference", comp, wcp)
    # Exhaustive ground truth (small runs only).
    if comp.total_events() <= 60:
        assert ref.cut == brute_force_first_cut(comp, wcp)
    for name in DETECTORS:
        opts = {} if name in ("reference", "lattice") else {"seed": seed}
        opts.update(per_detector_opts.get(name, {}))
        rep = run_detector(name, comp, wcp, **opts)
        assert rep.detected == ref.detected, f"{name} verdict"
        assert rep.cut == ref.cut, f"{name} cut"
    return ref


class TestRandomWorkloads:
    @pytest.mark.parametrize("seed", range(8))
    def test_full_predicate(self, seed):
        comp = random_computation(
            4, 4, seed=seed, predicate_density=0.3,
            plant_final_cut=(seed % 2 == 0),
        )
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        assert_all_agree(comp, wcp, seed=seed)

    @pytest.mark.parametrize("seed", range(6))
    def test_subset_predicate(self, seed):
        comp = random_computation(
            5, 4, seed=seed + 200, predicate_density=0.35,
            predicate_pids=(0, 2, 4), plant_final_cut=True,
        )
        wcp = WeakConjunctivePredicate.of_flags([0, 2, 4])
        assert_all_agree(comp, wcp, seed=seed)

    @pytest.mark.parametrize("groups", [2, 3, 4])
    def test_multi_token_group_counts(self, groups):
        comp = random_computation(
            5, 4, seed=groups, predicate_density=0.3, plant_final_cut=True
        )
        wcp = WeakConjunctivePredicate.of_flags(range(5))
        assert_all_agree(
            comp, wcp, seed=groups,
            token_vc_multi={"groups": groups},
        )


class TestStructuredWorkloads:
    def test_spiral(self):
        comp = spiral_computation(4, 3)
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        ref = assert_all_agree(comp, wcp)
        a = comp.analysis()
        assert ref.cut.intervals == tuple(a.num_intervals(p) for p in range(4))

    def test_skewed(self):
        comp = skewed_concurrent_computation(3, 6)
        wcp = WeakConjunctivePredicate.of_flags(range(3))
        assert_all_agree(comp, wcp)

    def test_ring(self):
        comp = ring_computation(4, rounds=2, seed=3)
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        assert_all_agree(comp, wcp)

    def test_empty(self):
        comp = empty_computation(3)
        wcp = WeakConjunctivePredicate.of_flags(range(3))
        assert_all_agree(comp, wcp)


class TestChannelModels:
    @pytest.mark.parametrize(
        "channel",
        [
            FixedLatency(0.1),
            FixedLatency(5.0),
            ExponentialLatency(mean=1.0),
            UniformLatency(0.1, 4.0),
        ],
        ids=["fast", "slow", "exponential", "uniform"],
    )
    def test_agreement_invariant_to_latency(self, channel):
        comp = random_computation(
            4, 4, seed=77, predicate_density=0.3, plant_final_cut=True
        )
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        ref = run_detector("reference", comp, wcp)
        for name in ONLINE:
            rep = run_detector(
                name, comp, wcp, seed=9, channel_model=channel
            )
            assert rep.cut == ref.cut, name
