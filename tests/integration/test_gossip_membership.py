"""Integration: gossip (SWIM) membership under faults.

The membership knob must be behavior-preserving where it matters: with
``FailureDetectorConfig(membership="gossip")`` every hardened detector
still reports exactly the fault-free reference verdict and first cut
under message loss + crash, partition + heal, and monitor churn.  The
SWIM layer only changes *how* liveness is learned (randomized probes +
piggybacked gossip instead of all-to-all heartbeats), never what the
detection protocol concludes.
"""

import pytest

from repro.detect import run_detector
from repro.detect.stack import FailureDetectorConfig
from repro.predicates import WeakConjunctivePredicate
from repro.simulation.faults import (
    ChurnEvent,
    CrashEvent,
    FaultPlan,
    FaultRule,
    PartitionEvent,
)
from repro.trace import random_computation

HARDENED = ("token_vc", "token_vc_multi", "direct_dep", "direct_dep_parallel")

GOSSIP = FailureDetectorConfig(membership="gossip")

LOSSY = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.2),),
    crashes=(CrashEvent("mon-1", 4.0, 9.0),),
)

PARTITIONED = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.15),),
    crashes=(CrashEvent("mon-1", 6.0, 60.0),),
    partitions=(
        PartitionEvent(10.0, (frozenset({"mon-0", "app-0"}),), 25.0),
    ),
)

#: Rolling monitor churn: mon-1 and mon-2 alternate going down for 5s
#: every 10s, twice each, on top of token loss.
CHURN = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.1),),
    churns=(ChurnEvent(("mon-1", "mon-2"), 4.0, 10.0, 5.0, rounds=2),),
)


def _case(seed):
    comp = random_computation(
        3, 4, seed=seed, predicate_density=0.3,
        plant_final_cut=(seed % 2 == 0),
    )
    return comp, WeakConjunctivePredicate.of_flags(range(3))


def _assert_agrees(name, comp, wcp, seed, plan, ref):
    rep = run_detector(
        name, comp, wcp, seed=seed, faults=plan,
        hardened=True, failure_detector=GOSSIP,
    )
    assert rep.detected == ref.detected, f"{name} verdict"
    assert rep.cut == ref.cut, f"{name} cut"
    if not rep.detected:
        assert rep.outcome == "not_detected", name


class TestGossipLossAndCrashAgreement:
    """50 seeded workloads x 4 hardened detectors, gossip membership."""

    @pytest.mark.parametrize("seed", range(50))
    def test_agrees_with_reference(self, seed):
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            _assert_agrees(name, comp, wcp, seed, LOSSY, ref)


class TestGossipPartitionHealAgreement:
    """Partition + long crash + loss: gossip-mode self-healing still
    yields exactly the fault-free verdict and first cut."""

    @pytest.mark.parametrize("seed", range(50))
    def test_agrees_with_reference(self, seed):
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            _assert_agrees(name, comp, wcp, seed, PARTITIONED, ref)

    def test_gossip_traffic_flows_and_is_counted(self):
        comp, wcp = _case(2)
        rep = run_detector(
            "token_vc", comp, wcp, seed=2, faults=PARTITIONED,
            hardened=True, failure_detector=GOSSIP,
        )
        metrics = rep.metrics
        assert metrics.messages_of_kind("ping") > 0
        assert metrics.messages_of_kind("ping_ack") > 0
        assert metrics.messages_of_kind("heartbeat") == 0
        assert rep.sim.faults.liveness_bytes > 0

    def test_takeovers_still_fire_via_gossip(self):
        takeovers = 0
        for seed in range(10):
            comp, wcp = _case(seed)
            ref = run_detector("reference", comp, wcp)
            rep = run_detector(
                "token_vc", comp, wcp, seed=seed, faults=PARTITIONED,
                hardened=True, failure_detector=GOSSIP,
            )
            takeovers += rep.extras["takeovers"]
            assert rep.detected == ref.detected
            assert rep.cut == ref.cut
        assert takeovers > 0


class TestGossipChurnAgreement:
    """Rolling monitor churn: repeated crash/restart cycles with
    incarnation-numbered rejoin must not perturb the verdict."""

    @pytest.mark.parametrize("seed", range(50))
    def test_agrees_with_reference(self, seed):
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            _assert_agrees(name, comp, wcp, seed, CHURN, ref)

    def test_churn_counts_crashes_and_restarts(self):
        comp, wcp = _case(2)
        rep = run_detector(
            "token_vc", comp, wcp, seed=2, faults=CHURN,
            hardened=True, failure_detector=GOSSIP,
        )
        summary = rep.sim.faults
        assert summary.crashes >= 2
        assert summary.restarts >= 1

    @pytest.mark.parametrize("seed", range(10))
    def test_heartbeat_mode_survives_churn_too(self, seed):
        """The churn fault is membership-agnostic; the heartbeat
        detector handles it with the same exactness."""
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        rep = run_detector(
            "token_vc", comp, wcp, seed=seed, faults=CHURN,
            hardened=True, failure_detector=FailureDetectorConfig(),
        )
        assert (rep.detected, rep.cut) == (ref.detected, ref.cut)
