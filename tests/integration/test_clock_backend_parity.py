"""Integration: packed clock backend is bit-identical to the list backend.

``clock_backend="packed"`` is a pure representation change — an
``array('q')`` causal analysis instead of tuples of boxed ints.  Under
every fault regime we ship (message loss + crash, partition + heal,
rolling monitor churn) each hardened detector must produce the **same
verdict, the same first cut and byte-identical paper units** on both
backends; with the streaming invariant monitors attached, the same
invariant verdicts too.  Any divergence means the packed sweep computed
a different causal structure, which is a correctness bug, not a perf
trade-off.
"""

import json

import pytest

from repro.detect import run_detector
from repro.detect.runner import paper_units
from repro.predicates import WeakConjunctivePredicate
from repro.simulation.faults import (
    ChurnEvent,
    CrashEvent,
    FaultPlan,
    FaultRule,
    PartitionEvent,
)
from repro.trace import random_computation

HARDENED = ("token_vc", "token_vc_multi", "direct_dep", "direct_dep_parallel")

LOSSY = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.2),),
    crashes=(CrashEvent("mon-1", 4.0, 9.0),),
)

PARTITIONED = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.15),),
    crashes=(CrashEvent("mon-1", 6.0, 60.0),),
    partitions=(
        PartitionEvent(10.0, (frozenset({"mon-0", "app-0"}),), 25.0),
    ),
)

CHURN = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.1),),
    churns=(ChurnEvent(("mon-1", "mon-2"), 4.0, 10.0, 5.0, rounds=2),),
)


def _case(seed):
    comp = random_computation(
        3, 4, seed=seed, predicate_density=0.3,
        plant_final_cut=(seed % 2 == 0),
    )
    return comp, WeakConjunctivePredicate.of_flags(range(3))


def _units_bytes(rep) -> bytes:
    return json.dumps(paper_units(rep), sort_keys=True).encode()


def _assert_backends_identical(name, comp, wcp, seed, plan, **options):
    reps = {
        backend: run_detector(
            name, comp, wcp, seed=seed, faults=plan, hardened=True,
            clock_backend=backend, **options,
        )
        for backend in ("list", "packed")
    }
    listed, packed = reps["list"], reps["packed"]
    assert packed.detected == listed.detected, f"{name} s{seed} verdict"
    assert packed.cut == listed.cut, f"{name} s{seed} cut"
    assert packed.outcome == listed.outcome, f"{name} s{seed} outcome"
    assert _units_bytes(packed) == _units_bytes(listed), (
        f"{name} s{seed} paper units diverge:\n"
        f"  list:   {paper_units(listed)}\n"
        f"  packed: {paper_units(packed)}"
    )
    return listed, packed


class TestLossCrashParity:
    """50 seeded workloads x 4 hardened detectors under loss + crash."""

    @pytest.mark.parametrize("seed", range(50))
    def test_backends_agree(self, seed):
        comp, wcp = _case(seed)
        for name in HARDENED:
            _assert_backends_identical(name, comp, wcp, seed, LOSSY)


class TestPartitionHealParity:
    """Partition + long crash + loss: takeover elections and healing
    must not expose any backend-dependent behavior."""

    @pytest.mark.parametrize("seed", range(50))
    def test_backends_agree(self, seed):
        comp, wcp = _case(seed)
        for name in HARDENED:
            _assert_backends_identical(name, comp, wcp, seed, PARTITIONED)


class TestChurnParity:
    """Rolling monitor churn: crash/restart cycles on both backends."""

    @pytest.mark.parametrize("seed", range(50))
    def test_backends_agree(self, seed):
        comp, wcp = _case(seed)
        for name in HARDENED:
            _assert_backends_identical(name, comp, wcp, seed, CHURN)


class TestInvariantMonitorParity:
    """The runtime-verification verdicts are backend-invariant too."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("name", ("token_vc", "direct_dep"))
    def test_invariant_results_agree(self, name, seed):
        comp, wcp = _case(seed)
        listed, packed = _assert_backends_identical(
            name, comp, wcp, seed, LOSSY, check_invariants=True,
        )
        assert (
            packed.extras["invariant_violations"]
            == listed.extras["invariant_violations"]
            == 0
        )
        assert (
            packed.extras.get("invariant_summary")
            == listed.extras.get("invariant_summary")
        )


class TestBackendAgainstReference:
    """Packed runs still match the fault-free reference verdict —
    parity with the list backend composes with the exactness suites."""

    @pytest.mark.parametrize("seed", range(10))
    def test_packed_matches_reference(self, seed):
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            rep = run_detector(
                name, comp, wcp, seed=seed, faults=LOSSY, hardened=True,
                clock_backend="packed",
            )
            assert rep.detected == ref.detected, f"{name} verdict"
            assert rep.cut == ref.cut, f"{name} cut"
