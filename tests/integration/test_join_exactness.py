"""Integration: live joins are exactness-preserving.

Elastic membership's contract mirrors the gossip-membership one: a
:class:`~repro.simulation.faults.JoinEvent` changes *who is listening*
(a standby monitor bootstraps via the join handshake and anti-entropy
state sync), never what the detection protocol concludes.  Every
hardened detector must report exactly the fault-free reference verdict
and first cut while joiners arrive under message loss + crash, during
a partition that heals, and racing rolling churn.
"""

import pytest

from repro.detect import run_detector
from repro.detect.stack import FailureDetectorConfig
from repro.predicates import WeakConjunctivePredicate
from repro.simulation.faults import (
    ChurnEvent,
    CrashEvent,
    FaultPlan,
    FaultRule,
    JoinEvent,
    LeaveEvent,
    PartitionEvent,
)
from repro.trace import random_computation

HARDENED = ("token_vc", "token_vc_multi", "direct_dep", "direct_dep_parallel")

GOSSIP = FailureDetectorConfig(membership="gossip")

#: A join under token loss while a static member is crashed: the
#: joiner's default seed contact (mon-0) is alive throughout.
JOIN_LOSSY = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.2),),
    crashes=(CrashEvent("mon-1", 4.0, 9.0),),
    joins=(JoinEvent("mon-7", 5.0),),
)

#: A join landing *during* a partition that later heals.  The seed
#: contact is pinned to mon-2, which stays in the majority component,
#: so the handshake does not depend on the isolated mon-0.
JOIN_PARTITIONED = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.15),),
    crashes=(CrashEvent("mon-1", 6.0, 60.0),),
    partitions=(
        PartitionEvent(10.0, (frozenset({"mon-0", "app-0"}),), 25.0),
    ),
    joins=(JoinEvent("mon-7", 12.0, seed_contact="mon-2"),),
)

#: Two concurrent joins racing rolling churn, one of which later
#: departs gracefully: scale-out and scale-in in the same run.
JOIN_CHURN = FaultPlan(
    rules=(FaultRule(kind="token", drop=0.1),),
    churns=(ChurnEvent(("mon-1", "mon-2"), 4.0, 10.0, 5.0, rounds=2),),
    joins=(JoinEvent("mon-7", 5.0), JoinEvent("mon-8", 7.0)),
    leaves=(LeaveEvent("mon-8", 30.0),),
)


def _case(seed):
    comp = random_computation(
        3, 4, seed=seed, predicate_density=0.3,
        plant_final_cut=(seed % 2 == 0),
    )
    return comp, WeakConjunctivePredicate.of_flags(range(3))


def _assert_agrees(name, comp, wcp, seed, plan, ref):
    rep = run_detector(
        name, comp, wcp, seed=seed, faults=plan,
        hardened=True, failure_detector=GOSSIP,
    )
    assert rep.detected == ref.detected, f"{name} verdict"
    assert rep.cut == ref.cut, f"{name} cut"
    if not rep.detected:
        assert rep.outcome == "not_detected", name
    # A joiner that managed to join must also have finished its state
    # sync — a welcome without anti-entropy would be a silent gap.
    if rep.extras.get("joiners"):
        assert rep.extras["synced"] == rep.extras["joined"], name


class TestJoinUnderLossAndCrash:
    """50 seeded workloads x 4 hardened detectors, one live join."""

    @pytest.mark.parametrize("seed", range(50))
    def test_agrees_with_reference(self, seed):
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            _assert_agrees(name, comp, wcp, seed, JOIN_LOSSY, ref)

    def test_joiner_completes_handshake_and_sync(self):
        comp, wcp = _case(2)
        rep = run_detector(
            "token_vc", comp, wcp, seed=2, faults=JOIN_LOSSY,
            hardened=True, failure_detector=GOSSIP,
        )
        assert rep.extras["joiners"] == 1
        assert rep.extras["joined"] == 1
        assert rep.extras["synced"] == 1

    def test_join_traffic_is_counted_as_liveness_bytes(self):
        comp, wcp = _case(2)
        rep = run_detector(
            "token_vc", comp, wcp, seed=2, faults=JOIN_LOSSY,
            hardened=True, failure_detector=GOSSIP,
        )
        metrics = rep.metrics
        assert metrics.messages_of_kind("join") > 0
        assert metrics.messages_of_kind("join_ack") > 0
        assert metrics.messages_of_kind("state_sync") > 0
        assert rep.sim.faults.liveness_bytes > 0


class TestJoinDuringPartitionHeal:
    """The joiner bootstraps from the majority side of a partition."""

    @pytest.mark.parametrize("seed", range(50))
    def test_agrees_with_reference(self, seed):
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            _assert_agrees(name, comp, wcp, seed, JOIN_PARTITIONED, ref)

    def test_join_summary_reported(self):
        comp, wcp = _case(2)
        rep = run_detector(
            "token_vc", comp, wcp, seed=2, faults=JOIN_PARTITIONED,
            hardened=True, failure_detector=GOSSIP,
        )
        assert rep.sim.faults.joins == 1


class TestConcurrentJoinsRacingChurn:
    """Two joins + a graceful leave on top of rolling churn."""

    @pytest.mark.parametrize("seed", range(50))
    def test_agrees_with_reference(self, seed):
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        for name in HARDENED:
            _assert_agrees(name, comp, wcp, seed, JOIN_CHURN, ref)

    def test_both_joiners_arrive(self):
        comp, wcp = _case(2)
        rep = run_detector(
            "token_vc", comp, wcp, seed=2, faults=JOIN_CHURN,
            hardened=True, failure_detector=GOSSIP,
        )
        assert rep.extras["joiners"] == 2
        assert rep.extras["joined"] == 2

    @pytest.mark.parametrize("seed", range(10))
    def test_detector_agnostic_under_explicit_contact(self, seed):
        """Pinning the seed contact must not change the verdict."""
        comp, wcp = _case(seed)
        ref = run_detector("reference", comp, wcp)
        pinned = FaultPlan(
            rules=JOIN_CHURN.rules,
            churns=JOIN_CHURN.churns,
            joins=(JoinEvent("mon-7", 5.0, seed_contact="mon-0"),),
        )
        rep = run_detector(
            "token_vc", comp, wcp, seed=seed, faults=pinned,
            hardened=True, failure_detector=GOSSIP,
        )
        assert (rep.detected, rep.cut) == (ref.detected, ref.cut)
