"""Unit tests for IntervalCounter and LamportClock."""

import pytest

from repro.clocks import IntervalCounter, LamportClock
from repro.common import ClockError


class TestIntervalCounter:
    def test_starts_at_one(self):
        assert IntervalCounter().value == 1

    def test_advance_returns_new_value(self):
        c = IntervalCounter()
        assert c.advance() == 2
        assert c.advance() == 3
        assert c.value == 3

    def test_custom_start(self):
        assert IntervalCounter(5).value == 5

    def test_start_below_one_rejected(self):
        with pytest.raises(ClockError):
            IntervalCounter(0)

    def test_no_merge_semantics(self):
        """§4.1: the counter only identifies local intervals — there is
        deliberately no receive-merge API."""
        assert not hasattr(IntervalCounter(), "receive")


class TestLamportClock:
    def test_starts_at_zero(self):
        assert LamportClock().value == 0

    def test_tick(self):
        c = LamportClock()
        assert c.tick() == 1
        assert c.tick() == 2

    def test_receive_merges_max_plus_one(self):
        c = LamportClock(3)
        assert c.receive(7) == 8
        assert c.receive(2) == 9  # local already ahead

    def test_receive_negative_rejected(self):
        with pytest.raises(ClockError):
            LamportClock().receive(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            LamportClock(-2)

    def test_respects_causality_in_a_chain(self):
        a, b = LamportClock(), LamportClock()
        a.tick()              # event on A
        t = a.value
        b.receive(t)          # message A -> B
        assert b.value > t
