"""Unit tests for PackedVectorClock: value parity with VectorClock.

The packed backend is only allowed to exist because it is bit-identical
to the list backend.  Every test here phrases that contract directly:
the same operation on both classes must produce the same components,
the same comparison verdicts and the same projections — the in-place
mutators must agree with their copying counterparts.
"""

import random

import pytest

from repro.clocks import (
    CLOCK_BACKENDS,
    PackedVectorClock,
    VectorClock,
    clock_class,
    require_clock_backend,
)
from repro.common import ClockError
from repro.common.errors import ConfigurationError


def _random_components(rng, width):
    return [rng.randrange(0, 50) for _ in range(width)]


class TestConstructionParity:
    def test_from_components(self):
        p = PackedVectorClock([1, 2, 3])
        assert p.components == (1, 2, 3)
        assert p.width == 3
        assert len(p) == 3
        assert list(p) == [1, 2, 3]
        assert p[1] == 2

    def test_initial_matches_list_backend(self):
        assert (
            PackedVectorClock.initial(owner=2, width=4).components
            == VectorClock.initial(owner=2, width=4).components
        )

    def test_zero_matches_list_backend(self):
        assert (
            PackedVectorClock.zero(5).components
            == VectorClock.zero(5).components
        )

    def test_empty_rejected(self):
        with pytest.raises(ClockError):
            PackedVectorClock([])

    def test_negative_component_rejected(self):
        with pytest.raises(ClockError):
            PackedVectorClock([1, -1])

    def test_zero_width_rejected(self):
        with pytest.raises(ClockError):
            PackedVectorClock.zero(0)

    def test_initial_owner_out_of_range(self):
        with pytest.raises(ClockError):
            PackedVectorClock.initial(owner=4, width=4)


class TestOperationParity:
    """tick/merged and their in-place twins track VectorClock exactly."""

    def test_tick_matches(self):
        rng = random.Random(7)
        comps = _random_components(rng, 6)
        for owner in range(6):
            assert (
                PackedVectorClock(comps).tick(owner).components
                == VectorClock(comps).tick(owner).components
            )

    def test_merged_matches(self):
        rng = random.Random(8)
        for _ in range(50):
            a = _random_components(rng, 5)
            b = _random_components(rng, 5)
            assert (
                PackedVectorClock(a).merged(PackedVectorClock(b)).components
                == VectorClock(a).merged(VectorClock(b)).components
            )

    def test_tick_in_place_agrees_with_tick(self):
        working = PackedVectorClock([3, 1, 4])
        expected = working.tick(1)
        working.tick_in_place(1)
        assert working.components == expected.components

    def test_merge_in_place_agrees_with_merged(self):
        rng = random.Random(9)
        for _ in range(50):
            a = _random_components(rng, 4)
            b = _random_components(rng, 4)
            working = PackedVectorClock(a)
            expected = working.merged(PackedVectorClock(b))
            working.merge_in_place(PackedVectorClock(b))
            assert working.components == expected.components

    def test_snapshot_is_independent_of_working_copy(self):
        working = PackedVectorClock([1, 2, 3])
        frozen = working.snapshot()
        working.tick_in_place(0)
        working.merge_in_place(PackedVectorClock([9, 9, 9]))
        assert frozen.components == (1, 2, 3)

    def test_tick_does_not_mutate_receiver(self):
        p = PackedVectorClock([1, 1])
        p.tick(0)
        assert p.components == (1, 1)

    def test_random_op_sequences_stay_in_lockstep(self):
        """Replay one op stream through both classes; states never drift."""
        rng = random.Random(10)
        width = 5
        packed = PackedVectorClock.initial(0, width)
        listed = VectorClock.initial(0, width)
        for _ in range(200):
            if rng.random() < 0.5:
                owner = rng.randrange(width)
                packed, listed = packed.tick(owner), listed.tick(owner)
            else:
                other = _random_components(rng, width)
                packed = packed.merged(PackedVectorClock(other))
                listed = listed.merged(VectorClock(other))
            assert packed.components == listed.components


class TestComparisonParity:
    def _pairs(self, count=200):
        rng = random.Random(11)
        for _ in range(count):
            a = _random_components(rng, 4)
            # Bias towards comparable pairs: sometimes derive b from a.
            if rng.random() < 0.5:
                b = [c + rng.randrange(0, 3) for c in a]
            else:
                b = _random_components(rng, 4)
            yield a, b

    def test_all_orderings_match(self):
        for a, b in self._pairs():
            pa, pb = PackedVectorClock(a), PackedVectorClock(b)
            va, vb = VectorClock(a), VectorClock(b)
            assert (pa < pb) == (va < vb)
            assert (pa <= pb) == (va <= vb)
            assert (pa > pb) == (va > vb)
            assert (pa >= pb) == (va >= vb)
            assert (pa == pb) == (va == vb)
            assert pa.concurrent_with(pb) == va.concurrent_with(vb)
            assert pa.happened_before(pb) == va.happened_before(vb)

    def test_hash_follows_components(self):
        assert hash(PackedVectorClock([1, 2])) == hash(
            PackedVectorClock([1, 2])
        )

    def test_width_mismatch_rejected(self):
        with pytest.raises(ClockError):
            PackedVectorClock([1]) <= PackedVectorClock([1, 2])

    def test_cross_class_comparison_rejected(self):
        with pytest.raises(ClockError):
            PackedVectorClock([1, 2]) <= VectorClock([1, 2])  # type: ignore[operator]


class TestProjectionParity:
    def test_identity_projection(self):
        comps = [4, 5, 6]
        pids = (0, 1, 2)
        assert (
            PackedVectorClock(comps).project(pids)
            == VectorClock(comps).project(pids)
            == (4, 5, 6)
        )

    def test_subset_projection(self):
        comps = [4, 5, 6, 7]
        for pids in ((0,), (1, 3), (3, 0), (2, 2)):
            assert (
                PackedVectorClock(comps).project(pids)
                == VectorClock(comps).project(pids)
            )

    def test_projection_returns_plain_tuple(self):
        out = PackedVectorClock([1, 2, 3]).project((0, 1, 2))
        assert type(out) is tuple
        assert all(type(c) is int for c in out)

    def test_size_words_matches(self):
        comps = [1, 2, 3, 4]
        assert (
            PackedVectorClock(comps).size_words()
            == VectorClock(comps).size_words()
            == 4
        )


class TestBackendSelectors:
    def test_backends_tuple(self):
        assert CLOCK_BACKENDS == ("list", "packed")

    def test_clock_class(self):
        assert clock_class("list") is VectorClock
        assert clock_class("packed") is PackedVectorClock

    def test_require_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            require_clock_backend("numpy")
        with pytest.raises(ConfigurationError):
            clock_class("numpy")

    def test_require_returns_value(self):
        assert require_clock_backend("packed") == "packed"
