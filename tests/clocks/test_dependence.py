"""Unit tests for Dependence and DependenceList (§4.1 semantics)."""

import pytest

from repro.clocks import Dependence, DependenceList
from repro.common import ClockError


class TestDependence:
    def test_fields(self):
        d = Dependence(source=3, clock=7)
        assert d.source == 3 and d.clock == 7

    def test_ordering_is_total(self):
        assert Dependence(1, 2) < Dependence(1, 3) < Dependence(2, 1)

    def test_negative_source_rejected(self):
        with pytest.raises(ClockError):
            Dependence(-1, 1)

    def test_zero_clock_rejected(self):
        """Interval counters are 1-based; clock 0 is meaningless."""
        with pytest.raises(ClockError):
            Dependence(0, 0)

    def test_size_words(self):
        assert Dependence(0, 1).size_words() == 2

    def test_hashable_value_type(self):
        assert len({Dependence(0, 1), Dependence(0, 1)}) == 1


class TestDependenceList:
    def test_record_appends_in_order(self):
        dl = DependenceList()
        dl.record(1, 5)
        dl.record(0, 2)
        assert dl.peek() == (Dependence(1, 5), Dependence(0, 2))
        assert len(dl) == 2

    def test_flush_returns_and_clears(self):
        dl = DependenceList()
        dl.record(2, 3)
        flushed = dl.flush()
        assert flushed == (Dependence(2, 3),)
        assert len(dl) == 0
        assert dl.flush() == ()

    def test_peek_does_not_clear(self):
        dl = DependenceList()
        dl.record(0, 1)
        dl.peek()
        assert len(dl) == 1

    def test_bool_and_iter(self):
        dl = DependenceList()
        assert not dl
        dl.record(0, 1)
        assert dl
        assert list(dl) == [Dependence(0, 1)]

    def test_construct_from_iterable(self):
        items = [Dependence(0, 1), Dependence(1, 2)]
        assert DependenceList(items).peek() == tuple(items)

    def test_duplicates_are_kept(self):
        """The paper unions at the monitor; the app-side list keeps every
        receive (duplicates carry no harm, only cost)."""
        dl = DependenceList()
        dl.record(0, 1)
        dl.record(0, 1)
        assert len(dl) == 2
