"""Unit tests for VectorClock: construction, comparison, paper properties."""

import pytest

from repro.clocks import VectorClock
from repro.common import ClockError


class TestConstruction:
    def test_from_components(self):
        v = VectorClock([1, 2, 3])
        assert v.components == (1, 2, 3)
        assert v.width == 3
        assert len(v) == 3

    def test_initial_sets_owner_to_one(self):
        v = VectorClock.initial(owner=2, width=4)
        assert v.components == (0, 0, 1, 0)

    def test_zero(self):
        assert VectorClock.zero(3).components == (0, 0, 0)

    def test_empty_rejected(self):
        with pytest.raises(ClockError):
            VectorClock([])

    def test_negative_component_rejected(self):
        with pytest.raises(ClockError):
            VectorClock([1, -1])

    def test_zero_width_rejected(self):
        with pytest.raises(ClockError):
            VectorClock.zero(0)

    def test_initial_owner_out_of_range(self):
        with pytest.raises(ClockError):
            VectorClock.initial(owner=4, width=4)
        with pytest.raises(ClockError):
            VectorClock.initial(owner=-1, width=4)

    def test_components_coerced_to_int(self):
        assert VectorClock([1.0, 2.0]).components == (1, 2)


class TestOperations:
    def test_tick_increments_only_owner(self):
        v = VectorClock([1, 5, 2])
        t = v.tick(1)
        assert t.components == (1, 6, 2)
        assert v.components == (1, 5, 2), "tick must not mutate"

    def test_tick_out_of_range(self):
        with pytest.raises(ClockError):
            VectorClock([1, 2]).tick(2)

    def test_merged_is_componentwise_max(self):
        a = VectorClock([3, 1, 4])
        b = VectorClock([2, 5, 4])
        assert a.merged(b).components == (3, 5, 4)
        assert b.merged(a) == a.merged(b)

    def test_merged_width_mismatch(self):
        with pytest.raises(ClockError):
            VectorClock([1, 2]).merged(VectorClock([1, 2, 3]))

    def test_merged_rejects_non_clock(self):
        with pytest.raises(ClockError):
            VectorClock([1, 2]).merged([1, 2])  # type: ignore[arg-type]

    def test_getitem_and_iter(self):
        v = VectorClock([4, 7])
        assert v[0] == 4 and v[1] == 7
        assert list(v) == [4, 7]

    def test_size_words(self):
        assert VectorClock([0, 0, 0, 0]).size_words() == 4


class TestComparison:
    def test_strictly_less(self):
        assert VectorClock([1, 2]) < VectorClock([1, 3])
        assert VectorClock([1, 2]) <= VectorClock([1, 3])

    def test_equal_not_less(self):
        v = VectorClock([2, 2])
        assert not v < v
        assert v <= v

    def test_concurrent(self):
        a = VectorClock([2, 0])
        b = VectorClock([0, 2])
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)
        assert not a < b and not b < a

    def test_concurrent_with_self_is_false(self):
        v = VectorClock([1, 1])
        assert not v.concurrent_with(v)

    def test_happened_before_matches_lt(self):
        a = VectorClock([1, 1])
        b = VectorClock([2, 1])
        assert a.happened_before(b)
        assert not b.happened_before(a)

    def test_gt_ge(self):
        assert VectorClock([2, 2]) > VectorClock([1, 2])
        assert VectorClock([2, 2]) >= VectorClock([2, 2])

    def test_comparison_width_mismatch(self):
        with pytest.raises(ClockError):
            VectorClock([1]) < VectorClock([1, 2])


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = VectorClock([1, 2])
        b = VectorClock([1, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_inequality_other_type(self):
        assert VectorClock([1]) != (1,)

    def test_repr_roundtrippable_shape(self):
        assert repr(VectorClock([1, 2])) == "VectorClock([1, 2])"


class TestPaperSemantics:
    """The Fig. 2 scenario: clock evolution through a send/receive."""

    def test_send_receive_sequence(self):
        # P0 and P1; P0 sends after one local step.
        v0 = VectorClock.initial(0, 2)
        v1 = VectorClock.initial(1, 2)
        tag = v0  # message tagged before tick
        v0 = v0.tick(0)
        v1 = v1.merged(tag).tick(1)
        assert v0.components == (2, 0)
        assert v1.components == (1, 2)
        # Property 1: the tagged (send-side) state precedes the receiver.
        assert tag < v1
        # Property 2: (0, v1[0]) is exactly the tag's own component.
        assert v1[0] == tag[0]

    def test_causal_chain_through_intermediary(self):
        # P0 -> P1 -> P2: P2's clock knows P0's interval.
        v = [VectorClock.initial(i, 3) for i in range(3)]
        tag0 = v[0]
        v[0] = v[0].tick(0)
        v[1] = v[1].merged(tag0).tick(1)
        tag1 = v[1]
        v[1] = v[1].tick(1)
        v[2] = v[2].merged(tag1).tick(2)
        assert v[2][0] == 1, "P0's interval propagated transitively"
        assert tag0 < v[2]
