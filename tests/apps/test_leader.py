"""Tests for the bully-election split-brain example."""

import pytest

from repro.apps import (
    build_election_system,
    run_live_direct_dep,
    run_live_token_vc,
    split_brain_wcp,
)
from repro.common import ConfigurationError

IMPATIENT = 0.5   # < the ~2.0 unit round trip: the split-brain bug
PATIENT = 10.0


class TestBuggyElection:
    def test_split_brain_detected(self):
        wcp = split_brain_wcp(0, 3)
        apps = build_election_system(4, IMPATIENT, wcp, mode="vc")
        report = run_live_token_vc(apps, wcp, seed=1)
        assert report.detected
        assert not report.sim.deadlocked

    def test_split_brain_detected_dd(self):
        wcp = split_brain_wcp(0, 3)
        apps = build_election_system(4, IMPATIENT, wcp, mode="dd")
        report = run_live_direct_dep(apps, wcp, seed=1)
        assert report.detected

    def test_intermediate_node_pair_also_conflicts(self):
        """Every impatient campaigner self-crowns, so any (campaigner,
        top) pair conflicts."""
        wcp = split_brain_wcp(1, 3)
        apps = build_election_system(4, IMPATIENT, wcp, mode="vc")
        report = run_live_token_vc(apps, wcp, seed=2)
        assert report.detected

    def test_resolves_in_real_time_but_still_detected(self):
        """By run end only the top node holds 'leader' — the split brain
        was transient, which is exactly why causal detection matters."""
        wcp = split_brain_wcp(0, 3)
        apps = build_election_system(4, IMPATIENT, wcp, mode="vc")
        report = run_live_token_vc(apps, wcp, seed=3)
        assert report.detected
        lower = next(a for a in apps if a.pid == 0)
        top = next(a for a in apps if a.pid == 3)
        assert lower.vars["leader"] is False
        assert top.vars["leader"] is True


class TestCorrectElection:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_patient_timeout_no_split_brain(self, seed):
        wcp = split_brain_wcp(0, 3)
        apps = build_election_system(4, PATIENT, wcp, mode="vc")
        report = run_live_token_vc(apps, wcp, seed=seed)
        assert not report.detected
        assert not report.sim.deadlocked

    def test_exactly_one_leader_at_end(self):
        wcp = split_brain_wcp(0, 3)
        apps = build_election_system(4, PATIENT, wcp, mode="vc")
        run_live_token_vc(apps, wcp, seed=5)
        leaders = [a.pid for a in apps if a.vars["leader"]]
        assert leaders == [3]

    def test_two_node_ring(self):
        wcp = split_brain_wcp(0, 1)
        apps = build_election_system(2, PATIENT, wcp, mode="vc")
        report = run_live_token_vc(apps, wcp, seed=1)
        assert not report.detected


class TestValidation:
    def test_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            build_election_system(1, PATIENT, split_brain_wcp(0, 1))

    def test_positive_timeout(self):
        from repro.apps import BullyNode
        from repro.apps.live import app_names

        with pytest.raises(ConfigurationError):
            BullyNode(0, app_names(2), alive_timeout=0)
