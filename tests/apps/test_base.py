"""Unit tests for the live application-process base class."""

import pytest

from repro.apps import APP_MSG_KIND, ApplicationProcess, app_names
from repro.common import ConfigurationError
from repro.predicates import var_true
from repro.simulation import Kernel, Actor, CANDIDATE_KIND, END_OF_TRACE_KIND


class Recorder(Actor):
    """Collects snapshots sent to it until end-of-trace."""

    def __init__(self, name):
        super().__init__(name)
        self.snapshots = []
        self.closed = False

    def run(self):
        while True:
            msg = yield self.receive(CANDIDATE_KIND, END_OF_TRACE_KIND)
            if msg.kind == END_OF_TRACE_KIND:
                self.closed = True
                return
            self.snapshots.append(msg.payload)


class Sender(ApplicationProcess):
    def __init__(self, names, **kw):
        super().__init__(0, names, **kw)

    def behavior(self):
        yield self.set_vars(flag=True)
        yield self.app_send(1, "hello")
        yield self.set_vars(flag=False)
        yield self.set_vars(flag=True)


class Receiver(ApplicationProcess):
    def __init__(self, names, **kw):
        super().__init__(1, names, **kw)
        self.got = None

    def behavior(self):
        msg = yield from self.recv_app()
        self.got = msg.payload
        yield self.set_vars(flag=True)


def wire(mode="vc"):
    names = app_names(2)
    kernel = Kernel()
    mon0, mon1 = Recorder("mon-0"), Recorder("mon-1")
    kernel.add_actor(mon0)
    kernel.add_actor(mon1)
    common = dict(
        predicate=var_true("flag"),
        snapshot_pids=(0, 1),
        mode=mode,
    )
    s = Sender(names, monitor="mon-0", **common)
    r = Receiver(names, monitor="mon-1", **common)
    kernel.add_actor(s)
    kernel.add_actor(r)
    kernel.run()
    return s, r, mon0, mon1


class TestClockMaintenance:
    def test_fig2_clock_evolution(self):
        s, r, *_ = wire()
        # Sender: initial [1,0]; one send ticks to [2,0].
        assert s.vclock == (2, 0)
        # Receiver: initial [0,1]; merge tag [1,0] then tick -> [1,2].
        assert r.vclock == (1, 2)
        assert r.got == "hello"

    def test_interval_counters(self):
        s, r, *_ = wire()
        assert s.counter == 2  # one send
        assert r.counter == 2  # one receive

    def test_app_message_carries_both_tags(self):
        names = app_names(2)
        kernel = Kernel()

        class Probe(ApplicationProcess):
            def __init__(self):
                super().__init__(1, names)
                self.msg = None

            def behavior(self):
                self.msg = yield from self.recv_app()

        class Src(ApplicationProcess):
            def __init__(self):
                super().__init__(0, names)

            def behavior(self):
                yield self.app_send(1, "x")

        probe = Probe()
        kernel.add_actor(probe)
        kernel.add_actor(Src())
        kernel.run()
        assert probe.msg.vclock == (1, 0)
        assert probe.msg.counter == 1
        assert probe.msg.sender == 0


class TestSnapshotEmission:
    def test_one_snapshot_per_interval(self):
        s, _, mon0, _ = wire()
        # Sender: flag true in interval 1 (one snapshot), then in
        # interval 2 it goes F then T again — still one snapshot.
        assert len(mon0.snapshots) == 2
        assert mon0.snapshots[0] == (1, 0)
        assert mon0.snapshots[1] == (2, 0)

    def test_eot_sent_on_completion(self):
        *_, mon0, mon1 = wire()
        assert mon0.closed and mon1.closed

    def test_dd_mode_payloads(self):
        s, r, mon0, mon1 = wire(mode="dd")
        assert mon1.snapshots[0].pid == 1
        # Receiver's flag-raise happens after the receive: interval 2,
        # carrying the dependence on the sender's interval 1.
        deps = mon1.snapshots[0].deps
        assert [(d.source, d.clock) for d in deps] == [(0, 1)]

    def test_no_monitor_no_snapshots(self):
        names = app_names(2)
        kernel = Kernel()

        class Quiet(ApplicationProcess):
            def __init__(self, pid):
                super().__init__(pid, names, predicate=None, monitor=None)

            def behavior(self):
                if self.pid == 0:
                    yield self.app_send(1, "x")
                else:
                    yield from self.recv_app()

        a, b = Quiet(0), Quiet(1)
        kernel.add_actor(a)
        kernel.add_actor(b)
        kernel.run()
        assert a.snapshots_emitted == 0

    def test_initial_state_snapshot(self):
        names = app_names(2)
        kernel = Kernel()
        mon = Recorder("mon-0")
        kernel.add_actor(mon)

        class StartsTrue(ApplicationProcess):
            def __init__(self):
                super().__init__(
                    0,
                    names,
                    predicate=var_true("flag"),
                    monitor="mon-0",
                    snapshot_pids=(0,),
                    initial_vars={"flag": True},
                )

            def behavior(self):
                return
                yield  # pragma: no cover

        class Idle(ApplicationProcess):
            def __init__(self):
                super().__init__(1, names)

            def behavior(self):
                return
                yield  # pragma: no cover

        kernel.add_actor(StartsTrue())
        kernel.add_actor(Idle())
        kernel.run()
        assert mon.snapshots == [(1,)]


class TestValidation:
    def test_self_send_rejected(self):
        names = app_names(2)
        app = ApplicationProcess(0, names)
        with pytest.raises(ConfigurationError):
            app.app_send(0, "x")

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplicationProcess(0, app_names(2), mode="telepathy")
