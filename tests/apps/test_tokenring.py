"""Tests for the quiescence-detection ring example."""

import pytest

from repro.apps import (
    build_ring_system,
    quiescence_wcp,
    run_live_direct_dep,
    run_live_token_vc,
)
from repro.common import ConfigurationError


class TestQuiescence:
    def test_quiescent_cut_detected(self):
        wcp = quiescence_wcp(4)
        apps = build_ring_system(4, jobs=[4, 3, 2], wcp=wcp, mode="vc")
        report = run_live_token_vc(apps, wcp, seed=5)
        assert report.detected
        # Worker 0 starts busy, so the detected cut is past its first
        # interval.
        assert report.cut.component(0) >= 1

    def test_detects_under_dd(self):
        wcp = quiescence_wcp(3)
        apps = build_ring_system(3, jobs=[3, 2], wcp=wcp, mode="dd")
        report = run_live_direct_dep(apps, wcp, seed=2)
        assert report.detected

    def test_ring_terminates_cleanly(self):
        wcp = quiescence_wcp(5)
        apps = build_ring_system(5, jobs=[5, 5, 4, 1], wcp=wcp, mode="vc")
        report = run_live_token_vc(apps, wcp, seed=7)
        assert not report.sim.deadlocked

    def test_no_jobs_trivial_quiescence(self):
        wcp = quiescence_wcp(3)
        apps = build_ring_system(3, jobs=[], wcp=wcp, mode="vc")
        report = run_live_token_vc(apps, wcp, seed=1)
        assert report.detected

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_deterministic_per_seed(self, seed):
        wcp = quiescence_wcp(4)

        def once():
            apps = build_ring_system(4, jobs=[4, 2], wcp=wcp, mode="vc")
            return run_live_token_vc(apps, wcp, seed=seed)

        a, b = once(), once()
        assert a.cut == b.cut
        assert a.detection_time == b.detection_time


class TestValidation:
    def test_minimum_ring_size(self):
        with pytest.raises(ConfigurationError):
            build_ring_system(1, jobs=[], wcp=quiescence_wcp(1))

    def test_job_ttl_capped_at_ring_size(self):
        wcp = quiescence_wcp(3)
        with pytest.raises(ConfigurationError):
            build_ring_system(3, jobs=[4], wcp=wcp)

    def test_only_worker_zero_injects(self):
        from repro.apps import RingWorkerApp
        from repro.apps.live import app_names

        with pytest.raises(ConfigurationError):
            RingWorkerApp(1, app_names(3), jobs=[1])
