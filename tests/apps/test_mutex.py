"""Tests for the mutual-exclusion example (paper example 1)."""

import pytest

from repro.apps import (
    build_mutex_system,
    mutex_wcp,
    run_live_direct_dep,
    run_live_token_vc,
)
from repro.common import ConfigurationError


class TestBuggyCoordinator:
    def test_violation_detected_vc(self):
        wcp = mutex_wcp(1, 2)
        apps = build_mutex_system(3, rounds=3, bug_every=2, wcp=wcp, mode="vc")
        report = run_live_token_vc(apps, wcp, seed=1)
        assert report.detected
        assert report.cut is not None

    def test_violation_detected_dd(self):
        wcp = mutex_wcp(1, 2)
        apps = build_mutex_system(3, rounds=3, bug_every=2, wcp=wcp, mode="dd")
        report = run_live_direct_dep(apps, wcp, seed=1)
        assert report.detected

    def test_vc_and_dd_agree_on_cut(self):
        wcp = mutex_wcp(1, 2)
        vc_apps = build_mutex_system(3, rounds=3, bug_every=2, wcp=wcp, mode="vc")
        dd_apps = build_mutex_system(3, rounds=3, bug_every=2, wcp=wcp, mode="dd")
        vc = run_live_token_vc(vc_apps, wcp, seed=1)
        dd = run_live_direct_dep(dd_apps, wcp, seed=1)
        assert vc.cut == dd.cut

    def test_detection_concerns_concurrency_not_wallclock(self):
        """Even with a long CS (no real-time overlap possible between
        sequential grants), a causally unordered double grant is a
        violation — the whole point of WCP detection."""
        wcp = mutex_wcp(1, 2)
        apps = build_mutex_system(
            2, rounds=2, bug_every=1, wcp=wcp, mode="vc"
        )
        report = run_live_token_vc(apps, wcp, seed=9)
        assert report.detected


class TestCorrectCoordinator:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_no_false_alarm(self, seed):
        wcp = mutex_wcp(1, 2)
        apps = build_mutex_system(3, rounds=3, bug_every=0, wcp=wcp, mode="vc")
        report = run_live_token_vc(apps, wcp, seed=seed)
        assert not report.detected
        assert not report.sim.deadlocked

    def test_no_false_alarm_dd(self):
        wcp = mutex_wcp(1, 2)
        apps = build_mutex_system(3, rounds=2, bug_every=0, wcp=wcp, mode="dd")
        report = run_live_direct_dep(apps, wcp, seed=2)
        assert not report.detected


class TestValidation:
    def test_needs_two_clients(self):
        wcp = mutex_wcp(1, 2)
        with pytest.raises(ConfigurationError):
            build_mutex_system(1, rounds=1, bug_every=0, wcp=wcp)

    def test_negative_bug_rate(self):
        wcp = mutex_wcp(1, 2)
        with pytest.raises(ConfigurationError):
            build_mutex_system(2, rounds=1, bug_every=-1, wcp=wcp)
