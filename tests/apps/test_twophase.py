"""Tests for the 2PL locking example (paper example 2)."""

import pytest

from repro.apps import (
    build_locking_system,
    read_write_conflict_wcp,
    run_live_direct_dep,
    run_live_token_vc,
)
from repro.common import ConfigurationError

SCRIPTS = {
    1: [[("read", "x")], [("read", "y")]],
    2: [[("write", "x")]],
    3: [[("read", "y")]],
}


class TestBuggyManager:
    def test_conflict_detected(self):
        wcp = read_write_conflict_wcp(reader=1, writer=2, item="x")
        apps = build_locking_system(
            SCRIPTS, wcp, allow_write_with_readers=True, mode="vc"
        )
        report = run_live_token_vc(apps, wcp, seed=3)
        assert report.detected

    def test_conflict_detected_dd(self):
        wcp = read_write_conflict_wcp(reader=1, writer=2, item="x")
        apps = build_locking_system(
            SCRIPTS, wcp, allow_write_with_readers=True, mode="dd"
        )
        report = run_live_direct_dep(apps, wcp, seed=3)
        assert report.detected

    def test_unrelated_item_not_flagged(self):
        """Reader on y, writer on x: no conflict predicate on the same
        item, so detection of read_y ∧ write_x still requires causal
        concurrency — which holds — but the paper's predicate is about
        the same item; verify the same-item predicate on a disjoint
        schedule stays quiet."""
        scripts = {1: [[("read", "y")]], 2: [[("write", "x")]]}
        wcp = read_write_conflict_wcp(reader=1, writer=2, item="q")
        apps = build_locking_system(
            scripts, wcp, allow_write_with_readers=True, mode="vc"
        )
        report = run_live_token_vc(apps, wcp, seed=1)
        assert not report.detected


class TestCorrectManager:
    def test_serialized_locks_no_detection(self):
        wcp = read_write_conflict_wcp(reader=1, writer=2, item="x")
        apps = build_locking_system(
            SCRIPTS, wcp, allow_write_with_readers=False, mode="vc"
        )
        report = run_live_token_vc(apps, wcp, seed=3)
        assert not report.detected
        assert not report.sim.deadlocked

    @pytest.mark.parametrize("seed", [0, 5, 11])
    def test_no_false_alarm_across_schedules(self, seed):
        wcp = read_write_conflict_wcp(reader=1, writer=2, item="x")
        apps = build_locking_system(
            SCRIPTS, wcp, allow_write_with_readers=False, mode="vc"
        )
        report = run_live_token_vc(apps, wcp, seed=seed)
        assert not report.detected


class TestValidation:
    def test_script_pids_must_be_contiguous(self):
        wcp = read_write_conflict_wcp(1, 2)
        with pytest.raises(ConfigurationError):
            build_locking_system(
                {2: [[("read", "x")]]}, wcp, allow_write_with_readers=False
            )

    def test_unknown_lock_op(self):
        from repro.apps import TransactionApp
        from repro.apps.live import app_names

        with pytest.raises(ConfigurationError):
            TransactionApp(1, app_names(2), [[("borrow", "x")]])
