"""Coarse performance guards: the polynomial algorithms must stay fast.

These are not micro-benchmarks (those live in ``benchmarks/``); they are
regression tripwires asserting that no accidental quadratic/exponential
blowup creeps into the hot paths.  Budgets are set ~10x above current
timings so they only fire on asymptotic regressions.
"""

import time

from repro.detect import run_detector
from repro.detect.strong import detect_definitely
from repro.predicates import WeakConjunctivePredicate
from repro.trace import random_computation, spiral_computation


def elapsed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestPolynomialBudgets:
    def test_reference_on_large_spiral(self):
        comp = spiral_computation(32, 64)  # ~4k events, ~2k candidates
        wcp = WeakConjunctivePredicate.of_flags(range(32))
        seconds = elapsed(lambda: run_detector("reference", comp, wcp))
        assert seconds < 10.0

    def test_token_vc_on_large_spiral(self):
        comp = spiral_computation(24, 48)
        wcp = WeakConjunctivePredicate.of_flags(range(24))
        seconds = elapsed(lambda: run_detector("token_vc", comp, wcp))
        assert seconds < 20.0

    def test_direct_dep_on_wide_system(self):
        comp = spiral_computation(48, 16)
        wcp = WeakConjunctivePredicate.of_flags(range(48))
        seconds = elapsed(lambda: run_detector("direct_dep", comp, wcp))
        assert seconds < 20.0

    def test_strong_detector_on_large_run(self):
        comp = random_computation(24, 64, seed=1, predicate_density=0.5)
        wcp = WeakConjunctivePredicate.of_flags(range(24))
        seconds = elapsed(lambda: detect_definitely(comp, wcp))
        assert seconds < 10.0

    def test_interval_analysis_linear_sweep(self):
        comp = random_computation(16, 128, seed=2)
        seconds = elapsed(comp.analysis)
        assert seconds < 5.0
