"""Unit tests for table rendering."""

import pytest

from repro.analysis import format_value, render_table


class TestFormatValue:
    def test_booleans(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_small_float(self):
        assert format_value(0.4456) == "0.446"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_large_numbers_grouped(self):
        assert format_value(1234567.0) == "1,234,567"
        assert format_value(123456) == "123,456"

    def test_small_int_plain(self):
        assert format_value(999) == "999"

    def test_string_passthrough(self):
        assert format_value("vc") == "vc"


class TestRenderTable:
    def test_alignment_and_separator(self):
        out = render_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = out.split("\n")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert set(lines[1]) <= {"|", "-"}

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_numbers_right_aligned(self):
        out = render_table(["num"], [[7], [1234]])
        rows = out.split("\n")[2:]
        assert rows[0] == "|    7 |"
        assert rows[1] == "| 1234 |"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out
