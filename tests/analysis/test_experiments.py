"""Smoke-level tests for the experiment harness (small parameters).

The benchmarks run these at full size; tests only assert the structural
and directional properties that must hold at any size.
"""

from repro.analysis import (
    run_e1_token_vc,
    run_e2_direct_dep,
    run_e3_crossover,
    run_e4_multi_token,
    run_e5_parallel_dd,
    run_e6_lower_bound,
    run_e7_vs_centralized,
    run_e8_agreement,
    strip_times,
)
from repro.trace import random_computation


class TestStripTimes:
    def test_removes_all_timestamps(self):
        comp = random_computation(3, 4, seed=1)
        stripped = strip_times(comp)
        for pid in range(3):
            assert all(e.time is None for e in stripped.events_of(pid))
        assert stripped.total_events() == comp.total_events()


class TestE1:
    def test_bounds_hold_and_fits_match_paper(self):
        result = run_e1_token_vc(ns=(4, 8), ms=(8, 16))
        assert all(row[-1] for row in result.rows), "every run detected"
        hops = result.column("token_hops")
        bounds = result.column("hop_bound(nm)")
        assert all(h <= b for h, b in zip(hops, bounds))
        assert 1.8 <= result.fits["total_work"].n_exponent <= 2.2
        assert 0.7 <= result.fits["total_work"].m_exponent <= 1.2


class TestE2:
    def test_bounds_and_per_process_o_m(self):
        result = run_e2_direct_dep(big_ns=(4, 8), ms=(8, 16))
        assert 0.8 <= result.fits["total_work"].n_exponent <= 1.2
        assert 0.7 <= result.fits["total_work"].m_exponent <= 1.2
        # Per-process work identical across N for fixed m.
        by_m = {}
        for row in result.rows:
            by_m.setdefault(row[1], set()).add(row[8])
        for works in by_m.values():
            assert max(works) <= min(works) * 1.5


class TestE3:
    def test_crossover_direction(self):
        result = run_e3_crossover(big_n=16, m=8, n_values=(2, 16))
        assert result.rows[0][7] == "vc"
        assert result.rows[-1][7] == "dd"


class TestE4:
    def test_makespan_shrinks_with_groups(self):
        result = run_e4_multi_token(n=8, m=6, group_counts=(1, 4))
        makespans = {row[0]: row[2] for row in result.rows}
        assert makespans[4] < makespans[1]


class TestE5:
    def test_parallel_speedup(self):
        result = run_e5_parallel_dd(big_n=8, m=6, seeds=(0,))
        assert all(row[3] > 1.0 for row in result.rows)


class TestE6:
    def test_all_strategies_within_bound(self):
        result = run_e6_lower_bound(ns=(3, 5), ms=(4, 8))
        ok_col = result.column("ok")
        assert all(ok_col)
        assert 0.9 <= result.fits["steps_vs_nm"].exponent <= 1.1


class TestE7:
    def test_space_ratio_grows_linearly(self):
        result = run_e7_vs_centralized(ns=(4, 8), m=8)
        assert all(result.column("same_cut"))
        assert 0.8 <= result.fits["space_ratio_vs_n"].exponent <= 1.2


class TestE8:
    def test_everyone_agrees(self):
        result = run_e8_agreement(seeds=(0, 1, 2), num_processes=3, m=4)
        assert all(result.column("all_agree"))


class TestE9:
    def test_policies_detect_same_cut(self):
        from repro.analysis import run_e9_routing_ablation

        result = run_e9_routing_ablation(n=6, m=6, seeds=(0,))
        assert all(row[-1] for row in result.rows)


class TestE10:
    def test_random_beats_spiral(self):
        from repro.analysis import run_e10_average_case

        result = run_e10_average_case(n=5, m=8, densities=(0.2,), seeds=(0, 1))
        spiral_used = result.rows[0][4]
        random_used = result.rows[1][4]
        assert random_used < spiral_used


class TestE11:
    def test_latency_ordering(self):
        from repro.analysis import run_e11_detection_latency

        result = run_e11_detection_latency(ns=(4, 8), m=6, seeds=(0,))
        by_det = {}
        for row in result.rows:
            by_det.setdefault(row[0], []).append(row[2])
        assert max(by_det["centralized"]) <= min(by_det["token_vc"])


class TestE12AndE13:
    def test_e12_agreement(self):
        from repro.analysis import run_e12_strong_predicates

        result = run_e12_strong_predicates(
            sizes=((2, 3), (3, 3)), big_sizes=((6, 8),), seeds=(0,)
        )
        assert all(row[3] for row in result.rows)

    def test_e13_agreement(self):
        from repro.analysis import run_e13_gcp_online

        result = run_e13_gcp_online(
            small_sizes=((3, 4),), big_sizes=((6, 8),), seeds=(0,)
        )
        assert all(row[3] for row in result.rows)
