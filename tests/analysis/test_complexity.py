"""Unit tests for power-law fitting."""

import math

import pytest

from repro.analysis import fit_bivariate, fit_power_law


class TestPowerLaw:
    def test_exact_quadratic(self):
        xs = [2, 4, 8, 16]
        ys = [3 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert abs(fit.exponent - 2.0) < 1e-9
        assert abs(math.exp(fit.intercept) - 3.0) < 1e-6
        assert fit.r_squared > 0.999999

    def test_linear(self):
        fit = fit_power_law([1, 2, 3, 4], [5, 10, 15, 20])
        assert abs(fit.exponent - 1.0) < 1e-9

    def test_noisy_data_reasonable(self):
        xs = [2, 4, 8, 16, 32]
        ys = [1.1 * x**1.5 * (1 + 0.02 * (-1) ** i) for i, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert 1.4 < fit.exponent < 1.6

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([0, 2], [1, 1])

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, 2])


class TestBivariate:
    def test_exact_n2m(self):
        points = [
            (n, m) for n in (2, 4, 8) for m in (3, 9, 27)
        ]
        ns = [p[0] for p in points]
        ms = [p[1] for p in points]
        ys = [7 * n * n * m for n, m in points]
        fit = fit_bivariate(ns, ms, ys)
        assert abs(fit.n_exponent - 2.0) < 1e-9
        assert abs(fit.m_exponent - 1.0) < 1e-9
        assert fit.r_squared > 0.999999

    def test_rank_deficient_rejected(self):
        # m never varies independently.
        ns = [2, 4, 8]
        ms = [2, 4, 8]
        ys = [1, 2, 3]
        with pytest.raises(ValueError, match="vary"):
            fit_bivariate(ns, ms, ys)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_bivariate([1, 2, 3], [1, 2, 3], [1, 0, 1])
