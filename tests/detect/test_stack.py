"""Unit tests for the protocol-stack composition layer.

The algorithm suites exercise the composed classes end to end; these
tests pin the *factory* contract — MRO shape, caching, registration
errors — and the shared plain-protocol token injector.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.detect.base import TOKEN_KIND
from repro.detect.direct_dep import DirectDepMonitor
from repro.detect.direct_dep_parallel import (
    HardenedParallelDDMonitor,
    ParallelDDGlue,
    ParallelDDMonitor,
)
from repro.detect.stack import (
    FailureDetectorMixin,
    ReliableEndpoint,
    StackedMonitor,
    StackGlue,
    TokenInjector,
    harden,
    hardened_variant,
)
from repro.detect.token_vc import TokenVCMonitor
from repro.simulation.kernel import Kernel
from repro.simulation.actors import Actor


class TestHardenFactory:
    def test_mro_puts_glue_before_stack_before_core(self):
        cls = harden(TokenVCMonitor)
        mro = cls.__mro__
        assert mro.index(StackGlue) < mro.index(StackedMonitor)
        assert mro.index(StackedMonitor) < mro.index(TokenVCMonitor)
        # Both middleware layers are present exactly once.
        assert FailureDetectorMixin in mro and ReliableEndpoint in mro

    def test_factory_is_cached_per_core(self):
        assert harden(TokenVCMonitor) is harden(TokenVCMonitor)
        assert harden(TokenVCMonitor) is not harden(DirectDepMonitor)

    def test_hardened_variant_lookup(self):
        assert hardened_variant(ParallelDDMonitor) is HardenedParallelDDMonitor
        assert hardened_variant(Kernel) is None  # no glue registered

    def test_unregistered_core_raises(self):
        class Orphan(Actor):
            pass

        with pytest.raises(ConfigurationError, match="glue"):
            harden(Orphan)

    def test_parallel_dd_hardening_is_pure_composition(self):
        """The §4.5 hardened variant must add no protocol methods of
        its own — its glue only inherits the §4 hooks (plus docs)."""
        own = {
            n
            for n, v in vars(ParallelDDGlue).items()
            if callable(v) and not n.startswith("__")
        }
        assert own == set()
        assert ParallelDDGlue._fd_can_take_over is False

    def test_retry_is_keyword_only(self):
        cls = harden(ParallelDDMonitor)
        with pytest.raises(TypeError):
            cls(0, 3, None, object())  # positional retry must be rejected


class TestTokenInjector:
    def test_sends_one_token_and_exits(self):
        received = []

        class Sink(Actor):
            def run(self):
                msg = yield self.receive()
                received.append((msg.kind, msg.payload, msg.size_bits))

        kernel = Kernel()
        kernel.add_actor(Sink("mon-0"))
        kernel.add_actor(TokenInjector("mon-0", "tok", 17))
        kernel.run()
        assert received == [(TOKEN_KIND, "tok", 17)]
