"""Unit tests for the detector registry and dispatch."""

import pytest

from repro.common import ConfigurationError
from repro.detect import run_detector
from repro.detect.runner import DETECTORS, offline_detectors, online_detectors
from repro.predicates import WeakConjunctivePredicate
from repro.trace import random_computation


class TestRegistry:
    def test_all_expected_detectors_registered(self):
        assert set(DETECTORS) == {
            "reference",
            "lattice",
            "centralized",
            "token_vc",
            "token_vc_multi",
            "direct_dep",
            "direct_dep_parallel",
        }

    def test_partition_offline_online(self):
        assert set(offline_detectors()) == {"reference", "lattice"}
        assert set(online_detectors()) == set(DETECTORS) - {
            "reference",
            "lattice",
        }

    def test_unknown_detector(self):
        comp = random_computation(2, 2, seed=0)
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        with pytest.raises(ConfigurationError, match="unknown detector"):
            run_detector("magic", comp, wcp)

    def test_offline_rejects_options(self):
        comp = random_computation(2, 2, seed=0)
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        with pytest.raises(ConfigurationError, match="takes no options"):
            run_detector("reference", comp, wcp, seed=1)

    def test_dispatch_produces_named_report(self):
        comp = random_computation(3, 3, seed=1, predicate_density=0.5)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        for name in DETECTORS:
            report = run_detector(name, comp, wcp)
            assert report.detector == name

    def test_online_options_forwarded(self):
        comp = random_computation(3, 3, seed=2, plant_final_cut=True)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        report = run_detector("token_vc_multi", comp, wcp, groups=3)
        assert report.extras["groups"] == 3


class TestVerbose:
    def comp_and_wcp(self):
        comp = random_computation(3, 3, seed=2, plant_final_cut=True)
        return comp, WeakConjunctivePredicate.of_flags([0, 1, 2])

    def test_summary_line_on_stderr(self, capsys):
        comp, wcp = self.comp_and_wcp()
        report = run_detector("token_vc", comp, wcp, verbose=True)
        err = capsys.readouterr().err
        assert err.startswith("[repro] token_vc: detected")
        assert f"cut={tuple(report.cut.intervals)}" in err
        assert "msgs=" in err and "work=" in err
        assert "t=" in err

    def test_silent_by_default(self, capsys):
        comp, wcp = self.comp_and_wcp()
        run_detector("token_vc", comp, wcp)
        assert capsys.readouterr().err == ""

    def test_offline_detectors_accept_verbose(self, capsys):
        comp, wcp = self.comp_and_wcp()
        run_detector("reference", comp, wcp, verbose=True)
        assert "[repro] reference: detected" in capsys.readouterr().err


class TestReportValidation:
    def test_detected_requires_cut(self):
        from repro.detect import DetectionReport

        with pytest.raises(ValueError):
            DetectionReport(detector="x", detected=True, cut=None)

    def test_undetected_forbids_cut(self):
        from repro.detect import DetectionReport
        from repro.trace import Cut

        with pytest.raises(ValueError):
            DetectionReport(
                detector="x", detected=False, cut=Cut((0,), (1,))
            )
