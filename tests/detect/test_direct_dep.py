"""Unit tests for the §4 direct-dependence algorithm."""

from repro.detect import reference, direct_dep
from repro.detect.direct_dep import Poll, PollResponse, snapshot_bits
from repro.predicates import WeakConjunctivePredicate, cut_satisfies
from repro.simulation import ExponentialLatency
from repro.trace import (
    is_consistent_cut,
    never_true_computation,
    random_computation,
    spiral_computation,
    worst_case_computation,
)
from repro.trace.snapshots import DDSnapshot


class TestWireTypes:
    def test_poll_fields(self):
        p = Poll(clock=5, next_red=2)
        assert p.clock == 5 and p.next_red == 2

    def test_response(self):
        assert PollResponse(True).became_red

    def test_snapshot_bits(self):
        from repro.clocks import Dependence

        s = DDSnapshot(pid=0, clock=3, deps=(Dependence(1, 2),), state_index=0)
        assert snapshot_bits(s) == (1 + 2) * 32


class TestDetection:
    def test_matches_reference_projection(self):
        for seed in range(10):
            comp = random_computation(
                4, 5, seed=seed, predicate_density=0.3,
                plant_final_cut=(seed % 2 == 0),
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
            rep = direct_dep.detect(comp, wcp, seed=seed)
            ref = reference.detect(comp, wcp)
            assert (rep.detected, rep.cut) == (ref.detected, ref.cut)

    def test_full_cut_consistent_over_all_processes(self):
        comp = random_computation(
            5, 5, seed=3, predicate_density=0.4, predicate_pids=(0, 2),
            plant_final_cut=True,
        )
        wcp = WeakConjunctivePredicate.of_flags([0, 2])
        rep = direct_dep.detect(comp, wcp)
        assert rep.detected
        a = comp.analysis()
        assert rep.full_cut is not None
        assert rep.full_cut.pids == tuple(range(5))
        assert is_consistent_cut(a, rep.full_cut)
        assert rep.full_cut.project(wcp.pids) == rep.cut

    def test_subset_predicate_matches_reference(self):
        for seed in range(6):
            comp = random_computation(
                6, 4, seed=seed + 30, predicate_density=0.35,
                predicate_pids=(1, 4), plant_final_cut=True,
            )
            wcp = WeakConjunctivePredicate.of_flags([1, 4])
            rep = direct_dep.detect(comp, wcp, seed=seed)
            ref = reference.detect(comp, wcp)
            assert rep.cut == ref.cut

    def test_not_detected(self):
        comp = never_true_computation(4, 4, seed=4)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
        rep = direct_dep.detect(comp, wcp)
        assert not rep.detected
        assert rep.extras["aborted"]
        assert not rep.sim.deadlocked

    def test_detected_cut_satisfies(self):
        comp = worst_case_computation(4, 5, seed=5)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
        rep = direct_dep.detect(comp, wcp)
        assert cut_satisfies(comp, wcp, rep.cut)

    def test_robust_to_channel_model(self):
        comp = worst_case_computation(4, 4, seed=6)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
        ref = reference.detect(comp, wcp)
        for chan_seed in range(4):
            rep = direct_dep.detect(
                comp, wcp, seed=chan_seed,
                channel_model=ExponentialLatency(mean=1.5),
            )
            assert rep.cut == ref.cut


class TestComplexityBounds:
    def test_monitor_messages_at_most_3nm(self):
        comp = spiral_computation(4, 5)
        m = comp.max_messages_per_process()
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        rep = direct_dep.detect(comp, wcp)
        # polls + responses + token moves (+ final halt broadcast).
        assert rep.metrics.total_messages("mon-") <= 3 * 4 * (m + 1) + 4

    def test_per_process_work_independent_of_n(self):
        """§4.4: O(m) work per process — growing N with fixed m must not
        grow the heaviest monitor's work."""
        wcp4 = WeakConjunctivePredicate.of_flags(range(4))
        rep4 = direct_dep.detect(spiral_computation(4, 5), wcp4)
        wcp12 = WeakConjunctivePredicate.of_flags(range(12))
        rep12 = direct_dep.detect(spiral_computation(12, 5), wcp12)
        w4 = rep4.metrics.max_work_per_actor("mon-")
        w12 = rep12.metrics.max_work_per_actor("mon-")
        assert w12 <= w4 * 1.5 + 4

    def test_poll_count_bounded_by_dependences(self):
        comp = spiral_computation(5, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(5))
        rep = direct_dep.detect(comp, wcp)
        total_deps = sum(
            len(comp.analysis().receive_dependences(p)) for p in range(5)
        )
        assert rep.extras["polls"] <= total_deps

    def test_token_is_one_bit(self):
        comp = spiral_computation(3, 3)
        wcp = WeakConjunctivePredicate.of_flags(range(3))
        rep = direct_dep.detect(comp, wcp)
        hops = rep.extras["token_hops"]
        token_bits = sum(
            m.sent_by_kind.get("token", 0)
            for name, m in rep.metrics.actors().items()
            if name.startswith("mon-")
        )
        assert hops == token_bits  # 1 bit each: count == messages


class TestMonitorState:
    def test_all_green_at_detection(self):
        comp = worst_case_computation(4, 4, seed=8)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
        rep = direct_dep.detect(comp, wcp)
        assert rep.detected
        # Every component of the full cut is a real interval.
        a = comp.analysis()
        for pid in range(4):
            g = rep.full_cut.component(pid)
            assert 1 <= g <= a.num_intervals(pid)
