"""Tests for the embeddable incremental detector."""

import pytest

from repro.common import DetectionError, InvalidComputationError
from repro.detect import run_detector
from repro.detect.incremental import IncrementalDetector
from repro.predicates import WeakConjunctivePredicate
from repro.trace import random_computation
from repro.trace.events import EventKind
from repro.trace.generators import FLAG_VAR


def feed(detector, comp, order):
    """Feed a computation's events in the given (pid, index) order."""
    for pid, idx in order:
        event = comp.event(pid, idx)
        updates = dict(event.updates)
        if event.kind is EventKind.INTERNAL:
            detector.observe_internal(pid, updates)
        elif event.kind is EventKind.SEND:
            detector.observe_send(pid, event.msg_id, event.peer, updates)
        else:
            detector.observe_recv(pid, event.msg_id, updates)


def initial_vars(comp):
    return {
        pid: dict(comp.processes[pid].initial_vars)
        for pid in range(comp.num_processes)
    }


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(12))
    def test_topological_feed_matches_reference(self, seed):
        comp = random_computation(
            4, 5, seed=seed, predicate_density=0.3,
            plant_final_cut=(seed % 2 == 0),
        )
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        det = IncrementalDetector(4, wcp, initial_vars(comp))
        feed(det, comp, comp.topological_order())
        for pid in range(4):
            det.close(pid)
        ref = run_detector("reference", comp, wcp)
        assert det.detected == ref.detected
        assert det.cut == ref.cut
        if not ref.detected:
            assert det.impossible

    @pytest.mark.parametrize("seed", range(6))
    def test_alternative_feed_orders_agree(self, seed):
        """Any causally legal interleaving yields the same verdict/cut."""
        import random as stdlib_random

        comp = random_computation(
            3, 4, seed=seed + 40, predicate_density=0.4,
            plant_final_cut=True,
        )
        wcp = WeakConjunctivePredicate.of_flags(range(3))
        ref = run_detector("reference", comp, wcp)
        base_order = comp.topological_order()
        rng = stdlib_random.Random(seed)
        for _ in range(3):
            # Randomized legal linearization: repeatedly pick any ready
            # event (per-process order + send-before-receive).
            remaining = {pid: 0 for pid in range(3)}
            sent = set()
            order = []
            while len(order) < len(base_order):
                ready = []
                for pid in range(3):
                    idx = remaining[pid]
                    events = comp.events_of(pid)
                    if idx >= len(events):
                        continue
                    e = events[idx]
                    if e.kind is EventKind.RECV and e.msg_id not in sent:
                        continue
                    ready.append(pid)
                pid = rng.choice(ready)
                idx = remaining[pid]
                event = comp.events_of(pid)[idx]
                if event.kind is EventKind.SEND:
                    sent.add(event.msg_id)
                order.append((pid, idx))
                remaining[pid] += 1
            det = IncrementalDetector(3, wcp, initial_vars(comp))
            feed(det, comp, order)
            assert det.detected == ref.detected
            assert det.cut == ref.cut

    def test_detection_latches_mid_stream(self):
        """Detection can fire before the stream ends and then stays put."""
        comp = random_computation(
            3, 4, seed=2, predicate_density=0.9
        )
        wcp = WeakConjunctivePredicate.of_flags(range(3))
        ref = run_detector("reference", comp, wcp)
        if not ref.detected:
            pytest.skip("workload did not satisfy the predicate")
        det = IncrementalDetector(3, wcp, initial_vars(comp))
        fired_at = None
        order = comp.topological_order()
        for k, node in enumerate(order):
            feed(det, comp, [node])
            if det.detected and fired_at is None:
                fired_at = k
                cut_at_fire = det.cut
        assert fired_at is not None
        assert det.cut == cut_at_fire == ref.cut


class TestVerdicts:
    def test_open_until_evidence(self):
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        det = IncrementalDetector(2, wcp)
        assert det.verdict() == "open"

    def test_impossible_when_closed_without_candidates(self):
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        det = IncrementalDetector(2, wcp)
        det.observe_internal(0, {FLAG_VAR: True})
        det.close(1)
        assert det.verdict() == "impossible"

    def test_detected_immediately_when_initially_true(self):
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        det = IncrementalDetector(
            2, wcp, {0: {FLAG_VAR: True}, 1: {FLAG_VAR: True}}
        )
        assert det.verdict() == "detected"
        assert det.cut.intervals == (1, 1)

    def test_close_idempotent(self):
        wcp = WeakConjunctivePredicate.of_flags([0])
        det = IncrementalDetector(1, wcp)
        det.close(0)
        det.close(0)
        assert det.verdict() == "impossible"


class TestFeedValidation:
    def test_recv_before_send_rejected(self):
        det = IncrementalDetector(2, WeakConjunctivePredicate.of_flags([0]))
        with pytest.raises(InvalidComputationError, match="before its send"):
            det.observe_recv(1, 7)

    def test_duplicate_send_rejected(self):
        det = IncrementalDetector(2, WeakConjunctivePredicate.of_flags([0]))
        det.observe_send(0, 1, dest=1)
        with pytest.raises(InvalidComputationError, match="twice"):
            det.observe_send(0, 1, dest=1)

    def test_self_send_rejected(self):
        det = IncrementalDetector(2, WeakConjunctivePredicate.of_flags([0]))
        with pytest.raises(InvalidComputationError):
            det.observe_send(0, 1, dest=0)

    def test_events_after_close_rejected(self):
        det = IncrementalDetector(2, WeakConjunctivePredicate.of_flags([0]))
        det.close(0)
        with pytest.raises(DetectionError, match="closed"):
            det.observe_internal(0)

    def test_bad_pid(self):
        det = IncrementalDetector(2, WeakConjunctivePredicate.of_flags([0]))
        with pytest.raises(DetectionError):
            det.observe_internal(5)
