"""Unit tests for the failure-detection layer's value types.

The end-to-end takeover behaviour (elections, regeneration, exactness
under partitions) is covered by ``tests/integration/test_fault_tolerance``;
this module pins down the config validation, payload accounting and the
frame-selection rule the election relies on.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import WORD_BITS
from repro.detect.stack import FailureDetectorConfig, TokenFrame
from repro.detect.stack.membership import (
    ELECT_BITS,
    HEARTBEAT_BITS,
    ElectOk,
    Heartbeat,
    RegenRequest,
    best_frames,
)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        cfg = FailureDetectorConfig()
        assert cfg.heartbeat_interval < cfg.suspicion_after < cfg.grace

    @pytest.mark.parametrize("kwargs", [
        {"heartbeat_interval": 0.0},
        {"heartbeat_interval": -1.0},
        {"suspicion_after": 1.0},  # < heartbeat_interval default of 4
        {"grace": 0.0},
        {"election_window": 0.0},
        {"max_idle_rounds": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            FailureDetectorConfig(**kwargs)


class TestPayloadAccounting:
    def test_heartbeat_bits_cover_slot_epoch_holding(self):
        assert HEARTBEAT_BITS == 2 * WORD_BITS + 1
        assert ELECT_BITS == 2 * WORD_BITS

    def test_elect_ok_counts_frames(self):
        empty = ElectOk(epoch=1, slot=0, frames=())
        assert empty.size_bits() == 2 * WORD_BITS
        frame = TokenFrame(hop=3, body=None, gid=0, epoch=1)
        one = ElectOk(epoch=1, slot=0, frames=(frame,))
        # An empty-bodied frame costs its (hop, gid, epoch) header.
        assert one.size_bits() == 2 * WORD_BITS + 3 * WORD_BITS

    def test_elect_ok_counts_token_body(self):
        class Body:
            def size_bits(self):
                return 17

        frame = TokenFrame(hop=1, body=Body(), gid=0, epoch=1)
        ok = ElectOk(epoch=1, slot=0, frames=(frame,))
        assert ok.size_bits() == 2 * WORD_BITS + 3 * WORD_BITS + 17

    def test_regen_request_counts_red_slots(self):
        frame = TokenFrame(hop=1, body=None, gid=0, epoch=2)
        req = RegenRequest(epoch=2, frames=(frame,), red_slots=(0, 2))
        assert req.size_bits() == WORD_BITS * 3 + 3 * WORD_BITS


class TestBestFrames:
    def test_keeps_greatest_epoch_hop_per_gid(self):
        frames = [
            TokenFrame(hop=5, body="a", gid=0, epoch=1),
            TokenFrame(hop=2, body="b", gid=0, epoch=2),  # higher epoch wins
            TokenFrame(hop=9, body="c", gid=1, epoch=1),
            TokenFrame(hop=7, body="d", gid=1, epoch=1),  # lower hop loses
        ]
        best = best_frames(frames)
        assert [(f.gid, f.epoch, f.hop) for f in best] == [
            (0, 2, 2), (1, 1, 9),
        ]
        assert best[0].body == "b"
        assert best[1].body == "c"

    def test_empty_input(self):
        assert best_frames([]) == ()

    def test_result_sorted_by_gid(self):
        frames = [
            TokenFrame(hop=1, body=None, gid=2, epoch=1),
            TokenFrame(hop=1, body=None, gid=0, epoch=1),
        ]
        assert [f.gid for f in best_frames(frames)] == [0, 2]


class TestHeartbeat:
    def test_holding_defaults_false(self):
        beat = Heartbeat(slot=1, epoch=3)
        assert not beat.holding
        assert Heartbeat(slot=1, epoch=3, holding=True).holding
