"""Unit tests for the centralized Garg–Waldecker checker baseline."""

from repro.detect import centralized, reference
from repro.predicates import WeakConjunctivePredicate
from repro.trace import (
    never_true_computation,
    random_computation,
    skewed_concurrent_computation,
    spiral_computation,
    worst_case_computation,
)


class TestDetection:
    def test_matches_reference(self):
        for seed in range(10):
            comp = random_computation(
                4, 5, seed=seed, predicate_density=0.3,
                plant_final_cut=(seed % 2 == 1),
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
            rep = centralized.detect(comp, wcp, seed=seed)
            ref = reference.detect(comp, wcp)
            assert (rep.detected, rep.cut) == (ref.detected, ref.cut)

    def test_not_detected(self):
        comp = never_true_computation(3, 4, seed=1)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        rep = centralized.detect(comp, wcp)
        assert not rep.detected
        assert not rep.sim.deadlocked

    def test_subset(self):
        comp = random_computation(
            5, 5, seed=2, predicate_density=0.4, predicate_pids=(1, 3),
            plant_final_cut=True,
        )
        wcp = WeakConjunctivePredicate.of_flags([1, 3])
        rep = centralized.detect(comp, wcp)
        ref = reference.detect(comp, wcp)
        assert rep.cut == ref.cut

    def test_eliminations_counted(self):
        comp = spiral_computation(3, 4)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        rep = centralized.detect(comp, wcp)
        assert rep.extras["eliminations"] >= 3 * 4
        assert rep.extras["comparisons"] > 0


class TestSpaceConcentration:
    def test_checker_buffers_everything_under_skew(self):
        """The paper's motivation: one slow stream forces the checker to
        buffer all other processes' candidates — O(n^2 m) bits."""
        n, m = 4, 12
        comp = skewed_concurrent_computation(n, m)
        wcp = WeakConjunctivePredicate.of_flags(range(n))
        rep = centralized.detect(comp, wcp)
        assert rep.detected
        checker = rep.metrics.of("checker")
        # At least (n-1) streams x (m/2 - ...) candidates x n words.
        min_expected = (n - 1) * (m // 2 - 1) * n * 32
        assert checker.buffered_bits_high_water >= min_expected

    def test_all_work_on_checker(self):
        comp = spiral_computation(4, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        rep = centralized.detect(comp, wcp)
        assert rep.metrics.of("checker").work_units == rep.metrics.total_work(
            "checker"
        )
        # Monitors do not exist in this algorithm; apps do no "work".
        assert rep.metrics.total_work("app-") == 0
