"""Tests for the online linear-GCP checker ([6]'s algorithm)."""

import pytest

from repro.common import ConfigurationError
from repro.detect.gcp import GeneralizedConjunctivePredicate, detect_gcp
from repro.detect.gcp_online import detect_gcp_online
from repro.predicates import WeakConjunctivePredicate
from repro.predicates.channel import (
    LinearChannelPredicate,
    linear_at_least,
    linear_at_most,
    linear_empty_channel,
)
from repro.trace import ComputationBuilder, random_computation
from repro.trace.generators import FLAG_VAR


class TestLinearPredicates:
    def test_empty_channel_semantics(self):
        p = linear_empty_channel(0, 1)
        assert p.holds_for_count(0)
        assert not p.holds_for_count(2)
        assert p.culprit() == 1  # receiver repairs

    def test_at_most(self):
        p = linear_at_most(0, 1, 2)
        assert p.holds_for_count(2)
        assert not p.holds_for_count(3)
        assert p.culprit() == 1

    def test_at_least(self):
        p = linear_at_least(0, 1, 1)
        assert not p.holds_for_count(0)
        assert p.holds_for_count(1)
        assert p.culprit() == 0  # sender repairs

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            linear_at_most(0, 1, -1)
        with pytest.raises(ConfigurationError):
            LinearChannelPredicate("x", 0, 0, lambda c: True, "receiver")
        with pytest.raises(ConfigurationError):
            LinearChannelPredicate("x", 0, 1, lambda c: True, "sideways")


class TestOnlineMatchesOffline:
    @pytest.mark.parametrize(
        "make_channels",
        [
            lambda: [linear_empty_channel(0, 1)],
            lambda: [linear_at_most(0, 1, 1), linear_empty_channel(1, 2)],
            lambda: [linear_at_least(0, 1, 1)],
            lambda: [linear_empty_channel(0, 1), linear_empty_channel(1, 0)],
        ],
        ids=["empty", "mixed_receiver", "at_least", "both_directions"],
    )
    def test_equivalence_on_random_runs(self, make_channels):
        for seed in range(8):
            comp = random_computation(
                3, 4, seed=seed, predicate_density=0.4,
                plant_final_cut=(seed % 2 == 0),
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
            channels = make_channels()
            online = detect_gcp_online(comp, wcp, channels, seed=seed)
            offline = detect_gcp(
                comp, GeneralizedConjunctivePredicate(wcp, channels)
            )
            assert (online.detected, online.cut) == (
                offline.detected,
                offline.cut,
            ), f"seed {seed}"


class TestChannelElimination:
    def build(self):
        """Flags up everywhere; one message in flight mid-run.

        P0: flag T | send m | ...   P1: flag T | recv m | ...
        """
        b = ComputationBuilder(
            2, initial_vars={p: {FLAG_VAR: True} for p in (0, 1)}
        )
        m = b.send(0, 1)
        b.recv(1, m)
        return b.build()

    def test_empty_channel_pushes_past_in_flight(self):
        comp = self.build()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        report = detect_gcp_online(comp, wcp, [linear_empty_channel(0, 1)])
        assert report.detected
        # The WCP alone holds at (1,1); with the (trivially empty there)
        # channel also at (1,1) — the in-flight state is (2,1).
        assert report.cut.as_mapping() == {0: 1, 1: 1}

    def test_at_least_requires_in_flight(self):
        comp = self.build()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        report = detect_gcp_online(comp, wcp, [linear_at_least(0, 1, 1)])
        assert report.detected
        # Needs the message in flight: P0 past the send, P1 pre-receive.
        assert report.cut.as_mapping() == {0: 2, 1: 1}
        assert report.extras["channel_eliminations"] >= 1

    def test_unsatisfiable_channel_clause(self):
        comp = self.build()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        report = detect_gcp_online(comp, wcp, [linear_at_least(0, 1, 5)])
        assert not report.detected

    def test_pure_wcp_when_no_channels(self):
        from repro.detect import reference

        comp = random_computation(3, 4, seed=3, predicate_density=0.5)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        online = detect_gcp_online(comp, wcp, [])
        ref = reference.detect(comp, wcp)
        assert (online.detected, online.cut) == (ref.detected, ref.cut)

    def test_endpoint_must_be_predicate_process(self):
        comp = self.build()
        wcp = WeakConjunctivePredicate.of_flags([0])
        with pytest.raises(ConfigurationError, match="endpoints"):
            detect_gcp_online(comp, wcp, [linear_empty_channel(0, 1)])
