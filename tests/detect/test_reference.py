"""Unit tests for the offline reference detector."""

from repro.detect import reference
from repro.predicates import (
    WeakConjunctivePredicate,
    brute_force_first_cut,
    cut_satisfies,
)
from repro.trace import (
    never_true_computation,
    random_computation,
    spiral_computation,
    worst_case_computation,
)


class TestFirstSatisfyingCut:
    def test_matches_brute_force_on_random_runs(self):
        for seed in range(15):
            comp = random_computation(
                4, 5, seed=seed, predicate_density=0.3,
                plant_final_cut=(seed % 2 == 0),
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
            cut, _ = reference.first_satisfying_cut(comp, wcp)
            assert cut == brute_force_first_cut(comp, wcp), f"seed {seed}"

    def test_detected_cut_satisfies(self):
        comp = worst_case_computation(4, 6, seed=1)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
        cut, _ = reference.first_satisfying_cut(comp, wcp)
        assert cut is not None
        assert cut_satisfies(comp, wcp, cut)

    def test_none_when_never_true(self):
        comp = never_true_computation(3, 5, seed=2)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        cut, stats = reference.first_satisfying_cut(comp, wcp)
        assert cut is None
        assert stats["eliminations"] == 0  # queues empty from the start

    def test_subset_predicate(self):
        for seed in range(8):
            comp = random_computation(
                6, 5, seed=seed + 50, predicate_density=0.4,
                predicate_pids=(1, 4),
            )
            wcp = WeakConjunctivePredicate.of_flags([1, 4])
            cut, _ = reference.first_satisfying_cut(comp, wcp)
            assert cut == brute_force_first_cut(comp, wcp)

    def test_single_clause(self):
        comp = random_computation(3, 4, seed=3, predicate_density=0.5)
        wcp = WeakConjunctivePredicate.of_flags([1])
        cut, stats = reference.first_satisfying_cut(comp, wcp)
        assert cut == brute_force_first_cut(comp, wcp)
        assert stats["comparisons"] == 0  # nothing to compare against

    def test_spiral_eliminates_everything(self):
        comp = spiral_computation(3, rounds=3)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        cut, stats = reference.first_satisfying_cut(comp, wcp)
        a = comp.analysis()
        assert cut is not None
        assert cut.intervals == tuple(a.num_intervals(p) for p in range(3))
        # All spiral candidates (one per circuit hop) must be eliminated.
        assert stats["eliminations"] >= 3 * 3

    def test_comparisons_bounded_quadratically(self):
        """Each elimination re-checks at most 2(n-1) pairs — the O(n^2 m)
        regime of the paper's centralized algorithm."""
        n, rounds = 5, 6
        comp = spiral_computation(n, rounds=rounds)
        wcp = WeakConjunctivePredicate.of_flags(range(n))
        _, stats = reference.first_satisfying_cut(comp, wcp)
        bound = 2 * (n - 1) * (stats["eliminations"] + n)
        assert stats["comparisons"] <= bound


class TestReport:
    def test_detected_report(self):
        comp = worst_case_computation(3, 4, seed=5)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        report = reference.detect(comp, wcp)
        assert report.detector == "reference"
        assert report.detected and report.cut is not None
        assert "comparisons" in report.extras

    def test_undetected_report(self):
        comp = never_true_computation(3, 4, seed=6)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        report = reference.detect(comp, wcp)
        assert not report.detected and report.cut is None
