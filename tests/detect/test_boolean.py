"""Tests for boolean-predicate detection via the WCP reduction."""

import itertools

import pytest

from repro.detect.boolean import detect_boolean
from repro.predicates import var_true
from repro.predicates.boolexpr import atom
from repro.trace import ComputationBuilder, random_computation
from repro.trace.generators import FLAG_VAR


def flags_expr(*pids):
    expr = atom(pids[0], var_true(FLAG_VAR))
    for pid in pids[1:]:
        expr = expr & atom(pid, var_true(FLAG_VAR))
    return expr


class TestPureConjunctionMatchesWCP:
    def test_equals_reference_wcp(self):
        from repro.detect import run_detector
        from repro.predicates import WeakConjunctivePredicate

        for seed in range(6):
            comp = random_computation(
                3, 4, seed=seed, predicate_density=0.4,
                plant_final_cut=(seed % 2 == 0),
            )
            expr = flags_expr(0, 1, 2)
            via_bool = detect_boolean(comp, expr)
            via_wcp = run_detector(
                "reference", comp, WeakConjunctivePredicate.of_flags([0, 1, 2])
            )
            assert via_bool.detected == via_wcp.detected
            if via_bool.detected:
                assert via_bool.cut == via_wcp.cut


def xor_computation():
    """P0 true then false; P1 false then true; never both, always one.

    P0: flag T in interval 1, F in interval 2.
    P1: flag F in interval 1, T in interval 2.
    Exchange in the middle orders (0,1) before (1,2).
    """
    b = ComputationBuilder(2, initial_vars={0: {FLAG_VAR: True}, 1: {FLAG_VAR: False}})
    b.internal(0, {FLAG_VAR: False})  # still interval 1... toggles inside
    m = b.send(0, 1)
    b.recv(1, m)
    b.internal(1, {FLAG_VAR: True})
    return b.build()


class TestDisjunction:
    def test_or_detected_when_either_holds(self):
        comp = xor_computation()
        expr = atom(0, var_true(FLAG_VAR)) | atom(1, var_true(FLAG_VAR))
        report = detect_boolean(comp, expr)
        assert report.detected
        assert report.extras["disjuncts"] == 2
        # The minimal-level winner is P0's initial truth.
        assert report.cut.as_mapping() == {0: 1}

    def test_conjunction_with_negation(self):
        comp = xor_computation()
        # P0 true AND P1 not true: holds at the initial cut.
        expr = atom(0, var_true(FLAG_VAR)) & ~atom(1, var_true(FLAG_VAR))
        report = detect_boolean(comp, expr)
        assert report.detected
        assert report.cut.as_mapping() == {0: 1, 1: 1}

    def test_unsatisfiable(self):
        comp = xor_computation()
        # P0's flag is eliminated before P1 raises its own? (0,1) happens
        # before (1,2), so "both true" never holds at a consistent cut.
        expr = atom(0, var_true(FLAG_VAR)) & atom(1, var_true(FLAG_VAR))
        report = detect_boolean(comp, expr)
        assert not report.detected
        assert report.extras["disjuncts_detected"] == 0

    def test_tautology_like_or_of_negations(self):
        comp = xor_computation()
        expr = ~atom(0, var_true(FLAG_VAR)) | ~atom(1, var_true(FLAG_VAR))
        report = detect_boolean(comp, expr)
        assert report.detected


class TestDetectorChoice:
    @pytest.mark.parametrize("detector", ["reference", "token_vc", "direct_dep"])
    def test_same_result_with_any_backend(self, detector):
        comp = random_computation(
            3, 4, seed=9, predicate_density=0.4, plant_final_cut=True
        )
        expr = flags_expr(0, 1) | flags_expr(1, 2)
        opts = {} if detector == "reference" else {"seed": 1}
        report = detect_boolean(comp, expr, detector=detector, **opts)
        baseline = detect_boolean(comp, expr)
        assert report.detected == baseline.detected
        assert report.cut == baseline.cut


class TestBruteForceAgreement:
    def test_possibly_semantics_against_exhaustive_search(self):
        """detected iff some consistent cut over BOTH processes realizes
        the expression, checked exhaustively on small runs."""
        from repro.trace import Cut, is_consistent_cut

        for seed in range(5):
            comp = random_computation(2, 3, seed=seed, predicate_density=0.5)
            expr = atom(0, var_true(FLAG_VAR)) & ~atom(1, var_true(FLAG_VAR))
            report = detect_boolean(comp, expr)
            a = comp.analysis()

            def clause_true(pid, interval, want_true):
                states = comp.local_states(pid)
                values = [
                    bool(states[k].get(FLAG_VAR))
                    for k in a.states_in_interval(pid, interval)
                ]
                return any(v == want_true for v in values)

            exhaustive = any(
                is_consistent_cut(a, Cut((0, 1), (x, y)))
                and clause_true(0, x, True)
                and clause_true(1, y, False)
                for x, y in itertools.product(
                    range(1, a.num_intervals(0) + 1),
                    range(1, a.num_intervals(1) + 1),
                )
            )
            assert report.detected == exhaustive, f"seed {seed}"
