"""Unit tests for the Cooper–Marzullo baseline (possibly / definitely)."""

from repro.detect import lattice_cm, reference
from repro.predicates import WeakConjunctivePredicate
from repro.trace import (
    ComputationBuilder,
    never_true_computation,
    random_computation,
)
from repro.trace.generators import FLAG_VAR


class TestPossibly:
    def test_agrees_with_reference(self):
        for seed in range(10):
            comp = random_computation(
                3, 4, seed=seed, predicate_density=0.35,
                plant_final_cut=(seed % 3 == 0),
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
            cut, _ = lattice_cm.possibly(comp, wcp)
            ref_cut, _ = reference.first_satisfying_cut(comp, wcp)
            assert cut == ref_cut, f"seed {seed}"

    def test_stats_populated(self):
        comp = random_computation(3, 4, seed=1, predicate_density=0.3)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        _, stats = lattice_cm.possibly(comp, wcp)
        assert stats["states_explored"] >= 1
        assert stats["max_level_width"] >= 1

    def test_report_shape(self):
        comp = never_true_computation(3, 3, seed=2)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        report = lattice_cm.detect(comp, wcp)
        assert report.detector == "lattice"
        assert not report.detected


def two_proc(flag0_intervals, flag1_intervals, link=False):
    """Two processes with controllable flag intervals.

    Each process: [internal(flag?)] x3 separated by a message exchange
    to create intervals; ``link`` adds a final message P0 -> P1.
    """
    b = ComputationBuilder(2, initial_vars={p: {FLAG_VAR: False} for p in (0, 1)})
    # create 3 intervals on each via two exchanges
    for k in range(3):
        b.internal(0, {FLAG_VAR: (k + 1) in flag0_intervals})
        b.internal(1, {FLAG_VAR: (k + 1) in flag1_intervals})
        if k < 2:
            m = b.send(0, 1)
            b.recv(1, m)
            m2 = b.send(1, 0)
            b.recv(0, m2)
    return b.build()


class TestDefinitely:
    def test_definitely_when_predicate_unavoidable(self):
        """Flag true on both processes in every interval: every path
        passes through a satisfying cut (the initial one already is)."""
        comp = two_proc({1, 2, 3}, {1, 2, 3})
        ok, _ = lattice_cm.definitely(
            comp, WeakConjunctivePredicate.of_flags([0, 1])
        )
        assert ok

    def test_lockstep_exchanges_force_the_cut(self):
        """With tight message lockstep between the two processes, the
        simultaneous flag-true cut lies on every observation path."""
        comp = two_proc({2}, {2})
        definite, _ = lattice_cm.definitely(
            comp, WeakConjunctivePredicate.of_flags([0, 1])
        )
        assert definite

    def test_not_definitely_when_avoidable(self):
        """The classic possibly-but-not-definitely shape: each process
        raises its flag in its (causally independent) second interval.
        An observation can advance P0 through its flag interval before
        P1 enters its own, so the simultaneous cut is avoidable."""
        b = ComputationBuilder(
            3, initial_vars={p: {FLAG_VAR: False} for p in range(3)}
        )
        msgs = []
        for pid in (0, 1):
            msgs.append(b.send(pid, 2))  # closes interval 1 (flag false)
            b.internal(pid, {FLAG_VAR: True})
            b.internal(pid, {FLAG_VAR: False})  # true only inside interval 2
            msgs.append(b.send(pid, 2))  # closes interval 2
            b.internal(pid)  # interval 3, flag false throughout
        for m in msgs:
            b.recv(2, m)
        comp = b.build()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        possible, _ = lattice_cm.possibly(comp, wcp)
        definite, _ = lattice_cm.definitely(comp, wcp)
        assert possible is not None
        assert not definite

    def test_never_true_is_not_definite(self):
        comp = never_true_computation(2, 3, seed=3)
        ok, _ = lattice_cm.definitely(
            comp, WeakConjunctivePredicate.of_flags([0, 1])
        )
        assert not ok

    def test_definitely_implies_possibly(self):
        for seed in range(8):
            comp = random_computation(3, 3, seed=seed, predicate_density=0.5)
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
            definite, _ = lattice_cm.definitely(comp, wcp)
            if definite:
                cut, _ = lattice_cm.possibly(comp, wcp)
                assert cut is not None
