"""The pre-stack module paths still work but warn on import.

``repro.detect.reliability`` and ``repro.detect.failuredetect`` became
thin re-export shims when the layered stack landed; they now emit a
``DeprecationWarning`` at import time while keeping every old name
importable.
"""

import importlib
import sys
import warnings

import pytest

SHIMS = ("repro.detect.reliability", "repro.detect.failuredetect")


def _fresh_import(module_name):
    sys.modules.pop(module_name, None)
    return importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", SHIMS)
def test_import_emits_deprecation_warning(module_name):
    with pytest.warns(DeprecationWarning, match="repro.detect.stack"):
        _fresh_import(module_name)


def test_reliability_reexports_intact():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = _fresh_import("repro.detect.reliability")
    from repro.detect.stack import transport

    for name in ("ReliableEndpoint", "TokenFrame", "RetryPolicy"):
        assert getattr(shim, name) is getattr(transport, name)


def test_failuredetect_reexports_intact():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = _fresh_import("repro.detect.failuredetect")
    from repro.detect.stack import membership

    for name in ("FailureDetectorMixin", "FailureDetectorConfig"):
        assert getattr(shim, name) is getattr(membership, name)
