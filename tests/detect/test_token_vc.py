"""Unit tests for the §3 single-token vector-clock algorithm."""

import pytest

from repro.detect import GREEN, RED, reference, token_vc
from repro.detect.token_vc import VCToken
from repro.predicates import WeakConjunctivePredicate, cut_satisfies
from repro.simulation import ExponentialLatency
from repro.trace import (
    never_true_computation,
    random_computation,
    spiral_computation,
    worst_case_computation,
)


class TestVCToken:
    def test_initial(self):
        t = VCToken.initial(3)
        assert t.G == [0, 0, 0]
        assert t.color == [RED, RED, RED]
        assert not t.all_green()

    def test_all_green(self):
        t = VCToken(G=[1, 2], color=[GREEN, GREEN])
        assert t.all_green()

    def test_size(self):
        assert VCToken.initial(4).size_bits() == 2 * 4 * 32


class TestDetection:
    def test_finds_first_cut(self):
        for seed in range(10):
            comp = random_computation(
                4, 5, seed=seed, predicate_density=0.3,
                plant_final_cut=(seed % 2 == 0),
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
            report = token_vc.detect(comp, wcp, seed=seed)
            ref = reference.detect(comp, wcp)
            assert report.detected == ref.detected
            assert report.cut == ref.cut, f"seed {seed}"

    def test_detected_cut_satisfies(self):
        comp = worst_case_computation(4, 5, seed=3)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
        report = token_vc.detect(comp, wcp)
        assert report.detected
        assert cut_satisfies(comp, wcp, report.cut)

    def test_not_detected_aborts_cleanly(self):
        comp = never_true_computation(3, 5, seed=4)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        report = token_vc.detect(comp, wcp)
        assert not report.detected
        assert report.extras["aborted"]
        assert not report.sim.deadlocked

    def test_single_clause(self):
        comp = random_computation(3, 4, seed=5, predicate_density=0.5)
        wcp = WeakConjunctivePredicate.of_flags([2])
        report = token_vc.detect(comp, wcp)
        ref = reference.detect(comp, wcp)
        assert (report.detected, report.cut) == (ref.detected, ref.cut)

    def test_subset_predicate(self):
        comp = random_computation(
            6, 5, seed=6, predicate_density=0.4, predicate_pids=(0, 3, 5),
            plant_final_cut=True,
        )
        wcp = WeakConjunctivePredicate.of_flags([0, 3, 5])
        report = token_vc.detect(comp, wcp, seed=6)
        ref = reference.detect(comp, wcp)
        assert report.cut == ref.cut

    def test_robust_to_channel_model(self):
        comp = worst_case_computation(4, 5, seed=7)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
        ref = reference.detect(comp, wcp)
        for chan_seed in range(4):
            report = token_vc.detect(
                comp, wcp, seed=chan_seed,
                channel_model=ExponentialLatency(mean=2.0),
            )
            assert report.cut == ref.cut

    def test_detection_time_recorded(self):
        comp = worst_case_computation(3, 4, seed=8)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        report = token_vc.detect(comp, wcp)
        assert report.detected
        assert report.detection_time is not None
        assert report.detection_time > 0


class TestComplexityBounds:
    def test_token_hops_at_most_nm(self):
        for n, rounds in [(3, 4), (5, 3), (4, 6)]:
            comp = spiral_computation(n, rounds)
            m = comp.max_messages_per_process()
            wcp = WeakConjunctivePredicate.of_flags(range(n))
            report = token_vc.detect(comp, wcp)
            assert report.extras["token_hops"] <= n * (m + 1)

    def test_monitor_messages_at_most_2nm(self):
        comp = spiral_computation(4, 5)
        m = comp.max_messages_per_process()
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        report = token_vc.detect(comp, wcp)
        total = report.metrics.total_messages("mon-") + report.metrics.total_messages("app-")
        # token hops + candidates + EOT markers + halt broadcast
        assert total <= 2 * 4 * (m + 1) + 4 + 4

    def test_per_process_work_at_most_nm(self):
        comp = spiral_computation(5, 4)
        m = comp.max_messages_per_process()
        wcp = WeakConjunctivePredicate.of_flags(range(5))
        report = token_vc.detect(comp, wcp)
        # Accounting: <= (m+2) candidates consumed + (2n per visit,
        # visits <= m+2).
        bound = (m + 2) + (m + 2) * 2 * 5
        assert report.metrics.max_work_per_actor("mon-") <= bound

    def test_work_distributed(self):
        """No single monitor does more than ~2/n of the total work on a
        symmetric workload."""
        n = 6
        comp = spiral_computation(n, 5)
        wcp = WeakConjunctivePredicate.of_flags(range(n))
        report = token_vc.detect(comp, wcp)
        total = report.metrics.total_work("mon-")
        worst = report.metrics.max_work_per_actor("mon-")
        assert worst <= 2 * total / n + 2 * n


class TestMonitorInternals:
    def test_winner_cut_equals_token_g(self):
        comp = worst_case_computation(3, 4, seed=9)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        report = token_vc.detect(comp, wcp)
        # The report's cut components must be valid interval indices.
        a = comp.analysis()
        for pid in wcp.pids:
            assert 1 <= report.cut.component(pid) <= a.num_intervals(pid)

    def test_no_candidates_on_one_process(self):
        """A predicate process that is never true forces a clean abort."""
        comp = random_computation(
            3, 4, seed=10, predicate_density=0.8, predicate_pids=(0, 1)
        )
        # pid 2 has no flag events at all; include it in the WCP.
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        report = token_vc.detect(comp, wcp)
        assert not report.detected
        assert report.extras["aborted"]
