"""Membership-scale harness: liveness traffic shape at small sizes.

The committed benchmark (``benchmarks/results/membership_scale.json``)
records the full {8, 32, 128} sweep; this fast test pins the *shape* on
sizes small enough for tier-1: heartbeat liveness bytes grow
super-linearly in the group size, gossip bytes grow ~linearly, and both
modes detect a crash-stop within their documented bounds.
"""

from repro.detect.stack import FailureDetectorConfig
from repro.detect.stack.membersim import run_membership_trial

DURATION = 30.0
CRASH_AT = 8.0


def _trial(mode, n):
    config = FailureDetectorConfig(membership=mode)
    return run_membership_trial(
        n, config, duration=DURATION, crash_at=CRASH_AT
    )


class TestTrafficShape:
    def test_heartbeat_bytes_grow_quadratically(self):
        small, large = _trial("heartbeat", 4), _trial("heartbeat", 12)
        ratio = large.liveness_bytes / small.liveness_bytes
        # N tripled: O(N^2) traffic should grow ~9x; leave slack for
        # constant terms but rule out linear growth.
        assert ratio > 4.5, ratio

    def test_gossip_bytes_grow_linearly(self):
        small, large = _trial("gossip", 4), _trial("gossip", 12)
        ratio = large.liveness_bytes / small.liveness_bytes
        # N tripled: O(N) traffic grows ~3x; rule out quadratic growth.
        assert ratio < 4.5, ratio

    def test_gossip_cheaper_at_scale(self):
        assert (
            _trial("gossip", 12).liveness_bytes
            < _trial("heartbeat", 12).liveness_bytes
        )


class TestDetection:
    def test_both_modes_detect_crash_stop(self):
        # Gossip needs a few probe rounds (round-robin at small N) plus
        # dissemination before the last survivor suspects the victim.
        for mode in ("heartbeat", "gossip"):
            config = FailureDetectorConfig(membership=mode)
            trial = run_membership_trial(
                6, config, duration=60.0, crash_at=CRASH_AT
            )
            assert trial.all_detected, mode
            assert trial.max_detection_latency < 60.0 - CRASH_AT, mode

    def test_gossip_counts_ping_traffic_only(self):
        trial = _trial("gossip", 4)
        assert trial.liveness_bytes > 0
        assert trial.membership == "gossip"


class TestElasticTrial:
    """Scale-out shape at tier-1 sizes; the committed snapshot
    (``benchmarks/results/membership_elastic.json``) records the full
    sweep."""

    def test_group_grows_to_full_size(self):
        from repro.detect.stack.membersim import run_elastic_trial

        trial = run_elastic_trial(
            8, FailureDetectorConfig(membership="gossip"), duration=40.0
        )
        assert trial.n_start == 2
        assert trial.joiners == 6
        assert trial.all_joined
        assert trial.liveness_bytes > 0

    def test_handshake_messages_per_joiner_are_constant(self):
        from repro.detect.stack.membersim import run_elastic_trial

        config = FailureDetectorConfig(membership="gossip")
        small = run_elastic_trial(8, config, duration=40.0)
        large = run_elastic_trial(16, config, duration=40.0)
        assert small.all_joined and large.all_joined
        # The dedicated join cost is the handshake itself — a protocol
        # constant per joiner; dissemination rides existing piggyback.
        assert (
            small.handshake_messages / small.joiners
            == large.handshake_messages / large.joiners
        )

    def test_heartbeat_mode_is_rejected(self):
        import pytest

        from repro.detect.stack.membersim import run_elastic_trial

        with pytest.raises(ValueError):
            run_elastic_trial(8, FailureDetectorConfig())
