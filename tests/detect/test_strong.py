"""Tests for strong conjunctive predicates (polynomial definitely)."""

import pytest

from repro.detect.strong import (
    StrongReport,
    detect_definitely,
    true_intervals_states,
)
from repro.predicates import WeakConjunctivePredicate, var_true
from repro.trace import ComputationBuilder, random_computation
from repro.trace.generators import FLAG_VAR
from repro.trace.state_lattice import definitely_states, possibly_states


class TestTrueIntervals:
    def test_runs_extracted(self):
        b = ComputationBuilder(1, initial_vars={0: {"x": False}})
        b.internal(0, {"x": True})   # s1 T
        b.internal(0, {"x": True})   # s2 T
        b.internal(0, {"x": False})  # s3 F
        b.internal(0, {"x": True})   # s4 T (to end)
        comp = b.build()
        runs = true_intervals_states(comp, 0, var_true("x"))
        assert [(r.first_state, r.last_state) for r in runs] == [(1, 2), (4, 4)]
        assert runs[0].enter_event == 0 and runs[0].exit_event == 2
        assert runs[1].exit_event is None

    def test_true_from_start(self):
        b = ComputationBuilder(1, initial_vars={0: {"x": True}})
        b.internal(0, {"x": False})
        comp = b.build()
        runs = true_intervals_states(comp, 0, var_true("x"))
        assert runs[0].enter_event is None
        assert runs[0].exit_event == 0

    def test_never_true(self):
        b = ComputationBuilder(1)
        b.internal(0)
        comp = b.build()
        assert true_intervals_states(comp, 0, var_true("x")) == []


class TestDetectDefinitely:
    def test_matches_exhaustive_on_random_runs(self):
        for seed in range(25):
            n = 2 + seed % 3
            comp = random_computation(
                n, 3, seed=seed + 500, predicate_density=0.5,
                plant_final_cut=(seed % 3 == 0),
            )
            wcp = WeakConjunctivePredicate.of_flags(range(n))
            fast = detect_definitely(comp, wcp)
            assert isinstance(fast, StrongReport)
            assert fast.holds == definitely_states(comp, wcp), f"seed {seed}"

    def test_definitely_implies_possibly(self):
        for seed in range(15):
            comp = random_computation(
                3, 3, seed=seed, predicate_density=0.6
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
            if detect_definitely(comp, wcp).holds:
                assert possibly_states(comp, wcp)

    def test_never_true_clause(self):
        comp = random_computation(2, 3, seed=1, predicate_density=0.0)
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        report = detect_definitely(comp, wcp)
        assert not report.holds
        assert "never holds" in report.reason

    def test_initially_true_everywhere(self):
        b = ComputationBuilder(
            2, initial_vars={p: {FLAG_VAR: True} for p in (0, 1)}
        )
        m = b.send(0, 1)
        b.recv(1, m)
        comp = b.build()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        report = detect_definitely(comp, wcp)
        assert report.holds
        assert report.box is not None

    def test_lockstep_forces_definitely(self):
        """Flag raised by the receive on P1 while P0's flag spans the
        exchange: every observation passes the joint-true window."""
        b = ComputationBuilder(
            2, initial_vars={p: {FLAG_VAR: False} for p in (0, 1)}
        )
        b.internal(0, {FLAG_VAR: True})
        m = b.send(0, 1)
        b.recv(1, m, {FLAG_VAR: True})
        m2 = b.send(1, 0)
        b.recv(0, m2, {FLAG_VAR: False})
        b.internal(1, {FLAG_VAR: False})
        comp = b.build()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        report = detect_definitely(comp, wcp)
        assert report.holds == definitely_states(comp, wcp)
        assert report.holds

    def test_concurrent_windows_are_avoidable(self):
        """Two flag windows with no synchronization: an observation can
        run one process through its window before the other enters."""
        b = ComputationBuilder(
            3, initial_vars={p: {FLAG_VAR: False} for p in range(3)}
        )
        msgs = []
        for pid in (0, 1):
            b.internal(pid, {FLAG_VAR: True})
            b.internal(pid, {FLAG_VAR: False})
            msgs.append(b.send(pid, 2))
        for m in msgs:
            b.recv(2, m)
        comp = b.build()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        report = detect_definitely(comp, wcp)
        assert not report.holds
        assert possibly_states(comp, wcp)  # possibly-but-not-definitely

    def test_box_is_sane(self):
        comp = random_computation(
            2, 3, seed=7, predicate_density=0.8
        )
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        report = detect_definitely(comp, wcp)
        if report.holds:
            for pid, (first, last) in report.box.items():
                states = comp.local_states(pid)
                clause = wcp.clause(pid)
                assert all(
                    clause(states[k]) for k in range(first, last + 1)
                )


class TestStateLattice:
    def test_possibly_granularities_agree(self):
        from repro.detect import run_detector

        for seed in range(15):
            comp = random_computation(
                3, 3, seed=seed + 900, predicate_density=0.4,
                plant_final_cut=(seed % 2 == 0),
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
            assert possibly_states(comp, wcp) == run_detector(
                "reference", comp, wcp
            ).detected

    def test_initial_cut_consistent(self):
        from repro.trace.state_lattice import StateLatticeAnalysis

        comp = random_computation(3, 4, seed=2)
        analysis = StateLatticeAnalysis(comp)
        assert analysis.is_consistent((0, 0, 0))
        assert analysis.is_consistent(analysis.lengths())

    def test_received_but_unsent_is_inconsistent(self):
        b = ComputationBuilder(2)
        m = b.send(0, 1)
        b.recv(1, m)
        comp = b.build()
        from repro.trace.state_lattice import StateLatticeAnalysis

        analysis = StateLatticeAnalysis(comp)
        # P1 past its receive while P0 has not sent: impossible.
        assert not analysis.is_consistent((0, 1))
        assert analysis.is_consistent((1, 1))
