"""Unit tests for the §4.5 parallel direct-dependence algorithm."""

from repro.detect import direct_dep, direct_dep_parallel, reference
from repro.predicates import WeakConjunctivePredicate
from repro.simulation import ExponentialLatency, FixedLatency
from repro.trace import (
    is_consistent_cut,
    never_true_computation,
    random_computation,
    spiral_computation,
)


class TestDetection:
    def test_matches_reference(self):
        for seed in range(10):
            comp = random_computation(
                4, 5, seed=seed, predicate_density=0.3,
                plant_final_cut=(seed % 2 == 0),
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
            rep = direct_dep_parallel.detect(comp, wcp, seed=seed)
            ref = reference.detect(comp, wcp)
            assert (rep.detected, rep.cut) == (ref.detected, ref.cut), seed

    def test_matches_base_algorithm(self):
        for seed in range(6):
            comp = random_computation(
                5, 4, seed=seed + 40, predicate_density=0.35,
                plant_final_cut=True,
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3, 4])
            par = direct_dep_parallel.detect(comp, wcp, seed=seed)
            base = direct_dep.detect(comp, wcp, seed=seed)
            assert par.cut == base.cut

    def test_not_detected_aborts(self):
        comp = never_true_computation(4, 4, seed=1)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
        rep = direct_dep_parallel.detect(comp, wcp)
        assert not rep.detected
        assert rep.extras["aborted"]
        assert not rep.sim.deadlocked

    def test_full_cut_consistent(self):
        comp = random_computation(
            5, 5, seed=2, predicate_density=0.4, predicate_pids=(1, 3),
            plant_final_cut=True,
        )
        wcp = WeakConjunctivePredicate.of_flags([1, 3])
        rep = direct_dep_parallel.detect(comp, wcp)
        assert rep.detected
        assert is_consistent_cut(comp.analysis(), rep.full_cut)

    def test_robust_to_channel_reordering(self):
        """Concurrent polls under jittery latency must not corrupt the
        red chain; the detected cut stays the reference one."""
        comp = spiral_computation(5, 3)
        wcp = WeakConjunctivePredicate.of_flags(range(5))
        ref = reference.detect(comp, wcp)
        for seed in range(6):
            rep = direct_dep_parallel.detect(
                comp, wcp, seed=seed,
                channel_model=ExponentialLatency(mean=1.3),
            )
            assert rep.cut == ref.cut, seed


class TestConcurrencyBenefit:
    def test_proactive_searches_happen(self):
        comp = spiral_computation(6, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(6))
        rep = direct_dep_parallel.detect(comp, wcp, spacing=0.01)
        assert rep.extras["proactive_searches"] > 0

    def test_makespan_beats_base(self):
        comp = spiral_computation(8, 5)
        wcp = WeakConjunctivePredicate.of_flags(range(8))
        channel = FixedLatency(1.0)
        base = direct_dep.detect(comp, wcp, channel_model=channel, spacing=0.01)
        par = direct_dep_parallel.detect(
            comp, wcp, channel_model=channel, spacing=0.01
        )
        assert base.detected and par.detected
        assert par.detection_time < base.detection_time

    def test_poll_totals_comparable(self):
        """§4.5 adds concurrency, not asymptotic message cost."""
        comp = spiral_computation(6, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(6))
        base = direct_dep.detect(comp, wcp)
        par = direct_dep_parallel.detect(comp, wcp)
        assert par.extras["polls"] <= 2 * base.extras["polls"] + 6
