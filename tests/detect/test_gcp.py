"""Unit tests for the GCP (channel predicate) extension."""

import pytest

from repro.common import ConfigurationError
from repro.detect.gcp import GeneralizedConjunctivePredicate, detect_gcp
from repro.predicates import (
    WeakConjunctivePredicate,
    empty_channel,
    exactly_in_transit,
)
from repro.trace import ComputationBuilder
from repro.trace.generators import FLAG_VAR


def transit_comp():
    """P0 raises its flag, sends to P1; P1 raises its flag after receipt.

    While P0 is past the send and P1 pre-receive, the channel holds one
    message.
    """
    b = ComputationBuilder(2, initial_vars={p: {FLAG_VAR: False} for p in (0, 1)})
    b.internal(0, {FLAG_VAR: True})
    m = b.send(0, 1)
    b.internal(1, {FLAG_VAR: True})
    b.recv(1, m)
    return b.build()


class TestGCPConstruction:
    def test_pids_include_channel_endpoints(self):
        wcp = WeakConjunctivePredicate.of_flags([0])
        gcp = GeneralizedConjunctivePredicate(wcp, [empty_channel(1, 2)])
        assert gcp.pids == (0, 1, 2)

    def test_check_against(self):
        wcp = WeakConjunctivePredicate.of_flags([0])
        gcp = GeneralizedConjunctivePredicate(wcp, [empty_channel(0, 5)])
        with pytest.raises(ConfigurationError):
            gcp.check_against(3)


class TestDetection:
    def test_pure_wcp_matches_reference(self):
        from repro.detect import reference
        from repro.trace import random_computation

        for seed in range(6):
            comp = random_computation(3, 4, seed=seed, predicate_density=0.4)
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
            gcp = GeneralizedConjunctivePredicate(wcp)
            rep = detect_gcp(comp, gcp)
            ref = reference.detect(comp, wcp)
            assert rep.detected == ref.detected
            assert rep.cut == ref.cut

    def test_channel_clause_constrains(self):
        comp = transit_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        # Both flags true with the channel holding exactly one message:
        # P0 at interval 2 (past send), P1 at interval 1 (flag true,
        # pre-receive).
        gcp = GeneralizedConjunctivePredicate(wcp, [exactly_in_transit(0, 1, 1)])
        rep = detect_gcp(comp, gcp)
        assert rep.detected
        assert rep.cut.as_mapping() == {0: 2, 1: 1}

    def test_empty_channel_clause(self):
        comp = transit_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        gcp = GeneralizedConjunctivePredicate(wcp, [empty_channel(0, 1)])
        rep = detect_gcp(comp, gcp)
        assert rep.detected
        # Empty channel + both flags: before the send (P0 interval 1) or
        # after the receive; the first is level-minimal.
        assert rep.cut.as_mapping() == {0: 1, 1: 1}

    def test_unsatisfiable_channel_clause(self):
        comp = transit_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        gcp = GeneralizedConjunctivePredicate(
            wcp, [exactly_in_transit(0, 1, 5)]
        )
        rep = detect_gcp(comp, gcp)
        assert not rep.detected
        assert rep.extras["states_explored"] > 0

    def test_full_cut_projection(self):
        comp = transit_comp()
        wcp = WeakConjunctivePredicate.of_flags([0])
        gcp = GeneralizedConjunctivePredicate(wcp, [empty_channel(0, 1)])
        rep = detect_gcp(comp, gcp)
        assert rep.detected
        assert rep.full_cut is not None
        assert rep.full_cut.pids == (0, 1)
        assert rep.cut.pids == (0,)
