"""Unit tests for the §3.5 multi-token algorithm."""

import pytest

from repro.common import ConfigurationError
from repro.detect import reference, token_vc, token_vc_multi
from repro.detect.token_vc_multi import _partition
from repro.predicates import WeakConjunctivePredicate
from repro.trace import (
    never_true_computation,
    random_computation,
    spiral_computation,
    worst_case_computation,
)
from repro.analysis import strip_times


class TestPartition:
    def test_contiguous_balanced(self):
        groups, group_of = _partition(7, 3)
        assert [len(g) for g in groups] == [3, 2, 2]
        assert group_of == [0, 0, 0, 1, 1, 2, 2]

    def test_more_groups_than_slots_clamped(self):
        groups, group_of = _partition(2, 5)
        assert len(groups) == 2

    def test_single_group(self):
        groups, group_of = _partition(4, 1)
        assert groups == [frozenset({0, 1, 2, 3})]

    def test_zero_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            _partition(4, 0)


class TestDetection:
    @pytest.mark.parametrize("groups", [1, 2, 3])
    def test_matches_reference(self, groups):
        for seed in range(6):
            comp = random_computation(
                5, 4, seed=seed, predicate_density=0.3,
                plant_final_cut=(seed % 2 == 0),
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3, 4])
            rep = token_vc_multi.detect(comp, wcp, seed=seed, groups=groups)
            ref = reference.detect(comp, wcp)
            assert (rep.detected, rep.cut) == (ref.detected, ref.cut), (
                f"seed={seed} g={groups}"
            )

    def test_not_detected(self):
        comp = never_true_computation(4, 4, seed=1)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
        rep = token_vc_multi.detect(comp, wcp, groups=2)
        assert not rep.detected
        assert rep.extras["aborted"]

    def test_subset_predicate(self):
        comp = random_computation(
            6, 4, seed=2, predicate_density=0.4, predicate_pids=(0, 2, 5),
            plant_final_cut=True,
        )
        wcp = WeakConjunctivePredicate.of_flags([0, 2, 5])
        rep = token_vc_multi.detect(comp, wcp, groups=2)
        ref = reference.detect(comp, wcp)
        assert rep.cut == ref.cut

    def test_rounds_counted(self):
        comp = spiral_computation(4, 3)
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        rep = token_vc_multi.detect(comp, wcp, groups=2)
        assert rep.detected
        assert rep.extras["rounds"] >= 1
        assert rep.extras["groups"] == 2


class TestConcurrencyBenefit:
    def test_makespan_improves_with_groups(self):
        """§3.5's point: more tokens, more overlap, earlier detection
        (totals comparable)."""
        comp = spiral_computation(8, 6)
        wcp = WeakConjunctivePredicate.of_flags(range(8))
        single = token_vc.detect(comp, wcp, spacing=0.01)
        multi = token_vc_multi.detect(comp, wcp, groups=4, spacing=0.01)
        assert single.detected and multi.detected
        assert multi.detection_time < single.detection_time

    def test_total_work_unchanged(self):
        comp = spiral_computation(6, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(6))
        single = token_vc.detect(comp, wcp)
        multi = token_vc_multi.detect(comp, wcp, groups=3)
        w1 = single.metrics.total_work("mon-")
        w2 = multi.metrics.total_work("mon-")
        assert w2 <= 2 * w1
