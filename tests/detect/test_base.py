"""Unit tests for detection base vocabulary."""

from repro.detect import app_name, monitor_name
from repro.detect.base import GREEN, HALT_KIND, POLL_KIND, RED, TOKEN_KIND


class TestNaming:
    def test_monitor_name(self):
        assert monitor_name(0) == "mon-0"
        assert monitor_name(12) == "mon-12"

    def test_app_name(self):
        assert app_name(3) == "app-3"

    def test_kinds_distinct(self):
        kinds = {TOKEN_KIND, POLL_KIND, HALT_KIND, "candidate", "end_of_trace"}
        assert len(kinds) == 5

    def test_colors(self):
        assert RED != GREEN
