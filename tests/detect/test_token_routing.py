"""Tests for the token-routing ablation (E9's code path)."""

import pytest

from repro.common import ConfigurationError
from repro.detect import reference, token_vc
from repro.detect.token_vc import TokenVCMonitor
from repro.predicates import WeakConjunctivePredicate
from repro.trace import random_computation, spiral_computation


class TestRoutingOptions:
    def test_invalid_routing_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenVCMonitor(0, 0, ["mon-0"], routing="telekinesis")

    @pytest.mark.parametrize("routing", TokenVCMonitor.ROUTINGS)
    def test_all_policies_find_the_same_first_cut(self, routing):
        for seed in range(5):
            comp = random_computation(
                4, 5, seed=seed, predicate_density=0.3, plant_final_cut=True
            )
            wcp = WeakConjunctivePredicate.of_flags(range(4))
            rep = token_vc.detect(comp, wcp, seed=seed, routing=routing)
            ref = reference.detect(comp, wcp)
            assert rep.cut == ref.cut, f"{routing} seed={seed}"

    @pytest.mark.parametrize("routing", TokenVCMonitor.ROUTINGS)
    def test_policies_respect_the_hop_bound(self, routing):
        comp = spiral_computation(5, 4)
        m = comp.max_messages_per_process()
        wcp = WeakConjunctivePredicate.of_flags(range(5))
        rep = token_vc.detect(comp, wcp, routing=routing)
        assert rep.extras["token_hops"] <= 5 * (m + 1)

    def test_policies_can_differ_in_cost(self):
        """On the spiral the policies take measurably different routes —
        otherwise the ablation would be vacuous."""
        comp = spiral_computation(8, 4)
        wcp = WeakConjunctivePredicate.of_flags(range(8))
        hops = {
            routing: token_vc.detect(comp, wcp, routing=routing).extras[
                "token_hops"
            ]
            for routing in TokenVCMonitor.ROUTINGS
        }
        assert len(set(hops.values())) >= 2, hops
