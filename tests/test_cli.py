"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestGenerate:
    def test_to_stdout(self, capsys):
        assert main(["generate", "--processes", "3", "--sends", "2"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert len(data["processes"]) == 3

    def test_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        code = main(
            [
                "generate", "--processes", "3", "--sends", "2",
                "--seed", "5", "--plant-final-cut", "--out", str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        json.loads(out_file.read_text())

    def test_deterministic(self, tmp_path):
        files = []
        for k in range(2):
            f = tmp_path / f"t{k}.json"
            main(["generate", "--processes", "4", "--sends", "3",
                  "--seed", "9", "--out", str(f)])
            files.append(f.read_text())
        assert files[0] == files[1]


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.json"
    main(
        [
            "generate", "--processes", "3", "--sends", "4", "--seed", "2",
            "--density", "0.3", "--plant-final-cut", "--out", str(path),
        ]
    )
    return path


class TestDetect:
    def test_detects_and_exits_zero(self, trace_file, capsys):
        code = main(["detect", str(trace_file), "--detector", "token_vc"])
        out = capsys.readouterr().out
        assert code == 0
        assert "detected:  True" in out
        assert "first cut:" in out

    def test_undetected_exits_one(self, tmp_path, capsys):
        path = tmp_path / "never.json"
        main(["generate", "--processes", "3", "--sends", "3",
              "--density", "0.0", "--out", str(path)])
        code = main(["detect", str(path)])
        assert code == 1
        assert "detected:  False" in capsys.readouterr().out

    def test_pids_subset(self, trace_file, capsys):
        code = main(["detect", str(trace_file), "--pids", "0,2",
                     "--detector", "reference"])
        assert code in (0, 1)
        assert "flag@P0 ∧ flag@P2" in capsys.readouterr().out

    def test_unknown_detector(self, trace_file):
        with pytest.raises(SystemExit, match="unknown detector"):
            main(["detect", str(trace_file), "--detector", "psychic"])

    def test_missing_trace(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace"):
            main(["detect", str(tmp_path / "nope.json")])

    def test_bad_pids(self, trace_file):
        with pytest.raises(SystemExit, match="comma-separated"):
            main(["detect", str(trace_file), "--pids", "a,b"])


class TestDetectJson:
    def test_machine_readable_verdict(self, trace_file, capsys):
        code = main(["detect", str(trace_file), "--detector", "token_vc",
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)  # nothing but the JSON document on stdout
        assert doc["detector"] == "token_vc"
        assert doc["detected"] is True
        assert doc["outcome"] == "detected"
        assert doc["cut"]["pids"] == [0, 1, 2]
        assert len(doc["cut"]["intervals"]) == 3
        assert doc["metrics"]["totals"]["messages"] > 0
        assert "sim_time" in doc

    def test_json_with_faults_carries_summary(self, trace_file, capsys):
        code = main([
            "detect", str(trace_file), "--detector", "token_vc",
            "--faults", "drop:token:0.2", "--seed", "3", "--json",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code in (0, 1, 2)
        assert "total_message_faults" in doc["faults"]

    def test_undetected_json(self, tmp_path, capsys):
        path = tmp_path / "never.json"
        main(["generate", "--processes", "3", "--sends", "3",
              "--density", "0.0", "--out", str(path)])
        capsys.readouterr()  # drain the generate output
        code = main(["detect", str(path), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["detected"] is False
        assert doc["cut"] is None

    def test_partition_spec_accepted(self, trace_file, capsys):
        code = main(["detect", str(trace_file), "--detector", "token_vc",
                     "--faults", "drop:token:0.1,partition:6:12:mon-0+app-0"])
        out = capsys.readouterr().out
        assert code in (0, 1, 2)
        assert "partition:app-0+mon-0@6..12" in out
        assert "partitions=1" in out

    def test_self_heal_runs_failure_detector(self, trace_file, capsys):
        code = main(["detect", str(trace_file), "--detector", "token_vc",
                     "--faults", "partition:2::mon-0", "--self-heal",
                     "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code in (0, 1, 2)
        assert doc["extras"]["elections"] >= 1

    def test_self_heal_requires_faults(self, trace_file):
        with pytest.raises(SystemExit, match="--self-heal requires"):
            main(["detect", str(trace_file), "--self-heal"])

    def test_self_heal_rejects_no_hardened(self, trace_file):
        with pytest.raises(SystemExit, match="--self-heal needs the hardened"):
            main(["detect", str(trace_file), "--faults", "partition:2::mon-0",
                  "--self-heal", "--no-hardened"])

    def test_gossip_membership_runs_swim(self, trace_file, capsys):
        code = main(["detect", str(trace_file), "--detector", "token_vc",
                     "--faults", "drop:token:0.1,churn:mon-1:4:8:4",
                     "--self-heal", "--membership", "gossip",
                     "--gossip-fanout", "2", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code in (0, 1, 2)
        totals = doc["metrics"]["totals"]
        assert totals["liveness_bytes"] > 0
        sent = doc["metrics"]["actors"]["mon-0"]["sent_by_kind"]
        assert sent.get("ping", 0) > 0
        assert sent.get("heartbeat", 0) == 0

    def test_gossip_membership_requires_self_heal(self, trace_file):
        with pytest.raises(SystemExit, match="--membership gossip needs"):
            main(["detect", str(trace_file), "--faults", "drop:token:0.1",
                  "--membership", "gossip"])

    def test_dead_feeder_names_unobservable_conjuncts(self, trace_file,
                                                      capsys):
        code = main(["detect", str(trace_file), "--detector", "token_vc",
                     "--faults", "crash:app-1:0.5", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 2
        assert doc["outcome"] == "degraded"
        assert doc["degraded"] is True
        assert 1 in doc["extras"]["unobservable"]


class TestDetectTraceOut:
    def test_writes_valid_jsonl(self, trace_file, tmp_path, capsys):
        from repro.obs import load_jsonl

        out = tmp_path / "run.jsonl"
        code = main(["detect", str(trace_file), "--detector", "token_vc",
                     "--trace-out", str(out)])
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        trace = load_jsonl(out)  # validates span ids / parents / times
        assert trace.meta["detector"] == "token_vc"
        assert trace.meta["outcome"] == "detected"
        assert trace.meta["metrics"]["totals"]["messages"] > 0
        assert trace.by_name("token_hop")
        assert all(isinstance(s.start, float) for s in trace.spans)

    def test_offline_detector_rejected(self, trace_file, tmp_path):
        with pytest.raises(SystemExit, match="online detector"):
            main(["detect", str(trace_file), "--detector", "reference",
                  "--trace-out", str(tmp_path / "run.jsonl")])

    def test_verbose_summary_on_stderr(self, trace_file, capsys):
        main(["detect", str(trace_file), "--detector", "token_vc",
              "--verbose"])
        assert "[repro] token_vc:" in capsys.readouterr().err


class TestReport:
    def make_trace(self, trace_file, tmp_path, extra=()):
        out = tmp_path / "run.jsonl"
        main(["detect", str(trace_file), "--detector", "token_vc",
              "--trace-out", str(out), *extra])
        return out

    def test_renders_timeline_and_itinerary(self, trace_file, tmp_path,
                                            capsys):
        out = self.make_trace(trace_file, tmp_path)
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "--- timeline ---" in text
        assert "legend:" in text
        assert "--- token itinerary ---" in text
        assert "--- work/space breakdown (paper units) ---" in text
        assert "--- critical path ---" in text

    def test_fault_overlay_rendered(self, trace_file, tmp_path, capsys):
        out = self.make_trace(
            trace_file, tmp_path,
            extra=["--faults", "crash:mon-1:6:12", "--seed", "3"],
        )
        capsys.readouterr()
        main(["report", str(out)])
        text = capsys.readouterr().out
        assert "--- fault overlay ---" in text
        assert "crash    mon-1" in text

    def test_partition_and_election_overlay(self, trace_file, tmp_path,
                                            capsys):
        out = self.make_trace(
            trace_file, tmp_path,
            extra=["--faults", "partition:2::mon-0", "--self-heal"],
        )
        capsys.readouterr()
        main(["report", str(out)])
        text = capsys.readouterr().out
        lanes = {ln.split()[0]: ln for ln in text.splitlines()
                 if ln and not ln.startswith(("-", "legend", "t="))}
        assert "#" in lanes["net"]  # partition epoch on the net lane
        assert any("E" in lane for name, lane in lanes.items()
                   if name.startswith("mon-"))  # takeover proposals
        assert "partition mon-0 (never healed)" in text

    def test_width_flag(self, trace_file, tmp_path, capsys):
        out = self.make_trace(trace_file, tmp_path)
        capsys.readouterr()
        assert main(["report", str(out), "--width", "40"]) == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace"):
            main(["report", str(tmp_path / "nope.jsonl")])

    def test_garbage_file(self, tmp_path):
        # Two garbage lines: a lone bad line would read as a torn
        # (crash-truncated) file, which loads as empty instead.
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\nstill not json\n")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["report", str(bad)])


class TestInvariantsCli:
    def test_detect_with_invariants_clean(self, trace_file, capsys):
        code = main(["detect", str(trace_file), "--detector", "token_vc",
                     "--invariants", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["extras"]["invariant_violations"] == 0

    def test_invariants_need_online_detector(self, trace_file):
        with pytest.raises(SystemExit, match="require an online detector"):
            main(["detect", str(trace_file), "--detector", "reference",
                  "--invariants"])

    def test_flight_recorder_dumps_on_crashy_run(self, trace_file, tmp_path,
                                                 capsys):
        from repro.obs import load_jsonl

        flight = tmp_path / "crash.flight.jsonl"
        code = main(["detect", str(trace_file), "--detector", "token_vc",
                     "--faults", "crash:mon-1:6:12", "--seed", "3",
                     "--flight-recorder", str(flight)])
        out = capsys.readouterr().out
        assert code in (0, 1, 2)
        assert flight.exists()
        assert "flight:" in out
        dump = load_jsonl(flight)
        assert dump.meta["flight_recorder"] is True
        assert dump.meta["crashes"] == 1

    def test_flight_recorder_silent_on_clean_run(self, trace_file, tmp_path,
                                                 capsys):
        flight = tmp_path / "clean.flight.jsonl"
        code = main(["detect", str(trace_file), "--detector", "token_vc",
                     "--flight-recorder", str(flight)])
        assert code == 0
        assert not flight.exists()
        assert "flight:" not in capsys.readouterr().out


class TestVerifyTrace:
    def recorded(self, trace_file, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        # A faulty run forces the hardened path, whose spans carry the
        # framed-token epochs the mutation tests flip.
        main(["detect", str(trace_file), "--detector", "token_vc",
              "--faults", "drop:token:0.1", "--seed", "3",
              "--trace-out", str(out)])
        capsys.readouterr()
        return out

    def mutate_epoch(self, path):
        """Flip the epoch of the last token frame span in a JSONL trace."""
        lines = path.read_text().splitlines()
        for index in range(len(lines) - 1, -1, -1):
            record = json.loads(lines[index])
            if record.get("name") == "token_hop" and \
                    record.get("attrs", {}).get("frame"):
                record["attrs"]["epoch"] = \
                    int(record["attrs"].get("epoch", 0)) + 7
                lines[index] = json.dumps(record)
                break
        else:
            raise AssertionError("no token frame span in trace")
        path.write_text("\n".join(lines) + "\n")

    def test_clean_trace_exits_zero(self, trace_file, tmp_path, capsys):
        out = self.recorded(trace_file, tmp_path, capsys)
        code = main(["verify-trace", str(out)])
        text = capsys.readouterr().out
        assert code == 0
        assert "0 invariant violations" in text

    def test_mutated_trace_exits_one(self, trace_file, tmp_path, capsys):
        out = self.recorded(trace_file, tmp_path, capsys)
        self.mutate_epoch(out)
        code = main(["verify-trace", str(out)])
        text = capsys.readouterr().out
        assert code == 1
        assert "election_safety" in text
        assert "forged or flipped" in text

    def test_json_output(self, trace_file, tmp_path, capsys):
        out = self.recorded(trace_file, tmp_path, capsys)
        self.mutate_epoch(out)
        code = main(["verify-trace", str(out), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["truncated"] is False
        assert doc["violations"][0]["invariant"] == "election_safety"

    def test_torn_trace_noted(self, trace_file, tmp_path, capsys):
        out = self.recorded(trace_file, tmp_path, capsys)
        raw = out.read_bytes()
        out.write_bytes(raw[: len(raw) - 15])
        code = main(["verify-trace", str(out)])
        text = capsys.readouterr().out
        assert code == 0
        assert "crash-truncated" in text

    def test_flight_dump_verifies_with_window_note(self, trace_file,
                                                   tmp_path, capsys):
        flight = tmp_path / "crash.flight.jsonl"
        main(["detect", str(trace_file), "--detector", "token_vc",
              "--faults", "crash:mon-1:6:12", "--seed", "3",
              "--flight-recorder", str(flight)])
        capsys.readouterr()
        code = main(["verify-trace", str(flight)])
        text = capsys.readouterr().out
        assert code == 0
        assert "windowed" in text

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace file"):
            main(["verify-trace", str(tmp_path / "nope.jsonl")])


class TestStats:
    def test_basic(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "processes (N)" in out
        assert "concurrency ratio" in out

    def test_with_pids(self, trace_file, capsys):
        assert main(["stats", str(trace_file), "--pids", "0,1"]) == 0
        assert "candidates per predicate process" in capsys.readouterr().out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "--only", "e6"]) == 0
        out = capsys.readouterr().out
        assert "E6 lower bound" in out
        assert "fit[steps_vs_nm]" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit, match="unknown experiments"):
            main(["experiments", "--only", "e99"])


class TestDefinitely:
    def test_definitely_holds(self, tmp_path, capsys):
        from repro.trace import ComputationBuilder, dumps

        b = ComputationBuilder(2, initial_vars={p: {"flag": True} for p in (0, 1)})
        m = b.send(0, 1)
        b.recv(1, m)
        path = tmp_path / "def.json"
        path.write_text(dumps(b.build()))
        code = main(["definitely", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "definitely: True" in out
        assert "unavoidable box" in out

    def test_definitely_fails(self, trace_file, capsys):
        # Random flags rarely give a definitely; density-0.3 run with
        # independent windows should not.
        code = main(["definitely", str(trace_file)])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "definitely:" in out


class TestImportLog:
    LOG = (
        "init 0 flag=false\n"
        "init 1 flag=false\n"
        "internal 0 flag=true\n"
        "send 0 m1 1\n"
        "recv 1 m1 flag=true\n"
    )

    def test_import_and_detect(self, tmp_path, capsys):
        log = tmp_path / "run.log"
        log.write_text(self.LOG)
        out = tmp_path / "run.json"
        assert main(["import-log", str(log), "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        code = main(["detect", str(out), "--detector", "reference"])
        assert code == 0

    def test_import_to_stdout(self, tmp_path, capsys):
        log = tmp_path / "run.log"
        log.write_text(self.LOG)
        assert main(["import-log", str(log)]) == 0
        import json

        json.loads(capsys.readouterr().out)

    def test_parse_error_reported(self, tmp_path):
        log = tmp_path / "bad.log"
        log.write_text("warp 0\n")
        with pytest.raises(SystemExit, match="unknown operation"):
            main(["import-log", str(log)])

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such log"):
            main(["import-log", str(tmp_path / "nope.log")])


class TestSweepCommand:
    ARGS = [
        "sweep", "--detectors", "token_vc", "--processes", "4",
        "--sends", "6", "--seeds", "0..1", "--densities", "0",
        "--plant-final-cut",
    ]

    def test_runs_and_prints_group_table(self, tmp_path, capsys):
        code = main(self.ARGS + ["--cache-dir", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep:adhoc" in out
        assert "token_vc/n4/m6" in out
        assert "workload cache" in out

    def test_writes_aggregate_json(self, tmp_path, capsys):
        out_file = tmp_path / "agg.json"
        code = main(
            self.ARGS
            + ["--cache-dir", str(tmp_path / "c"), "--out", str(out_file)]
        )
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == "repro-bench/1"
        assert len(doc["sweep"]["cells"]) == 2

    def test_matrix_file_overrides_inline_axes(self, tmp_path, capsys):
        matrix = tmp_path / "m.json"
        matrix.write_text(json.dumps({
            "name": "filed", "detectors": ["token_vc"],
            "processes": [4], "sends": [4],
        }))
        code = main([
            "sweep", "--matrix", str(matrix),
            "--cache-dir", str(tmp_path / "c"),
        ])
        assert code == 0
        assert "sweep:filed" in capsys.readouterr().out

    def test_seed_range_parsing(self, tmp_path, capsys):
        out_file = tmp_path / "agg.json"
        code = main(
            self.ARGS[:-3] + ["--seeds", "0..3", "--densities", "0",
                              "--cache-dir", str(tmp_path / "c"),
                              "--out", str(out_file), "--quiet"]
        )
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert len(doc["sweep"]["cells"]) == 4

    def test_bad_axis_value_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="bad value"):
            main(["sweep", "--processes", "four"])

    def test_check_invariants_and_trace_sample(self, tmp_path, capsys):
        out_file = tmp_path / "agg.json"
        code = main(self.ARGS + [
            "--cache-dir", str(tmp_path / "c"), "--check-invariants",
            "--trace-sample", "1", "--trace-dir", str(tmp_path / "traces"),
            "--flight-dir", str(tmp_path / "flights"),
            "--out", str(out_file),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "recorded 1 cell traces" in out
        assert "/inv" in out  # group suffix visible in the table
        doc = json.loads(out_file.read_text())
        for cell in doc["sweep"]["cells"]:
            assert cell["units"]["invariant_violations"] == 0
        assert len(list((tmp_path / "traces").glob("*.jsonl"))) == 1

    def test_negative_trace_sample_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="trace-sample"):
            main(self.ARGS + ["--cache-dir", str(tmp_path / "c"),
                              "--trace-sample", "-1"])

    def test_unknown_detector_rejected(self):
        with pytest.raises(SystemExit, match="unknown detector"):
            main(["sweep", "--detectors", "nope"])

    def test_crashing_worker_propagates_nonzero_exit(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.detect.runner as detect_runner
        from repro.common.errors import DetectionError

        def crashy(computation, wcp, **options):
            raise DetectionError("injected crash")

        monkeypatch.setitem(detect_runner.DETECTORS, "crashy", crashy)
        code = main([
            "sweep", "--detectors", "crashy,token_vc", "--processes", "4",
            "--sends", "4", "--workers", "2",
            "--cache-dir", str(tmp_path / "c"), "--quiet",
        ])
        captured = capsys.readouterr()
        assert code == 3
        assert "injected crash" in captured.err


class TestClockBackendCli:
    def test_detect_packed_matches_list_verdict(self, trace_file, capsys):
        reports = {}
        for backend in ("list", "packed"):
            code = main([
                "detect", str(trace_file), "--detector", "token_vc",
                "--clock-backend", backend, "--json",
            ])
            assert code == 0
            reports[backend] = json.loads(capsys.readouterr().out)
        assert reports["packed"]["detected"] == reports["list"]["detected"]
        assert reports["packed"]["cut"] == reports["list"]["cut"]

    def test_detect_packed_rejected_for_offline_detector(self, trace_file):
        with pytest.raises(SystemExit, match="online detector"):
            main([
                "detect", str(trace_file), "--detector", "reference",
                "--clock-backend", "packed",
            ])

    def test_detect_unknown_backend_rejected(self, trace_file):
        with pytest.raises(SystemExit):
            main([
                "detect", str(trace_file), "--detector", "token_vc",
                "--clock-backend", "numpy",
            ])

    def test_sweep_backend_axis_multiplies_cells(self, tmp_path, capsys):
        out_file = tmp_path / "agg.json"
        code = main([
            "sweep", "--detectors", "token_vc,reference",
            "--processes", "4", "--sends", "6", "--densities", "0",
            "--plant-final-cut", "--clock-backends", "list,packed",
            "--cache-dir", str(tmp_path / "c"),
            "--out", str(out_file), "--quiet",
        ])
        assert code == 0
        doc = json.loads(out_file.read_text())
        groups = {cell["group"] for cell in doc["sweep"]["cells"]}
        # token_vc doubles; offline reference stays on the list default.
        assert len(doc["sweep"]["cells"]) == 3
        assert any(group.endswith("/packed") for group in groups)
        packed = [
            cell for cell in doc["sweep"]["cells"]
            if cell["group"].endswith("/packed")
        ]
        listed = [
            cell for cell in doc["sweep"]["cells"]
            if cell["cell"]["detector"] == "token_vc"
            and not cell["group"].endswith("/packed")
        ]
        assert packed[0]["units"] == listed[0]["units"]

    def test_sweep_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="clock backends"):
            main([
                "sweep", "--detectors", "token_vc", "--processes", "4",
                "--sends", "6", "--clock-backends", "numpy",
                "--cache-dir", str(tmp_path / "c"),
            ])


class TestDetectFailurePropagation:
    def test_crashing_detector_exits_nonzero(
        self, trace_file, capsys, monkeypatch
    ):
        import repro.detect.runner as detect_runner
        from repro.common.errors import DetectionError

        def crashy(computation, wcp, **options):
            raise DetectionError("injected crash")

        monkeypatch.setitem(detect_runner.DETECTORS, "crashy", crashy)
        code = main(["detect", str(trace_file), "--detector", "crashy"])
        captured = capsys.readouterr()
        assert code == 3
        assert "injected crash" in captured.err


class TestBenchCheckCommand:
    @pytest.fixture
    def baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        code = main([
            "sweep", "--detectors", "token_vc", "--processes", "4",
            "--sends", "6", "--seeds", "0..1", "--densities", "0",
            "--plant-final-cut", "--cache-dir", str(tmp_path / "c"),
            "--out", str(path), "--quiet",
        ])
        assert code == 0
        return path

    def test_passes_against_itself(self, baseline, tmp_path, capsys):
        code = main([
            "bench-check", str(baseline),
            "--cache-dir", str(tmp_path / "c"),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_seeded_regression_fails(self, baseline, tmp_path, capsys):
        doc = json.loads(baseline.read_text())
        doc["sweep"]["cells"][0]["units"]["token_hops"] += 1
        baseline.write_text(json.dumps(doc))
        code = main([
            "bench-check", str(baseline),
            "--cache-dir", str(tmp_path / "c"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "token_hops" in out

    def test_summary_out_gets_markdown(self, baseline, tmp_path, capsys):
        summary = tmp_path / "summary.md"
        code = main([
            "bench-check", str(baseline),
            "--cache-dir", str(tmp_path / "c"),
            "--summary-out", str(summary),
        ])
        assert code == 0
        assert "PASS" in summary.read_text()

    def test_update_rewrites_baseline(self, baseline, tmp_path, capsys):
        doc = json.loads(baseline.read_text())
        doc["sweep"]["cells"][0]["units"]["token_hops"] += 10
        baseline.write_text(json.dumps(doc))
        code = main([
            "bench-check", str(baseline),
            "--cache-dir", str(tmp_path / "c"), "--update",
        ])
        assert code == 0
        assert "re-baselined" in capsys.readouterr().out
        code = main([
            "bench-check", str(baseline),
            "--cache-dir", str(tmp_path / "c"),
        ])
        assert code == 0

    def test_non_sweep_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro-bench/1", "params": {}}')
        with pytest.raises(SystemExit, match="sweep"):
            main(["bench-check", str(bad)])
