"""Unit tests for computation JSON serialization."""

import pytest

from repro.common import SerializationError
from repro.trace import random_computation
from repro.trace.serialization import (
    computation_from_dict,
    computation_to_dict,
    dumps,
    loads,
)


def signature(comp):
    return [
        [
            (e.kind.value, e.msg_id, e.peer, dict(e.updates), e.time)
            for e in t.events
        ]
        for t in comp.processes
    ]


class TestRoundTrip:
    def test_dict_round_trip(self):
        comp = random_computation(4, 6, seed=1, predicate_density=0.4)
        restored = computation_from_dict(computation_to_dict(comp))
        assert signature(restored) == signature(comp)
        assert restored.num_processes == comp.num_processes

    def test_json_round_trip(self):
        comp = random_computation(3, 4, seed=2)
        restored = loads(dumps(comp))
        assert signature(restored) == signature(comp)

    def test_initial_vars_preserved(self):
        comp = random_computation(3, 4, seed=3)
        restored = loads(dumps(comp))
        for pid in range(3):
            assert dict(restored.processes[pid].initial_vars) == dict(
                comp.processes[pid].initial_vars
            )

    def test_indent_option(self):
        comp = random_computation(2, 2, seed=4)
        assert "\n" in dumps(comp, indent=2)

    def test_analysis_equal_after_round_trip(self):
        comp = random_computation(3, 5, seed=5)
        restored = loads(dumps(comp))
        a, b = comp.analysis(), restored.analysis()
        for pid in range(3):
            assert a.num_intervals(pid) == b.num_intervals(pid)
            for interval in range(1, a.num_intervals(pid) + 1):
                assert a.vector(pid, interval) == b.vector(pid, interval)


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            loads("{not json")

    def test_wrong_version(self):
        comp = random_computation(2, 2, seed=6)
        data = computation_to_dict(comp)
        data["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            computation_from_dict(data)

    def test_missing_key(self):
        with pytest.raises(SerializationError):
            computation_from_dict({"version": 1})

    def test_malformed_event(self):
        with pytest.raises(SerializationError):
            computation_from_dict(
                {
                    "version": 1,
                    "processes": [
                        {"initial_vars": {}, "events": [{"kind": "warp"}]}
                    ],
                }
            )

    def test_structural_validation_still_runs(self):
        # A structurally inconsistent document decodes into events fine
        # but must fail Computation validation.
        from repro.common import InvalidComputationError

        doc = {
            "version": 1,
            "processes": [
                {
                    "initial_vars": {},
                    "events": [{"kind": "recv", "msg_id": 0, "peer": 1}],
                },
                {"initial_vars": {}, "events": []},
            ],
        }
        with pytest.raises(InvalidComputationError):
            computation_from_dict(doc)
