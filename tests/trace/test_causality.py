"""Unit tests for event-level causality, cross-checked with networkx."""

import networkx as nx

from repro.trace import random_computation
from repro.trace.causality import (
    causal_past_sizes,
    concurrent_events,
    event_vector_clocks,
    happened_before_events,
)


def build_hb_graph(comp):
    """Ground-truth happened-before DAG built explicitly."""
    g = nx.DiGraph()
    for pid, trace in enumerate(comp.processes):
        for idx in range(len(trace.events)):
            g.add_node((pid, idx))
            if idx:
                g.add_edge((pid, idx - 1), (pid, idx))
    for rec in comp.messages.values():
        g.add_edge((rec.sender, rec.send_index), (rec.receiver, rec.recv_index))
    return g


class TestEventClocks:
    def test_own_component_counts_events(self):
        comp = random_computation(4, 5, seed=1)
        clocks = event_vector_clocks(comp)
        for pid in range(4):
            for idx, clock in enumerate(clocks[pid]):
                assert clock[pid] == idx + 1

    def test_clocks_match_transitive_closure(self):
        """Fidge–Mattern hb must equal reachability in the explicit DAG."""
        comp = random_computation(4, 4, seed=7)
        clocks = event_vector_clocks(comp)
        g = build_hb_graph(comp)
        closure = nx.transitive_closure_dag(g)
        nodes = list(g.nodes)
        for a in nodes:
            for b in nodes:
                if a == b:
                    continue
                expected = closure.has_edge(a, b)
                assert (
                    happened_before_events(comp, a, b, clocks) == expected
                ), f"{a} -> {b}"

    def test_concurrent_events_symmetric(self):
        comp = random_computation(3, 4, seed=2)
        clocks = event_vector_clocks(comp)
        nodes = [
            (pid, idx)
            for pid in range(3)
            for idx in range(len(comp.events_of(pid)))
        ]
        for a in nodes:
            for b in nodes:
                assert concurrent_events(comp, a, b, clocks) == concurrent_events(
                    comp, b, a, clocks
                )

    def test_causal_past_sizes(self):
        comp = random_computation(3, 4, seed=5)
        sizes = causal_past_sizes(comp)
        g = build_hb_graph(comp)
        closure = nx.transitive_closure_dag(g)
        for pid in range(3):
            for idx in range(len(comp.events_of(pid))):
                assert sizes[pid][idx] == closure.in_degree((pid, idx))

    def test_past_sizes_monotone_along_process(self):
        comp = random_computation(4, 6, seed=9)
        for per_process in causal_past_sizes(comp):
            assert per_process == sorted(per_process)
