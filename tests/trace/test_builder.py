"""Unit tests for ComputationBuilder."""

import pytest

from repro.common import InvalidComputationError
from repro.trace import ComputationBuilder, EventKind


class TestBuilder:
    def test_fluent_chaining(self):
        b = ComputationBuilder(2)
        assert b.internal(0) is b
        m = b.send(0, 1)
        assert isinstance(m, int)
        assert b.recv(1, m) is b

    def test_message_ids_unique_and_sequential(self):
        b = ComputationBuilder(3)
        ids = [b.send(0, 1), b.send(1, 2), b.send(2, 0)]
        assert ids == [0, 1, 2]
        for i, dest in zip(ids, [1, 2, 0]):
            b.recv(dest, i)
        b.build()

    def test_message_convenience(self):
        b = ComputationBuilder(2)
        b.message(0, 1, send_updates={"s": 1}, recv_updates={"r": 1})
        c = b.build()
        assert c.event(0, 0).updates["s"] == 1
        assert c.event(1, 0).updates["r"] == 1

    def test_recv_unknown_message(self):
        b = ComputationBuilder(2)
        with pytest.raises(InvalidComputationError, match="never sent"):
            b.recv(1, 42)

    def test_recv_twice(self):
        b = ComputationBuilder(2)
        m = b.send(0, 1)
        b.recv(1, m)
        with pytest.raises(InvalidComputationError, match="already received"):
            b.recv(1, m)

    def test_recv_wrong_destination(self):
        b = ComputationBuilder(3)
        m = b.send(0, 1)
        with pytest.raises(InvalidComputationError, match="addressed to"):
            b.recv(2, m)
        # Builder stays usable after the error.
        b.recv(1, m)
        b.build()

    def test_self_send_rejected(self):
        b = ComputationBuilder(2)
        with pytest.raises(InvalidComputationError, match="itself"):
            b.send(0, 0)

    def test_pid_out_of_range(self):
        b = ComputationBuilder(2)
        with pytest.raises(InvalidComputationError):
            b.internal(5)

    def test_zero_processes_rejected(self):
        with pytest.raises(InvalidComputationError):
            ComputationBuilder(0)

    def test_initial_vars(self):
        b = ComputationBuilder(2, initial_vars={1: {"q": 9}})
        c = b.build()
        assert c.local_states(1)[0]["q"] == 9
        assert dict(c.local_states(0)[0]) == {}

    def test_set_initial_overrides(self):
        b = ComputationBuilder(1)
        b.set_initial(0, {"z": 3})
        assert b.build().local_states(0)[0]["z"] == 3

    def test_unreceived_rejected_unless_allowed(self):
        b = ComputationBuilder(2)
        b.send(0, 1)
        with pytest.raises(InvalidComputationError):
            b.build()
        c = b.build(allow_unreceived=True)
        assert c.event(0, 0).kind is EventKind.SEND

    def test_build_non_destructive(self):
        b = ComputationBuilder(2)
        b.internal(0)
        c1 = b.build()
        b.internal(1)
        c2 = b.build()
        assert c1.total_events() == 1
        assert c2.total_events() == 2

    def test_timestamps_pass_through(self):
        b = ComputationBuilder(2)
        m = b.send(0, 1, time=1.0)
        b.recv(1, m, time=2.0)
        c = b.build()
        assert c.event(0, 0).time == 1.0
        assert c.event(1, 0).time == 2.0
