"""Unit tests for Event and ProcessTrace."""

import pytest

from repro.common import InvalidComputationError
from repro.trace import Event, EventKind, ProcessTrace


class TestEvent:
    def test_internal_constructor(self):
        e = Event.internal({"x": 1}, time=2.0)
        assert e.kind is EventKind.INTERNAL
        assert e.msg_id is None and e.peer is None
        assert dict(e.updates) == {"x": 1}
        assert e.time == 2.0

    def test_send_constructor(self):
        e = Event.send(5, dest=2)
        assert e.kind is EventKind.SEND
        assert e.msg_id == 5 and e.peer == 2

    def test_recv_constructor(self):
        e = Event.recv(5, src=1)
        assert e.kind is EventKind.RECV
        assert e.msg_id == 5 and e.peer == 1

    def test_internal_with_msg_id_rejected(self):
        with pytest.raises(InvalidComputationError):
            Event(EventKind.INTERNAL, msg_id=1)

    def test_send_without_msg_id_rejected(self):
        with pytest.raises(InvalidComputationError):
            Event(EventKind.SEND, msg_id=None, peer=1)

    def test_send_without_peer_rejected(self):
        with pytest.raises(InvalidComputationError):
            Event(EventKind.SEND, msg_id=1, peer=None)

    def test_negative_msg_id_rejected(self):
        with pytest.raises(InvalidComputationError):
            Event.send(-1, dest=0)

    def test_negative_peer_rejected(self):
        with pytest.raises(InvalidComputationError):
            Event.send(0, dest=-1)

    def test_updates_are_frozen(self):
        e = Event.internal({"x": 1})
        with pytest.raises(TypeError):
            e.updates["x"] = 2  # type: ignore[index]

    def test_updates_copied_defensively(self):
        src = {"x": 1}
        e = Event.internal(src)
        src["x"] = 99
        assert e.updates["x"] == 1

    def test_is_communication(self):
        assert Event.send(0, 1).kind.is_communication
        assert Event.recv(0, 1).kind.is_communication
        assert not Event.internal().kind.is_communication


class TestProcessTrace:
    def test_len_and_communication_count(self):
        t = ProcessTrace(
            (Event.internal(), Event.send(0, 1), Event.recv(1, 1)),
        )
        assert len(t) == 3
        assert t.communication_count == 2

    def test_initial_vars_frozen(self):
        t = ProcessTrace((), {"a": 1})
        with pytest.raises(TypeError):
            t.initial_vars["a"] = 2  # type: ignore[index]

    def test_nondecreasing_times_ok(self):
        ProcessTrace((Event.internal(time=1.0), Event.internal(time=1.0)))

    def test_decreasing_times_rejected(self):
        with pytest.raises(InvalidComputationError):
            ProcessTrace((Event.internal(time=2.0), Event.internal(time=1.0)))

    def test_mixed_timed_untimed_ok(self):
        ProcessTrace(
            (Event.internal(time=1.0), Event.internal(), Event.internal(time=3.0))
        )
