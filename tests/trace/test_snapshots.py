"""Unit tests for snapshot extraction (Fig. 2 / §4.1 app-side behaviour)."""

from repro.clocks import Dependence
from repro.predicates import flag_predicate
from repro.trace import (
    ComputationBuilder,
    dd_snapshots,
    emission_points,
    random_computation,
    true_intervals,
    vc_snapshots,
)
from repro.trace.generators import FLAG_VAR


def flag(state):
    return bool(state.get(FLAG_VAR, False))


def build_flagged():
    """P0: flag toggles around communication; P1 passive.

    P0 events: int(T) | send m | int(T) int(F) int(T) | — flag true in
    intervals 1 and 2; the second True inside interval 2 must NOT emit
    again (firstflag behaviour).
    """
    b = ComputationBuilder(2, initial_vars={0: {FLAG_VAR: False}, 1: {}})
    b.internal(0, {FLAG_VAR: True})
    m = b.send(0, 1)
    b.internal(0, {FLAG_VAR: True})
    b.internal(0, {FLAG_VAR: False})
    b.internal(0, {FLAG_VAR: True})
    b.recv(1, m)
    return b.build()


class TestEmissionPoints:
    def test_once_per_interval(self):
        comp = build_flagged()
        points = emission_points(comp, 0, flag)
        assert [iv for iv, _ in points] == [1, 2]

    def test_emission_at_first_true_state(self):
        comp = build_flagged()
        points = emission_points(comp, 0, flag)
        # Interval 1: first true state is s1 (post first internal).
        # Interval 2: the flag is still true at s2 (the post-send state —
        # sends do not clear variables), so emission happens immediately
        # at the interval boundary, exactly like Fig. 2's firstflag.
        assert points == [(1, 1), (2, 2)]

    def test_true_initial_state_emits(self):
        b = ComputationBuilder(1, initial_vars={0: {FLAG_VAR: True}})
        comp = b.build()
        assert emission_points(comp, 0, flag) == [(1, 0)]

    def test_never_true_no_points(self):
        b = ComputationBuilder(1)
        b.internal(0)
        comp = b.build()
        assert emission_points(comp, 0, flag) == []

    def test_true_intervals_helper(self):
        comp = build_flagged()
        assert true_intervals(comp, 0, flag) == [1, 2]


class TestVCSnapshots:
    def test_vectors_match_analysis(self):
        comp = build_flagged()
        streams = vc_snapshots(comp, {0: flag})
        a = comp.analysis()
        assert [s.interval for s in streams[0]] == [1, 2]
        for snap in streams[0]:
            assert snap.vector == a.vector(0, snap.interval)

    def test_only_requested_pids(self):
        comp = build_flagged()
        streams = vc_snapshots(comp, {0: flag})
        assert set(streams) == {0}

    def test_stream_in_fifo_order(self):
        comp = random_computation(4, 6, seed=3, predicate_density=0.5)
        streams = vc_snapshots(comp, {p: flag for p in range(4)})
        for stream in streams.values():
            intervals = [s.interval for s in stream]
            assert intervals == sorted(intervals)
            assert len(set(intervals)) == len(intervals)


class TestDDSnapshots:
    def test_all_processes_participate(self):
        comp = build_flagged()
        streams = dd_snapshots(comp, {0: flag})
        assert set(streams) == {0, 1}

    def test_non_predicate_process_snapshots_every_interval(self):
        comp = build_flagged()
        streams = dd_snapshots(comp, {0: flag})
        a = comp.analysis()
        assert [s.clock for s in streams[1]] == list(
            range(1, a.num_intervals(1) + 1)
        )

    def test_dependences_flushed_once(self):
        """A receive's dependence appears in exactly one snapshot."""
        comp = random_computation(4, 6, seed=5, predicate_density=0.6)
        streams = dd_snapshots(comp, {p: flag for p in range(4)})
        a = comp.analysis()
        for pid in range(4):
            emitted = [d for s in streams[pid] for d in s.deps]
            all_deps = [d for _, d in a.receive_dependences(pid)]
            # Every emitted dep is real and no dep is emitted twice more
            # than it occurs.
            assert sorted(emitted) == sorted(
                all_deps[: len(emitted)]
            ) or all(d in all_deps for d in emitted)
            # Prefix property: snapshots flush deps in receive order.
            assert emitted == all_deps[: len(emitted)]

    def test_dep_goes_to_first_snapshot_after_receive(self):
        b = ComputationBuilder(2, initial_vars={0: {FLAG_VAR: True}, 1: {}})
        m = b.send(1, 0)
        b.recv(0, m)
        comp = b.build()
        streams = dd_snapshots(comp, {0: flag})
        # P0: interval 1 snapshot at s0 (no deps), interval 2 snapshot at
        # post-recv state carrying the dependence on P1's interval 1.
        assert streams[0][0].deps == ()
        assert streams[0][1].deps == (Dependence(1, 1),)

    def test_clock_equals_interval(self):
        comp = random_computation(3, 5, seed=6, predicate_density=0.4)
        streams = dd_snapshots(comp, {p: flag for p in range(3)})
        for pid, stream in streams.items():
            for snap in stream:
                assert snap.clock >= 1
                assert snap.pid == pid
