"""Unit tests for the consistent-cut lattice enumeration."""

import itertools

from repro.trace import (
    ComputationBuilder,
    Cut,
    consistent_successors,
    count_consistent_cuts,
    initial_cut,
    is_consistent_cut,
    iter_consistent_cuts,
    random_computation,
)


class TestInitialCut:
    def test_all_ones(self, diamond_computation):
        a = diamond_computation.analysis()
        c = initial_cut(a, (0, 1, 2))
        assert c.intervals == (1, 1, 1)

    def test_always_consistent(self):
        for seed in range(5):
            comp = random_computation(4, 5, seed=seed)
            a = comp.analysis()
            assert is_consistent_cut(a, initial_cut(a, range(4)))


class TestSuccessors:
    def test_successors_are_consistent_increments(self, diamond_computation):
        a = diamond_computation.analysis()
        start = initial_cut(a, (0, 1, 2))
        for succ in consistent_successors(a, start):
            assert is_consistent_cut(a, succ)
            diffs = [
                s - t for s, t in zip(succ.intervals, start.intervals)
            ]
            assert sorted(diffs) == [0, 0, 1]

    def test_no_successor_beyond_trace(self):
        comp = ComputationBuilder(2).build()  # one interval each
        a = comp.analysis()
        assert consistent_successors(a, initial_cut(a, (0, 1))) == []


class TestEnumeration:
    def test_matches_brute_force(self):
        """BFS enumeration equals filtering the full product by
        consistency."""
        comp = random_computation(3, 3, seed=13)
        a = comp.analysis()
        pids = (0, 1, 2)
        via_bfs = {c.intervals for c in iter_consistent_cuts(a, pids)}
        ranges = [range(1, a.num_intervals(p) + 1) for p in pids]
        via_product = {
            combo
            for combo in itertools.product(*ranges)
            if is_consistent_cut(a, Cut(pids, combo))
        }
        assert via_bfs == via_product

    def test_each_cut_once(self):
        comp = random_computation(3, 4, seed=17)
        a = comp.analysis()
        cuts = [c.intervals for c in iter_consistent_cuts(a, (0, 1, 2))]
        assert len(cuts) == len(set(cuts))

    def test_level_order(self):
        comp = random_computation(3, 4, seed=19)
        a = comp.analysis()
        levels = [sum(c.intervals) for c in iter_consistent_cuts(a, (0, 1, 2))]
        assert levels == sorted(levels)

    def test_count(self, two_process_exchange):
        a = two_process_exchange.analysis()
        # Hand count: consistent (x, y) pairs among 3x3 interval grid.
        expected = sum(
            1
            for x in range(1, 4)
            for y in range(1, 4)
            if is_consistent_cut(a, Cut((0, 1), (x, y)))
        )
        assert count_consistent_cuts(a, (0, 1)) == expected

    def test_top_and_bottom_present(self):
        comp = random_computation(3, 4, seed=23)
        a = comp.analysis()
        cuts = {c.intervals for c in iter_consistent_cuts(a, (0, 1, 2))}
        assert (1, 1, 1) in cuts
        assert tuple(a.num_intervals(p) for p in (0, 1, 2)) in cuts

    def test_subset_of_processes(self, diamond_computation):
        a = diamond_computation.analysis()
        cuts = list(iter_consistent_cuts(a, (1, 2)))
        assert all(c.pids == (1, 2) for c in cuts)
        assert len(cuts) >= 1
