"""Unit tests for workload statistics."""

from repro.predicates import WeakConjunctivePredicate
from repro.trace import (
    compute_stats,
    describe,
    empty_computation,
    random_computation,
    spiral_computation,
)


class TestComputeStats:
    def test_counts(self):
        comp = random_computation(4, 5, seed=1)
        stats = compute_stats(comp)
        assert stats.num_processes == 4
        assert stats.total_events == comp.total_events()
        assert stats.total_messages == len(comp.messages)
        assert stats.max_messages_per_process == comp.max_messages_per_process()
        a = comp.analysis()
        assert stats.total_intervals == sum(
            a.num_intervals(p) for p in range(4)
        )
        assert stats.min_intervals <= stats.max_intervals

    def test_empty_computation_fully_concurrent(self):
        stats = compute_stats(empty_computation(3))
        assert stats.concurrency_ratio == 1.0
        assert stats.total_intervals == 3

    def test_spiral_mostly_ordered(self):
        stats = compute_stats(spiral_computation(4, 4))
        assert stats.concurrency_ratio < 0.3

    def test_independent_pairs_mostly_concurrent(self):
        from repro.trace import skewed_concurrent_computation

        stats = compute_stats(skewed_concurrent_computation(3, 6))
        # Cross-pair intervals are fully concurrent; only same-pair
        # (process <-> its pinger) intervals are ordered.
        assert stats.concurrency_ratio > 0.5

    def test_candidate_counts_with_wcp(self):
        comp = spiral_computation(3, 2)
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        stats = compute_stats(comp, wcp)
        assert set(stats.candidate_counts) == {0, 1}
        assert all(v >= 1 for v in stats.candidate_counts.values())

    def test_candidate_counts_absent_without_wcp(self):
        stats = compute_stats(empty_computation(2))
        assert stats.candidate_counts is None


class TestDescribe:
    def test_human_readable(self):
        comp = random_computation(3, 3, seed=2)
        text = describe(comp)
        assert "processes (N): 3" in text
        assert "concurrency ratio" in text

    def test_includes_candidates_with_wcp(self):
        comp = spiral_computation(3, 2)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        text = describe(comp, wcp)
        assert "candidates per predicate process" in text
