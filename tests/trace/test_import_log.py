"""Tests for the plain-text log importer/exporter."""

import pytest

from repro.common import InvalidComputationError, SerializationError
from repro.detect import run_detector
from repro.predicates import WeakConjunctivePredicate
from repro.trace import random_computation
from repro.trace.import_log import format_log, parse_log

SAMPLE = """
# two processes, one message, flags raised around it
init 0 flag=false
init 1 flag=false
internal 0 flag=true @0.5
send 0 m1 1 @1.0
recv 1 m1 flag=true @2.0
"""


class TestParse:
    def test_sample_parses(self):
        comp = parse_log(SAMPLE)
        assert comp.num_processes == 2
        assert comp.total_events() == 3
        assert len(comp.messages) == 1

    def test_values_typed(self):
        comp = parse_log(
            "init 0 n=3 ratio=0.5 name=alpha ok=true\ninternal 0\n"
        )
        init = dict(comp.processes[0].initial_vars)
        assert init == {"n": 3, "ratio": 0.5, "name": "alpha", "ok": True}

    def test_times_preserved(self):
        comp = parse_log(SAMPLE)
        assert comp.event(0, 1).time == 1.0
        assert comp.event(1, 0).time == 2.0

    def test_detection_on_imported_log(self):
        comp = parse_log(SAMPLE)
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        report = run_detector("reference", comp, wcp)
        assert report.detected
        # P0's flag is still true at interval 2 (post-send); P1 true in
        # interval 2 (post-recv); first consistent satisfying cut (2, 2).
        assert report.cut.as_mapping() == {0: 2, 1: 2}

    def test_arbitrary_message_tokens(self):
        comp = parse_log(
            "send 0 req-42 1\nrecv 1 req-42\n"
        )
        assert len(comp.messages) == 1

    def test_pid_count_includes_silent_dest(self):
        comp = parse_log("send 0 m 3\nrecv 3 m\n")
        assert comp.num_processes == 4

    def test_unreceived_allowed_explicitly(self):
        with pytest.raises(InvalidComputationError):
            parse_log("send 0 m 1\ninternal 1\n")
        comp = parse_log("send 0 m 1\ninternal 1\n", allow_unreceived=True)
        assert comp.num_processes == 2


class TestParseErrors:
    @pytest.mark.parametrize(
        "text,pattern",
        [
            ("teleport 0", "unknown operation"),
            ("internal", "needs a pid"),
            ("internal x", "pid must be an integer"),
            ("send 0 m1", "needs pid, msg id and dest"),
            ("recv 1", "needs pid and msg id"),
            ("recv 1 ghost", "never sent"),
            ("send 0 m1 1\nsend 0 m1 1", "sent twice"),
            ("internal 0 bogus", "unexpected token"),
            ("internal 0 @x", "bad timestamp"),
            ("internal 0 @1 @2", "duplicate @time"),
            ("init 0 @5", "no @time"),
            ("", "no events"),
            ("# only comments\n", "no events"),
        ],
    )
    def test_errors_carry_context(self, text, pattern):
        with pytest.raises(SerializationError, match=pattern):
            parse_log(text)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_computations_round_trip(self, seed):
        comp = random_computation(
            4, 5, seed=seed, predicate_density=0.4, plant_final_cut=True
        )
        restored = parse_log(format_log(comp))
        assert restored.num_processes == comp.num_processes
        assert restored.total_events() == comp.total_events()
        wcp = WeakConjunctivePredicate.of_flags(range(4))
        a = run_detector("reference", comp, wcp)
        b = run_detector("reference", restored, wcp)
        assert (a.detected, a.cut) == (b.detected, b.cut)

    def test_format_is_reparsable_text(self):
        comp = parse_log(SAMPLE)
        text = format_log(comp)
        assert "init 0" in text
        assert "send 0 m0 1" in text
        reparsed = parse_log(text)
        assert reparsed.total_events() == comp.total_events()
