"""Unit tests for Computation: validation, indexing, local states."""

import pytest

from repro.common import InvalidComputationError
from repro.trace import Computation, ComputationBuilder, Event, ProcessTrace


def comp_from(events_by_pid, **kw):
    return Computation.from_event_lists(events_by_pid, **kw)


class TestValidation:
    def test_empty_process_list_rejected(self):
        with pytest.raises(InvalidComputationError):
            Computation([])

    def test_minimal_valid(self):
        c = comp_from([[Event.send(0, 1)], [Event.recv(0, 0)]])
        assert c.num_processes == 2
        assert len(c.messages) == 1

    def test_recv_without_send_rejected(self):
        with pytest.raises(InvalidComputationError, match="never sent"):
            comp_from([[Event.recv(9, 1)], []])

    def test_send_without_recv_rejected_by_default(self):
        with pytest.raises(InvalidComputationError, match="never received"):
            comp_from([[Event.send(0, 1)], []])

    def test_allow_unreceived(self):
        c = comp_from([[Event.send(0, 1)], []], allow_unreceived=True)
        assert len(c.messages) == 0

    def test_duplicate_send_rejected(self):
        with pytest.raises(InvalidComputationError, match="sent twice"):
            comp_from(
                [[Event.send(0, 1), Event.send(0, 1)], [Event.recv(0, 0)]]
            )

    def test_duplicate_recv_rejected(self):
        with pytest.raises(InvalidComputationError, match="received twice"):
            comp_from(
                [
                    [Event.send(0, 1)],
                    [Event.recv(0, 0), Event.recv(0, 0)],
                ]
            )

    def test_wrong_receiver_rejected(self):
        with pytest.raises(InvalidComputationError, match="sent to"):
            comp_from(
                [[Event.send(0, 2)], [Event.recv(0, 0)], []]
            )

    def test_wrong_claimed_sender_rejected(self):
        with pytest.raises(InvalidComputationError, match="names sender"):
            comp_from(
                [[Event.send(0, 1)], [Event.recv(0, 2)], []]
            )

    def test_self_send_rejected(self):
        with pytest.raises(InvalidComputationError, match="itself"):
            comp_from([[Event.send(0, 0), Event.recv(0, 0)]])

    def test_destination_out_of_range(self):
        with pytest.raises(InvalidComputationError, match="does not exist"):
            comp_from([[Event.send(0, 5)]], allow_unreceived=True)

    def test_causal_cycle_rejected(self):
        # P0 receives m1 before sending m0; P1 receives m0 before sending
        # m1 — a causal paradox.
        with pytest.raises(InvalidComputationError, match="cycle"):
            comp_from(
                [
                    [Event.recv(1, 1), Event.send(0, 1)],
                    [Event.recv(0, 0), Event.send(1, 0)],
                ]
            )

    def test_recv_before_send_in_time_rejected(self):
        with pytest.raises(InvalidComputationError, match="before sent"):
            comp_from(
                [
                    [Event.send(0, 1, time=5.0)],
                    [Event.recv(0, 0, time=1.0)],
                ]
            )


class TestAccessors:
    def test_counts(self, two_process_exchange):
        c = two_process_exchange
        assert c.num_processes == 2
        assert c.total_events() == 5
        assert c.max_messages_per_process() == 2

    def test_events_of_and_event(self, two_process_exchange):
        c = two_process_exchange
        assert len(c.events_of(0)) == 3
        assert c.event(1, 0).kind.name == "RECV"

    def test_events_of_bad_pid(self, two_process_exchange):
        with pytest.raises(InvalidComputationError):
            two_process_exchange.events_of(7)

    def test_message_records(self, two_process_exchange):
        rec = two_process_exchange.messages[0]
        assert rec.sender == 0 and rec.receiver == 1
        assert rec.send_index == 1 and rec.recv_index == 0


class TestLocalStates:
    def test_accumulation(self):
        b = ComputationBuilder(1, initial_vars={0: {"x": 0}})
        b.internal(0, {"x": 1})
        b.internal(0, {"y": True})
        c = b.build()
        states = c.local_states(0)
        assert [dict(s) for s in states] == [
            {"x": 0},
            {"x": 1},
            {"x": 1, "y": True},
        ]

    def test_states_count_is_events_plus_one(self, two_process_exchange):
        c = two_process_exchange
        assert len(c.local_states(0)) == len(c.events_of(0)) + 1

    def test_no_update_shares_state(self):
        b = ComputationBuilder(1)
        b.internal(0)
        c = b.build()
        states = c.local_states(0)
        assert dict(states[0]) == dict(states[1]) == {}


class TestTopologicalOrder:
    def test_respects_process_order(self, two_process_exchange):
        order = two_process_exchange.topological_order()
        p0 = [i for (p, i) in order if p == 0]
        assert p0 == sorted(p0)

    def test_respects_message_edges(self, two_process_exchange):
        order = two_process_exchange.topological_order()
        pos = {node: k for k, node in enumerate(order)}
        for rec in two_process_exchange.messages.values():
            assert (
                pos[(rec.sender, rec.send_index)]
                < pos[(rec.receiver, rec.recv_index)]
            )

    def test_covers_all_events(self, diamond_computation):
        order = diamond_computation.topological_order()
        assert len(order) == diamond_computation.total_events()
        assert len(set(order)) == len(order)

    def test_deterministic(self, diamond_computation):
        assert (
            diamond_computation.topological_order()
            == diamond_computation.topological_order()
        )


class TestFromEventLists:
    def test_with_initial_vars(self):
        c = Computation.from_event_lists([[]], initial_vars=[{"a": 1}])
        assert c.local_states(0)[0]["a"] == 1

    def test_initial_vars_length_mismatch(self):
        with pytest.raises(InvalidComputationError):
            Computation.from_event_lists([[], []], initial_vars=[{}])
