"""Unit tests for IntervalAnalysis: the Fig. 2 interval semantics."""

import pytest

from repro.clocks import Dependence
from repro.common import CutError, StateRef
from repro.trace import ComputationBuilder, random_computation
from repro.trace.causality import event_vector_clocks, happened_before_events


class TestIntervalStructure:
    def test_interval_counts(self, two_process_exchange):
        a = two_process_exchange.analysis()
        assert a.num_intervals(0) == 3  # send + recv => 2 boundaries
        assert a.num_intervals(1) == 3

    def test_state_to_interval_mapping(self, two_process_exchange):
        a = two_process_exchange.analysis()
        # P0 states: s0 (init), s1 (post-internal), s2 (post-send), s3 (post-recv)
        assert [a.interval_of_state(0, k) for k in range(4)] == [1, 1, 2, 3]
        # P1 states: s0, s1 (post-recv), s2 (post-send)
        assert [a.interval_of_state(1, k) for k in range(3)] == [1, 2, 3]

    def test_states_in_interval(self, two_process_exchange):
        a = two_process_exchange.analysis()
        assert list(a.states_in_interval(0, 1)) == [0, 1]
        assert list(a.states_in_interval(0, 2)) == [2]
        assert list(a.states_in_interval(1, 3)) == [2]

    def test_every_interval_nonempty(self):
        comp = random_computation(4, 6, seed=11)
        a = comp.analysis()
        for pid in range(4):
            for interval in range(1, a.num_intervals(pid) + 1):
                assert len(a.states_in_interval(pid, interval)) >= 1

    def test_no_events_single_interval(self):
        c = ComputationBuilder(2).build()
        a = c.analysis()
        assert a.num_intervals(0) == 1
        assert list(a.states_in_interval(0, 1)) == [0]


class TestIntervalVectors:
    def test_hand_computed_vectors(self, two_process_exchange):
        """Exact values from the conftest docstring table."""
        a = two_process_exchange.analysis()
        assert a.vector(0, 1).components == (1, 0)
        assert a.vector(0, 2).components == (2, 0)
        assert a.vector(0, 3).components == (3, 2)
        assert a.vector(1, 1).components == (0, 1)
        assert a.vector(1, 2).components == (1, 2)
        assert a.vector(1, 3).components == (1, 3)

    def test_own_component_equals_interval_index(self):
        comp = random_computation(5, 6, seed=3)
        a = comp.analysis()
        for pid in range(5):
            for interval in range(1, a.num_intervals(pid) + 1):
                assert a.vector(pid, interval)[pid] == interval

    def test_vectors_nondecreasing_along_process(self):
        comp = random_computation(4, 8, seed=4)
        a = comp.analysis()
        for pid in range(4):
            for interval in range(1, a.num_intervals(pid)):
                assert a.vector(pid, interval) <= a.vector(pid, interval + 1)

    def test_projection(self, diamond_computation):
        a = diamond_computation.analysis()
        full = a.vector(0, a.num_intervals(0))
        proj = a.projected_vector(0, a.num_intervals(0), (1, 2))
        assert proj == (full[1], full[2])


class TestSendTagsAndDeps:
    def test_send_tag_is_closing_interval(self, two_process_exchange):
        a = two_process_exchange.analysis()
        assert a.send_tag(0) == 1  # P0's send closes its interval 1
        assert a.send_tag(1) == 2  # P1's send closes its interval 2

    def test_receive_dependences(self, two_process_exchange):
        a = two_process_exchange.analysis()
        # P1 receives m0 (tag 1 from P0) at its event 0.
        assert a.receive_dependences(1) == ((0, Dependence(0, 1)),)
        # P0 receives m1 (tag 2 from P1) at its event 2.
        assert a.receive_dependences(0) == ((2, Dependence(1, 2)),)

    def test_deps_in_receive_order(self, diamond_computation):
        a = diamond_computation.analysis()
        deps = a.receive_dependences(0)
        assert [idx for idx, _ in deps] == sorted(idx for idx, _ in deps)


class TestHappenedBefore:
    def test_same_process_is_local_order(self, two_process_exchange):
        a = two_process_exchange.analysis()
        assert a.happened_before(StateRef(0, 1), StateRef(0, 2))
        assert not a.happened_before(StateRef(0, 2), StateRef(0, 1))
        assert not a.happened_before(StateRef(0, 2), StateRef(0, 2))

    def test_cross_process_via_message(self, two_process_exchange):
        a = two_process_exchange.analysis()
        # P0's interval 1 (closed by the send) precedes P1's interval 2.
        assert a.happened_before(StateRef(0, 1), StateRef(1, 2))
        # But not P1's interval 1 (pre-receive).
        assert not a.happened_before(StateRef(0, 1), StateRef(1, 1))

    def test_concurrency(self, two_process_exchange):
        a = two_process_exchange.analysis()
        assert a.concurrent(StateRef(0, 1), StateRef(1, 1))
        assert a.concurrent(StateRef(0, 2), StateRef(1, 2))
        assert not a.concurrent(StateRef(0, 1), StateRef(1, 3))

    def test_concurrent_same_state_false(self, two_process_exchange):
        a = two_process_exchange.analysis()
        assert not a.concurrent(StateRef(0, 1), StateRef(0, 1))

    def test_diamond_branches_concurrent(self, diamond_computation):
        a = diamond_computation.analysis()
        # P1 and P2 each have interval 2 after receiving from P0; no
        # communication between them.
        assert a.concurrent(StateRef(1, 2), StateRef(2, 2))

    def test_out_of_range_interval(self, two_process_exchange):
        a = two_process_exchange.analysis()
        with pytest.raises(CutError):
            a.happened_before(StateRef(0, 99), StateRef(1, 1))
        with pytest.raises(CutError):
            a.vector(0, 0)

    def test_agrees_with_event_level_clocks(self):
        """Interval-level hb must match event-level Fidge–Mattern hb:
        (i, a) -> (j, b) iff the last event of a's closing... we check
        via the generating events: interval a of i precedes interval b
        of j iff some event whose post-state is in a (or the boundary
        send closing a) happens before an event opening b."""
        comp = random_computation(4, 6, seed=21)
        a = comp.analysis()
        clocks = event_vector_clocks(comp)
        # Spot-check: for every message, sender's tagged interval
        # precedes the interval opened by the receive.
        for rec in comp.messages.values():
            send_interval = a.send_tag(rec.msg_id)
            opened = a.interval_of_state(rec.receiver, rec.recv_index + 1)
            assert a.happened_before(
                StateRef(rec.sender, send_interval),
                StateRef(rec.receiver, opened),
            )
            assert happened_before_events(
                comp,
                (rec.sender, rec.send_index),
                (rec.receiver, rec.recv_index),
                clocks,
            )


class TestDirectDependence:
    def test_direct_same_process(self, two_process_exchange):
        a = two_process_exchange.analysis()
        assert a.directly_precedes(StateRef(0, 1), StateRef(0, 2))

    def test_direct_via_single_message(self, two_process_exchange):
        a = two_process_exchange.analysis()
        assert a.directly_precedes(StateRef(0, 1), StateRef(1, 2))

    def test_transitive_only_is_not_direct(self):
        # Chain P0 -> P1 -> P2: P0's interval precedes P2's only
        # transitively.
        b = ComputationBuilder(3)
        m0 = b.send(0, 1)
        b.recv(1, m0)
        m1 = b.send(1, 2)
        b.recv(2, m1)
        comp = b.build()
        a = comp.analysis()
        assert a.happened_before(StateRef(0, 1), StateRef(2, 2))
        assert not a.directly_precedes(StateRef(0, 1), StateRef(2, 2))
        assert a.directly_precedes(StateRef(1, 1), StateRef(2, 2))

    def test_direct_implies_happened_before(self):
        comp = random_computation(4, 5, seed=8)
        a = comp.analysis()
        for i in range(4):
            for j in range(4):
                for x in range(1, a.num_intervals(i) + 1):
                    for y in range(1, a.num_intervals(j) + 1):
                        s, t = StateRef(i, x), StateRef(j, y)
                        if a.directly_precedes(s, t):
                            assert a.happened_before(s, t)
