"""Unit tests for Cut and consistency checking."""

import pytest

from repro.common import CutError, StateRef
from repro.trace import Cut, first_inconsistency, is_consistent_cut


class TestCutConstruction:
    def test_basic(self):
        c = Cut((0, 2), (1, 3))
        assert c.pids == (0, 2)
        assert c.intervals == (1, 3)
        assert c.is_complete

    def test_initial_all_zero(self):
        c = Cut.initial([1, 3])
        assert c.intervals == (0, 0)
        assert not c.is_complete

    def test_from_mapping_sorts_pids(self):
        c = Cut.from_mapping({3: 5, 1: 2})
        assert c.pids == (1, 3)
        assert c.intervals == (2, 5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(CutError):
            Cut((0, 1), (1,))

    def test_duplicate_pids_rejected(self):
        with pytest.raises(CutError):
            Cut((0, 0), (1, 1))

    def test_negative_interval_rejected(self):
        with pytest.raises(CutError):
            Cut((0,), (-1,))


class TestCutOperations:
    def test_component(self):
        c = Cut((0, 5), (2, 7))
        assert c.component(5) == 7
        with pytest.raises(CutError):
            c.component(3)

    def test_replaced(self):
        c = Cut((0, 1), (1, 1))
        d = c.replaced(1, 4)
        assert d.intervals == (1, 4)
        assert c.intervals == (1, 1), "replaced must not mutate"

    def test_replaced_unknown_pid(self):
        with pytest.raises(CutError):
            Cut((0,), (1,)).replaced(9, 1)

    def test_states_skips_unset(self):
        c = Cut((0, 1, 2), (1, 0, 3))
        assert list(c.states()) == [StateRef(0, 1), StateRef(2, 3)]

    def test_project(self):
        c = Cut((0, 1, 2), (4, 5, 6))
        p = c.project((2, 0))
        assert p.pids == (2, 0)
        assert p.intervals == (6, 4)

    def test_as_mapping(self):
        assert Cut((1, 2), (3, 4)).as_mapping() == {1: 3, 2: 4}

    def test_dominates(self):
        a = Cut((0, 1), (2, 2))
        b = Cut((0, 1), (1, 2))
        assert a.dominates(b)
        assert not b.dominates(a)
        assert a.dominates(a)

    def test_dominates_pid_mismatch(self):
        with pytest.raises(CutError):
            Cut((0,), (1,)).dominates(Cut((1,), (1,)))

    def test_value_semantics(self):
        assert Cut((0,), (1,)) == Cut((0,), (1,))
        assert hash(Cut((0,), (1,))) == hash(Cut((0,), (1,)))


class TestConsistency:
    def test_concurrent_cut_is_consistent(self, two_process_exchange):
        a = two_process_exchange.analysis()
        assert is_consistent_cut(a, Cut((0, 1), (1, 1)))
        assert is_consistent_cut(a, Cut((0, 1), (2, 2)))

    def test_ordered_cut_is_inconsistent(self, two_process_exchange):
        a = two_process_exchange.analysis()
        # (0,1) -> (1,2): P0's interval 1 precedes P1's interval 2.
        assert not is_consistent_cut(a, Cut((0, 1), (1, 2)))

    def test_first_inconsistency_witness(self, two_process_exchange):
        a = two_process_exchange.analysis()
        witness = first_inconsistency(a, Cut((0, 1), (1, 2)))
        assert witness == (StateRef(0, 1), StateRef(1, 2))

    def test_consistent_returns_none(self, two_process_exchange):
        a = two_process_exchange.analysis()
        assert first_inconsistency(a, Cut((0, 1), (1, 1))) is None

    def test_partial_cut_raises(self, two_process_exchange):
        a = two_process_exchange.analysis()
        with pytest.raises(CutError):
            is_consistent_cut(a, Cut((0, 1), (0, 1)))

    def test_final_cut_always_consistent(self, diamond_computation):
        a = diamond_computation.analysis()
        final = Cut(
            (0, 1, 2), tuple(a.num_intervals(p) for p in range(3))
        )
        assert is_consistent_cut(a, final)
