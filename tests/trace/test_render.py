"""Tests for the ASCII space-time renderer."""

import pytest

from repro.common import CutError
from repro.predicates import WeakConjunctivePredicate
from repro.trace import Cut, ComputationBuilder, render_spacetime
from repro.trace.generators import FLAG_VAR


def small_comp():
    b = ComputationBuilder(
        2, initial_vars={p: {FLAG_VAR: False} for p in (0, 1)}
    )
    b.internal(0, {FLAG_VAR: True})
    m = b.send(0, 1)
    b.recv(1, m)
    b.internal(1, {FLAG_VAR: True})
    return b.build()


class TestBasicRendering:
    def test_every_process_has_a_line(self):
        out = render_spacetime(small_comp())
        lines = out.split("\n")
        assert lines[0].startswith("P0")
        assert lines[1].startswith("P1")

    def test_event_labels_present(self):
        out = render_spacetime(small_comp())
        assert "s0" in out
        assert "r0" in out
        assert "o" in out

    def test_message_legend(self):
        out = render_spacetime(small_comp())
        assert "m0: P0 -> P1" in out

    def test_send_left_of_receive(self):
        lines = render_spacetime(small_comp()).split("\n")
        p0, p1 = lines[0], lines[1]
        assert p0.index("s0") < p1.index("r0")

    def test_empty_computation(self):
        from repro.trace import empty_computation

        out = render_spacetime(empty_computation(2))
        assert out.split("\n")[0].startswith("P0")


class TestPredicateMarks:
    def test_emission_markers_under_events(self):
        comp = small_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1])
        lines = render_spacetime(comp, wcp).split("\n")
        # Each predicate process line is followed by a marker line with ^.
        p0_line, p0_marks = lines[0], lines[1]
        assert "^" in p0_marks
        # P0's emission happens at its internal event.
        assert abs(p0_marks.index("^") - p0_line.index("o")) <= 1

    def test_initial_state_emission_marked_at_start(self):
        b = ComputationBuilder(2, initial_vars={0: {FLAG_VAR: True}, 1: {}})
        m = b.send(0, 1)
        b.recv(1, m)
        comp = b.build()
        wcp = WeakConjunctivePredicate({0: __import__(
            "repro.predicates", fromlist=["var_true"]
        ).var_true(FLAG_VAR)})
        lines = render_spacetime(comp, wcp).split("\n")
        marks = lines[1]
        first_mark = marks.index("^")
        assert first_mark < lines[0].index("s0")

    def test_no_marker_line_without_emissions(self):
        comp = small_comp()
        wcp = WeakConjunctivePredicate.of_flags([0, 1], var="never_set")
        lines = render_spacetime(comp, wcp).split("\n")
        assert lines[0].startswith("P0")
        assert lines[1].startswith("P1")  # no marker lines injected


class TestCutRendering:
    def test_cut_bars_drawn(self):
        comp = small_comp()
        cut = Cut((0, 1), (2, 2))
        out = render_spacetime(comp, cut=cut)
        assert out.count("|") >= 2
        assert "cut: Cut[P0:2, P1:2]" in out

    def test_cut_bar_position_respects_intervals(self):
        comp = small_comp()
        lines = render_spacetime(comp, cut=Cut((0, 1), (1, 1))).split("\n")
        p0 = lines[0]
        # Interval 1 on P0 ends at the send; the bar must come before
        # the send's column... the bar sits after the last event whose
        # post-state is in interval 1: the internal event.
        assert p0.index("|") < p0.index("s0")

    def test_invalid_cut_interval_rejected(self):
        comp = small_comp()
        with pytest.raises(CutError):
            render_spacetime(comp, cut=Cut((0,), (99,)))

    def test_cut_subset_of_processes(self):
        comp = small_comp()
        out = render_spacetime(comp, cut=Cut((1,), (2,)))
        lines = out.split("\n")
        assert "|" not in lines[0]
        assert "|" in lines[1]


class TestCLIShow:
    def test_show_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.json"
        main(["generate", "--processes", "3", "--sends", "2",
              "--seed", "4", "--density", "0.5", "--plant-final-cut",
              "--out", str(path)])
        assert main(["show", str(path), "--pids", "0,1,2", "--cut"]) == 0
        out = capsys.readouterr().out
        assert "P0" in out and "messages:" in out
