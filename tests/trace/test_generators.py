"""Unit tests for workload generators."""

import pytest

from repro.common import ConfigurationError
from repro.predicates import WeakConjunctivePredicate, brute_force_first_cut
from repro.trace import (
    FLAG_VAR,
    WorkloadSpec,
    empty_computation,
    generate,
    never_true_computation,
    random_computation,
    ring_computation,
    skewed_concurrent_computation,
    spiral_computation,
    worst_case_computation,
)
from repro.trace.events import EventKind


class TestWorkloadSpec:
    def test_defaults(self):
        spec = WorkloadSpec(num_processes=4, sends_per_process=5)
        assert spec.pattern == "uniform"
        assert spec.effective_predicate_pids == (0, 1, 2, 3)

    def test_bad_pattern(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(4, 5, pattern="star")

    def test_bad_density(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(4, 5, predicate_density=1.5)

    def test_single_process_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(1, 5)

    def test_predicate_pids_validated(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(4, 5, predicate_pids=(0, 9))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(4, 5, predicate_pids=(0, 0))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(4, 5, predicate_pids=())


class TestGenerate:
    def test_deterministic_for_seed(self):
        a = random_computation(4, 6, seed=42)
        b = random_computation(4, 6, seed=42)
        assert [
            [(e.kind, e.msg_id, e.peer) for e in t.events] for t in a.processes
        ] == [
            [(e.kind, e.msg_id, e.peer) for e in t.events] for t in b.processes
        ]

    def test_different_seeds_differ(self):
        a = random_computation(4, 6, seed=1)
        b = random_computation(4, 6, seed=2)
        sig = lambda c: [
            [(e.kind, e.msg_id, e.peer) for e in t.events] for t in c.processes
        ]
        assert sig(a) != sig(b)

    def test_all_sends_performed(self):
        comp = random_computation(5, 7, seed=3)
        for trace in comp.processes:
            sends = sum(1 for e in trace.events if e.kind is EventKind.SEND)
            assert sends == 7

    def test_all_messages_received(self):
        comp = random_computation(5, 7, seed=4)
        total_sends = sum(
            1
            for t in comp.processes
            for e in t.events
            if e.kind is EventKind.SEND
        )
        assert len(comp.messages) == total_sends

    def test_times_are_causal(self):
        comp = random_computation(4, 8, seed=5)
        for rec in comp.messages.values():
            st = comp.event(rec.sender, rec.send_index).time
            rt = comp.event(rec.receiver, rec.recv_index).time
            assert st is not None and rt is not None and rt >= st

    def test_ring_pattern_only_next_neighbor(self):
        comp = generate(WorkloadSpec(5, 4, pattern="ring", seed=6))
        for pid, trace in enumerate(comp.processes):
            for e in trace.events:
                if e.kind is EventKind.SEND:
                    assert e.peer == (pid + 1) % 5

    def test_pairs_pattern_fixed_partner(self):
        comp = generate(WorkloadSpec(4, 4, pattern="pairs", seed=7))
        for pid, trace in enumerate(comp.processes):
            partner = pid + 1 if pid % 2 == 0 else pid - 1
            for e in trace.events:
                if e.kind is EventKind.SEND:
                    assert e.peer == partner

    def test_client_server_pattern(self):
        comp = generate(WorkloadSpec(8, 4, pattern="client_server", seed=8))
        servers = 2  # 8 // 4
        for pid, trace in enumerate(comp.processes):
            for e in trace.events:
                if e.kind is EventKind.SEND:
                    if pid < servers:
                        assert e.peer >= servers
                    else:
                        assert e.peer < servers

    def test_zero_density_never_raises_flag(self):
        comp = never_true_computation(4, 6, seed=9)
        for pid in range(4):
            assert all(not s.get(FLAG_VAR) for s in comp.local_states(pid))


class TestSpecialGenerators:
    def test_worst_case_detectable_at_final_cut(self):
        comp = worst_case_computation(3, 4, seed=10)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        cut = brute_force_first_cut(comp, wcp)
        assert cut is not None
        a = comp.analysis()
        assert cut.intervals == tuple(a.num_intervals(p) for p in range(3))

    def test_never_true_not_detectable(self):
        comp = never_true_computation(3, 4, seed=11)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        assert brute_force_first_cut(comp, wcp) is None

    def test_empty_computation(self):
        comp = empty_computation(3)
        assert comp.total_events() == 0
        assert comp.max_messages_per_process() == 0

    def test_empty_computation_bad_n(self):
        with pytest.raises(ConfigurationError):
            empty_computation(0)

    def test_ring_computation_valid(self):
        comp = ring_computation(4, rounds=3, seed=12)
        assert comp.num_processes == 4

    def test_spiral_total_order_forces_final_cut(self):
        comp = spiral_computation(3, rounds=2)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        cut = brute_force_first_cut(comp, wcp)
        a = comp.analysis()
        assert cut is not None
        assert cut.intervals == tuple(a.num_intervals(p) for p in range(3))

    def test_spiral_message_count(self):
        comp = spiral_computation(4, rounds=3)
        # Each full circuit gives each process one send and one receive.
        assert comp.max_messages_per_process() in (6, 7)

    def test_spiral_needs_two_processes(self):
        with pytest.raises(ConfigurationError):
            spiral_computation(1, rounds=2)

    def test_skewed_candidates_concurrent_across_pairs(self):
        comp = skewed_concurrent_computation(3, 8)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        cut = brute_force_first_cut(comp, wcp)
        assert cut is not None
        # First satisfying cut is each process's first flag-true interval
        # (interval 3: warm-up send + recv close intervals 1 and 2).
        assert cut.intervals == (3, 3, 3)

    def test_skewed_slow_pid_validated(self):
        with pytest.raises(ConfigurationError):
            skewed_concurrent_computation(3, 8, slow_pid=3)

    def test_skewed_messages_per_process(self):
        comp = skewed_concurrent_computation(3, 8)
        assert comp.max_messages_per_process() == 8
