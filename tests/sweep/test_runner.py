"""Tests for sweep execution: determinism, aggregation, error capture."""

import json

import pytest

import repro.detect.runner as detect_runner
from repro.common.errors import DetectionError
from repro.sweep import SweepMatrix, run_cell, run_sweep
from repro.sweep.runner import median, p95


def matrix(**overrides) -> SweepMatrix:
    kwargs = dict(
        name="t",
        detectors=("token_vc", "direct_dep"),
        processes=(4,),
        sends=(6,),
        seeds=(0, 1, 2),
        densities=(0.0,),
        plant_final_cut=True,
    )
    kwargs.update(overrides)
    return SweepMatrix(**kwargs)


class TestStatistics:
    def test_median_odd_and_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_p95_nearest_rank(self):
        assert p95([5]) == 5
        assert p95(list(range(1, 101))) == 95

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])
        with pytest.raises(ValueError):
            p95([])


class TestRunCell:
    def test_record_shape(self, tmp_path):
        cell = matrix().cells()[0]
        record = run_cell(cell, tmp_path)
        assert record["id"] == cell.cell_id
        assert record["group"] == cell.group
        assert record["units"]["outcome"] == "detected"
        assert record["units"]["mon_msgs"] > 0
        assert record["wall_s"] > 0
        assert record["cache_hit"] is False

    def test_second_run_hits_cache(self, tmp_path):
        cell = matrix().cells()[0]
        run_cell(cell, tmp_path)
        assert run_cell(cell, tmp_path)["cache_hit"] is True

    def test_faulty_cell_is_deterministic(self, tmp_path):
        cell = matrix(
            detectors=("token_vc",), faults=("drop:token:0.3",), seeds=(5,)
        ).cells()[0]
        first = run_cell(cell, tmp_path)
        second = run_cell(cell, tmp_path)
        assert first["units"] == second["units"]


class TestDeterminism:
    def test_parallel_equals_serial_paper_units(self, tmp_path):
        m = matrix()
        serial = run_sweep(m, tmp_path / "c1", workers=1)
        fanned = run_sweep(m, tmp_path / "c2", workers=3)
        assert serial.ok and fanned.ok
        assert json.dumps(serial.paper_units_view(), sort_keys=True) == \
            json.dumps(fanned.paper_units_view(), sort_keys=True)

    def test_shared_cache_does_not_change_units(self, tmp_path):
        m = matrix()
        cold = run_sweep(m, tmp_path / "shared", workers=1)
        warm = run_sweep(m, tmp_path / "shared", workers=2)
        assert warm.cache_stats["hits"] == len(warm.records)
        assert cold.paper_units_view() == warm.paper_units_view()


class TestAggregation:
    def test_groups_fold_over_seeds(self, tmp_path):
        result = run_sweep(matrix(), tmp_path, workers=1)
        assert len(result.records) == 6
        rows = result.rows
        assert len(rows) == 2  # one per detector group
        groups = [row[0] for row in rows]
        assert groups == sorted(groups)
        assert all(row[1] == 3 for row in rows)  # 3 seeds per group

    def test_aggregate_document_shape(self, tmp_path):
        result = run_sweep(matrix(), tmp_path, workers=1)
        doc = result.aggregate()
        assert doc["schema"] == "repro-bench/1"
        assert doc["experiment"] == "sweep:t"
        assert doc["params"]["name"] == "t"
        assert len(doc["sweep"]["cells"]) == 6
        assert doc["sweep"]["errors"] == []
        json.dumps(doc)  # JSON-serializable end to end

    def test_streaming_callback_sees_every_cell(self, tmp_path):
        seen = []
        run_sweep(matrix(), tmp_path, workers=1, on_result=seen.append)
        assert len(seen) == 6

    def test_offline_detector_cells_have_extras_only(self, tmp_path):
        result = run_sweep(
            matrix(detectors=("reference",), seeds=(0,)), tmp_path, workers=1
        )
        assert result.ok
        units = result.records[0]["units"]
        assert units["outcome"] == "detected"
        assert "mon_msgs" not in units
        assert units["comparisons"] > 0


class TestInvariantSweeps:
    def test_units_carry_zero_violations(self, tmp_path):
        result = run_sweep(
            matrix(detectors=("token_vc",), check_invariants=True),
            tmp_path, workers=1,
        )
        assert result.ok
        for record in result.records:
            assert record["group"].endswith("/inv")
            assert record["units"]["invariant_violations"] == 0

    def test_faulty_cells_stay_violation_free(self, tmp_path):
        result = run_sweep(
            matrix(detectors=("token_vc",), faults=("drop:token:0.2",),
                   check_invariants=True),
            tmp_path, workers=1,
        )
        assert result.ok
        assert all(r["units"]["invariant_violations"] == 0
                   for r in result.records)

    def test_trace_sampling_records_lowest_seeds(self, tmp_path):
        from repro.obs import load_jsonl

        result = run_sweep(
            matrix(detectors=("token_vc",)), tmp_path / "cache", workers=1,
            trace_dir=tmp_path / "traces", trace_sample=2,
        )
        assert result.ok
        sampled = [r for r in result.records if "trace_file" in r]
        assert len(sampled) == 2
        assert sorted(r["cell"]["seed"] for r in sampled) == [0, 1]
        for record in sampled:
            trace = load_jsonl(record["trace_file"])
            assert trace.meta["cell"] == record["id"]
            assert len(trace) > 0

    def test_trace_sample_must_be_non_negative(self, tmp_path):
        with pytest.raises(ValueError, match="trace_sample"):
            run_sweep(matrix(), tmp_path, workers=1,
                      trace_dir=tmp_path, trace_sample=-1)

    def test_no_flight_dump_on_healthy_cells(self, tmp_path):
        flight_dir = tmp_path / "flights"
        result = run_sweep(
            matrix(detectors=("token_vc",)), tmp_path / "cache", workers=1,
            flight_dir=flight_dir,
        )
        assert result.ok
        assert not list(flight_dir.glob("*")) if flight_dir.exists() else True
        assert all("flight_file" not in r for r in result.records)

    def test_flight_dump_on_degraded_cell(self, tmp_path):
        from repro.obs import load_jsonl

        # Crash the sole token holder forever with no self-healing: the
        # detection must degrade, which triggers the flight dump.
        result = run_sweep(
            matrix(detectors=("token_vc",), seeds=(0,),
                   faults=("crash:mon-0:2",)),
            tmp_path / "cache", workers=1, flight_dir=tmp_path / "flights",
        )
        assert result.ok
        [record] = result.records
        assert record["units"]["outcome"] == "degraded"
        flight = load_jsonl(record["flight_file"])
        assert flight.meta["flight_recorder"] is True
        assert flight.meta["outcome"] == "degraded"
        assert flight.meta["cell"] == record["id"]


class TestWorkerFailure:
    @pytest.fixture
    def crashy(self, monkeypatch):
        def detect(computation, wcp, **options):
            raise DetectionError("injected crash")

        monkeypatch.setitem(detect_runner.DETECTORS, "crashy", detect)
        return "crashy"

    def test_inline_worker_error_is_captured(self, tmp_path, crashy):
        result = run_sweep(
            matrix(detectors=(crashy,), seeds=(0,)), tmp_path, workers=1
        )
        assert not result.ok
        assert result.records == []
        [error] = result.errors
        assert "DetectionError: injected crash" in error["error"]
        assert "traceback" in error

    def test_forked_worker_error_is_captured(self, tmp_path, crashy):
        result = run_sweep(
            matrix(detectors=(crashy, "token_vc"), seeds=(0,)),
            tmp_path,
            workers=2,
        )
        assert not result.ok
        assert len(result.errors) == 1
        assert len(result.records) == 1  # healthy cells still complete
        assert result.aggregate()["sweep"]["errors"][0]["id"].startswith(
            "crashy/"
        )

    def test_workers_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            run_sweep(matrix(), tmp_path, workers=0)
