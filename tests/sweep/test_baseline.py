"""Tests for the baseline comparator: pass, drift, wall tolerance."""

import copy
import json

import pytest

from repro.common.errors import ConfigurationError, ObservabilityError
from repro.sweep import SweepMatrix, compare, load_baseline, run_sweep
from repro.sweep.baseline import dump_comparisons_markdown


@pytest.fixture(scope="module")
def aggregate(tmp_path_factory):
    matrix = SweepMatrix(
        name="base",
        detectors=("token_vc",),
        processes=(4,),
        sends=(6,),
        seeds=(0, 1),
        densities=(0.0,),
        plant_final_cut=True,
    )
    cache = tmp_path_factory.mktemp("cache")
    return run_sweep(matrix, cache, workers=1).aggregate()


class TestCompare:
    def test_identical_documents_pass(self, aggregate):
        comparison = compare(aggregate, copy.deepcopy(aggregate))
        assert comparison.ok
        assert "PASS" in comparison.render()

    def test_paper_unit_drift_fails_without_tolerance(self, aggregate):
        fresh = copy.deepcopy(aggregate)
        fresh["sweep"]["cells"][0]["units"]["token_hops"] += 1
        comparison = compare(aggregate, fresh)
        assert not comparison.ok
        [drift] = comparison.drifts
        assert drift.unit == "token_hops"
        assert drift.fresh == drift.baseline + 1
        rendered = comparison.render()
        assert "FAIL" in rendered and "token_hops" in rendered

    def test_outcome_change_is_drift(self, aggregate):
        fresh = copy.deepcopy(aggregate)
        fresh["sweep"]["cells"][1]["units"]["outcome"] = "degraded"
        comparison = compare(aggregate, fresh)
        assert [d.unit for d in comparison.drifts] == ["outcome"]

    def test_new_or_missing_unit_is_drift(self, aggregate):
        fresh = copy.deepcopy(aggregate)
        del fresh["sweep"]["cells"][0]["units"]["mon_bits"]
        fresh["sweep"]["cells"][1]["units"]["surprise"] = 7
        comparison = compare(aggregate, fresh)
        assert {d.unit for d in comparison.drifts} == {"mon_bits", "surprise"}

    def test_missing_and_unexpected_cells(self, aggregate):
        fresh = copy.deepcopy(aggregate)
        moved = fresh["sweep"]["cells"][0]
        original_id = moved["id"]
        moved["id"] = original_id + "-renamed"
        comparison = compare(aggregate, fresh)
        assert comparison.missing_cells == [original_id]
        assert comparison.unexpected_cells == [original_id + "-renamed"]

    def test_wall_regression_beyond_tolerance_fails(self, aggregate):
        base = copy.deepcopy(aggregate)
        for cell in base["sweep"]["cells"]:
            cell["wall_s"] = 0.1
        fresh = copy.deepcopy(base)
        for cell in fresh["sweep"]["cells"]:
            cell["wall_s"] = 0.55
        comparison = compare(base, fresh, wall_tolerance=5.0)
        assert not comparison.ok
        [regression] = comparison.wall_regressions
        assert regression.factor == pytest.approx(5.5)
        assert comparison.drifts == []  # wall noise is not unit drift

    def test_wall_within_tolerance_passes(self, aggregate):
        base = copy.deepcopy(aggregate)
        for cell in base["sweep"]["cells"]:
            cell["wall_s"] = 0.1
        fresh = copy.deepcopy(base)
        for cell in fresh["sweep"]["cells"]:
            cell["wall_s"] = 0.45
        assert compare(base, fresh, wall_tolerance=5.0).ok

    def test_tiny_wall_medians_are_ignored(self, aggregate):
        base = copy.deepcopy(aggregate)
        for cell in base["sweep"]["cells"]:
            cell["wall_s"] = 0.0001
        fresh = copy.deepcopy(base)
        for cell in fresh["sweep"]["cells"]:
            cell["wall_s"] = 0.004  # 40x, but below the comparable floor
        assert compare(base, fresh, wall_tolerance=2.0).ok

    def test_bad_tolerance_rejected(self, aggregate):
        with pytest.raises(ConfigurationError):
            compare(aggregate, aggregate, wall_tolerance=0)

    def test_non_sweep_document_rejected(self, aggregate):
        with pytest.raises(ConfigurationError, match="sweep"):
            compare({"schema": "repro-bench/1"}, aggregate)

    def test_markdown_summary_lists_drifts(self, aggregate, tmp_path):
        fresh = copy.deepcopy(aggregate)
        fresh["sweep"]["cells"][0]["units"]["mon_msgs"] += 5
        comparison = compare(aggregate, fresh)
        out = tmp_path / "summary.md"
        dump_comparisons_markdown([comparison], out)
        text = out.read_text()
        assert "FAIL" in text and "mon_msgs" in text
        assert "| cell | metric | baseline | fresh |" in text


class TestLoadBaseline:
    def test_round_trip(self, aggregate, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(aggregate))
        doc = load_baseline(path)
        assert doc["params"]["name"] == "base"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no such"):
            load_baseline(tmp_path / "absent.json")

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text('{"schema": "other/1"}')
        with pytest.raises(ObservabilityError, match="expected schema"):
            load_baseline(path)

    def test_non_sweep_benchmark_rejected(self, aggregate, tmp_path):
        doc = {k: v for k, v in aggregate.items() if k != "sweep"}
        path = tmp_path / "b.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ConfigurationError, match="sweep"):
            load_baseline(path)
