"""Tests for sweep matrices: expansion, identity, serialization."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sweep import SweepCell, SweepMatrix, load_matrix


def small_matrix(**overrides) -> SweepMatrix:
    kwargs = dict(
        name="t",
        detectors=("token_vc",),
        processes=(4,),
        sends=(6,),
        seeds=(0, 1),
    )
    kwargs.update(overrides)
    return SweepMatrix(**kwargs)


class TestSweepCell:
    def test_id_and_group(self):
        cell = SweepCell(
            detector="token_vc", num_processes=4, sends_per_process=8,
            predicate_density=0.25, seed=3,
        )
        assert cell.group == "token_vc/n4/m8/uniform/d0.25/wall/fnone"
        assert cell.cell_id == cell.group + "/s3"

    def test_seed_not_in_group(self):
        a = SweepCell(detector="token_vc", num_processes=4,
                      sends_per_process=8, seed=0)
        b = SweepCell(detector="token_vc", num_processes=4,
                      sends_per_process=8, seed=7)
        assert a.group == b.group
        assert a.cell_id != b.cell_id

    def test_pred_width_limits_pids(self):
        cell = SweepCell(detector="token_vc", num_processes=6,
                         sends_per_process=4, pred_width=3)
        assert cell.predicate_pids() == (0, 1, 2)
        assert cell.workload_spec().predicate_pids == (0, 1, 2)

    def test_unknown_detector_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepCell(detector="nope", num_processes=4, sends_per_process=4)

    def test_faults_require_fault_capable_detector(self):
        with pytest.raises(ConfigurationError):
            SweepCell(detector="reference", num_processes=4,
                      sends_per_process=4, faults="drop:token:0.5")

    def test_invariants_require_online_detector(self):
        with pytest.raises(ConfigurationError, match="check_invariants"):
            SweepCell(detector="reference", num_processes=4,
                      sends_per_process=4, check_invariants=True)

    def test_invariants_suffix_the_group(self):
        plain = SweepCell(detector="token_vc", num_processes=4,
                          sends_per_process=8)
        checked = SweepCell(detector="token_vc", num_processes=4,
                            sends_per_process=8, check_invariants=True)
        assert checked.group == plain.group + "/inv"
        assert "/inv" not in plain.group  # old baselines unchanged


class TestSweepMatrix:
    def test_expansion_is_full_cross_product(self):
        matrix = small_matrix(processes=(4, 6), sends=(4, 8), seeds=(0, 1, 2))
        cells = matrix.cells()
        assert len(cells) == matrix.num_cells == 12
        assert len({c.cell_id for c in cells}) == 12

    def test_expansion_order_is_deterministic(self):
        matrix = small_matrix(processes=(4, 6), seeds=(0, 1))
        ids = [c.cell_id for c in matrix.cells()]
        assert ids == [c.cell_id for c in matrix.cells()]

    def test_faults_only_pair_with_fault_capable(self):
        matrix = small_matrix(
            detectors=("token_vc", "reference"),
            faults=(None, "drop:token:0.2"),
            seeds=(0,),
        )
        cells = matrix.cells()
        by_detector = {}
        for cell in cells:
            by_detector.setdefault(cell.detector, []).append(cell.faults)
        assert sorted(by_detector["token_vc"], key=str) == [
            None, "drop:token:0.2"
        ]
        assert by_detector["reference"] == [None]

    def test_round_trips_through_dict(self):
        matrix = small_matrix(
            faults=(None, "drop:token:0.1"), pred_widths=(None, 2)
        )
        clone = SweepMatrix.from_dict(matrix.to_dict())
        assert clone == matrix

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown matrix keys"):
            SweepMatrix.from_dict(
                {"name": "x", "detectors": ["token_vc"], "processes": [4],
                 "sends": [4], "bogus": 1}
            )

    def test_from_dict_requires_core_keys(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            SweepMatrix.from_dict({"name": "x"})

    def test_pred_width_wider_than_processes_rejected(self):
        matrix = small_matrix(pred_widths=(8,))
        with pytest.raises(ConfigurationError, match="pred_width"):
            matrix.cells()

    def test_duplicate_axis_entries_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            small_matrix(seeds=(1, 1))

    def test_check_invariants_only_arms_online_cells(self):
        matrix = small_matrix(
            detectors=("token_vc", "reference"), check_invariants=True
        )
        by_detector = {c.detector: c for c in matrix.cells()}
        assert by_detector["token_vc"].check_invariants is True
        assert by_detector["reference"].check_invariants is False

    def test_check_invariants_round_trips(self):
        matrix = small_matrix(check_invariants=True)
        clone = SweepMatrix.from_dict(matrix.to_dict())
        assert clone == matrix
        assert clone.check_invariants is True

    def test_load_matrix_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(
            '{"name": "f", "detectors": ["token_vc"], '
            '"processes": [4], "sends": [4]}'
        )
        matrix = load_matrix(path)
        assert matrix.name == "f"
        assert matrix.num_cells == 1

    def test_load_matrix_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such matrix"):
            load_matrix(tmp_path / "absent.json")

    def test_load_matrix_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not JSON"):
            load_matrix(path)


class TestClockBackendAxis:
    def test_packed_suffixes_the_group(self):
        plain = SweepCell(detector="token_vc", num_processes=4,
                          sends_per_process=8)
        packed = SweepCell(detector="token_vc", num_processes=4,
                           sends_per_process=8, clock_backend="packed")
        assert packed.group == plain.group + "/packed"
        assert "/packed" not in plain.group  # old baselines unchanged

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="clock_backend"):
            SweepCell(detector="token_vc", num_processes=4,
                      sends_per_process=4, clock_backend="numpy")
        with pytest.raises(ConfigurationError, match="clock backends"):
            small_matrix(clock_backends=("numpy",))

    def test_packed_requires_online_detector(self):
        with pytest.raises(ConfigurationError, match="offline"):
            SweepCell(detector="reference", num_processes=4,
                      sends_per_process=4, clock_backend="packed")

    def test_backend_axis_multiplies_online_cells_only(self):
        matrix = small_matrix(
            detectors=("token_vc", "reference"),
            clock_backends=("list", "packed"),
            seeds=(0,),
        )
        by_detector = {}
        for cell in matrix.cells():
            by_detector.setdefault(cell.detector, []).append(
                cell.clock_backend
            )
        assert sorted(by_detector["token_vc"]) == ["list", "packed"]
        assert by_detector["reference"] == ["list"]
        assert matrix.num_cells == 3 * len(matrix.seeds)

    def test_backend_axis_round_trips(self):
        matrix = small_matrix(clock_backends=("list", "packed"))
        clone = SweepMatrix.from_dict(matrix.to_dict())
        assert clone == matrix
        assert clone.clock_backends == ("list", "packed")


class TestExclude:
    def test_excluded_corner_is_dropped(self):
        matrix = small_matrix(
            processes=(4, 6), sends=(6, 8), seeds=(0,),
            exclude=({"processes": 6, "sends": 8},),
        )
        cells = matrix.cells()
        assert matrix.num_cells == len(cells) == 3
        assert not any(
            c.num_processes == 6 and c.sends_per_process == 8 for c in cells
        )

    def test_partial_match_excludes_across_other_axes(self):
        matrix = small_matrix(
            processes=(4, 6), sends=(6,), seeds=(0, 1),
            exclude=({"processes": 6},),
        )
        assert all(c.num_processes == 4 for c in matrix.cells())
        assert matrix.num_cells == 2

    def test_unknown_exclude_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            small_matrix(exclude=({"bogus": 1},))

    def test_empty_exclude_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            small_matrix(exclude=({},))

    def test_exclude_round_trips(self):
        matrix = small_matrix(
            processes=(4, 6), exclude=({"processes": 6},)
        )
        clone = SweepMatrix.from_dict(matrix.to_dict())
        assert clone == matrix
        assert clone.num_cells == matrix.num_cells

    def test_no_exclude_key_defaults_to_empty(self):
        matrix = SweepMatrix.from_dict(
            {"name": "x", "detectors": ["token_vc"], "processes": [4],
             "sends": [4]}
        )
        assert matrix.exclude == ()
