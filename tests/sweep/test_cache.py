"""Tests for the content-addressed workload cache."""

import json

from repro.trace.generators import WorkloadSpec, generate
from repro.trace.serialization import dumps
from repro.sweep import WorkloadCache


def spec(**overrides) -> WorkloadSpec:
    kwargs = dict(num_processes=4, sends_per_process=6, seed=3)
    kwargs.update(overrides)
    return WorkloadSpec(**kwargs)


class TestKeying:
    def test_same_params_same_key(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        assert cache.key(spec()) == cache.key(spec())

    def test_any_param_changes_key(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        base = cache.key(spec())
        assert cache.key(spec(seed=4)) != base
        assert cache.key(spec(sends_per_process=7)) != base
        assert cache.key(spec(predicate_density=0.5)) != base
        assert cache.key(spec(plant_final_cut=True)) != base


class TestHitMiss:
    def test_miss_generates_and_persists(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        comp = cache.get_or_generate(spec())
        assert cache.stats() == {"hits": 0, "misses": 1, "corrupt": 0}
        assert cache.path_for(spec()).exists()
        assert dumps(comp) == dumps(generate(spec()))

    def test_hit_returns_identical_computation(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        first = cache.get_or_generate(spec())
        second = cache.get_or_generate(spec())
        assert cache.stats() == {"hits": 1, "misses": 1, "corrupt": 0}
        assert dumps(first) == dumps(second)

    def test_distinct_specs_do_not_collide(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        a = cache.get_or_generate(spec(seed=1))
        b = cache.get_or_generate(spec(seed=2))
        assert cache.stats()["misses"] == 2
        assert dumps(a) != dumps(b)

    def test_cache_shared_across_instances(self, tmp_path):
        WorkloadCache(tmp_path).get_or_generate(spec())
        other = WorkloadCache(tmp_path)
        other.get_or_generate(spec())
        assert other.stats() == {"hits": 1, "misses": 0, "corrupt": 0}


class TestCorruptEntries:
    def test_truncated_entry_is_regenerated(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        comp = cache.get_or_generate(spec())
        path = cache.path_for(spec())
        path.write_text(path.read_text()[: 40])
        recovered = cache.get_or_generate(spec())
        assert cache.stats() == {"hits": 0, "misses": 2, "corrupt": 1}
        assert dumps(recovered) == dumps(comp)
        # The entry was healed in place: the next read is a clean hit.
        assert dumps(cache.get_or_generate(spec())) == dumps(comp)
        assert cache.stats()["hits"] == 1

    def test_wrong_schema_is_corrupt(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        cache.get_or_generate(spec())
        path = cache.path_for(spec())
        doc = json.loads(path.read_text())
        doc["schema"] = "something-else/9"
        path.write_text(json.dumps(doc))
        cache.get_or_generate(spec())
        assert cache.stats()["corrupt"] == 1

    def test_key_mismatch_is_corrupt(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        cache.get_or_generate(spec())
        path = cache.path_for(spec())
        doc = json.loads(path.read_text())
        doc["key"] = "0" * 64
        path.write_text(json.dumps(doc))
        cache.get_or_generate(spec())
        assert cache.stats()["corrupt"] == 1

    def test_unparseable_computation_is_corrupt(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        cache.get_or_generate(spec())
        path = cache.path_for(spec())
        doc = json.loads(path.read_text())
        doc["computation"] = {"nonsense": True}
        path.write_text(json.dumps(doc))
        cache.get_or_generate(spec())
        assert cache.stats()["corrupt"] == 1
