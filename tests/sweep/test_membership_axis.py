"""Sweep-matrix membership axes: gossip cells, fanouts, round-trips."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sweep.matrix import SweepCell, SweepMatrix


def _matrix(**kw):
    base = dict(
        name="t",
        detectors=("token_vc",),
        processes=(3,),
        sends=(4,),
        faults=("drop:token:0.1",),
        self_heal=True,
    )
    base.update(kw)
    return SweepMatrix(**base)


class TestCellMembership:
    def test_defaults_leave_ids_unchanged(self):
        cell = SweepCell("token_vc", 3, 4)
        assert cell.membership == "heartbeat"
        assert "/gossip" not in cell.cell_id

    def test_gossip_suffixes_the_group(self):
        cell = SweepCell(
            "token_vc", 3, 4, faults="drop:token:0.1",
            self_heal=True, membership="gossip", gossip_fanout=2,
        )
        assert cell.group.endswith("/heal/gossip2")

    def test_gossip_requires_self_heal(self):
        with pytest.raises(ConfigurationError):
            SweepCell("token_vc", 3, 4, membership="gossip")

    def test_rejects_unknown_membership(self):
        with pytest.raises(ConfigurationError):
            SweepCell("token_vc", 3, 4, membership="telepathy")

    def test_to_dict_carries_the_knobs(self):
        cell = SweepCell(
            "token_vc", 3, 4, faults="drop:token:0.1",
            self_heal=True, membership="gossip", gossip_fanout=5,
        )
        data = cell.to_dict()
        assert data["membership"] == "gossip"
        assert data["gossip_fanout"] == 5


class TestMatrixMembershipAxis:
    def test_default_axis_adds_no_cells(self):
        plain = _matrix()
        assert plain.num_cells == len(plain.cells()) == 1
        assert plain.cells()[0].membership == "heartbeat"

    def test_gossip_axis_multiplies_by_fanouts(self):
        matrix = _matrix(
            membership=("heartbeat", "gossip"), gossip_fanouts=(2, 4)
        )
        cells = matrix.cells()
        assert matrix.num_cells == len(cells) == 3
        gossip = [c for c in cells if c.membership == "gossip"]
        assert sorted(c.gossip_fanout for c in gossip) == [2, 4]
        assert all(c.self_heal for c in gossip)

    def test_fault_incapable_detectors_skip_gossip(self):
        matrix = _matrix(
            detectors=("token_vc", "reference"),
            membership=("heartbeat", "gossip"),
        )
        for cell in matrix.cells():
            if cell.detector == "reference":
                assert cell.membership == "heartbeat"

    def test_gossip_axis_requires_self_heal(self):
        with pytest.raises(ConfigurationError):
            _matrix(self_heal=False, membership=("gossip",))

    def test_round_trip(self):
        matrix = _matrix(
            membership=("heartbeat", "gossip"), gossip_fanouts=(3, 6)
        )
        again = SweepMatrix.from_dict(matrix.to_dict())
        assert again == matrix
        assert [c.cell_id for c in again.cells()] == [
            c.cell_id for c in matrix.cells()
        ]

    def test_old_documents_still_load(self):
        doc = {
            "name": "legacy",
            "detectors": ["token_vc"],
            "processes": [3],
            "sends": [4],
        }
        matrix = SweepMatrix.from_dict(doc)
        assert matrix.membership == ("heartbeat",)
        assert matrix.num_cells == 1
