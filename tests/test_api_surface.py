"""The public API surface: every advertised name resolves and imports work."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.common",
    "repro.clocks",
    "repro.trace",
    "repro.predicates",
    "repro.simulation",
    "repro.detect",
    "repro.apps",
    "repro.lowerbound",
    "repro.analysis",
]

MODULES = [
    "repro.cli",
    "repro.detect.reference",
    "repro.detect.lattice_cm",
    "repro.detect.centralized",
    "repro.detect.token_vc",
    "repro.detect.token_vc_multi",
    "repro.detect.direct_dep",
    "repro.detect.direct_dep_parallel",
    "repro.detect.gcp",
    "repro.detect.gcp_online",
    "repro.detect.boolean",
    "repro.detect.strong",
    "repro.detect.runner",
    "repro.trace.state_lattice",
    "repro.trace.render",
    "repro.trace.statistics",
    "repro.simulation.observers",
    "repro.predicates.boolexpr",
    "repro.apps.leader",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} should define __all__"
    for attr in exported:
        assert getattr(module, attr, None) is not None, f"{name}.{attr}"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_detectors_registry_complete():
    from repro.detect.runner import DETECTORS

    # Every detect() module with a registry entry resolves to a callable.
    for name, fn in DETECTORS.items():
        assert callable(fn), name
