"""Unit tests for §5 strategies: correctness on honest oracles and the
forced Ω(nm) cost against the adversary."""

import pytest

from repro.detect import reference
from repro.lowerbound import (
    ExplicitPosetOracle,
    available_strategies,
    play,
    play_against_adversary,
    play_on_computation,
)
from repro.predicates import WeakConjunctivePredicate
from repro.trace import (
    never_true_computation,
    random_computation,
    worst_case_computation,
)


class TestCorrectnessOnHonestOracles:
    @pytest.mark.parametrize(
        "strategy", available_strategies(), ids=lambda s: s.name
    )
    def test_answer_equals_wcp_detectability(self, strategy):
        for seed in range(8):
            comp = random_computation(
                4, 4, seed=seed, predicate_density=0.35,
                plant_final_cut=(seed % 2 == 0),
            )
            wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
            expected = reference.detect(comp, wcp).detected
            result = play_on_computation(strategy, comp, wcp)
            assert result.answer == expected, f"seed {seed}"

    @pytest.mark.parametrize(
        "strategy", available_strategies(), ids=lambda s: s.name
    )
    def test_no_answer_when_chain_empty(self, strategy):
        comp = never_true_computation(3, 4, seed=3)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        # One chain is empty from the start; immediate 'no'.
        result = play_on_computation(strategy, comp, wcp)
        assert not result.answer
        assert result.deletions == 0

    def test_strategies_agree_pairwise(self):
        comp = worst_case_computation(4, 4, seed=5)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
        answers = {
            s.name: play_on_computation(s, comp, wcp).answer
            for s in available_strategies()
        }
        assert len(set(answers.values())) == 1


class TestAdversarialCost:
    @pytest.mark.parametrize(
        "strategy", available_strategies(), ids=lambda s: s.name
    )
    @pytest.mark.parametrize("n,m", [(2, 5), (4, 8), (6, 10)])
    def test_theorem_bound(self, strategy, n, m):
        result = play_against_adversary(strategy, n, m)
        assert not result.answer
        assert result.deletions >= result.theorem_bound == n * m - n

    def test_total_steps_scale_linearly_in_nm(self):
        from repro.analysis import fit_power_law

        strategy = available_strategies()[0]
        points = [(3, 6), (4, 12), (6, 16), (8, 24)]
        xs = [n * m for n, m in points]
        ys = [
            play_against_adversary(strategy, n, m).total_steps
            for n, m in points
        ]
        fit = fit_power_law(xs, ys)
        assert 0.9 <= fit.exponent <= 1.1

    def test_game_result_fields(self):
        result = play_against_adversary(available_strategies()[0], 3, 4)
        assert result.n == 3 and result.m == 4
        assert result.total_steps == result.s1_steps + result.s2_steps
