"""Unit tests for the Theorem 5.1 adversary."""

import pytest

from repro.common import LowerBoundError
from repro.lowerbound import AdversaryOracle


class TestAdversaryAnswers:
    def test_exactly_one_dominated_head(self):
        oracle = AdversaryOracle(4, 5)
        hc = oracle.compare_heads()
        assert len(hc.relations) == 1
        assert all(hc.alive)

    def test_answers_stable_until_deletion(self):
        oracle = AdversaryOracle(3, 4)
        first = oracle.compare_heads()
        second = oracle.compare_heads()
        assert first.relations == second.relations

    def test_fresh_head_becomes_dominator(self):
        oracle = AdversaryOracle(3, 4)
        (loser, _winner) = oracle.compare_heads().relations[0]
        oracle.delete_heads({loser})
        nxt = oracle.compare_heads().relations[0]
        assert nxt[1] == loser, "last-deleted queue's fresh head dominates"
        assert nxt[0] != loser

    def test_targets_largest_queue(self):
        oracle = AdversaryOracle(3, 4)
        loser, _ = oracle.compare_heads().relations[0]
        oracle.delete_heads({loser})
        loser2, winner2 = oracle.compare_heads().relations[0]
        sizes = [oracle.queue_size(q) for q in range(3)]
        candidates = [q for q in range(3) if q != winner2]
        assert sizes[loser2] == max(sizes[q] for q in candidates)

    def test_only_announced_loser_deletable(self):
        oracle = AdversaryOracle(3, 3)
        loser, _ = oracle.compare_heads().relations[0]
        other = (loser + 1) % 3
        with pytest.raises(LowerBoundError):
            oracle.delete_heads({other})

    def test_game_ends_when_queue_empty(self):
        oracle = AdversaryOracle(2, 2)
        while not oracle.exhausted():
            hc = oracle.compare_heads()
            oracle.delete_heads(hc.dominated())
        assert not all(oracle.compare_heads().alive)

    def test_single_chain_rejected(self):
        with pytest.raises(LowerBoundError, match="n >= 2"):
            AdversaryOracle(1, 5)

    def test_deletions_one_at_a_time(self):
        """The adversary never allows more than one deletion per step."""
        oracle = AdversaryOracle(4, 3)
        while not oracle.exhausted():
            dominated = oracle.compare_heads().dominated()
            assert len(dominated) == 1
            oracle.delete_heads(dominated)
