"""Unit tests for the §5 game model and honest oracle."""

import pytest

from repro.common import LowerBoundError, StateRef
from repro.lowerbound import ExplicitPosetOracle, HeadComparison
from repro.predicates import WeakConjunctivePredicate
from repro.trace import spiral_computation


def chain_oracle():
    """Two chains: a1 < b1, everything else concurrent.

    Chain A: [a1, a2]; chain B: [b1].
    """
    order = {("a1", "b1")}

    def hb(x, y):
        return (x, y) in order

    return ExplicitPosetOracle([["a1", "a2"], ["b1"]], hb)


class TestHeadComparison:
    def test_dominated(self):
        hc = HeadComparison((True, True), ((0, 1),))
        assert hc.dominated() == {0}

    def test_empty(self):
        assert HeadComparison((True,), ()).dominated() == set()


class TestExplicitOracle:
    def test_reports_relations_among_heads(self):
        oracle = chain_oracle()
        hc = oracle.compare_heads()
        assert hc.alive == (True, True)
        assert hc.relations == ((0, 1),)
        assert oracle.s1_steps == 1

    def test_delete_dominated_head(self):
        oracle = chain_oracle()
        oracle.compare_heads()
        oracle.delete_heads({0})
        assert oracle.deletions == 1
        assert oracle.queue_size(0) == 1
        # New head a2 is concurrent with b1.
        assert oracle.compare_heads().relations == ()

    def test_illegal_deletion_rejected(self):
        oracle = chain_oracle()
        with pytest.raises(LowerBoundError, match="not dominated"):
            oracle.delete_heads({1})  # b1 dominates, it is not dominated

    def test_empty_deletion_rejected(self):
        oracle = chain_oracle()
        with pytest.raises(LowerBoundError):
            oracle.delete_heads(set())

    def test_from_computation_links_to_wcp(self):
        comp = spiral_computation(3, 2)
        wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
        oracle = ExplicitPosetOracle.from_computation(comp, wcp)
        assert oracle.n == 3
        hc = oracle.compare_heads()
        assert all(hc.alive)
        # Heads are StateRef-labelled candidates.
        first_relations = hc.relations
        assert all(
            isinstance(loser, int) and isinstance(winner, int)
            for loser, winner in first_relations
        )

    def test_n_m_validation(self):
        with pytest.raises(LowerBoundError):
            ExplicitPosetOracle([], lambda a, b: False)
