"""Property-based tests of structural round trips and conservation laws."""

from hypothesis import given, settings, strategies as st

from repro.trace import (
    dumps,
    loads,
    random_computation,
)
from repro.trace.snapshots import dd_snapshots, vc_snapshots
from repro.trace.generators import FLAG_VAR


computations = st.builds(
    random_computation,
    num_processes=st.integers(min_value=2, max_value=5),
    sends_per_process=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=50_000),
    predicate_density=st.floats(min_value=0.0, max_value=1.0),
    plant_final_cut=st.booleans(),
)


def flag(state):
    return bool(state.get(FLAG_VAR, False))


@settings(max_examples=40, deadline=None)
@given(computations)
def test_serialization_round_trip_preserves_structure(comp):
    restored = loads(dumps(comp))
    assert restored.num_processes == comp.num_processes
    assert restored.total_events() == comp.total_events()
    assert set(restored.messages) == set(comp.messages)
    a, b = comp.analysis(), restored.analysis()
    for pid in range(comp.num_processes):
        assert a.num_intervals(pid) == b.num_intervals(pid)


@settings(max_examples=40, deadline=None)
@given(computations)
def test_interval_count_conservation(comp):
    """Total intervals = N + total communication events."""
    a = comp.analysis()
    total_comm = sum(t.communication_count for t in comp.processes)
    assert sum(
        a.num_intervals(p) for p in range(comp.num_processes)
    ) == comp.num_processes + total_comm


@settings(max_examples=40, deadline=None)
@given(computations)
def test_vc_snapshots_are_strictly_increasing_per_process(comp):
    preds = {p: flag for p in range(comp.num_processes)}
    for pid, stream in vc_snapshots(comp, preds).items():
        intervals = [s.interval for s in stream]
        assert intervals == sorted(set(intervals))


@settings(max_examples=40, deadline=None)
@given(computations)
def test_dd_snapshot_dependences_partition_the_receives(comp):
    """Flushed dependence lists are disjoint, ordered slices of the
    receive sequence — nothing duplicated, nothing out of order."""
    preds = {p: flag for p in range(comp.num_processes)}
    streams = dd_snapshots(comp, preds)
    a = comp.analysis()
    for pid, stream in streams.items():
        emitted = [d for s in stream for d in s.deps]
        all_deps = [d for _, d in a.receive_dependences(pid)]
        assert emitted == all_deps[: len(emitted)]


@settings(max_examples=30, deadline=None)
@given(computations, st.integers(min_value=0, max_value=1000))
def test_simulation_is_deterministic(comp, seed):
    """The same detection run twice is bit-identical."""
    from repro.detect import run_detector
    from repro.predicates import WeakConjunctivePredicate

    wcp = WeakConjunctivePredicate.of_flags(range(comp.num_processes))

    def once():
        r = run_detector("token_vc", comp, wcp, seed=seed)
        return (
            r.detected,
            r.cut,
            r.detection_time,
            r.metrics.total_bits(),
            r.sim.steps,
        )

    assert once() == once()


@settings(max_examples=30, deadline=None)
@given(computations)
def test_message_conservation_in_detection_runs(comp):
    """Every monitor message sent is eventually delivered (reliable
    channels), and consumed counts never exceed deliveries."""
    from repro.detect import run_detector
    from repro.predicates import WeakConjunctivePredicate
    from repro.simulation import EventLog, MessagePhase

    wcp = WeakConjunctivePredicate.of_flags(range(comp.num_processes))
    log = EventLog()
    run_detector("direct_dep", comp, wcp, observers=[log])
    sent = len(log.of_phase(MessagePhase.SENT))
    delivered = len(log.of_phase(MessagePhase.DELIVERED))
    consumed = len(log.of_phase(MessagePhase.CONSUMED))
    assert delivered == sent
    assert consumed <= delivered
