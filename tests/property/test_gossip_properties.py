"""Property-based tests for the SWIM membership state machine.

:class:`~repro.detect.stack.gossip.SwimState` is pure state — no actor
plumbing — so Hypothesis can drive it with arbitrary interleavings of
gossip updates, probe outcomes and clock advances.  The laws under test
are the ones the exactness suite leans on:

* **Incarnation refutation** — an ``alive`` entry with a strictly
  higher incarnation always overrides ``suspect``/``confirm`` at a
  lower one, and ties resolve toward the worse status (SWIM's
  precedence order), regardless of arrival order.
* **Suspicion window** — a suspect is only confirmed after the full
  refutation window has elapsed, never early.
* **Piggyback buffer** — at most one entry per member is buffered (the
  highest-precedence one), each entry is retransmitted a bounded
  number of times, and the least-sent entries go out first.
"""

from hypothesis import given, settings, strategies as st

from repro.detect.stack.gossip import (
    ALIVE,
    CONFIRMED,
    SUSPECT,
    GossipUpdate,
    SwimState,
)

_SLOTS = (0, 1, 2, 3, 4)
_statuses = st.sampled_from((ALIVE, SUSPECT, CONFIRMED))
_incarnations = st.integers(min_value=0, max_value=4)


def _state(**kw):
    return SwimState(0, _SLOTS, seed=7, **kw)


_updates = st.builds(
    GossipUpdate,
    slot=st.sampled_from(_SLOTS[1:]),
    status=_statuses,
    incarnation=_incarnations,
)


@st.composite
def update_streams(draw):
    return draw(st.lists(_updates, min_size=0, max_size=30))


@given(stream=update_streams())
def test_highest_precedence_update_wins_any_order(stream):
    """The table converges to the max-precedence update per slot, no
    matter what order the stream arrives in — gossip is a CRDT join."""
    state = _state()
    for update in stream:
        state.apply(update, now=0.0)
    for slot in _SLOTS[1:]:
        relevant = [u for u in stream if u.slot == slot]
        if not relevant:
            assert state.status(slot) == ALIVE
            continue
        best = max(u.precedence for u in relevant)
        expected = max(best, GossipUpdate(slot, ALIVE, 0).precedence)
        entry = state.table[slot]
        assert entry.precedence == expected


@given(
    suspect_inc=_incarnations,
    alive_inc=_incarnations,
    alive_first=st.booleans(),
)
def test_incarnation_refutation(suspect_inc, alive_inc, alive_first):
    """``alive@i`` refutes ``suspect@j`` iff ``i > j``; order of
    arrival never matters."""
    state = _state()
    updates = [
        GossipUpdate(1, SUSPECT, suspect_inc),
        GossipUpdate(1, ALIVE, alive_inc),
    ]
    if alive_first:
        updates.reverse()
    for update in updates:
        state.apply(update, now=0.0)
    expected = ALIVE if alive_inc > suspect_inc else SUSPECT
    assert state.status(1) == expected


@given(
    window=st.floats(min_value=0.5, max_value=10.0),
    elapsed=st.floats(min_value=0.0, max_value=20.0),
)
def test_confirm_only_after_full_window(window, elapsed):
    """``promote_due`` confirms a suspect iff the refutation window has
    fully elapsed since suspicion began."""
    state = _state()
    state.apply(GossipUpdate(1, SUSPECT, 0), now=1.0)
    assert state.status(1) == SUSPECT
    now = 1.0 + elapsed
    state.promote_due(now, window)
    if now - 1.0 >= window:  # float-exact form of ``elapsed >= window``
        assert state.status(1) == CONFIRMED
    else:
        assert state.status(1) == SUSPECT


@given(stream=update_streams(), limit=st.integers(min_value=1, max_value=8))
@settings(max_examples=60)
def test_piggyback_dedup_and_bounded_retransmission(stream, limit):
    """One buffered entry per member; every drained batch is unique per
    member; nothing is sent more than ``retransmit_budget`` times."""
    state = _state()
    for update in stream:
        state.ingest([update], now=0.0)
    sent_counts: dict[int, int] = {}
    max_drains = state.retransmit_budget * len(_SLOTS) + 5
    for _ in range(max_drains):
        batch = state.piggyback(limit)
        assert len(batch) <= limit
        slots = [entry.slot for entry in batch]
        assert len(slots) == len(set(slots)), "duplicate member in batch"
        for entry in batch:
            sent_counts[entry.slot] = sent_counts.get(entry.slot, 0) + 1
    assert not state.piggyback(limit)  # budget exhausts the buffer
    for slot, count in sent_counts.items():
        assert count <= state.retransmit_budget, slot


@given(stream=update_streams())
@settings(max_examples=60)
def test_piggyback_prefers_least_sent(stream):
    """Entries already gossiped ``k`` times never pre-empt entries
    gossiped fewer than ``k`` times in the same drain."""
    state = _state()
    for update in stream:
        state.ingest([update], now=0.0)
    times_sent: dict[int, int] = {}
    for _ in range(3):
        before = dict(times_sent)
        batch = state.piggyback(2)
        if not batch:
            break
        chosen = {entry.slot for entry in batch}
        floor = min(before.get(s, 0) for s in chosen)
        skipped = [
            s
            for s, cell in ((s, before.get(s, 0)) for s in _SLOTS[1:])
            if s not in chosen and cell < floor and s in state.table
        ]
        # A member skipped despite a lower send count must simply not
        # be buffered any more (already at budget or never buffered).
        for slot in skipped:
            assert ("member", slot) not in state._buffer
        for entry in batch:
            times_sent[entry.slot] = before.get(entry.slot, 0) + 1


# ----------------------------------------------------------------------
# Elastic membership: runtime introductions
# ----------------------------------------------------------------------

#: A slot the five-member state was *not* constructed with: every named
#: update about it is a runtime introduction (elastic join).
_JOIN_SLOT = 9
_JOIN_NAME = "mon-9"

_join_updates = st.builds(
    GossipUpdate,
    slot=st.just(_JOIN_SLOT),
    status=_statuses,
    incarnation=_incarnations,
    name=st.just(_JOIN_NAME),
)


@st.composite
def mixed_streams(draw):
    """Static-member updates and join introductions, arbitrarily
    interleaved — then shuffled, so arrival order carries no signal."""
    base = draw(st.lists(st.one_of(_updates, _join_updates),
                         min_size=0, max_size=30))
    return draw(st.permutations(base))


@given(stream=mixed_streams())
def test_named_introduction_converges_any_order(stream):
    """A joiner introduced by gossip converges like any other member:
    the table ends at the max-precedence update about it, the peer set
    stays sorted, and the name binds exactly once — whatever the
    interleaving."""
    state = _state()
    for update in stream:
        state.apply(update, now=0.0)
    named = [u for u in stream if u.slot == _JOIN_SLOT]
    if not named:
        assert _JOIN_SLOT not in state.table
        return
    assert state.names[_JOIN_SLOT] == _JOIN_NAME
    assert state.peers.count(_JOIN_SLOT) == 1
    assert state.peers == tuple(sorted(state.peers))
    assert state.table[_JOIN_SLOT].precedence == max(
        u.precedence for u in named
    )
    assert state.drain_introductions() == [(_JOIN_SLOT, _JOIN_NAME)]


@given(stream=mixed_streams(), chunk=st.integers(min_value=1, max_value=5))
def test_joined_event_fires_exactly_once(stream, chunk):
    """However the stream is chunked into piggyback batches, a member
    is introduced at most once — retransmissions are absorbed."""
    state = _state()
    events = []
    for i in range(0, len(stream), chunk):
        events.extend(state.ingest(stream[i:i + chunk], now=0.0))
    joined = [e for e in events if e[0] == "joined"]
    expected = 1 if any(u.slot == _JOIN_SLOT for u in stream) else 0
    assert len(joined) == expected
    if joined:
        assert joined[0] == ("joined", _JOIN_SLOT, _JOIN_NAME)


@given(inc=_incarnations, repeats=st.integers(min_value=1, max_value=4))
def test_add_member_is_idempotent_under_retransmission(inc, repeats):
    """The seed-contact handshake path: only the first ``add_member``
    admits; retransmitted joins are rejected without duplicating the
    peer entry, and the handshake path never queues a ``joined`` event
    (the caller already knows)."""
    state = _state()
    assert state.add_member(_JOIN_SLOT, _JOIN_NAME, incarnation=inc)
    for _ in range(repeats):
        assert not state.add_member(_JOIN_SLOT, _JOIN_NAME, incarnation=inc)
    assert state.peers.count(_JOIN_SLOT) == 1
    assert state.names[_JOIN_SLOT] == _JOIN_NAME
    assert state.drain_introductions() == []


@given(slot=st.sampled_from(_SLOTS), status=_statuses, inc=_incarnations)
def test_static_members_pay_no_name_bytes(slot, status, inc):
    """Updates about construction-time members carry no name, so a run
    with no joins is byte-identical to one recorded before elastic
    membership existed; the name premium is exactly its UTF-8 bytes."""
    anonymous = GossipUpdate(slot, status, inc)
    named = GossipUpdate(slot, status, inc, _JOIN_NAME)
    assert anonymous.size_bits() < named.size_bits()
    assert named.size_bits() - anonymous.size_bits() == 8 * len(_JOIN_NAME)
