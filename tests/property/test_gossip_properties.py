"""Property-based tests for the SWIM membership state machine.

:class:`~repro.detect.stack.gossip.SwimState` is pure state — no actor
plumbing — so Hypothesis can drive it with arbitrary interleavings of
gossip updates, probe outcomes and clock advances.  The laws under test
are the ones the exactness suite leans on:

* **Incarnation refutation** — an ``alive`` entry with a strictly
  higher incarnation always overrides ``suspect``/``confirm`` at a
  lower one, and ties resolve toward the worse status (SWIM's
  precedence order), regardless of arrival order.
* **Suspicion window** — a suspect is only confirmed after the full
  refutation window has elapsed, never early.
* **Piggyback buffer** — at most one entry per member is buffered (the
  highest-precedence one), each entry is retransmitted a bounded
  number of times, and the least-sent entries go out first.
"""

from hypothesis import given, settings, strategies as st

from repro.detect.stack.gossip import (
    ALIVE,
    CONFIRMED,
    SUSPECT,
    GossipUpdate,
    SwimState,
)

_SLOTS = (0, 1, 2, 3, 4)
_statuses = st.sampled_from((ALIVE, SUSPECT, CONFIRMED))
_incarnations = st.integers(min_value=0, max_value=4)


def _state(**kw):
    return SwimState(0, _SLOTS, seed=7, **kw)


_updates = st.builds(
    GossipUpdate,
    slot=st.sampled_from(_SLOTS[1:]),
    status=_statuses,
    incarnation=_incarnations,
)


@st.composite
def update_streams(draw):
    return draw(st.lists(_updates, min_size=0, max_size=30))


@given(stream=update_streams())
def test_highest_precedence_update_wins_any_order(stream):
    """The table converges to the max-precedence update per slot, no
    matter what order the stream arrives in — gossip is a CRDT join."""
    state = _state()
    for update in stream:
        state.apply(update, now=0.0)
    for slot in _SLOTS[1:]:
        relevant = [u for u in stream if u.slot == slot]
        if not relevant:
            assert state.status(slot) == ALIVE
            continue
        best = max(u.precedence for u in relevant)
        expected = max(best, GossipUpdate(slot, ALIVE, 0).precedence)
        entry = state.table[slot]
        assert entry.precedence == expected


@given(
    suspect_inc=_incarnations,
    alive_inc=_incarnations,
    alive_first=st.booleans(),
)
def test_incarnation_refutation(suspect_inc, alive_inc, alive_first):
    """``alive@i`` refutes ``suspect@j`` iff ``i > j``; order of
    arrival never matters."""
    state = _state()
    updates = [
        GossipUpdate(1, SUSPECT, suspect_inc),
        GossipUpdate(1, ALIVE, alive_inc),
    ]
    if alive_first:
        updates.reverse()
    for update in updates:
        state.apply(update, now=0.0)
    expected = ALIVE if alive_inc > suspect_inc else SUSPECT
    assert state.status(1) == expected


@given(
    window=st.floats(min_value=0.5, max_value=10.0),
    elapsed=st.floats(min_value=0.0, max_value=20.0),
)
def test_confirm_only_after_full_window(window, elapsed):
    """``promote_due`` confirms a suspect iff the refutation window has
    fully elapsed since suspicion began."""
    state = _state()
    state.apply(GossipUpdate(1, SUSPECT, 0), now=1.0)
    assert state.status(1) == SUSPECT
    now = 1.0 + elapsed
    state.promote_due(now, window)
    if now - 1.0 >= window:  # float-exact form of ``elapsed >= window``
        assert state.status(1) == CONFIRMED
    else:
        assert state.status(1) == SUSPECT


@given(stream=update_streams(), limit=st.integers(min_value=1, max_value=8))
@settings(max_examples=60)
def test_piggyback_dedup_and_bounded_retransmission(stream, limit):
    """One buffered entry per member; every drained batch is unique per
    member; nothing is sent more than ``retransmit_budget`` times."""
    state = _state()
    for update in stream:
        state.ingest([update], now=0.0)
    sent_counts: dict[int, int] = {}
    max_drains = state.retransmit_budget * len(_SLOTS) + 5
    for _ in range(max_drains):
        batch = state.piggyback(limit)
        assert len(batch) <= limit
        slots = [entry.slot for entry in batch]
        assert len(slots) == len(set(slots)), "duplicate member in batch"
        for entry in batch:
            sent_counts[entry.slot] = sent_counts.get(entry.slot, 0) + 1
    assert not state.piggyback(limit)  # budget exhausts the buffer
    for slot, count in sent_counts.items():
        assert count <= state.retransmit_budget, slot


@given(stream=update_streams())
@settings(max_examples=60)
def test_piggyback_prefers_least_sent(stream):
    """Entries already gossiped ``k`` times never pre-empt entries
    gossiped fewer than ``k`` times in the same drain."""
    state = _state()
    for update in stream:
        state.ingest([update], now=0.0)
    times_sent: dict[int, int] = {}
    for _ in range(3):
        before = dict(times_sent)
        batch = state.piggyback(2)
        if not batch:
            break
        chosen = {entry.slot for entry in batch}
        floor = min(before.get(s, 0) for s in chosen)
        skipped = [
            s
            for s, cell in ((s, before.get(s, 0)) for s in _SLOTS[1:])
            if s not in chosen and cell < floor and s in state.table
        ]
        # A member skipped despite a lower send count must simply not
        # be buffered any more (already at budget or never buffered).
        for slot in skipped:
            assert ("member", slot) not in state._buffer
        for entry in batch:
            times_sent[entry.slot] = before.get(entry.slot, 0) + 1
