"""Property-based tests over randomly generated computations.

Hypothesis drives the workload generator through its seed/shape space;
the properties are the partial-order laws the detection algorithms'
correctness proofs rely on.
"""

from hypothesis import given, settings, strategies as st

from repro.common import StateRef
from repro.trace import random_computation


computations = st.builds(
    random_computation,
    num_processes=st.integers(min_value=2, max_value=5),
    sends_per_process=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    predicate_density=st.floats(min_value=0.0, max_value=1.0),
)


def all_states(analysis):
    comp = analysis.computation
    return [
        StateRef(pid, interval)
        for pid in range(comp.num_processes)
        for interval in range(1, analysis.num_intervals(pid) + 1)
    ]


@settings(max_examples=40, deadline=None)
@given(computations)
def test_happened_before_is_irreflexive(comp):
    a = comp.analysis()
    for s in all_states(a):
        assert not a.happened_before(s, s)


@settings(max_examples=40, deadline=None)
@given(computations)
def test_happened_before_is_antisymmetric(comp):
    a = comp.analysis()
    states = all_states(a)
    for x in states:
        for y in states:
            if a.happened_before(x, y):
                assert not a.happened_before(y, x)


@settings(max_examples=25, deadline=None)
@given(computations)
def test_happened_before_is_transitive(comp):
    a = comp.analysis()
    states = all_states(a)
    hb = {
        (x, y)
        for x in states
        for y in states
        if a.happened_before(x, y)
    }
    for (x, y) in hb:
        for (y2, z) in hb:
            if y == y2:
                assert (x, z) in hb


@settings(max_examples=40, deadline=None)
@given(computations)
def test_vector_comparison_matches_happened_before(comp):
    """Paper property 1 at interval granularity: for states on different
    processes, hb iff strict vector dominance."""
    a = comp.analysis()
    states = all_states(a)
    for x in states:
        for y in states:
            if x.pid == y.pid:
                continue
            vx = a.vector(x.pid, x.interval)
            vy = a.vector(y.pid, y.interval)
            assert a.happened_before(x, y) == (vx < vy)


@settings(max_examples=40, deadline=None)
@given(computations)
def test_direct_dependence_contained_in_happened_before(comp):
    a = comp.analysis()
    states = all_states(a)
    for x in states:
        for y in states:
            if x == y:
                continue
            if a.directly_precedes(x, y):
                assert a.happened_before(x, y)


@settings(max_examples=25, deadline=None)
@given(computations)
def test_lemma_4_1_direct_vs_transitive_consistency(comp):
    """Lemma 4.1: a full cut is consistent under happened-before iff it
    is consistent under direct dependence (when all N processes have a
    component)."""
    import itertools

    a = comp.analysis()
    n = comp.num_processes
    ranges = [range(1, min(a.num_intervals(p), 3) + 1) for p in range(n)]
    for combo in itertools.product(*ranges):
        states = [StateRef(p, combo[p]) for p in range(n)]
        hb_consistent = all(
            not a.happened_before(x, y)
            for x in states
            for y in states
            if x != y
        )
        dd_consistent = all(
            not a.directly_precedes(x, y)
            for x in states
            for y in states
            if x != y
        )
        assert hb_consistent == dd_consistent
