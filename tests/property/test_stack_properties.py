"""Property-based tests for the transport layer's persisted buffers.

The :class:`CandidateInbox` is the transport layer's answer to the
kernel's lossy/duplicating/reordering channel: whatever arrival order
the adversary picks, a monitor must consume its app stream exactly
once, in sequence order.  The :class:`AdaptiveSchedule` must keep its
RTO inside ``[min_timeout, cap]`` no matter how degenerate the RTT
samples get.  Both live in persisted actor attributes, so these laws
are also what crash/restart recovery relies on.
"""

from hypothesis import given, settings, strategies as st

from repro.detect.stack import AdaptiveRetryPolicy, CandidateInbox, Sequenced

# An adversarial delivery: any multiset of (seq, duplicate-count) pairs
# drawn from a finite stream, presented in any order.
_stream_lengths = st.integers(min_value=0, max_value=12)


def _deliveries(draw, n):
    """A shuffled arrival schedule for stream 1..n+1 (n+1 = final),
    with duplicates."""
    seqs = list(range(1, n + 2))
    copies = draw(
        st.lists(
            st.sampled_from(seqs), min_size=0, max_size=2 * len(seqs)
        )
    )
    order = draw(st.permutations(seqs + copies))
    return order


@st.composite
def arrival_schedules(draw):
    n = draw(_stream_lengths)
    return n, _deliveries(draw, n)


@given(case=arrival_schedules())
def test_inbox_yields_stream_in_order_exactly_once(case):
    """Any arrival order with any duplication yields payloads
    1..n each exactly once, in sequence order, then ``exhausted``."""
    n, order = case
    inbox = CandidateInbox()
    popped = []
    for seq in order:
        final = seq == n + 1
        payload = None if final else f"cand-{seq}"
        accepted = inbox.accept(Sequenced(seq, payload, final=final), 8)
        # A second copy of an already-seen seq must be refused.
        assert not inbox.accept(Sequenced(seq, payload, final=final), 8)
        del accepted
        while (entry := inbox.pop()) is not None:
            popped.append(entry[0])
    assert popped == [f"cand-{s}" for s in range(1, n + 1)]
    assert inbox.complete and inbox.exhausted
    assert inbox.ack == n + 1


@given(case=arrival_schedules())
def test_inbox_ack_is_monotone_and_contiguous(case):
    """The cumulative ack never decreases and never runs ahead of the
    longest contiguous prefix actually delivered."""
    n, order = case
    inbox = CandidateInbox()
    seen: set[int] = set()
    prev_ack = 0
    for seq in order:
        inbox.accept(Sequenced(seq, None, final=seq == n + 1), 8)
        seen.add(seq)
        contiguous = 0
        while contiguous + 1 in seen:
            contiguous += 1
        assert inbox.ack == contiguous
        assert inbox.ack >= prev_ack
        prev_ack = inbox.ack


@given(
    prefix=st.integers(min_value=0, max_value=6),
    n=st.integers(min_value=1, max_value=6),
)
def test_inbox_incomplete_until_final_marker_arrives(prefix, n):
    """``complete`` requires the end-of-trace marker *and* every seq
    before it; a gap anywhere keeps the verdict inconclusive."""
    inbox = CandidateInbox()
    for seq in range(1, min(prefix, n) + 1):
        inbox.accept(Sequenced(seq, f"c{seq}"), 8)
    inbox.accept(Sequenced(n + 1, None, final=True), 8)
    # The marker only registers once it drains through the contiguous
    # window — an out-of-order final says nothing about completeness.
    assert inbox.complete == (prefix >= n)
    assert (inbox.final_seq == n + 1) == (prefix >= n)


_rtts = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@settings(max_examples=60)
@given(
    samples=st.lists(_rtts, min_size=0, max_size=30),
    attempt=st.integers(min_value=0, max_value=64),
)
def test_adaptive_timeout_always_inside_clamp_band(samples, attempt):
    """However wild the RTT samples and however deep the backoff, the
    jittered timeout stays inside ``[min_timeout, cap]`` — huge
    ``attempt`` values must saturate at the cap, not overflow."""
    policy = AdaptiveRetryPolicy(seed=7)
    sched = policy.schedule("mon-0")
    for rtt in samples:
        sched.sample(rtt)
    value = sched.timeout(attempt)
    assert policy.min_timeout <= value <= policy.cap
    assert policy.min_timeout <= sched.rto <= max(
        policy.cap, policy.initial_timeout
    )


@given(rtt=st.floats(min_value=0.01, max_value=50.0, allow_nan=False))
def test_adaptive_first_sample_seeds_estimator(rtt):
    """The first measurement initialises SRTT=rtt, RTTVAR=rtt/2 — the
    classic Jacobson bootstrap."""
    sched = AdaptiveRetryPolicy(jitter=0.0).schedule("mon-1")
    assert sched.rto == sched.policy.initial_timeout
    sched.sample(rtt)
    assert sched.srtt == rtt
    assert sched.rttvar == rtt / 2.0


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=3), min_size=1, max_size=20
    )
)
def test_adaptive_ledger_never_leaks_tainted_keys(keys):
    """Re-sent then acked keys leave no residue: the ledger forgets
    them without sampling, so later re-use of the same key behaves
    like a fresh frame."""
    sched = AdaptiveRetryPolicy(jitter=0.0).schedule("mon-2")
    now = 0.0
    for key in keys:
        now += 1.0
        sched.on_send(key, now)
        sched.on_send(key, now + 0.5)  # taint every key
        sched.on_ack(key, now + 1.0)
    assert sched.samples == 0
    assert sched.srtt is None
    # The ledger is empty: a fresh single transmission samples cleanly.
    sched.on_send("fresh", now + 2.0)
    sched.on_ack("fresh", now + 3.0)
    assert sched.samples == 1


def test_adaptive_negative_rtt_is_ignored():
    sched = AdaptiveRetryPolicy(jitter=0.0).schedule("mon-3")
    sched.sample(-1.0)
    assert sched.samples == 0
    assert sched.srtt is None
