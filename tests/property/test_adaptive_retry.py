"""Property-based tests for the adaptive retransmission schedule.

Three laws the Jacobson/Karn estimator must satisfy regardless of the
traffic it sees:

* feeding a constant round-trip time drives SRTT to that constant and
  RTTVAR to zero, so the RTO converges toward the true delay;
* Karn's rule — an ack for a key that was ever retransmitted is never
  sampled, so retransmission ambiguity cannot corrupt the estimator;
* jittered timeouts are a pure function of (policy seed, actor name,
  draw index): two schedules with the same seed produce identical
  streams, and the stream never leaves the configured jitter band.
"""

from hypothesis import given, settings, strategies as st

from repro.detect.stack import AdaptiveRetryPolicy

rtts = st.floats(min_value=0.01, max_value=20.0,
                 allow_nan=False, allow_infinity=False)


@given(rtt=rtts, warmup=st.integers(min_value=30, max_value=80))
def test_srtt_converges_to_constant_delay(rtt, warmup):
    sched = AdaptiveRetryPolicy(jitter=0.0).schedule("mon-0")
    for _ in range(warmup):
        sched.sample(rtt)
    assert abs(sched.srtt - rtt) < 1e-6 * max(1.0, rtt)
    assert sched.rttvar < rtt * 0.05 + 1e-9
    # RTO is pinned to the (clamped) true delay once variance dies out.
    policy = sched.policy
    expected = min(policy.cap, max(policy.min_timeout,
                                   sched.srtt + policy.k * sched.rttvar))
    assert sched.rto == expected


@given(
    sends=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), rtts),
        min_size=1, max_size=40,
    )
)
def test_karn_never_samples_a_retransmitted_key(sends):
    """Replay an arbitrary send/ack interleaving; only keys sent exactly
    once may contribute RTT samples."""
    sched = AdaptiveRetryPolicy(jitter=0.0).schedule("mon-1")
    now = 0.0
    send_counts: dict[int, int] = {}
    acked: set[int] = set()
    clean_acks = 0
    for key, gap in sends:
        now += gap
        if key in acked:
            continue
        if send_counts.get(key, 0) == 0 or key % 2 == 0:
            sched.on_send(key, now)
            send_counts[key] = send_counts.get(key, 0) + 1
        else:
            sched.on_ack(key, now)
            acked.add(key)
            if send_counts[key] == 1:
                clean_acks += 1
    assert sched.samples == clean_acks


@given(rtt=rtts)
def test_karn_single_transmission_is_sampled(rtt):
    sched = AdaptiveRetryPolicy(jitter=0.0).schedule("mon-2")
    sched.on_send("frame", 1.0)
    sched.on_ack("frame", 1.0 + rtt)
    assert sched.samples == 1
    assert abs(sched.srtt - rtt) < 1e-9


def test_forget_drops_key_without_sampling():
    sched = AdaptiveRetryPolicy(jitter=0.0).schedule("mon-3")
    sched.on_send("frame", 1.0)
    sched.forget("frame")
    sched.on_ack("frame", 2.0)
    assert sched.samples == 0


@settings(max_examples=40)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    name=st.sampled_from(["mon-0", "mon-1", "leader", "app-3"]),
    attempts=st.lists(st.integers(min_value=0, max_value=6),
                      min_size=1, max_size=12),
)
def test_jitter_is_deterministic_per_seed_and_actor(seed, name, attempts):
    policy = AdaptiveRetryPolicy(seed=seed)
    a = policy.schedule(name)
    b = policy.schedule(name)
    stream_a = [a.timeout(k) for k in attempts]
    stream_b = [b.timeout(k) for k in attempts]
    assert stream_a == stream_b
    # Every draw stays inside the clamped jitter band.
    for value in stream_a:
        assert policy.min_timeout <= value <= policy.cap


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    other=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_distinct_seeds_decorrelate_jitter(seed, other):
    if seed == other:
        return
    draws_a = [AdaptiveRetryPolicy(seed=seed).schedule("mon-0").timeout(0)
               for _ in range(1)]
    draws_b = [AdaptiveRetryPolicy(seed=other).schedule("mon-0").timeout(0)
               for _ in range(1)]
    # Not a strict inequality law (hash collisions exist), but the
    # streams must at least be *independent* objects with the unjittered
    # value inside the band either way.
    policy = AdaptiveRetryPolicy(seed=seed)
    lo = policy.initial_timeout * (1 - policy.jitter)
    hi = policy.initial_timeout * (1 + policy.jitter)
    assert lo <= draws_a[0] <= hi
    assert lo <= draws_b[0] <= hi
