"""Property-based tests (hypothesis) for vector clock laws."""

from hypothesis import given, strategies as st

from repro.clocks import VectorClock


def clocks(width=4, max_value=20):
    return st.lists(
        st.integers(min_value=0, max_value=max_value),
        min_size=width,
        max_size=width,
    ).map(VectorClock)


@given(clocks(), clocks())
def test_le_antisymmetry(a, b):
    if a <= b and b <= a:
        assert a == b


@given(clocks(), clocks(), clocks())
def test_le_transitivity(a, b, c):
    if a <= b and b <= c:
        assert a <= c


@given(clocks(), clocks())
def test_trichotomy_of_causal_relations(a, b):
    """Exactly one of: a < b, b < a, a == b, a || b."""
    relations = [a < b, b < a, a == b, a.concurrent_with(b)]
    assert sum(relations) == 1


@given(clocks(), clocks())
def test_merge_is_least_upper_bound(a, b):
    m = a.merged(b)
    assert a <= m and b <= m
    # Minimality: any other upper bound dominates the merge.
    comps = [max(x, y) for x, y in zip(a, b)]
    assert m == VectorClock(comps)


@given(clocks(), clocks())
def test_merge_commutative(a, b):
    assert a.merged(b) == b.merged(a)


@given(clocks(), clocks(), clocks())
def test_merge_associative(a, b, c):
    assert a.merged(b).merged(c) == a.merged(b.merged(c))


@given(clocks())
def test_merge_idempotent(a):
    assert a.merged(a) == a


@given(clocks(), st.integers(min_value=0, max_value=3))
def test_tick_strictly_advances(a, owner):
    t = a.tick(owner)
    assert a < t
    assert t[owner] == a[owner] + 1


@given(clocks(), st.integers(min_value=0, max_value=3))
def test_tick_concurrent_with_nothing_below(a, owner):
    """Ticking never makes a clock comparable to a previously
    concurrent one on the other side."""
    t = a.tick(owner)
    assert not t <= a


@given(clocks(), clocks())
def test_hash_consistent_with_eq(a, b):
    if a == b:
        assert hash(a) == hash(b)
