"""Property-based validation of the strong (definitely) detector."""

from hypothesis import given, settings, strategies as st

from repro.detect.strong import detect_definitely
from repro.predicates import WeakConjunctivePredicate
from repro.trace import random_computation
from repro.trace.state_lattice import definitely_states, possibly_states


small_computations = st.builds(
    random_computation,
    num_processes=st.integers(min_value=2, max_value=4),
    sends_per_process=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=100_000),
    predicate_density=st.sampled_from([0.0, 0.3, 0.6, 0.9]),
    plant_final_cut=st.booleans(),
)


@settings(max_examples=40, deadline=None)
@given(small_computations)
def test_polynomial_definitely_equals_exhaustive(comp):
    wcp = WeakConjunctivePredicate.of_flags(range(comp.num_processes))
    assert detect_definitely(comp, wcp).holds == definitely_states(comp, wcp)


@settings(max_examples=40, deadline=None)
@given(small_computations)
def test_definitely_implies_possibly(comp):
    wcp = WeakConjunctivePredicate.of_flags(range(comp.num_processes))
    if detect_definitely(comp, wcp).holds:
        assert possibly_states(comp, wcp)


@settings(max_examples=30, deadline=None)
@given(small_computations)
def test_possibly_is_granularity_independent(comp):
    """The WCP theorem: state-level possibly == interval-level possibly."""
    from repro.detect import run_detector

    wcp = WeakConjunctivePredicate.of_flags(range(comp.num_processes))
    assert possibly_states(comp, wcp) == run_detector(
        "reference", comp, wcp
    ).detected
