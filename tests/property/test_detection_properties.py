"""Property-based end-to-end detection checks.

For random computations and random predicate subsets, every detection
algorithm must agree with the reference on both the verdict and the
first cut (Theorems 3.2/4.3/4.4), and any detected cut must genuinely
satisfy the WCP.
"""

from hypothesis import given, settings, strategies as st

from repro.detect import run_detector
from repro.predicates import WeakConjunctivePredicate, cut_satisfies
from repro.trace import random_computation


@st.composite
def detection_cases(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    comp = random_computation(
        num_processes=n,
        sends_per_process=draw(st.integers(min_value=1, max_value=5)),
        seed=draw(st.integers(min_value=0, max_value=100_000)),
        predicate_density=draw(
            st.sampled_from([0.0, 0.2, 0.5, 0.9])
        ),
        plant_final_cut=draw(st.booleans()),
    )
    k = draw(st.integers(min_value=1, max_value=n))
    pids = tuple(sorted(draw(
        st.permutations(list(range(n))).map(lambda p: p[:k])
    )))
    return comp, WeakConjunctivePredicate.of_flags(pids)


@settings(max_examples=30, deadline=None)
@given(detection_cases(), st.sampled_from(["token_vc", "centralized"]))
def test_vc_family_agrees_with_reference(case, detector):
    comp, wcp = case
    ref = run_detector("reference", comp, wcp)
    rep = run_detector(detector, comp, wcp, seed=1)
    assert (rep.detected, rep.cut) == (ref.detected, ref.cut)


@settings(max_examples=25, deadline=None)
@given(detection_cases())
def test_dd_family_agrees_with_reference(case):
    comp, wcp = case
    ref = run_detector("reference", comp, wcp)
    for detector in ("direct_dep", "direct_dep_parallel"):
        rep = run_detector(detector, comp, wcp, seed=2)
        assert (rep.detected, rep.cut) == (ref.detected, ref.cut)


@settings(max_examples=20, deadline=None)
@given(detection_cases(), st.integers(min_value=1, max_value=4))
def test_multi_token_agrees_with_reference(case, groups):
    comp, wcp = case
    ref = run_detector("reference", comp, wcp)
    rep = run_detector("token_vc_multi", comp, wcp, seed=3, groups=groups)
    assert (rep.detected, rep.cut) == (ref.detected, ref.cut)


@settings(max_examples=30, deadline=None)
@given(detection_cases())
def test_detected_cuts_satisfy_the_wcp(case):
    comp, wcp = case
    ref = run_detector("reference", comp, wcp)
    if ref.detected:
        assert cut_satisfies(comp, wcp, ref.cut)


@settings(max_examples=30, deadline=None)
@given(detection_cases())
def test_verdict_equals_satisfiability(case):
    """detected == True iff SOME consistent cut satisfies the WCP —
    checked against the exhaustive lattice search on small cases."""
    comp, wcp = case
    if comp.total_events() > 40:
        return
    from repro.predicates import brute_force_first_cut

    ref = run_detector("reference", comp, wcp)
    assert ref.detected == (brute_force_first_cut(comp, wcp) is not None)
