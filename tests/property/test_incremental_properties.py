"""Property-based validation of the embeddable incremental detector."""

from hypothesis import given, settings, strategies as st

from repro.detect import run_detector
from repro.detect.incremental import IncrementalDetector
from repro.predicates import WeakConjunctivePredicate
from repro.trace import random_computation
from repro.trace.events import EventKind


computations = st.builds(
    random_computation,
    num_processes=st.integers(min_value=2, max_value=5),
    sends_per_process=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=100_000),
    predicate_density=st.sampled_from([0.1, 0.4, 0.8]),
    plant_final_cut=st.booleans(),
)


def feed_all(det, comp, order):
    for pid, idx in order:
        event = comp.event(pid, idx)
        updates = dict(event.updates)
        if event.kind is EventKind.INTERNAL:
            det.observe_internal(pid, updates)
        elif event.kind is EventKind.SEND:
            det.observe_send(pid, event.msg_id, event.peer, updates)
        else:
            det.observe_recv(pid, event.msg_id, updates)


def fresh_detector(comp, wcp):
    return IncrementalDetector(
        comp.num_processes,
        wcp,
        {
            pid: dict(comp.processes[pid].initial_vars)
            for pid in range(comp.num_processes)
        },
    )


@settings(max_examples=40, deadline=None)
@given(computations)
def test_incremental_equals_reference(comp):
    wcp = WeakConjunctivePredicate.of_flags(range(comp.num_processes))
    det = fresh_detector(comp, wcp)
    feed_all(det, comp, comp.topological_order())
    for pid in range(comp.num_processes):
        det.close(pid)
    ref = run_detector("reference", comp, wcp)
    assert det.detected == ref.detected
    assert det.cut == ref.cut
    assert det.verdict() == ("detected" if ref.detected else "impossible")


@settings(max_examples=30, deadline=None)
@given(computations, st.randoms(use_true_random=False))
def test_any_legal_interleaving_gives_same_answer(comp, rng):
    """Verdict and cut are independent of the (causally legal) feed order."""
    wcp = WeakConjunctivePredicate.of_flags(range(comp.num_processes))
    ref = run_detector("reference", comp, wcp)
    remaining = {pid: 0 for pid in range(comp.num_processes)}
    sent = set()
    order = []
    total = comp.total_events()
    while len(order) < total:
        ready = []
        for pid in range(comp.num_processes):
            idx = remaining[pid]
            events = comp.events_of(pid)
            if idx >= len(events):
                continue
            e = events[idx]
            if e.kind is EventKind.RECV and e.msg_id not in sent:
                continue
            ready.append(pid)
        pid = rng.choice(ready)
        event = comp.events_of(pid)[remaining[pid]]
        if event.kind is EventKind.SEND:
            sent.add(event.msg_id)
        order.append((pid, remaining[pid]))
        remaining[pid] += 1
    det = fresh_detector(comp, wcp)
    feed_all(det, comp, order)
    assert det.detected == ref.detected
    assert det.cut == ref.cut


@settings(max_examples=30, deadline=None)
@given(computations)
def test_detection_is_monotone(comp):
    """Once detected, feeding more events never changes the cut."""
    wcp = WeakConjunctivePredicate.of_flags(range(comp.num_processes))
    det = fresh_detector(comp, wcp)
    cut_history = []
    for node in comp.topological_order():
        feed_all(det, comp, [node])
        if det.detected:
            cut_history.append(det.cut)
    assert len(set(cut_history)) <= 1
