"""Detection under the paper's actual §2 channel model.

The library's default channel is FIFO everywhere, which is *stronger*
than the paper assumes: §2 only requires FIFO on the application ->
monitor snapshot channels.  :class:`NonFifoLatency` grants exactly
that — every other channel reorders freely — so these properties catch
any protocol that silently leans on ordering the model does not
guarantee, including the hardened (ack/retransmit) variants whose
acks and retries may overtake each other.
"""

from hypothesis import given, settings, strategies as st

from repro.detect import run_detector
from repro.predicates import WeakConjunctivePredicate
from repro.simulation.network import NonFifoLatency
from repro.trace import random_computation


@st.composite
def nonfifo_cases(draw):
    n = draw(st.integers(min_value=2, max_value=4))
    comp = random_computation(
        num_processes=n,
        sends_per_process=draw(st.integers(min_value=1, max_value=4)),
        seed=draw(st.integers(min_value=0, max_value=100_000)),
        predicate_density=draw(st.sampled_from([0.2, 0.5, 0.9])),
        plant_final_cut=draw(st.booleans()),
    )
    wcp = WeakConjunctivePredicate.of_flags(tuple(range(n)))
    return comp, wcp


@settings(max_examples=20, deadline=None)
@given(
    nonfifo_cases(),
    st.sampled_from(["token_vc", "token_vc_multi", "direct_dep",
                     "centralized"]),
    st.integers(min_value=0, max_value=3),
)
def test_detectors_tolerate_reordering(case, detector, seed):
    comp, wcp = case
    # The centralized baseline's monitor is the "checker" actor; grant
    # it the same §2 FIFO snapshot channels the "mon-" actors get.
    channel = (
        NonFifoLatency(fifo_dest_prefix="checker")
        if detector == "centralized"
        else NonFifoLatency()
    )
    ref = run_detector("reference", comp, wcp)
    rep = run_detector(detector, comp, wcp, seed=seed, channel_model=channel)
    assert (rep.detected, rep.cut) == (ref.detected, ref.cut)


@settings(max_examples=15, deadline=None)
@given(
    nonfifo_cases(),
    st.sampled_from(["token_vc", "token_vc_multi", "direct_dep"]),
    st.integers(min_value=0, max_value=3),
)
def test_hardened_detectors_tolerate_reordering(case, detector, seed):
    """The reliability layer must not assume its acks arrive in order."""
    comp, wcp = case
    ref = run_detector("reference", comp, wcp)
    rep = run_detector(
        detector, comp, wcp, seed=seed, hardened=True,
        channel_model=NonFifoLatency(),
    )
    assert not rep.extras.get("gave_up")
    assert (rep.detected, rep.cut) == (ref.detected, ref.cut)
