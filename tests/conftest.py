"""Shared fixtures: canonical hand-built computations with known structure."""

from __future__ import annotations

import pytest

from repro.predicates import WeakConjunctivePredicate
from repro.trace import ComputationBuilder


@pytest.fixture
def two_process_exchange():
    """The canonical two-process run used for exact-value assertions.

    ::

        P0:  internal   send m0 ->P1         recv m1   (3 intervals)
        P1:             recv m0      send m1 ->P0      (3 intervals)

    Interval vectors (computed by hand, Fig. 2 semantics):

    ======== =========== ===========
    interval P0          P1
    ======== =========== ===========
    1        [1, 0]      [0, 1]
    2        [2, 0]      [1, 2]
    3        [3, 2]      [1, 3]
    ======== =========== ===========
    """
    b = ComputationBuilder(2)
    b.internal(0)
    m0 = b.send(0, 1)
    b.recv(1, m0)
    m1 = b.send(1, 0)
    b.recv(0, m1)
    return b.build()


@pytest.fixture
def diamond_computation():
    """A fork/join diamond over 3 processes.

    P0 sends to P1 and P2 (fork); both reply to P0 (join).  P1 and P2
    never communicate, so their post-receive intervals are concurrent.
    """
    b = ComputationBuilder(3)
    a = b.send(0, 1)
    c = b.send(0, 2)
    b.recv(1, a)
    b.recv(2, c)
    r1 = b.send(1, 0)
    r2 = b.send(2, 0)
    b.recv(0, r1)
    b.recv(0, r2)
    return b.build()


@pytest.fixture
def flag_wcp():
    """WCP asserting the generator flag on a given pid list."""

    def make(pids):
        return WeakConjunctivePredicate.of_flags(tuple(pids))

    return make
