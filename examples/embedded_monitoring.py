#!/usr/bin/env python3
"""Embedding detection in your own event pipeline — no simulator.

Suppose your system already produces an event feed (from logs, a tracing
backend, a test harness).  :class:`IncrementalDetector` consumes such a
feed directly and answers "has the predicate possibly held?" after every
event — this is the library as an *online monitoring component* rather
than a simulation testbed.

The scenario: two replicas and a config service.  Each replica applies a
config update when told; the invariant is "the replicas never run
different config versions".  We monitor its violation
``v1@replica0 ∧ v2@replica1`` — possible exactly while an update has
reached one replica but not the other.

Run:  python examples/embedded_monitoring.py
"""

from repro.detect.incremental import IncrementalDetector
from repro.predicates import WeakConjunctivePredicate, var_equals

CONFIG_SERVICE, REPLICA_A, REPLICA_B = 0, 1, 2


def main():
    wcp = WeakConjunctivePredicate(
        {
            REPLICA_A: var_equals("version", 1),
            REPLICA_B: var_equals("version", 2),
        }
    )
    det = IncrementalDetector(
        3,
        wcp,
        initial_vars={
            REPLICA_A: {"version": 1},
            REPLICA_B: {"version": 1},
        },
    )

    # The observed event feed, exactly as a tracing backend would see it.
    print("feeding events ...")
    det.observe_internal(CONFIG_SERVICE, {"next_version": 2})
    det.observe_send(CONFIG_SERVICE, msg_id=1, dest=REPLICA_B)
    print(f"  after publish to B only: verdict = {det.verdict()}")
    det.observe_recv(REPLICA_B, msg_id=1, updates={"version": 2})
    print(f"  B applied v2 (A still on v1): verdict = {det.verdict()}")
    det.observe_send(CONFIG_SERVICE, msg_id=2, dest=REPLICA_A)
    det.observe_recv(REPLICA_A, msg_id=2, updates={"version": 2})
    print(f"  A applied v2: verdict = {det.verdict()}")

    assert det.detected
    print(f"\nmixed-version state was possible at cut {det.cut}")
    print(
        "interpretation: between B's upgrade and A's, a consistent global\n"
        "state with version skew existed — any read spanning both replicas\n"
        "in that window could observe it.  The detector pinpointed it from\n"
        "the raw event feed, online, with no simulation involved."
    )


if __name__ == "__main__":
    main()
