#!/usr/bin/env python3
"""Catching transient split brain in a leader election.

A bully-style election with an impatient failure-detection timeout: a
campaigner that hears no ALIVE within its timeout crowns itself, even
though the highest node also (correctly) crowns itself moments later in
causal terms — two leaders in causally concurrent states.  The conflict
resolves in real time when the true leader's VICTORY arrives, so
end-state inspection would never see it; the WCP
``leader@P0 ∧ leader@P3`` catches it at a consistent cut.

Run:  python examples/leader_election.py
"""

from repro.apps import (
    build_election_system,
    run_live_token_vc,
    split_brain_wcp,
)


def run(timeout: float, label: str) -> None:
    wcp = split_brain_wcp(0, 3)
    apps = build_election_system(4, alive_timeout=timeout, wcp=wcp, mode="vc")
    report = run_live_token_vc(apps, wcp, seed=1)
    print(f"--- {label} (alive_timeout={timeout}) ---")
    print(f"  split brain detected: {report.detected}")
    if report.detected:
        print(f"  conflicting cut: {report.cut}")
    final_leaders = [a.pid for a in apps if a.vars["leader"]]
    print(f"  leaders at run end: {final_leaders}")
    if report.detected and final_leaders == [3]:
        print(
            "  note: the end state looks healthy — the violation was\n"
            "  transient and only causal detection caught it."
        )
    print()


def main():
    run(timeout=0.5, label="impatient timeout (bug)")
    run(timeout=10.0, label="patient timeout (correct)")


if __name__ == "__main__":
    main()
