#!/usr/bin/env python3
"""Paper example 2: a 2PL lock manager with an upgrade race.

Transactions run two-phase locking through a central lock manager.
With ``allow_write_with_readers=True`` the manager grants a write lock
on item ``x`` while a read lock is outstanding; the paper's predicate
``(P1 has read lock) ∧ (P2 has write lock)`` then holds at a consistent
cut.  Detection runs online with the §4 direct-dependence algorithm —
note that *all* processes participate (Lemma 4.1), including the lock
manager and the bystander client.

Run:  python examples/database_locks.py
"""

from repro.apps import (
    build_locking_system,
    read_write_conflict_wcp,
    run_live_direct_dep,
)

SCRIPTS = {
    1: [[("read", "x")], [("read", "y")]],   # P1: two read transactions
    2: [[("write", "x")]],                   # P2: one write transaction on x
    3: [[("read", "y")], [("read", "y")]],   # P3: unrelated traffic
}


def run(buggy: bool) -> None:
    wcp = read_write_conflict_wcp(reader=1, writer=2, item="x")
    apps = build_locking_system(
        SCRIPTS, wcp, allow_write_with_readers=buggy, mode="dd"
    )
    report = run_live_direct_dep(apps, wcp, seed=11)
    label = "buggy manager" if buggy else "correct manager"
    print(f"--- {label} ---")
    print(f"  predicate: {wcp}")
    print(f"  conflict detected: {report.detected}")
    if report.detected:
        print(f"  conflicting cut over predicate processes: {report.cut}")
        print(f"  full global cut (all {len(report.full_cut.pids)} processes):"
              f" {report.full_cut}")
    print()


def main():
    run(buggy=True)
    run(buggy=False)


if __name__ == "__main__":
    main()
