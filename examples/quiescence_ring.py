#!/usr/bin/env python3
"""Quiescence detection on a worker ring — plus what a WCP cannot see.

A WCP asserting "idle" on every worker detects a consistent cut with no
busy worker.  That is *not* full termination: messages can still be in
flight.  This example detects the quiescent cut online with the token
algorithm, then uses the GCP channel-predicate extension offline to find
the first cut that is quiescent AND has empty ring channels.

Run:  python examples/quiescence_ring.py
"""

from repro.apps import build_ring_system, quiescence_wcp, run_live_token_vc
from repro.detect.gcp import GeneralizedConjunctivePredicate, detect_gcp
from repro.detect.gcp_online import detect_gcp_online
from repro.predicates import empty_channel, linear_empty_channel
from repro.trace import ComputationBuilder


def live_detection():
    workers = 4
    wcp = quiescence_wcp(workers)
    apps = build_ring_system(workers, jobs=[4, 3, 2], wcp=wcp, mode="vc")
    report = run_live_token_vc(apps, wcp, seed=5)
    print("--- live WCP quiescence detection ---")
    print(f"  all-idle cut detected: {report.detected}")
    print(f"  cut: {report.cut}")
    print(f"  simulated time: {report.detection_time:.2f}")
    print()


def gcp_refinement():
    """Offline: quiescent AND channels empty (true termination)."""
    # A tiny hand-built ring trace: one job hops 0 -> 1 -> 2.
    b = ComputationBuilder(3, initial_vars={p: {"idle": p != 0} for p in range(3)})
    j1 = b.send(0, 1)
    b.internal(0, {"idle": True})       # 0 idle, but the job is in flight!
    b.recv(1, j1, {"idle": False})
    j2 = b.send(1, 2)
    b.internal(1, {"idle": True})       # 1 idle, job in flight to 2
    b.recv(2, j2, {"idle": False})
    b.internal(2, {"idle": True})
    comp = b.build()

    wcp = quiescence_wcp(3)
    plain = detect_gcp(comp, GeneralizedConjunctivePredicate(wcp))
    refined = detect_gcp(
        comp,
        GeneralizedConjunctivePredicate(
            wcp,
            [empty_channel(0, 1), empty_channel(1, 2), empty_channel(2, 0)],
        ),
    )
    # The same predicate detected with [6]'s polynomial ONLINE checker
    # (empty-channel is a linear predicate: only the receiver advancing
    # can repair it).
    online = detect_gcp_online(
        comp,
        wcp,
        [
            linear_empty_channel(0, 1),
            linear_empty_channel(1, 2),
            linear_empty_channel(2, 0),
        ],
    )
    print("--- GCP refinement (hand-built 3-hop trace) ---")
    print(f"  WCP-only quiescent cut:              {plain.cut}")
    print(f"  quiescent + empty-channels (offline): {refined.cut}")
    print(f"  quiescent + empty-channels (online):  {online.cut}")
    assert refined.cut == online.cut
    print(
        "  the WCP cut fires while the job is still in flight; adding\n"
        "  channel predicates ([6]'s GCP) postpones detection to true\n"
        "  termination — and the linear online checker finds the same\n"
        "  cut without enumerating the lattice."
    )


def main():
    live_detection()
    gcp_refinement()


if __name__ == "__main__":
    main()
