#!/usr/bin/env python3
"""possibly(φ) vs definitely(φ): what each modality tells a debugger.

Two scenarios over the same predicate "both workers are busy":

* **Unsynchronized**: each worker has an independent busy window.  Some
  observation sees both busy (possibly = True — a scheduler *could*
  co-schedule them), but another observation runs one worker's window
  before the other starts (definitely = False).
* **Barrier-synchronized**: each worker goes busy, they exchange
  messages (a barrier), and only then go idle.  Now *every* observation
  passes through a both-busy state (definitely = True) — the polynomial
  strong-predicate detector certifies it with an unavoidable box.

possibly is the paper's WCP detection (bug hunting: "could this bad
state have happened?"); definitely is the companion modality
(verification: "must this good state have happened?").

Run:  python examples/strong_predicates.py
"""

from repro.detect import run_detector
from repro.detect.strong import detect_definitely
from repro.predicates import WeakConjunctivePredicate
from repro.trace import ComputationBuilder, render_spacetime


def unsynchronized():
    b = ComputationBuilder(2, initial_vars={p: {"busy": False} for p in (0, 1)})
    for pid in (0, 1):
        b.internal(pid, {"busy": True})
        b.internal(pid, {"busy": False})
    # One message afterwards so the run is connected (and clearly
    # orders nothing between the busy windows).
    m = b.send(0, 1)
    b.recv(1, m)
    return b.build()


def barrier_synchronized():
    b = ComputationBuilder(2, initial_vars={p: {"busy": False} for p in (0, 1)})
    b.internal(0, {"busy": True})
    b.internal(1, {"busy": True})
    m0 = b.send(0, 1)   # barrier: each tells the other it is busy
    m1 = b.send(1, 0)
    b.recv(1, m0)
    b.recv(0, m1)
    b.internal(0, {"busy": False})
    b.internal(1, {"busy": False})
    return b.build()


def analyze(name, comp):
    wcp = WeakConjunctivePredicate.of_flags([0, 1], var="busy")
    poss = run_detector("reference", comp, wcp)
    defn = detect_definitely(comp, wcp)
    print(f"--- {name} ---")
    print(render_spacetime(comp, wcp))
    print(f"  possibly(both busy):   {poss.detected}"
          + (f"  first cut {poss.cut}" if poss.detected else ""))
    print(f"  definitely(both busy): {defn.holds}")
    if defn.holds:
        print(f"  unavoidable box (local-state ranges): {defn.box}")
    else:
        print(f"  ({defn.reason or 'an observation can dodge the windows'})")
    print()


def main():
    analyze("unsynchronized busy windows", unsynchronized())
    analyze("barrier-synchronized busy windows", barrier_synchronized())


if __name__ == "__main__":
    main()
