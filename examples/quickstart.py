#!/usr/bin/env python3
"""Quickstart: detect a weak conjunctive predicate three ways.

Builds a small distributed computation by hand, defines the WCP
``flag@P0 ∧ flag@P1 ∧ flag@P2``, and runs the paper's two distributed
algorithms plus the offline reference on it, printing the detected first
cut and the key cost counters.

Run:  python examples/quickstart.py
"""

from repro import ComputationBuilder, WeakConjunctivePredicate, run_detector


def build_run():
    """A 3-process run where the predicate holds only late.

    P0 raises its flag immediately; P1 after hearing from P0; P2 only
    after hearing from P1.  The first consistent cut with all three
    flags up is therefore near the end of the run.
    """
    b = ComputationBuilder(3, initial_vars={p: {"flag": False} for p in range(3)})
    b.internal(0, {"flag": True})
    m01 = b.send(0, 1)
    b.recv(1, m01)
    b.internal(1, {"flag": True})
    m12 = b.send(1, 2)
    b.recv(2, m12)
    b.internal(2, {"flag": True})
    # A little extra traffic so the cut is not just "everyone's last state".
    m20 = b.send(2, 0)
    b.recv(0, m20)
    return b.build()


def main():
    comp = build_run()
    wcp = WeakConjunctivePredicate.of_flags([0, 1, 2])
    print(f"computation: {comp}")
    print(f"predicate:   {wcp}\n")

    for name in ("reference", "token_vc", "direct_dep"):
        opts = {} if name == "reference" else {"seed": 42}
        report = run_detector(name, comp, wcp, **opts)
        print(f"[{name}]")
        print(f"  detected: {report.detected}")
        print(f"  first satisfying cut: {report.cut}")
        if report.metrics is not None:
            print(
                f"  monitor messages: {report.metrics.total_messages('mon-')}"
                f"  bits: {report.metrics.total_bits('mon-')}"
            )
        if "token_hops" in report.extras:
            print(f"  token hops: {report.extras['token_hops']}")
        print()

    # All three find the same first cut — that is Theorem 3.2 / 4.3.
    cuts = {
        name: run_detector(
            name, comp, wcp, **({} if name == "reference" else {"seed": 42})
        ).cut
        for name in ("reference", "token_vc", "direct_dep")
    }
    assert len(set(cuts.values())) == 1
    print("all algorithms agree on the first satisfying cut ✓")


if __name__ == "__main__":
    main()
