#!/usr/bin/env python3
"""Choosing between the paper's two algorithms: the n-vs-N crossover.

§1/§6 of the paper: the vector-clock token algorithm costs O(n^2 m) and
involves only the n predicate processes; the direct-dependence algorithm
costs O(Nm) but needs all N processes.  This example fixes N and sweeps
the predicate width n, printing both algorithms' measured communication
volume and work so you can see where the crossover falls on a real
workload (the asymptotic prediction is n ≈ sqrt(N), constants shift it).

Run:  python examples/algorithm_crossover.py
"""

from repro.analysis import render_table, run_e3_crossover


def main():
    result = run_e3_crossover(
        big_n=24, m=12, n_values=(2, 4, 8, 12, 16, 20, 24)
    )
    print(render_table(result.headers, result.rows, result.experiment))
    print()
    for note in result.notes:
        print(f"note: {note}")
    print(
        "\nreading the table: 'vc' rows are where the §3 vector-clock\n"
        "token algorithm is cheaper; once n^2 m outgrows N m the §4\n"
        "direct-dependence algorithm ('dd') wins, as the paper predicts."
    )


if __name__ == "__main__":
    main()
