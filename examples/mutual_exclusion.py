#!/usr/bin/env python3
"""Paper example 1: catching a mutual-exclusion violation online.

A coordinator-based mutex serves three clients.  The coordinator has a
deterministic double-grant bug (every second grant is issued without
waiting for the previous holder's release).  The WCP ``cs@P1 ∧ cs@P2``
holds at a consistent cut exactly when mutual exclusion is violated
*causally* — even if the two critical sections never overlap in real
time.  Monitors run the §3 token algorithm live alongside the
application (Fig. 1's two planes in one simulation).

Run:  python examples/mutual_exclusion.py
"""

from repro.apps import build_mutex_system, mutex_wcp, run_live_token_vc


def run(bug_every: int, label: str) -> None:
    wcp = mutex_wcp(1, 2)
    apps = build_mutex_system(
        num_clients=3, rounds=3, bug_every=bug_every, wcp=wcp, mode="vc"
    )
    report = run_live_token_vc(apps, wcp, seed=7)
    print(f"--- {label} ---")
    print(f"  predicate: {wcp}")
    print(f"  violation detected: {report.detected}")
    if report.detected:
        print(f"  first violating cut: {report.cut}")
        print(f"  at simulated time:   {report.detection_time:.2f}")
        print(
            "  (the cut names the critical-section intervals of the two"
            " clients that were causally concurrent)"
        )
    else:
        print("  every pair of critical sections was causally ordered")
    print(f"  snapshots emitted: {report.extras['snapshots']}")
    print()


def main():
    run(bug_every=2, label="buggy coordinator (double-grant race)")
    run(bug_every=0, label="correct coordinator")


if __name__ == "__main__":
    main()
