"""E5 — §4.5 parallel direct-dependence.

Proactive candidate search overlaps with token travel: the makespan
should drop substantially versus the base §4 algorithm while message
totals stay comparable.
"""

from repro.analysis import run_e5_parallel_dd


def bench_e5_parallel_dd(benchmark, emit):
    result = benchmark.pedantic(
        run_e5_parallel_dd,
        kwargs={"big_n": 16, "m": 12, "seeds": (0, 1, 2, 3)},
        rounds=1, iterations=1,
    )
    emit(result, "e5_parallel_dd.txt",
         params={"big_n": 16, "m": 12, "seeds": (0, 1, 2, 3)})

    speedups = result.column("speedup")
    assert all(s > 1.5 for s in speedups), speedups
    # Message cost does not blow up.
    base_polls = result.column("base_polls")
    par_polls = result.column("parallel_polls")
    assert all(p <= 2 * b + 16 for b, p in zip(base_polls, par_polls))
