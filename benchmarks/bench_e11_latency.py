"""E11 — observation latency: what decentralization costs.

Not a claim in the paper, but the honest flip side of its headline: the
centralized checker reacts the instant the cut's last snapshot arrives;
the token algorithm must first route the token through the remaining red
processes, and its latency grows with n.  Multi-token sits in between.
"""

from repro.analysis import run_e11_detection_latency


def bench_e11_detection_latency(benchmark, emit):
    result = benchmark.pedantic(
        run_e11_detection_latency,
        kwargs={"ns": (4, 8, 16), "m": 10, "seeds": (0, 1, 2)},
        rounds=1, iterations=1,
    )
    emit(result, "e11_latency.txt",
         params={"ns": (4, 8, 16), "m": 10, "seeds": (0, 1, 2)})

    by_detector = {}
    for row in result.rows:
        by_detector.setdefault(row[0], []).append(row[2])
    # The checker is effectively instantaneous.
    assert max(by_detector["centralized"]) <= 1.0
    # The single token pays a latency growing with n ...
    token = by_detector["token_vc"]
    assert token[-1] > token[0]
    assert min(token) > 0
    # ... and extra tokens reduce it.
    multi = by_detector["token_vc_multi"]
    assert all(m_ <= t for m_, t in zip(multi, token))
