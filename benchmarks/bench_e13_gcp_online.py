"""E13 — the linear-GCP online checker ([6]) vs the exhaustive lattice.

Same first cut everywhere the lattice is feasible; polynomial comparison
counts at sizes where the lattice is hopeless.  Workload: ring traffic
with an empty-channel clause per ring edge (the quiescence/termination
shape from the examples).
"""

from repro.analysis import run_e13_gcp_online


def bench_e13_gcp_online(benchmark, emit):
    result = benchmark.pedantic(run_e13_gcp_online, rounds=1, iterations=1)
    emit(result, "e13_gcp_online.txt")

    assert all(row[3] for row in result.rows), "online != lattice?!"
    small = [r for r in result.rows if r[6] is not None]
    assert small, "need at least one exhaustive row"
    big = [r for r in result.rows if r[6] is None]
    assert max(r[4] for r in big) < 100_000
    # Channel clauses actually did eliminate states (the workload is
    # not vacuous).
    assert any(r[5] > 0 for r in result.rows)
