"""E14 — cost of the hardened (fault-tolerant) protocol at zero faults.

Hardening is opt-in; this benchmark keeps it honest.  On identical
fault-free workloads the hardened single-token protocol must

* report exactly the same first cut as the plain Fig. 3 algorithm;
* pay only per-hop acks and frame headers (bounded msg/bit ratios);
* add at most 15% simulated detection time — acks ride alongside the
  token instead of delaying it.
"""

from repro.analysis import run_e14_fault_overhead
from repro.detect.stack import AdaptiveRetryPolicy, RetryPolicy
from repro.detect.runner import run_detector
from repro.predicates import WeakConjunctivePredicate
from repro.trace.generators import random_computation

SIZES = ((4, 8), (4, 16), (8, 8), (8, 16), (8, 32))
SEEDS = (0, 1, 2)


def bench_e14_fault_overhead(benchmark, emit):
    result = benchmark.pedantic(
        run_e14_fault_overhead, kwargs={"sizes": SIZES, "seeds": SEEDS},
        rounds=1, iterations=1,
    )
    emit(result, "e14_fault_overhead.txt",
         params={"sizes": SIZES, "seeds": SEEDS})

    assert all(row[-1] for row in result.rows), \
        "hardened and plain variants must report identical cuts"
    # Acks at most double the message count; they are single words, so
    # the bit overhead is smaller still.
    assert all(ratio <= 2.0 for ratio in result.column("msg_ratio"))
    assert all(ratio <= 1.6 for ratio in result.column("bit_ratio"))


def bench_e14_detection_time_overhead(benchmark, emit):
    """Simulated detection time: hardened within 15% of plain."""

    def measure():
        pairs = []
        for n, m in SIZES:
            for seed in SEEDS:
                comp = random_computation(
                    n, m, seed=seed, predicate_density=0.3,
                    plant_final_cut=True,
                )
                wcp = WeakConjunctivePredicate.of_flags(tuple(range(n)))
                plain = run_detector("token_vc", comp, wcp, seed=seed)
                hard = run_detector(
                    "token_vc", comp, wcp, seed=seed, hardened=True,
                )
                assert plain.detected and hard.detected
                pairs.append((plain.detection_time, hard.detection_time))
        return pairs

    pairs = benchmark.pedantic(measure, rounds=1, iterations=1)
    worst = max(hard / plain for plain, hard in pairs)
    print(f"\nE14 simulated-time ratio (hardened/plain): worst {worst:.3f}")
    assert worst <= 1.15, (
        f"hardened protocol slowed detection by {(worst - 1) * 100:.1f}% "
        "at zero faults (budget: 15%)"
    )


def bench_e14_invariant_monitor_overhead(benchmark):
    """The invariant monitors must be passive and near-free.

    Passive: attaching ``check_invariants=True`` changes no observable
    of the run — same verdict, same first cut, same simulated
    detection time, same paper-unit message/bit totals.  Near-free:
    the wall-clock cost of checking every sent message online stays
    within 5% of the unmonitored run at zero faults (with a generous
    absolute backstop so a noisy scheduler tick cannot flake a run
    whose baseline is microseconds).
    """
    import time

    def measure():
        rows = []
        for n, m in SIZES:
            for seed in SEEDS:
                comp = random_computation(
                    n, m, seed=seed, predicate_density=0.3,
                    plant_final_cut=True,
                )
                wcp = WeakConjunctivePredicate.of_flags(tuple(range(n)))
                t0 = time.perf_counter()
                plain = run_detector(
                    "token_vc", comp, wcp, seed=seed, hardened=True,
                )
                t1 = time.perf_counter()
                watched = run_detector(
                    "token_vc", comp, wcp, seed=seed, hardened=True,
                    check_invariants=True,
                )
                t2 = time.perf_counter()
                assert watched.extras["invariant_violations"] == 0
                assert watched.detected == plain.detected
                assert watched.cut == plain.cut
                assert watched.detection_time == plain.detection_time
                p_tot = plain.metrics.snapshot()["totals"]
                w_tot = watched.metrics.snapshot()["totals"]
                assert w_tot["messages"] == p_tot["messages"]
                assert w_tot["bits"] == p_tot["bits"]
                rows.append((t1 - t0, t2 - t1))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    plain_s = sum(r[0] for r in rows)
    watched_s = sum(r[1] for r in rows)
    ratio = watched_s / plain_s
    print(f"\nE14 monitored/plain wall ratio: {ratio:.3f} "
          f"({watched_s:.3f}s vs {plain_s:.3f}s)")
    # 5% relative budget, with an absolute backstop: tiny baselines
    # amplify scheduler noise into huge ratios.
    assert ratio <= 1.05 or watched_s - plain_s <= 0.25, (
        f"invariant monitors cost {(ratio - 1) * 100:.1f}% wall time "
        "at zero faults (budget: 5% or 250ms absolute)"
    )


def bench_e14_adaptive_vs_fixed_retry(benchmark):
    """Adaptive retransmission must be free when nothing is lost.

    The RTT estimator only changes *when* retransmission timers fire;
    at zero faults every ack beats its timer, so the adaptive and fixed
    policies must produce the same cut and stay within 5% of each other
    on every paper-unit axis (messages, bits, simulated detection time).
    """

    def measure():
        rows = []
        for n, m in SIZES:
            for seed in SEEDS:
                comp = random_computation(
                    n, m, seed=seed, predicate_density=0.3,
                    plant_final_cut=True,
                )
                wcp = WeakConjunctivePredicate.of_flags(tuple(range(n)))
                fixed = run_detector(
                    "token_vc", comp, wcp, seed=seed, hardened=True,
                    retry=RetryPolicy(),
                )
                adaptive = run_detector(
                    "token_vc", comp, wcp, seed=seed, hardened=True,
                    retry=AdaptiveRetryPolicy(seed=seed),
                )
                assert fixed.detected and adaptive.detected
                assert fixed.cut == adaptive.cut
                rows.append((fixed, adaptive))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    worst = 0.0
    for fixed, adaptive in rows:
        f_tot = fixed.metrics.snapshot()["totals"]
        a_tot = adaptive.metrics.snapshot()["totals"]
        for axis in ("messages", "bits"):
            worst = max(worst, a_tot[axis] / f_tot[axis])
        worst = max(worst, adaptive.detection_time / fixed.detection_time)
    print(f"\nE14 adaptive/fixed zero-fault ratio: worst {worst:.3f}")
    assert worst <= 1.05, (
        f"adaptive retransmission cost {(worst - 1) * 100:.1f}% over the "
        "fixed policy at zero faults (budget: 5%)"
    )
