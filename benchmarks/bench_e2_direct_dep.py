"""E2 — §4.4 complexity of the direct-dependence algorithm.

Paper claims reproduced as measurements:

* at most ``3Nm`` monitor messages (polls + responses + token moves);
* total bits ``O(Nm)`` (fit exponents ≈ (1, 1));
* work and space per process ``O(m)`` — independent of ``N``.
"""

from repro.analysis import run_e2_direct_dep

NS = (4, 8, 16, 32)
MS = (8, 16, 32, 64, 128)


def bench_e2_direct_dep_scaling(benchmark, emit):
    result = benchmark.pedantic(
        run_e2_direct_dep, kwargs={"big_ns": NS, "ms": MS, "seed": 0},
        rounds=1, iterations=1,
    )
    emit(result, "e2_direct_dep.txt",
         params={"big_ns": NS, "ms": MS, "seed": 0})

    assert all(row[-1] for row in result.rows)
    msgs = result.column("mon_msgs")
    bounds = result.column("msg_bound(3Nm)")
    assert all(x <= b for x, b in zip(msgs, bounds))

    # Shape: totals ~ N m; per-process work ~ m alone.
    assert 0.8 <= result.fits["total_work"].n_exponent <= 1.2
    assert 0.8 <= result.fits["total_work"].m_exponent <= 1.2
    assert 0.8 <= result.fits["mon_bits"].n_exponent <= 1.2
    assert 0.8 <= result.fits["max_work_vs_m"].exponent <= 1.2

    # Per-process work must not grow with N (fixed m): compare extremes.
    by_m: dict[int, list[int]] = {}
    for row in result.rows:
        by_m.setdefault(row[1], []).append(row[8])
    for m_value, works in by_m.items():
        assert max(works) <= 1.5 * min(works) + 4, f"m={m_value}: {works}"
