#!/usr/bin/env python
"""Membership-layer traffic scaling: heartbeat O(N²) vs gossip O(N).

Runs :func:`repro.detect.stack.membersim.run_membership_trial` over
monitor-group sizes — every member runs the failure detector, one
member crash-stops, and we record:

* ``liveness_bytes`` — total bytes of pure liveness traffic
  (heartbeats, pings/acks/ping-reqs with piggybacked membership);
* ``max_detection_latency`` — the worst survivor's time from the crash
  to first suspecting the victim;
* the configured detection bound each mode must stay within.

All-to-all heartbeats cost Θ(N²) bytes per interval; SWIM gossip costs
Θ(N) (each member sends O(fanout) bounded-size messages per interval).
The committed snapshot lives at
``benchmarks/results/membership_scale.json``; regenerate with::

    python benchmarks/membership_scale.py --out benchmarks/results/membership_scale.json

With ``--elastic`` the script instead runs the scale-out scenario:
each group *starts* at a quarter of its size and grows to full size by
live joins (:func:`repro.detect.stack.membersim.run_elastic_trial`).
The claim under test is that elasticity is cheap — every joiner pays a
fixed number of dedicated handshake messages (join / welcome /
state-sync), the welcome snapshot is the only size-dependent byte cost
(O(n_start) membership entries), and the epidemic introduction adds
*zero* dedicated dissemination messages.  The output carries an honest
``environment`` block (real ``cpu_count``, measured wall seconds) so a
recorded snapshot can never masquerade as a different machine's.

Usage: ``python benchmarks/membership_scale.py [--sizes 8,32,128]
[--elastic] [--out FILE]``
"""

import argparse
import json
import math
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.detect.stack import FailureDetectorConfig  # noqa: E402
from repro.detect.stack.membersim import (  # noqa: E402
    run_elastic_trial,
    run_membership_trial,
)

DEFAULT_SIZES = (8, 32, 128)
DURATION = 60.0
CRASH_AT = 10.0


def detection_bound(config: FailureDetectorConfig, n: int) -> float:
    """The latency every mode must beat for a crash-stop victim.

    Heartbeat: the victim goes silent and every survivor times it out
    after ``suspicion_after`` plus one interval of slack.  Gossip: some
    prober times the victim out within a few probe intervals, then the
    suspicion disseminates epidemically in ``O(log_fanout N)`` rounds;
    ``suspicion_after`` dominates the probe timeout budget.
    """
    interval = config.tick_interval
    if config.membership == "gossip":
        rounds = math.log(max(n, 2), max(config.gossip_fanout, 2))
        return config.suspicion_after + interval * (4 + 2 * rounds)
    return config.suspicion_after + 2 * interval


def run(sizes) -> dict:
    rows = []
    for n in sizes:
        for mode in ("heartbeat", "gossip"):
            config = FailureDetectorConfig(membership=mode)
            trial = run_membership_trial(
                n, config, duration=DURATION, crash_at=CRASH_AT
            )
            bound = detection_bound(config, n)
            row = {
                "n": n,
                "membership": mode,
                "liveness_bytes": trial.liveness_bytes,
                "bytes_per_member": round(trial.liveness_bytes / n, 1),
                "max_detection_latency": trial.max_detection_latency,
                "detection_bound": round(bound, 2),
                "all_detected": trial.all_detected,
            }
            rows.append(row)
            print(
                f"n={n:4d} {mode:9s} bytes={trial.liveness_bytes:9d} "
                f"bytes/member={row['bytes_per_member']:9.1f} "
                f"latency={trial.max_detection_latency:6.1f} "
                f"bound={bound:6.1f} all_detected={trial.all_detected}"
            )
            assert trial.all_detected, f"{mode} n={n}: victim not detected"
            assert trial.max_detection_latency <= bound, (
                f"{mode} n={n}: latency {trial.max_detection_latency} "
                f"exceeds bound {bound}"
            )
    # The scaling claim: gossip bytes-per-member stays ~flat while
    # heartbeat bytes-per-member grows linearly with N.
    by_mode: dict[str, list[dict]] = {"heartbeat": [], "gossip": []}
    for row in rows:
        by_mode[row["membership"]].append(row)
    for mode_rows in by_mode.values():
        mode_rows.sort(key=lambda r: r["n"])
    hb, go = by_mode["heartbeat"], by_mode["gossip"]
    if len(hb) >= 2:
        n_ratio = hb[-1]["n"] / hb[0]["n"]
        hb_growth = hb[-1]["bytes_per_member"] / hb[0]["bytes_per_member"]
        go_growth = go[-1]["bytes_per_member"] / go[0]["bytes_per_member"]
        print(
            f"N x{n_ratio:.0f}: heartbeat bytes/member x{hb_growth:.1f}, "
            f"gossip bytes/member x{go_growth:.1f}"
        )
        assert hb_growth > 0.5 * n_ratio, "heartbeat should scale ~O(N^2)"
        # Gossip bytes/member stays near-constant regardless of N.
        assert go_growth < 2.0, "gossip should scale ~O(N)"
        assert go_growth < hb_growth / 2, "gossip should beat heartbeat"
    return {
        "schema": "repro-membership-scale/1",
        "duration": DURATION,
        "crash_at": CRASH_AT,
        "config": {
            "heartbeat_interval": FailureDetectorConfig().heartbeat_interval,
            "suspicion_after": FailureDetectorConfig().suspicion_after,
            "gossip_fanout": FailureDetectorConfig().gossip_fanout,
        },
        "rows": rows,
    }


def run_elastic(sizes) -> dict:
    """The scale-out scenario: grow each group from n//4 to n by joins."""
    config = FailureDetectorConfig(membership="gossip")
    rows = []
    started = time.perf_counter()
    for n in sizes:
        trial = run_elastic_trial(n, config, duration=DURATION)
        row = {
            "n": n,
            "n_start": trial.n_start,
            "joiners": trial.joiners,
            "joined": trial.joined,
            "synced": trial.synced,
            "handshake_bytes": trial.handshake_bytes,
            "handshake_messages": trial.handshake_messages,
            "messages_per_joiner": trial.handshake_messages / trial.joiners,
            "bytes_per_joiner": round(
                trial.handshake_bytes / trial.joiners, 1
            ),
            "liveness_bytes": trial.liveness_bytes,
        }
        rows.append(row)
        print(
            f"n={n:4d} start={trial.n_start:3d} joiners={trial.joiners:3d} "
            f"joined={trial.joined:3d} "
            f"msgs/joiner={row['messages_per_joiner']:.1f} "
            f"bytes/joiner={row['bytes_per_joiner']:8.1f} "
            f"liveness_bytes={trial.liveness_bytes:9d}"
        )
        assert trial.all_joined, (
            f"n={n}: {trial.joined}/{trial.joiners} joined, "
            f"{trial.synced} synced"
        )
    wall_s = time.perf_counter() - started
    # The elasticity claims: the dedicated message count per joiner is a
    # constant of the protocol (the handshake), and the only
    # size-dependent byte cost is the welcome snapshot, which grows with
    # the *seed group* — sub-linearly in the final group size.
    per_joiner = {row["messages_per_joiner"] for row in rows}
    assert len(per_joiner) == 1, (
        f"handshake messages per joiner should be constant, got {per_joiner}"
    )
    if len(rows) >= 2:
        rows_by_n = sorted(rows, key=lambda r: r["n"])
        lo, hi = rows_by_n[0], rows_by_n[-1]
        byte_growth = hi["bytes_per_joiner"] / lo["bytes_per_joiner"]
        seed_growth = hi["n_start"] / lo["n_start"]
        print(
            f"N x{hi['n'] / lo['n']:.0f}: handshake bytes/joiner "
            f"x{byte_growth:.1f} (welcome snapshot x{seed_growth:.0f})"
        )
        assert byte_growth <= 1.5 * seed_growth, (
            "per-joiner handshake bytes should track the welcome "
            "snapshot, not the full group"
        )
    return {
        "schema": "repro-membership-elastic/1",
        "duration": DURATION,
        "config": {
            "gossip_fanout": config.gossip_fanout,
            "suspicion_after": config.suspicion_after,
        },
        "environment": {
            "cpu_count": os.cpu_count() or 1,
            "wall_s": round(wall_s, 3),
        },
        "rows": rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)))
    parser.add_argument("--elastic", action="store_true",
                        help="run the scale-out (live join) scenario "
                             "instead of the crash-detection one")
    parser.add_argument("--out", type=pathlib.Path, default=None)
    args = parser.parse_args()
    sizes = tuple(int(s) for s in args.sizes.split(","))
    doc = run_elastic(sizes) if args.elastic else run(sizes)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
