#!/usr/bin/env python
"""Membership-layer traffic scaling: heartbeat O(N²) vs gossip O(N).

Runs :func:`repro.detect.stack.membersim.run_membership_trial` over
monitor-group sizes — every member runs the failure detector, one
member crash-stops, and we record:

* ``liveness_bytes`` — total bytes of pure liveness traffic
  (heartbeats, pings/acks/ping-reqs with piggybacked membership);
* ``max_detection_latency`` — the worst survivor's time from the crash
  to first suspecting the victim;
* the configured detection bound each mode must stay within.

All-to-all heartbeats cost Θ(N²) bytes per interval; SWIM gossip costs
Θ(N) (each member sends O(fanout) bounded-size messages per interval).
The committed snapshot lives at
``benchmarks/results/membership_scale.json``; regenerate with::

    python benchmarks/membership_scale.py --out benchmarks/results/membership_scale.json

Usage: ``python benchmarks/membership_scale.py [--sizes 8,32,128] [--out FILE]``
"""

import argparse
import json
import math
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.detect.stack import FailureDetectorConfig  # noqa: E402
from repro.detect.stack.membersim import run_membership_trial  # noqa: E402

DEFAULT_SIZES = (8, 32, 128)
DURATION = 60.0
CRASH_AT = 10.0


def detection_bound(config: FailureDetectorConfig, n: int) -> float:
    """The latency every mode must beat for a crash-stop victim.

    Heartbeat: the victim goes silent and every survivor times it out
    after ``suspicion_after`` plus one interval of slack.  Gossip: some
    prober times the victim out within a few probe intervals, then the
    suspicion disseminates epidemically in ``O(log_fanout N)`` rounds;
    ``suspicion_after`` dominates the probe timeout budget.
    """
    interval = config.tick_interval
    if config.membership == "gossip":
        rounds = math.log(max(n, 2), max(config.gossip_fanout, 2))
        return config.suspicion_after + interval * (4 + 2 * rounds)
    return config.suspicion_after + 2 * interval


def run(sizes) -> dict:
    rows = []
    for n in sizes:
        for mode in ("heartbeat", "gossip"):
            config = FailureDetectorConfig(membership=mode)
            trial = run_membership_trial(
                n, config, duration=DURATION, crash_at=CRASH_AT
            )
            bound = detection_bound(config, n)
            row = {
                "n": n,
                "membership": mode,
                "liveness_bytes": trial.liveness_bytes,
                "bytes_per_member": round(trial.liveness_bytes / n, 1),
                "max_detection_latency": trial.max_detection_latency,
                "detection_bound": round(bound, 2),
                "all_detected": trial.all_detected,
            }
            rows.append(row)
            print(
                f"n={n:4d} {mode:9s} bytes={trial.liveness_bytes:9d} "
                f"bytes/member={row['bytes_per_member']:9.1f} "
                f"latency={trial.max_detection_latency:6.1f} "
                f"bound={bound:6.1f} all_detected={trial.all_detected}"
            )
            assert trial.all_detected, f"{mode} n={n}: victim not detected"
            assert trial.max_detection_latency <= bound, (
                f"{mode} n={n}: latency {trial.max_detection_latency} "
                f"exceeds bound {bound}"
            )
    # The scaling claim: gossip bytes-per-member stays ~flat while
    # heartbeat bytes-per-member grows linearly with N.
    by_mode: dict[str, list[dict]] = {"heartbeat": [], "gossip": []}
    for row in rows:
        by_mode[row["membership"]].append(row)
    for mode_rows in by_mode.values():
        mode_rows.sort(key=lambda r: r["n"])
    hb, go = by_mode["heartbeat"], by_mode["gossip"]
    if len(hb) >= 2:
        n_ratio = hb[-1]["n"] / hb[0]["n"]
        hb_growth = hb[-1]["bytes_per_member"] / hb[0]["bytes_per_member"]
        go_growth = go[-1]["bytes_per_member"] / go[0]["bytes_per_member"]
        print(
            f"N x{n_ratio:.0f}: heartbeat bytes/member x{hb_growth:.1f}, "
            f"gossip bytes/member x{go_growth:.1f}"
        )
        assert hb_growth > 0.5 * n_ratio, "heartbeat should scale ~O(N^2)"
        # Gossip bytes/member stays near-constant regardless of N.
        assert go_growth < 2.0, "gossip should scale ~O(N)"
        assert go_growth < hb_growth / 2, "gossip should beat heartbeat"
    return {
        "schema": "repro-membership-scale/1",
        "duration": DURATION,
        "crash_at": CRASH_AT,
        "config": {
            "heartbeat_interval": FailureDetectorConfig().heartbeat_interval,
            "suspicion_after": FailureDetectorConfig().suspicion_after,
            "gossip_fanout": FailureDetectorConfig().gossip_fanout,
        },
        "rows": rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)))
    parser.add_argument("--out", type=pathlib.Path, default=None)
    args = parser.parse_args()
    sizes = tuple(int(s) for s in args.sizes.split(","))
    doc = run(sizes)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
