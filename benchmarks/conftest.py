"""Shared benchmark helpers: table emission to stdout, disk and JSON.

``emit(result, "e1_token_vc.txt", params={...})`` prints the table,
writes it under ``benchmarks/output/`` and writes a machine-readable
sibling ``e1_token_vc.json`` (schema ``repro-bench/1``, see
:mod:`repro.obs.benchjson`) carrying the experiment parameters, raw
rows, summary cost totals, fit exponents and the measured wall time.

``workload_cache`` hands benchmarks the shared content-addressed
workload cache (``benchmarks/output/.workload-cache``) so sweep-style
benchmarks spend their wall clock on detection, not trace generation.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import render_table
from repro.obs import write_benchmark_json
from repro.sweep import WorkloadCache

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
SWEEPS_DIR = pathlib.Path(__file__).parent / "sweeps"


@pytest.fixture
def workload_cache() -> WorkloadCache:
    """The benchmark-suite workload cache (persists across runs)."""
    return WorkloadCache(OUTPUT_DIR / ".workload-cache")


def _wall_time(benchmark) -> float | None:
    """Mean wall-clock seconds from pytest-benchmark, if it has run."""
    try:
        mean = benchmark.stats.stats.mean
    except AttributeError:
        return None
    return float(mean) if isinstance(mean, (int, float)) else None


@pytest.fixture
def emit(benchmark):
    """Print an ExperimentResult and persist it (.txt + .json)."""

    def _emit(result, filename: str, params=None) -> None:
        lines = [render_table(result.headers, result.rows, result.experiment)]
        for name, fit in result.fits.items():
            lines.append(f"fit[{name}]: {fit}")
        for note in result.notes:
            lines.append(f"note: {note}")
        text = "\n".join(lines)
        print("\n" + text)
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / filename).write_text(text + "\n", encoding="utf-8")
        stem = pathlib.Path(filename).stem
        write_benchmark_json(
            result,
            OUTPUT_DIR / f"{stem}.json",
            params=params,
            wall_time_s=_wall_time(benchmark),
        )

    return _emit
