"""Shared benchmark helpers: table emission to stdout and to disk."""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import render_table

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def emit():
    """Print an ExperimentResult and persist it under benchmarks/output/."""

    def _emit(result, filename: str) -> None:
        lines = [render_table(result.headers, result.rows, result.experiment)]
        for name, fit in result.fits.items():
            lines.append(f"fit[{name}]: {fit}")
        for note in result.notes:
            lines.append(f"note: {note}")
        text = "\n".join(lines)
        print("\n" + text)
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / filename).write_text(text + "\n", encoding="utf-8")

    return _emit
