"""E4 — §3.5 multi-token concurrency.

With ``g`` tokens the makespan (simulated time to detection) should
shrink roughly with ``g`` while total work stays in the single-token
regime.  The ``g=0`` row is the plain single-token algorithm.
"""

from repro.analysis import run_e4_multi_token


def bench_e4_multi_token(benchmark, emit):
    result = benchmark.pedantic(
        run_e4_multi_token,
        kwargs={"n": 16, "m": 12, "group_counts": (1, 2, 4, 8)},
        rounds=1, iterations=1,
    )
    emit(result, "e4_multi_token.txt",
         params={"n": 16, "m": 12, "group_counts": (1, 2, 4, 8)})

    assert all(row[1] for row in result.rows), "every configuration detects"
    makespans = {row[0]: row[2] for row in result.rows}
    # Concurrency pays: 4 tokens at least 1.5x faster than one.
    assert makespans[4] < makespans[1] / 1.5
    assert makespans[8] <= makespans[2]
    # Totals stay in the same regime (within 2x of single token).
    works = {row[0]: row[5] for row in result.rows}
    assert works[8] <= 2 * works[0]
