"""E3 — the §1/§6 crossover between the two algorithms.

With ``N`` fixed, the §3 vector-clock token algorithm (cost ~ n^2 m)
must win for small predicate widths ``n`` and lose to the §4
direct-dependence algorithm (cost ~ N m) for large ``n``.  Two sweeps:
one over ``n`` at fixed ``N``, one over ``N`` at fixed ``n`` (where the
vc algorithm's costs must stay flat while dd grows).
"""

from repro.analysis import run_e3_crossover
from repro.analysis.experiments import _monitor_stats, _wcp_over
from repro.detect import runner as detect_runner
from repro.trace import worst_case_computation


def bench_e3_sweep_n(benchmark, emit):
    result = benchmark.pedantic(
        run_e3_crossover,
        kwargs={"big_n": 24, "m": 12, "n_values": (2, 4, 8, 12, 16, 20, 24)},
        rounds=1, iterations=1,
    )
    emit(result, "e3_crossover_sweep_n.txt",
         params={"big_n": 24, "m": 12,
                 "n_values": (2, 4, 8, 12, 16, 20, 24)})
    # Direction: vc wins at the smallest n, dd at the largest.
    assert result.rows[0][7] == "vc" and result.rows[0][8] == "vc"
    assert result.rows[-1][7] == "dd" and result.rows[-1][8] == "dd"
    # Monotone-ish: once dd wins on bits it keeps winning.
    winners = result.column("bits_winner")
    first_dd = winners.index("dd")
    assert all(w == "dd" for w in winners[first_dd:])


def bench_e3_sweep_big_n(benchmark, emit):
    """Fixed n=4; growing N should leave vc costs flat and grow dd's."""

    def sweep():
        rows = []
        for big_n in (6, 12, 24, 48):
            comp = worst_case_computation(
                big_n, 10, seed=1, predicate_pids=tuple(range(4))
            )
            wcp = _wcp_over(range(4))
            vc = detect_runner.run_detector("token_vc", comp, wcp, seed=1)
            dd = detect_runner.run_detector("direct_dep", comp, wcp, seed=1)
            rows.append(
                [
                    big_n,
                    _monitor_stats(vc)["mon_bits"],
                    _monitor_stats(dd)["mon_bits"],
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.analysis import ExperimentResult

    result = ExperimentResult(
        "E3b fixed n=4, sweep N: vc flat, dd grows",
        ["N", "vc_bits", "dd_bits"],
        rows,
    )
    emit(result, "e3_crossover_sweep_N.txt",
         params={"n": 4, "m": 10, "big_ns": (6, 12, 24, 48), "seed": 1})
    vc_bits = [r[1] for r in rows]
    dd_bits = [r[2] for r in rows]
    assert max(vc_bits) <= 3 * min(vc_bits), "vc cost should not scale with N"
    assert dd_bits[-1] > 3 * dd_bits[0], "dd cost should scale with N"
