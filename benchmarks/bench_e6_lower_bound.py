"""E6 — Theorem 5.1's Ω(nm) lower bound, played out.

Four different S1/S2-restricted strategies face the adaptive adversary;
every one of them is forced to delete at least ``nm - n`` elements
before it can soundly answer, and total steps scale linearly in ``nm``.
"""

from repro.analysis import run_e6_lower_bound


def bench_e6_lower_bound(benchmark, emit):
    result = benchmark.pedantic(
        run_e6_lower_bound,
        kwargs={"ns": (4, 8, 16), "ms": (8, 16, 32, 64)},
        rounds=1, iterations=1,
    )
    emit(result, "e6_lower_bound.txt",
         params={"ns": (4, 8, 16), "ms": (8, 16, 32, 64)})

    assert all(result.column("ok")), "someone beat the adversary?!"
    fit = result.fits["steps_vs_nm"]
    assert 0.9 <= fit.exponent <= 1.1
    assert fit.r_squared > 0.99
    # The bound is tight-ish: deletions never exceed nm.
    for row in result.rows:
        assert row[3] <= row[1] * row[2]
