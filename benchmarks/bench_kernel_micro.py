#!/usr/bin/env python
"""Kernel microbenchmark: event throughput of the list vs packed clock path.

Measures, for a handful of large-cell shapes, how fast
:class:`repro.trace.intervals.IntervalAnalysis` sweeps a computation —
the hot loop every online detector pays before a single token moves:

* ``events_per_sec`` — total events swept per second of wall time
  (min over ``--reps`` fresh constructions, bypassing the per-backend
  analysis cache);
* ``allocs_per_event`` — Python heap blocks allocated per event during
  one construction (``sys.getallocatedblocks`` delta), the quantity the
  packed backend exists to crush;
* ``events`` / ``intervals`` — deterministic counted quantities used
  for exact baseline comparison.

The packed backend must beat the list backend by ``--min-speedup``
(default 3x) on at least one measured shape, and never regress below
the 2x sanity floor on any shape.  Shapes are chosen where the packed
win is structural (many processes or long chains), not incidental:
the O(E) wake-list sweep plus in-place ``array('q')`` merges removes
both the heap-based topological sort and per-event tuple churn.

A second section measures the kernel's *envelope interning*: a token
ring drives one message per hop through the live kernel with the
``Message`` constructor instrumented, once with the intern pool active
and once disabled.  For the ``intern-*`` rows the columns are reused:
``events`` is ``messages_delivered`` and ``intervals`` counts envelope
constructions — both deterministic, so the baseline pins them exactly.
The gate requires interning to eliminate at least 99% of envelope
constructions (``--max-intern-fraction``).  Wall time for these rows is
measured in a separate uninstrumented run so the counting wrapper's
overhead never flatters the pool.

The committed baseline lives at
``benchmarks/baselines/micro/kernel_micro.json`` (a ``repro-bench/1``
document; the ``micro/`` subdir keeps it out of the sweep-replay glob).
CI runs ``--check`` against it: counted quantities must match exactly,
wall-dependent columns are informational, and the speedup gate is
re-measured fresh on the runner.  Re-record with ``--update`` after an
intentional workload change.

Usage::

    python benchmarks/bench_kernel_micro.py                  # measure + gate
    python benchmarks/bench_kernel_micro.py --check benchmarks/baselines/micro/kernel_micro.json
    python benchmarks/bench_kernel_micro.py --update
"""

import argparse
import gc
import json
import pathlib
import sys
import time
from types import SimpleNamespace

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.clocks.vector import CLOCK_BACKENDS  # noqa: E402
from repro.obs.benchjson import (  # noqa: E402
    load_benchmark_json,
    structured_result,
)
from repro.simulation import kernel as kernel_mod  # noqa: E402
from repro.simulation.actors import Actor  # noqa: E402
from repro.simulation.effects import Message  # noqa: E402
from repro.simulation.kernel import Kernel  # noqa: E402
from repro.trace.generators import random_computation  # noqa: E402
from repro.trace.intervals import IntervalAnalysis  # noqa: E402

#: (num_processes, sends_per_process) — wide, square-ish, and deep cells.
DEFAULT_SHAPES = ((128, 32), (256, 16), (8, 1024))
#: (actors, hops) for the envelope-interning token ring.
RING_SHAPE = (16, 20000)
SEED = 3
DEFAULT_REPS = 5
DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent
    / "baselines"
    / "micro"
    / "kernel_micro.json"
)

HEADERS = [
    "backend",
    "n",
    "m",
    "events",
    "intervals",
    "wall_s",
    "events_per_sec",
    "allocs_per_event",
]
#: columns compared exactly against the baseline (wall-independent).
COUNTED = ("backend", "n", "m", "events", "intervals")


def measure_shape(n: int, m: int, reps: int) -> list[dict]:
    """One row per backend for an ``n x m`` random computation."""
    comp = random_computation(n, m, seed=SEED, predicate_density=0.0)
    events = comp.total_events()
    rows = []
    for backend in CLOCK_BACKENDS:
        walls = []
        for _ in range(reps):
            gc.collect()
            start = time.perf_counter()
            analysis = IntervalAnalysis(comp, clock_backend=backend)
            walls.append(time.perf_counter() - start)
        intervals = sum(analysis.num_intervals(p) for p in range(n))
        gc.collect()
        blocks_before = sys.getallocatedblocks()
        analysis = IntervalAnalysis(comp, clock_backend=backend)
        blocks_after = sys.getallocatedblocks()
        del analysis
        wall = min(walls)
        rows.append(
            {
                "backend": backend,
                "n": n,
                "m": m,
                "events": events,
                "intervals": intervals,
                "wall_s": round(wall, 6),
                "events_per_sec": round(events / wall, 1),
                "allocs_per_event": round(
                    (blocks_after - blocks_before) / events, 3
                ),
            }
        )
    return rows


class _RingActor(Actor):
    """Forward a hop counter around a ring; one live message at a time."""

    def __init__(self, idx: int, count: int, hops: int) -> None:
        super().__init__(f"ring-{idx}")
        self._next = f"ring-{(idx + 1) % count}"
        self._hops = hops
        self._initiator = idx == 0

    def run(self):
        if self._initiator:
            yield self.send(self._next, 0, kind="tok", size_bits=64)
        while True:
            msg = yield self.receive("tok")
            hop = msg.payload + 1
            if hop >= self._hops:
                return
            yield self.send(self._next, hop, kind="tok", size_bits=64)


def _ring_kernel(intern: bool, actors: int, hops: int) -> Kernel:
    kernel = Kernel(seed=0)
    if not intern:
        kernel._intern = False
    for i in range(actors):
        kernel.add_actor(_RingActor(i, actors, hops))
    return kernel


def measure_interning(reps: int) -> list[dict]:
    """One row per intern mode: envelope constructions + wall time."""
    actors, hops = RING_SHAPE
    rows = []
    for intern in (True, False):
        # Counted pass: instrument the kernel's Message binding.
        constructions = [0]

        def counting(*args, **kwargs):
            constructions[0] += 1
            return Message(*args, **kwargs)

        kernel_mod.Message = counting
        try:
            delivered = _ring_kernel(intern, actors, hops).run().messages_delivered
        finally:
            kernel_mod.Message = Message
        # Wall pass: uninstrumented, min over reps.
        walls = []
        for _ in range(reps):
            gc.collect()
            start = time.perf_counter()
            _ring_kernel(intern, actors, hops).run()
            walls.append(time.perf_counter() - start)
        wall = min(walls)
        rows.append(
            {
                "backend": "intern-on" if intern else "intern-off",
                "n": actors,
                "m": hops,
                "events": delivered,
                "intervals": constructions[0],
                "wall_s": round(wall, 6),
                "events_per_sec": round(delivered / wall, 1),
                "allocs_per_event": round(constructions[0] / delivered, 3),
            }
        )
    return rows


def speedups(rows: list[dict]) -> dict[tuple[int, int], float]:
    """Per-shape list-wall / packed-wall ratio."""
    walls: dict[tuple[int, int], dict[str, float]] = {}
    for row in rows:
        walls.setdefault((row["n"], row["m"]), {})[row["backend"]] = row[
            "wall_s"
        ]
    return {
        shape: by_backend["list"] / by_backend["packed"]
        for shape, by_backend in walls.items()
        if "list" in by_backend and "packed" in by_backend
    }


def run(
    shapes, reps: int, min_speedup: float, floor: float,
    max_intern_fraction: float,
) -> dict:
    rows: list[dict] = []
    for n, m in shapes:
        shape_rows = measure_shape(n, m, reps)
        rows.extend(shape_rows)
        for row in shape_rows:
            print(
                f"n={row['n']:4d} m={row['m']:5d} {row['backend']:6s} "
                f"wall={row['wall_s']:8.4f}s "
                f"events/s={row['events_per_sec']:11.1f} "
                f"allocs/event={row['allocs_per_event']:7.3f}"
            )
    intern_rows = measure_interning(reps)
    rows.extend(intern_rows)
    by_mode = {row["backend"]: row for row in intern_rows}
    on, off = by_mode["intern-on"], by_mode["intern-off"]
    for row in intern_rows:
        print(
            f"ring {row['backend']:10s} delivered={row['events']:6d} "
            f"constructions={row['intervals']:6d} wall={row['wall_s']:.4f}s "
            f"msgs/s={row['events_per_sec']:10.1f}"
        )
    fraction = on["intervals"] / off["intervals"]
    print(
        f"envelope interning keeps {on['intervals']} of {off['intervals']} "
        f"constructions ({fraction:.4%}; gate: <= {max_intern_fraction:.0%})"
    )
    assert off["intervals"] == off["events"], (
        "with interning off, every delivered message must be a fresh "
        f"construction ({off['intervals']} != {off['events']})"
    )
    assert fraction <= max_intern_fraction, (
        f"interning leaves {fraction:.2%} of envelope constructions; "
        f"gate is <= {max_intern_fraction:.0%}"
    )
    ratios = speedups(rows)
    for (n, m), ratio in ratios.items():
        print(f"n={n:4d} m={m:5d} packed speedup: {ratio:.2f}x")
    best = max(ratios.values())
    worst = min(ratios.values())
    notes = [
        f"best packed speedup {best:.2f}x (gate: >= {min_speedup:.1f}x)",
        f"worst packed speedup {worst:.2f}x (floor: >= {floor:.1f}x)",
        "wall-dependent columns are informational; counted columns "
        "(events, intervals) are compared exactly against the baseline",
        "intern-* rows: events = messages delivered on the token ring, "
        "intervals = Message constructions (deterministic; the pool must "
        f"keep the on/off ratio <= {max_intern_fraction:.0%})",
    ]
    assert best >= min_speedup, (
        f"packed backend best speedup {best:.2f}x is below the "
        f"{min_speedup:.1f}x gate"
    )
    assert worst >= floor, (
        f"packed backend worst speedup {worst:.2f}x is below the "
        f"{floor:.1f}x sanity floor"
    )
    result = SimpleNamespace(
        experiment="kernel-micro: interval-sweep throughput, list vs packed",
        headers=HEADERS,
        rows=[[row[h] for h in HEADERS] for row in rows],
        fits={},
        notes=notes,
    )
    return structured_result(
        result,
        params={
            "shapes": [list(s) for s in shapes],
            "ring_shape": list(RING_SHAPE),
            "seed": SEED,
            "reps": reps,
            "min_speedup": min_speedup,
            "floor": floor,
            "max_intern_fraction": max_intern_fraction,
        },
        wall_time_s=sum(row["wall_s"] for row in rows),
    )


def check_against(doc: dict, baseline_path: pathlib.Path) -> None:
    """Counted quantities must match the committed baseline exactly."""
    baseline = load_benchmark_json(baseline_path)
    idx = {name: HEADERS.index(name) for name in COUNTED}

    def counted(payload: dict) -> list[tuple]:
        headers = payload["headers"]
        pick = [headers.index(name) for name in COUNTED]
        return sorted(tuple(row[i] for i in pick) for row in payload["rows"])

    expected = counted(baseline)
    actual = [
        tuple(row[idx[name]] for name in COUNTED)
        for row in sorted(doc["rows"], key=lambda r: (r[1], r[2], r[0]))
    ]
    actual.sort()
    if expected != actual:
        missing = [row for row in expected if row not in actual]
        extra = [row for row in actual if row not in expected]
        raise SystemExit(
            f"counted quantities diverge from {baseline_path}:\n"
            f"  baseline-only: {missing}\n  fresh-only:    {extra}"
        )
    print(f"counted quantities match {baseline_path} ({len(expected)} rows)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shapes",
        default=";".join(f"{n},{m}" for n, m in DEFAULT_SHAPES),
        help="semicolon-separated n,m pairs",
    )
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--floor", type=float, default=2.0)
    parser.add_argument("--max-intern-fraction", type=float, default=0.01)
    parser.add_argument("--out", type=pathlib.Path, default=None)
    parser.add_argument(
        "--check",
        type=pathlib.Path,
        default=None,
        metavar="BASELINE",
        help="compare counted quantities against a committed baseline",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help=f"re-record the default baseline at {DEFAULT_BASELINE}",
    )
    args = parser.parse_args()
    shapes = tuple(
        tuple(int(v) for v in pair.split(","))
        for pair in args.shapes.split(";")
    )
    doc = run(
        shapes, args.reps, args.min_speedup, args.floor,
        args.max_intern_fraction,
    )
    if args.check is not None:
        check_against(doc, args.check)
    out = args.out
    if args.update:
        out = DEFAULT_BASELINE
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
