"""E12 — the definitely(φ) extension: polynomial vs exhaustive.

The strong-predicate detector agrees with the exhaustive
state-lattice search everywhere the lattice is feasible, while its
comparison count stays polynomial on runs where the lattice would have
millions of states.
"""

from repro.analysis import render_table
from repro.analysis.experiments import run_e12_strong_predicates


def bench_e12_strong_predicates(benchmark, emit):
    result = benchmark.pedantic(
        run_e12_strong_predicates, rounds=1, iterations=1
    )
    emit(result, "e12_strong.txt")

    assert all(row[3] for row in result.rows), "polynomial != exhaustive?!"
    small = [r for r in result.rows if r[5] is not None]
    # The exhaustive search space dwarfs the polynomial work already at
    # toy sizes.
    assert all(r[5] > 10 * r[4] for r in small)
    big = [r for r in result.rows if r[5] is None]
    # Polynomial work stays tame at sizes where the lattice is hopeless.
    assert max(r[4] for r in big) < 10_000
