#!/usr/bin/env python
"""Service scaling: marginal cost per predicate under token multiplexing.

Runs the multi-predicate detection service
(:func:`repro.detect.runner.run_service`, ``token_vc`` multiplexed) over
one fixed workload at P ∈ {1, 4, 16, 64, 256} registered predicates and
measures, per P:

* counted wire traffic — ``wire_bits`` (every message any service
  actor sends: candidate streams, their acks, tokens, done
  notifications, halts), token hops and comparison work —
  deterministic quantities compared **exactly** against the committed
  baseline;
* ``bits_per_pred`` — total wire bits divided by P, the service's
  amortised cost curve;
* ``preds_per_sec`` — wall-clock predicates resolved per second
  (informational; wall-dependent columns are never baseline-compared).

The claim under test is that the shared causality layer makes
predicates cheap at the margin: every predicate after the first reuses
the same hardened candidate streams (the dominant cost — each
candidate carries a vector timestamp), so only the per-predicate token
(2·|pids| words a hop) and its acks are new traffic.  The CI gate::

    bits_per_pred(P=64) <= --max-marginal (default 0.25) x wire_bits(P=1)

i.e. at 64 predicates the per-predicate cost has dropped to a quarter
of the single-predicate service, measured in counted bits, not wall
time.  Predicates rotate a width-``PRED_WIDTH`` pid set across the
``N`` processes; at P > N the rotations repeat under distinct ids
(distinct tokens, shared streams), matching how a real service hosts
many similar predicates.

The committed baseline lives at
``benchmarks/baselines/service/service_scale.json`` (a ``repro-bench/1``
document; the ``service/`` subdir keeps it out of the sweep-replay
glob).  The output carries an honest ``environment`` block (real
``cpu_count``, measured wall seconds) so a recorded snapshot can never
masquerade as a different machine's.

Usage::

    python benchmarks/bench_service_scale.py                 # measure + gate
    python benchmarks/bench_service_scale.py --check benchmarks/baselines/service/service_scale.json
    python benchmarks/bench_service_scale.py --update
"""

import argparse
import json
import os
import pathlib
import sys
import time
from types import SimpleNamespace

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.detect.runner import run_service  # noqa: E402
from repro.detect.service import service_units  # noqa: E402
from repro.obs.benchjson import (  # noqa: E402
    load_benchmark_json,
    structured_result,
)
from repro.predicates import WeakConjunctivePredicate  # noqa: E402
from repro.trace.generators import random_computation  # noqa: E402

DEFAULT_COUNTS = (1, 4, 16, 64, 256)
NUM_PROCESSES = 24
SENDS = 32
PRED_WIDTH = 8
DENSITY = 0.5
SEED = 7
DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent
    / "baselines"
    / "service"
    / "service_scale.json"
)

HEADERS = [
    "P",
    "detected",
    "aborted",
    "wire_bits",
    "mon_bits",
    "token_hops",
    "candidates_fed",
    "total_work",
    "bits_per_pred",
    "wall_s",
    "preds_per_sec",
]
#: columns compared exactly against the baseline (wall-independent).
COUNTED = (
    "P",
    "detected",
    "aborted",
    "wire_bits",
    "mon_bits",
    "token_hops",
    "candidates_fed",
    "total_work",
)


def service_entries(count: int) -> list[tuple[str, WeakConjunctivePredicate]]:
    """``count`` width-``PRED_WIDTH`` predicates rotated over the ring."""
    base = tuple(range(PRED_WIDTH))
    entries = []
    for k in range(count):
        pids = tuple(
            sorted({(pid + k) % NUM_PROCESSES for pid in base})
        )
        entries.append((f"q{k}", WeakConjunctivePredicate.of_flags(pids)))
    return entries


def measure(count: int, computation) -> dict:
    """One multiplexed service run at ``count`` registered predicates."""
    started = time.perf_counter()
    report = run_service(
        "token_vc", computation, service_entries(count), seed=SEED
    )
    wall = time.perf_counter() - started
    units = service_units(report)
    wire_bits = report.metrics.total_bits("")
    return {
        "P": count,
        "detected": units["detected_count"],
        "aborted": units["aborted_count"],
        "wire_bits": wire_bits,
        "mon_bits": units["mon_bits"],
        "token_hops": units["token_hops"],
        "candidates_fed": units["candidates_fed"],
        "total_work": units["total_work"],
        "bits_per_pred": round(wire_bits / count, 1),
        "wall_s": round(wall, 4),
        "preds_per_sec": round(count / wall, 1),
    }


def run(counts, max_marginal: float) -> dict:
    computation = random_computation(
        NUM_PROCESSES,
        SENDS,
        seed=SEED,
        predicate_density=DENSITY,
        plant_final_cut=True,
    )
    started = time.perf_counter()
    rows = []
    for count in counts:
        row = measure(count, computation)
        rows.append(row)
        print(
            f"P={row['P']:4d} detected={row['detected']:4d} "
            f"wire_bits={row['wire_bits']:9d} "
            f"bits/pred={row['bits_per_pred']:9.1f} "
            f"hops={row['token_hops']:5d} "
            f"preds/s={row['preds_per_sec']:8.1f}"
        )
        assert row["detected"] == row["P"], (
            f"P={row['P']}: {row['detected']} detected; the planted final "
            f"cut satisfies every rotation, so all must detect"
        )
    wall_s = time.perf_counter() - started
    by_count = {row["P"]: row for row in rows}
    notes = [
        "wall-dependent columns are informational; counted columns are "
        "compared exactly against the baseline",
    ]
    gate_ok = True
    if 1 in by_count and 64 in by_count:
        single = by_count[1]["wire_bits"]
        marginal = by_count[64]["wire_bits"] / 64
        ratio = marginal / single
        notes.append(
            f"marginal cost at P=64: {marginal:.1f} bits/pred = "
            f"{ratio:.3f}x the P=1 service (gate: <= {max_marginal:g}x)"
        )
        print(notes[-1])
        gate_ok = ratio <= max_marginal
        assert gate_ok, (
            f"marginal bits per predicate at P=64 ({marginal:.1f}) exceed "
            f"{max_marginal:g}x the single-predicate service ({single})"
        )
    result = SimpleNamespace(
        experiment="service-scale: marginal cost per multiplexed predicate",
        headers=HEADERS,
        rows=[[row[h] for h in HEADERS] for row in rows],
        fits={},
        notes=notes,
    )
    doc = structured_result(
        result,
        params={
            "counts": list(counts),
            "processes": NUM_PROCESSES,
            "sends": SENDS,
            "pred_width": PRED_WIDTH,
            "density": DENSITY,
            "seed": SEED,
            "max_marginal": max_marginal,
        },
        wall_time_s=wall_s,
    )
    doc["environment"] = {
        "cpu_count": os.cpu_count() or 1,
        "wall_s": round(wall_s, 3),
    }
    return doc


def check_against(doc: dict, baseline_path: pathlib.Path) -> None:
    """Counted quantities must match the committed baseline exactly."""
    baseline = load_benchmark_json(baseline_path)
    idx = {name: HEADERS.index(name) for name in COUNTED}

    def counted(payload: dict) -> list[tuple]:
        headers = payload["headers"]
        pick = [headers.index(name) for name in COUNTED]
        return sorted(tuple(row[i] for i in pick) for row in payload["rows"])

    expected = counted(baseline)
    actual = sorted(
        tuple(row[idx[name]] for name in COUNTED) for row in doc["rows"]
    )
    if expected != actual:
        missing = [row for row in expected if row not in actual]
        extra = [row for row in actual if row not in expected]
        raise SystemExit(
            f"counted quantities diverge from {baseline_path}:\n"
            f"  baseline-only: {missing}\n  fresh-only:    {extra}"
        )
    print(f"counted quantities match {baseline_path} ({len(expected)} rows)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--counts",
        default=",".join(map(str, DEFAULT_COUNTS)),
        help="comma-separated predicate counts",
    )
    parser.add_argument(
        "--max-marginal",
        type=float,
        default=0.25,
        help="gate: bits/pred at P=64 as a fraction of the P=1 service",
    )
    parser.add_argument("--out", type=pathlib.Path, default=None)
    parser.add_argument(
        "--check",
        type=pathlib.Path,
        default=None,
        metavar="BASELINE",
        help="compare counted quantities against a committed baseline",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help=f"re-record the default baseline at {DEFAULT_BASELINE}",
    )
    args = parser.parse_args()
    counts = tuple(int(v) for v in args.counts.split(","))
    doc = run(counts, args.max_marginal)
    if args.check is not None:
        check_against(doc, args.check)
    out = args.out
    if args.update:
        out = DEFAULT_BASELINE
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
