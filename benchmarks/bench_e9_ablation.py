"""E9 — ablation of the §3 token-routing policy.

The paper only requires the token to be sent to *some* red process.
This bench quantifies the design choice left open: cyclic round-robin
(the library default), lowest-index-first, and most-stale-candidate
routing, on the elimination worst case and on random workloads.
Correctness is routing-independent; costs differ by constants.
"""

from repro.analysis import run_e9_routing_ablation


def bench_e9_routing_ablation(benchmark, emit):
    result = benchmark.pedantic(
        run_e9_routing_ablation,
        kwargs={"n": 16, "m": 12, "seeds": (0, 1, 2)},
        rounds=1, iterations=1,
    )
    emit(result, "e9_routing_ablation.txt",
         params={"n": 16, "m": 12, "seeds": (0, 1, 2)})

    assert all(row[-1] for row in result.rows), "every run detects"
    # The ablation is informative: at least two policies take different
    # routes on the spiral.
    spiral_hops = {
        row[0]: row[2] for row in result.rows if row[1] == "spiral"
    }
    assert len(set(spiral_hops.values())) >= 2, spiral_hops
