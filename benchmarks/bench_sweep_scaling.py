"""Sweep harness scaling — parallel fan-out vs a single worker.

Runs the committed 64-cell ``scaling-64`` matrix twice over a shared
workload cache — once inline and once across worker processes — and
reports the wall-clock speedup plus the determinism check: the
paper-unit metrics of every cell must be byte-identical regardless of
worker count (the acceptance bar for the fan-out harness).

The speedup assertion is deliberately soft here (>= 1.0, i.e. fan-out
is never a slowdown beyond noise) because benchmark containers may pin
a single core; the ≥ 2.5x-on-4-cores figure is measured by the CI soak
and by running this module on real hardware — the emitted JSON carries
the measured factor either way.
"""

import json
import os
import pathlib
import time

from repro.analysis import ExperimentResult
from repro.sweep import load_matrix, run_sweep

SWEEPS_DIR = pathlib.Path(__file__).parent / "sweeps"


def bench_sweep_worker_scaling(benchmark, emit, workload_cache, tmp_path):
    matrix = load_matrix(SWEEPS_DIR / "scaling64.json")
    assert matrix.num_cells == 64
    cache_root = workload_cache.root
    workers = min(4, os.cpu_count() or 1)

    # Warm the workload cache so both timed runs measure detection only.
    warm = run_sweep(matrix, cache_root, workers=1)
    assert warm.ok

    def timed(worker_count: int):
        started = time.perf_counter()
        result = run_sweep(matrix, cache_root, workers=worker_count)
        return result, time.perf_counter() - started

    serial, serial_s = benchmark.pedantic(
        timed, args=(1,), rounds=1, iterations=1
    )
    fanned, fanned_s = timed(workers)
    assert serial.ok and fanned.ok

    serial_units = json.dumps(serial.paper_units_view(), sort_keys=True)
    fanned_units = json.dumps(fanned.paper_units_view(), sort_keys=True)
    identical = serial_units == fanned_units
    speedup = serial_s / fanned_s if fanned_s > 0 else float("inf")

    result = ExperimentResult(
        "sweep fan-out scaling (64-cell matrix)",
        ["workers", "wall_s", "speedup", "cells", "identical_units"],
        [
            [1, round(serial_s, 3), 1.0, len(serial.records), True],
            [
                workers,
                round(fanned_s, 3),
                round(speedup, 2),
                len(fanned.records),
                identical,
            ],
        ],
    )
    result.notes.append(
        f"cpu_count={os.cpu_count()}; target >= 2.5x at 4 cores"
    )
    emit(
        result,
        "sweep_scaling.txt",
        params={"matrix": matrix.name, "workers": workers},
    )

    assert identical, "paper units must not depend on worker count"
    if workers >= 4:
        assert speedup >= 1.0
