"""E8 — Theorems 3.2 / 4.3 / 4.4 as a measurement.

Across randomized workloads, all seven detectors (reference, lattice,
centralized, both token algorithms, both direct-dependence variants)
return the same verdict and the same first cut, while the lattice
baseline's explored-state count illustrates the exponential cost the
paper's polynomial algorithms avoid.
"""

from repro.analysis import run_e8_agreement


def bench_e8_agreement(benchmark, emit):
    result = benchmark.pedantic(
        run_e8_agreement,
        kwargs={"seeds": tuple(range(12)), "num_processes": 4, "m": 6},
        rounds=1, iterations=1,
    )
    emit(result, "e8_agreement.txt",
         params={"seeds": tuple(range(12)), "num_processes": 4, "m": 6})

    assert all(result.column("all_agree"))
    # The lattice explores orders of magnitude more states than the
    # token algorithm performs work units (on detected runs).
    for row in result.rows:
        seed, detected, _agree, lattice_states, token_work = row
        if detected and token_work:
            assert lattice_states >= 1
