"""E10 — §6's closing remark: the average case beats the worst case.

The Ω(nm) bound is a worst-case statement; on random workloads with a
nonzero predicate density the token algorithm detects after a small
fraction of the nm hop budget.  The spiral row anchors the worst case.
"""

from repro.analysis import run_e10_average_case


def bench_e10_average_case(benchmark, emit):
    result = benchmark.pedantic(
        run_e10_average_case,
        kwargs={
            "n": 8,
            "m": 16,
            "densities": (0.05, 0.2, 0.5),
            "seeds": tuple(range(6)),
        },
        rounds=1, iterations=1,
    )
    emit(result, "e10_average_case.txt",
         params={"n": 8, "m": 16, "densities": (0.05, 0.2, 0.5),
                 "seeds": tuple(range(6))})

    budget_used = dict(
        zip(result.column("workload"), result.column("budget_used"))
    )
    spiral_fraction = [
        row for row in result.rows if row[0].startswith("spiral")
    ][0][4]
    random_fractions = [
        row[4] for row in result.rows if row[0] == "random"
    ]
    # Every random configuration spends a much smaller fraction of the
    # worst-case budget than the adversarial spiral.
    assert all(f < spiral_fraction / 2 for f in random_fractions), (
        spiral_fraction,
        random_fractions,
    )
    # And every random run still detects (final cut planted).
    assert all(
        row[6] == 6 for row in result.rows if row[0] == "random"
    )
