"""E7 — the headline comparison against the centralized checker [7].

* Space: under the skewed workload the checker buffers ``O(n^2 m)`` bits
  while the heaviest token monitor stays at ``O(nm)`` — the measured
  ratio grows linearly with ``n``.
* Work: on the elimination-heavy spiral workload the checker performs
  everything itself, while the token algorithm spreads the same total
  across monitors.
* Both always agree on the detected cut (Table 1's equivalence).
"""

from repro.analysis import run_e7_vs_centralized


def bench_e7_vs_centralized(benchmark, emit):
    result = benchmark.pedantic(
        run_e7_vs_centralized,
        kwargs={"ns": (4, 8, 16, 24), "m": 16},
        rounds=1, iterations=1,
    )
    emit(result, "e7_vs_centralized.txt",
         params={"ns": (4, 8, 16, 24), "m": 16})

    assert all(result.column("same_cut"))
    # The space ratio grows ~linearly with n on the skewed workload.
    fit = result.fits["space_ratio_vs_n"]
    assert 0.8 <= fit.exponent <= 1.2
    # At the largest n the checker needs an order of magnitude more
    # space than any single monitor.
    skewed = [row for row in result.rows if row[0] == "skewed"]
    assert skewed[-1][5] > 10
    # Work ratio grows with n on the spiral workload.
    spiral = [row for row in result.rows if row[0] == "spiral"]
    assert spiral[-1][8] > spiral[0][8]
