"""E1 — §3.4 complexity of the single-token vector-clock algorithm.

Paper claims reproduced as measurements:

* the token is sent at most ``nm`` times;
* total monitor messages are at most ``2nm``;
* total bits are ``O(n^2 m)`` (fit exponents ≈ (2, 1));
* work per process is ``O(nm)`` (fit ≈ (1, 1)); total ``O(n^2 m)``;
* space per process is ``O(nm)``.
"""

from repro.analysis import run_e1_token_vc

NS = (4, 8, 16, 32)
MS = (8, 16, 32, 64, 128)


def bench_e1_token_vc_scaling(benchmark, emit):
    result = benchmark.pedantic(
        run_e1_token_vc, kwargs={"ns": NS, "ms": MS, "seed": 0},
        rounds=1, iterations=1,
    )
    emit(result, "e1_token_vc.txt", params={"ns": NS, "ms": MS, "seed": 0})

    # Hard bounds from §3.4.
    assert all(row[-1] for row in result.rows), "every run must detect"
    hops = result.column("token_hops")
    hop_bounds = result.column("hop_bound(nm)")
    assert all(h <= b for h, b in zip(hops, hop_bounds))
    msgs = result.column("mon_msgs")
    msg_bounds = result.column("msg_bound(2nm)")
    assert all(x <= b for x, b in zip(msgs, msg_bounds))

    # Shape: total work ~ n^2 m, per-process work ~ n m, bits ~ n^2 m.
    assert 1.8 <= result.fits["total_work"].n_exponent <= 2.2
    assert 0.8 <= result.fits["total_work"].m_exponent <= 1.2
    assert 0.8 <= result.fits["max_work"].n_exponent <= 1.2
    assert 1.8 <= result.fits["mon_bits"].n_exponent <= 2.3
    assert result.fits["total_work"].r_squared > 0.98
