"""Weak conjunctive predicates (WCP): the paper's detection target.

A WCP is a conjunction ``l_1 ∧ … ∧ l_n`` of local predicates, each bound
to one process.  It holds for a run iff some *consistent cut* exists in
which every ``l_i`` is true (the "possibly" modality).  The paper
restricts attention to conjunctive predicates because any boolean global
predicate can be detected by an algorithm for conjunctive ones [7].

:class:`WeakConjunctivePredicate` is a value object binding local
predicates to pids; it fixes the slot ordering used by detector tokens
(slot ``k`` of a token vector corresponds to ``pids[k]``).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import Pid
from repro.predicates.local import LocalPredicate, flag_predicate

__all__ = ["WeakConjunctivePredicate"]


class WeakConjunctivePredicate:
    """A conjunction of local predicates, one per named process.

    Parameters
    ----------
    clauses:
        Mapping from pid to that process's local predicate.  Pids are
        stored sorted; slot indices follow that order.
    """

    __slots__ = ("_pids", "_clauses")

    def __init__(self, clauses: Mapping[Pid, LocalPredicate]) -> None:
        if not clauses:
            raise ConfigurationError("a WCP needs at least one clause")
        pids = tuple(sorted(clauses))
        if any(p < 0 for p in pids):
            raise ConfigurationError(f"negative pid in WCP clauses: {pids}")
        self._pids = pids
        self._clauses = {pid: clauses[pid] for pid in pids}

    # ------------------------------------------------------------------
    @classmethod
    def of_flags(cls, pids: Sequence[Pid], var: str = "flag") -> "WeakConjunctivePredicate":
        """A WCP asserting boolean ``var`` on each listed process — the
        form produced by the workload generators."""
        return cls({pid: flag_predicate(var) for pid in pids})

    # ------------------------------------------------------------------
    @property
    def pids(self) -> tuple[Pid, ...]:
        """Processes over which the predicate is defined, ascending."""
        return self._pids

    @property
    def n(self) -> int:
        """The paper's ``n``: number of processes in the predicate."""
        return len(self._pids)

    def clause(self, pid: Pid) -> LocalPredicate:
        """The local predicate bound to ``pid``."""
        try:
            return self._clauses[pid]
        except KeyError:
            raise ConfigurationError(f"WCP has no clause for P{pid}") from None

    def slot(self, pid: Pid) -> int:
        """The token-vector slot index of ``pid``."""
        try:
            return self._pids.index(pid)
        except ValueError:
            raise ConfigurationError(f"WCP has no clause for P{pid}") from None

    def predicate_map(self) -> dict[Pid, LocalPredicate]:
        """A pid -> predicate dictionary (a fresh copy)."""
        return dict(self._clauses)

    def bindings(self) -> tuple[tuple[Pid, str], ...]:
        """The registry-facing spec: ``(pid, clause_name)`` per slot.

        Clause *names* are the service's sharing contract — two WCPs may
        share one candidate stream for a pid exactly when they bind a
        same-named local predicate to it (see
        :class:`repro.detect.service.PredicateRegistry`).  This is the
        hashable identity a registry compares, logs, and serializes; the
        callables themselves stay private to the slot machinery.
        """
        return tuple((pid, self._clauses[pid].name) for pid in self._pids)

    def items(self) -> Iterator[tuple[Pid, LocalPredicate]]:
        """Iterate ``(pid, clause)`` in slot order."""
        return iter((pid, self._clauses[pid]) for pid in self._pids)

    def check_against(self, num_processes: int) -> None:
        """Validate that all clause pids exist in an ``N``-process system."""
        bad = [p for p in self._pids if p >= num_processes]
        if bad:
            raise ConfigurationError(
                f"WCP names processes {bad} but the computation has only "
                f"{num_processes} processes"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = " ∧ ".join(
            f"{self._clauses[p].name}@P{p}" for p in self._pids
        )
        return f"WCP({inner})"
