"""Ground-truth predicate evaluation on cuts.

These functions define *what the detectors must find*, independently of
any detection algorithm:

* :func:`clause_holds_in_interval` — WCP clause truth at an interval
  (true somewhere in the interval, per the Garg–Waldecker semantics);
* :func:`cut_satisfies` — full WCP truth at a (consistent) cut;
* :func:`brute_force_first_cut` — the unique least satisfying consistent
  cut, found by exhaustive lattice search.  Exponential; used to validate
  the polynomial algorithms on small runs.

The least satisfying cut is unique because satisfying consistent cuts
are closed under componentwise minimum: the min of two consistent cuts
is consistent (lattice property), and each of its components is a
component of one of the originals, hence still predicate-true.
"""

from __future__ import annotations

from repro.common.errors import CutError
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.trace.computation import Computation
from repro.trace.cuts import Cut, is_consistent_cut
from repro.trace.lattice import iter_consistent_cuts
from repro.trace.snapshots import true_intervals

__all__ = [
    "clause_holds_in_interval",
    "cut_satisfies",
    "brute_force_first_cut",
    "candidate_intervals",
]


def candidate_intervals(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> dict[int, list[int]]:
    """Per predicate process, the ascending list of candidate intervals
    (intervals containing at least one predicate-true local state)."""
    wcp.check_against(computation.num_processes)
    return {
        pid: true_intervals(computation, pid, wcp.clause(pid))
        for pid in wcp.pids
    }


def clause_holds_in_interval(
    computation: Computation,
    wcp: WeakConjunctivePredicate,
    pid: int,
    interval: int,
) -> bool:
    """True iff ``wcp``'s clause for ``pid`` holds at some local state of
    the given interval."""
    analysis = computation.analysis()
    clause = wcp.clause(pid)
    states = computation.local_states(pid)
    return any(
        clause(states[k]) for k in analysis.states_in_interval(pid, interval)
    )


def cut_satisfies(
    computation: Computation, wcp: WeakConjunctivePredicate, cut: Cut
) -> bool:
    """True iff ``cut`` is a consistent cut at which the WCP holds.

    ``cut`` must range over exactly the WCP's pids.
    """
    if tuple(cut.pids) != wcp.pids:
        raise CutError(
            f"cut pids {cut.pids} do not match WCP pids {wcp.pids}"
        )
    if not cut.is_complete:
        return False
    analysis = computation.analysis()
    if not is_consistent_cut(analysis, cut):
        return False
    return all(
        clause_holds_in_interval(computation, wcp, pid, cut.component(pid))
        for pid in wcp.pids
    )


def brute_force_first_cut(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> Cut | None:
    """The least consistent cut satisfying the WCP, by exhaustive search.

    Enumerates the consistent-cut lattice in level order; the first
    satisfying cut encountered has minimal level and — by uniqueness of
    the minimum — *is* the least cut.  Returns ``None`` when the WCP
    never holds.  Exponential in general: test/baseline use only.
    """
    wcp.check_against(computation.num_processes)
    analysis = computation.analysis()
    truth: dict[int, set[int]] = {
        pid: set(intervals)
        for pid, intervals in candidate_intervals(computation, wcp).items()
    }
    for cut in iter_consistent_cuts(analysis, wcp.pids):
        if all(
            cut.component(pid) in truth[pid] for pid in wcp.pids
        ):
            return cut
    return None
