"""Predicate layer: local predicates, WCPs, channel predicates, ground truth."""

from repro.predicates.channel import (
    ChannelPredicate,
    LinearChannelPredicate,
    at_most_in_transit,
    empty_channel,
    exactly_in_transit,
    in_transit_messages,
    linear_at_least,
    linear_at_most,
    linear_empty_channel,
)
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.evaluator import (
    brute_force_first_cut,
    candidate_intervals,
    clause_holds_in_interval,
    cut_satisfies,
)
from repro.predicates.local import (
    LocalPredicate,
    all_of,
    always_true,
    any_of,
    flag_predicate,
    negation,
    never_true,
    var_at_least,
    var_equals,
    var_true,
)

__all__ = [
    "LocalPredicate",
    "flag_predicate",
    "var_equals",
    "var_true",
    "var_at_least",
    "always_true",
    "never_true",
    "negation",
    "all_of",
    "any_of",
    "WeakConjunctivePredicate",
    "ChannelPredicate",
    "LinearChannelPredicate",
    "empty_channel",
    "at_most_in_transit",
    "exactly_in_transit",
    "in_transit_messages",
    "linear_empty_channel",
    "linear_at_most",
    "linear_at_least",
    "cut_satisfies",
    "clause_holds_in_interval",
    "brute_force_first_cut",
    "candidate_intervals",
]
