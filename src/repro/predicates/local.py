"""Local predicates: boolean formulas over one process's local state.

A local state is a mapping of program-variable names to values (see
:meth:`repro.trace.computation.Computation.local_states`).  A
:class:`LocalPredicate` wraps a boolean function of such a mapping with a
human-readable name used in reports and detected-cut explanations.

Combinators (:func:`all_of`, :func:`any_of`, :func:`negation`) stay
*local* — they combine predicates on the same process.  Cross-process
conjunction is the job of
:class:`~repro.predicates.conjunctive.WeakConjunctivePredicate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.common.errors import ConfigurationError

__all__ = [
    "LocalPredicate",
    "flag_predicate",
    "var_equals",
    "var_true",
    "var_at_least",
    "always_true",
    "never_true",
    "negation",
    "all_of",
    "any_of",
]

StateFn = Callable[[Mapping[str, object]], bool]


@dataclass(frozen=True, slots=True)
class LocalPredicate:
    """A named boolean predicate over a local state."""

    name: str
    fn: StateFn

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise ConfigurationError(f"predicate fn must be callable: {self.fn!r}")

    def __call__(self, state: Mapping[str, object]) -> bool:
        return bool(self.fn(state))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def flag_predicate(var: str = "flag") -> LocalPredicate:
    """True when boolean variable ``var`` is set (generators' convention)."""
    return LocalPredicate(var, lambda s: bool(s.get(var, False)))


def var_equals(var: str, value: object) -> LocalPredicate:
    """True when variable ``var`` equals ``value``."""
    return LocalPredicate(f"{var}=={value!r}", lambda s: s.get(var) == value)


def var_true(var: str) -> LocalPredicate:
    """True when variable ``var`` is truthy."""
    return LocalPredicate(var, lambda s: bool(s.get(var, False)))


def var_at_least(var: str, threshold: float) -> LocalPredicate:
    """True when numeric variable ``var`` is >= ``threshold`` (missing = False)."""

    def check(state: Mapping[str, object]) -> bool:
        value = state.get(var)
        return isinstance(value, (int, float)) and value >= threshold

    return LocalPredicate(f"{var}>={threshold}", check)


def always_true() -> LocalPredicate:
    """The constant-true predicate (used for §4's non-predicate processes)."""
    return LocalPredicate("true", lambda _s: True)


def never_true() -> LocalPredicate:
    """The constant-false predicate."""
    return LocalPredicate("false", lambda _s: False)


def negation(predicate: LocalPredicate) -> LocalPredicate:
    """The pointwise negation of a local predicate."""
    return LocalPredicate(f"!({predicate.name})", lambda s: not predicate(s))


def all_of(*predicates: LocalPredicate) -> LocalPredicate:
    """Local conjunction (same process)."""
    if not predicates:
        raise ConfigurationError("all_of needs at least one predicate")
    name = " & ".join(p.name for p in predicates)
    return LocalPredicate(name, lambda s: all(p(s) for p in predicates))


def any_of(*predicates: LocalPredicate) -> LocalPredicate:
    """Local disjunction (same process)."""
    if not predicates:
        raise ConfigurationError("any_of needs at least one predicate")
    name = " | ".join(p.name for p in predicates)
    return LocalPredicate(name, lambda s: any(p(s) for p in predicates))
