"""Boolean global predicates over local atoms, reduced to WCPs.

§2 of the paper: *"We restrict our consideration to conjunctive
predicates because any boolean predicate can be detected using an
algorithm that detects conjunctive predicates [7]."*  This module
implements that reduction: a boolean expression whose atoms are local
predicates (each bound to one process) is normalized to DNF with
negations pushed onto the atoms; every disjunct then becomes a
:class:`~repro.predicates.conjunctive.WeakConjunctivePredicate` (atoms
sharing a process are conjoined locally).

The expression algebra supports operator syntax::

    expr = atom(0, var_true("cs")) & ~atom(1, var_true("idle")) \
         | atom(2, var_true("leader"))
    for wcp in expr.to_wcps():
        ...

Note the reduction's cost is the usual DNF blowup — exponential in the
worst case — which is the price the paper's citation accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.common.errors import ConfigurationError
from repro.common.types import Pid
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.local import LocalPredicate, all_of, negation

__all__ = ["BoolExpr", "Atom", "And", "Or", "Not", "atom"]


class BoolExpr:
    """Base class for boolean expressions over local-predicate atoms."""

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return And(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return Or(self, other)

    def __invert__(self) -> "BoolExpr":
        return Not(self)

    # ------------------------------------------------------------------
    def _nnf(self, negated: bool) -> "BoolExpr":
        """Negation normal form (negations pushed onto atoms)."""
        raise NotImplementedError

    def _dnf_clauses(self) -> list[list["Atom"]]:
        """DNF of an NNF expression: a list of atom conjunctions."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def to_dnf(self) -> list[list["Atom"]]:
        """Disjunctive normal form as lists of (possibly negated) atoms."""
        clauses = self._nnf(False)._dnf_clauses()
        if not clauses:
            raise ConfigurationError("expression normalizes to no clauses")
        return clauses

    def to_wcps(self) -> list[WeakConjunctivePredicate]:
        """One WCP per DNF disjunct (same-process atoms conjoined)."""
        wcps = []
        for clause in self.to_dnf():
            by_pid: dict[Pid, list[LocalPredicate]] = {}
            for a in clause:
                by_pid.setdefault(a.pid, []).append(a.effective_predicate())
            wcps.append(
                WeakConjunctivePredicate(
                    {pid: all_of(*preds) for pid, preds in by_pid.items()}
                )
            )
        return wcps


@dataclass(frozen=True)
class Atom(BoolExpr):
    """A local predicate bound to one process, possibly negated."""

    pid: Pid
    predicate: LocalPredicate
    negated: bool = False

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ConfigurationError(f"atom pid must be >= 0, got {self.pid}")

    def effective_predicate(self) -> LocalPredicate:
        """The predicate with any pending negation applied."""
        return negation(self.predicate) if self.negated else self.predicate

    def _nnf(self, negated: bool) -> "BoolExpr":
        return Atom(self.pid, self.predicate, self.negated ^ negated)

    def _dnf_clauses(self) -> list[list["Atom"]]:
        return [[self]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bang = "!" if self.negated else ""
        return f"{bang}{self.predicate.name}@P{self.pid}"


@dataclass(frozen=True)
class And(BoolExpr):
    """Conjunction of two subexpressions."""

    left: BoolExpr
    right: BoolExpr

    def _nnf(self, negated: bool) -> "BoolExpr":
        if negated:  # De Morgan
            return Or(self.left._nnf(True), self.right._nnf(True))
        return And(self.left._nnf(False), self.right._nnf(False))

    def _dnf_clauses(self) -> list[list["Atom"]]:
        return [
            lc + rc
            for lc in self.left._dnf_clauses()
            for rc in self.right._dnf_clauses()
        ]


@dataclass(frozen=True)
class Or(BoolExpr):
    """Disjunction of two subexpressions."""

    left: BoolExpr
    right: BoolExpr

    def _nnf(self, negated: bool) -> "BoolExpr":
        if negated:  # De Morgan
            return And(self.left._nnf(True), self.right._nnf(True))
        return Or(self.left._nnf(False), self.right._nnf(False))

    def _dnf_clauses(self) -> list[list["Atom"]]:
        return self.left._dnf_clauses() + self.right._dnf_clauses()


@dataclass(frozen=True)
class Not(BoolExpr):
    """Negation of a subexpression (eliminated by NNF)."""

    operand: BoolExpr

    def _nnf(self, negated: bool) -> "BoolExpr":
        return self.operand._nnf(not negated)

    def _dnf_clauses(self) -> list[list["Atom"]]:  # pragma: no cover
        raise AssertionError("Not nodes are eliminated by NNF")


def atom(pid: Pid, predicate: LocalPredicate) -> Atom:
    """Convenience constructor for a positive atom."""
    return Atom(pid, predicate)
