"""Channel predicates — the GCP extension of Garg, Chase, Mitchell & Kilgore.

The paper's introduction situates its algorithms in a line of work that
extends WCP detection with predicates on the *state of communication
channels* (Generalized Conjunctive Predicates, reference [6]).  We
implement that extension so the library covers the cited class: a GCP is
a conjunction of local predicates plus channel predicates, each channel
predicate a boolean function of the multiset of messages in transit on
one directed channel at the cut.

At interval granularity, the channel ``src -> dest`` at a cut ``G``
contains exactly the messages whose send closed an interval ``< G[src]``
(so the send has occurred) and whose receive opened an interval
``> G[dest]`` (so the receive has not).  For consistent cuts the
received-but-unsent case cannot arise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import Pid
from repro.trace.computation import Computation
from repro.trace.cuts import Cut
from repro.trace.events import EventKind

__all__ = [
    "ChannelPredicate",
    "LinearChannelPredicate",
    "empty_channel",
    "at_most_in_transit",
    "exactly_in_transit",
    "in_transit_messages",
    "linear_empty_channel",
    "linear_at_most",
    "linear_at_least",
]

ChannelFn = Callable[[Sequence[int]], bool]


@dataclass(frozen=True, slots=True)
class ChannelPredicate:
    """A named boolean predicate over one directed channel's in-transit
    message ids."""

    name: str
    src: Pid
    dest: Pid
    fn: ChannelFn

    def __post_init__(self) -> None:
        if self.src < 0 or self.dest < 0:
            raise ConfigurationError("channel endpoints must be >= 0")
        if self.src == self.dest:
            raise ConfigurationError("a channel cannot loop back to its source")
        if not callable(self.fn):
            raise ConfigurationError(f"channel fn must be callable: {self.fn!r}")

    def evaluate(self, computation: Computation, cut: Cut) -> bool:
        """Evaluate on the channel state induced by ``cut``."""
        return bool(
            self.fn(in_transit_messages(computation, cut, self.src, self.dest))
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[P{self.src}->P{self.dest}]"


def in_transit_messages(
    computation: Computation, cut: Cut, src: Pid, dest: Pid
) -> tuple[int, ...]:
    """Message ids in transit on ``src -> dest`` at ``cut``.

    ``cut`` must contain components for both ``src`` and ``dest``.
    """
    analysis = computation.analysis()
    g_src = cut.component(src)
    g_dest = cut.component(dest)
    transit: list[int] = []
    for event in computation.events_of(src):
        if event.kind is not EventKind.SEND or event.peer != dest:
            continue
        assert event.msg_id is not None
        sent_before_cut = analysis.send_tag(event.msg_id) < g_src
        record = computation.messages.get(event.msg_id)
        if record is None:
            received_before_cut = False  # never received (in-flight at run end)
        else:
            opened = analysis.interval_of_state(dest, record.recv_index + 1)
            received_before_cut = opened <= g_dest
        if sent_before_cut and not received_before_cut:
            transit.append(event.msg_id)
    return tuple(transit)


@dataclass(frozen=True, slots=True)
class LinearChannelPredicate:
    """A *linear* channel predicate: boolean in the in-transit count,
    with a designated endpoint whose advance can repair falsity.

    Linearity (the property [6]'s online algorithm needs): when the
    predicate is false at a cut, it stays false as the *other* endpoint
    advances, so the designated ``eliminate`` endpoint's current
    candidate can be discarded outright.  ``eliminate="receiver"`` fits
    predicates that are violated by too many in-flight messages (empty,
    at-most-k: the sender advancing only adds messages);
    ``eliminate="sender"`` fits too-few predicates (at-least-k).
    """

    name: str
    src: Pid
    dest: Pid
    count_fn: Callable[[int], bool]
    eliminate: str  # "sender" | "receiver"

    def __post_init__(self) -> None:
        if self.src < 0 or self.dest < 0:
            raise ConfigurationError("channel endpoints must be >= 0")
        if self.src == self.dest:
            raise ConfigurationError("a channel cannot loop back to its source")
        if self.eliminate not in ("sender", "receiver"):
            raise ConfigurationError(
                f"eliminate must be 'sender' or 'receiver', "
                f"got {self.eliminate!r}"
            )

    def holds_for_count(self, in_transit: int) -> bool:
        """Evaluate on an in-transit message count."""
        return bool(self.count_fn(in_transit))

    def evaluate(self, computation: Computation, cut: Cut) -> bool:
        """Evaluate on the channel state induced by ``cut`` (offline)."""
        return self.holds_for_count(
            len(in_transit_messages(computation, cut, self.src, self.dest))
        )

    def culprit(self) -> Pid:
        """The pid whose candidate is eliminated when the clause fails."""
        return self.src if self.eliminate == "sender" else self.dest

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[P{self.src}->P{self.dest}]"


def linear_empty_channel(src: Pid, dest: Pid) -> LinearChannelPredicate:
    """Linear form of the empty-channel predicate (receiver-repairable)."""
    return LinearChannelPredicate(
        "empty", src, dest, lambda c: c == 0, eliminate="receiver"
    )


def linear_at_most(src: Pid, dest: Pid, bound: int) -> LinearChannelPredicate:
    """At most ``bound`` messages in transit (receiver-repairable)."""
    if bound < 0:
        raise ConfigurationError(f"bound must be >= 0, got {bound}")
    return LinearChannelPredicate(
        f"|ch|<={bound}", src, dest, lambda c: c <= bound, eliminate="receiver"
    )


def linear_at_least(src: Pid, dest: Pid, bound: int) -> LinearChannelPredicate:
    """At least ``bound`` messages in transit (sender-repairable)."""
    if bound < 0:
        raise ConfigurationError(f"bound must be >= 0, got {bound}")
    return LinearChannelPredicate(
        f"|ch|>={bound}", src, dest, lambda c: c >= bound, eliminate="sender"
    )


def empty_channel(src: Pid, dest: Pid) -> ChannelPredicate:
    """True when no message is in transit from ``src`` to ``dest``."""
    return ChannelPredicate("empty", src, dest, lambda msgs: len(msgs) == 0)


def at_most_in_transit(src: Pid, dest: Pid, bound: int) -> ChannelPredicate:
    """True when at most ``bound`` messages are in transit."""
    if bound < 0:
        raise ConfigurationError(f"bound must be >= 0, got {bound}")
    return ChannelPredicate(
        f"|ch|<={bound}", src, dest, lambda msgs: len(msgs) <= bound
    )


def exactly_in_transit(src: Pid, dest: Pid, count: int) -> ChannelPredicate:
    """True when exactly ``count`` messages are in transit."""
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    return ChannelPredicate(
        f"|ch|=={count}", src, dest, lambda msgs: len(msgs) == count
    )
