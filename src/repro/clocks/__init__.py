"""Logical clock substrate: vector clocks, interval counters, dependences."""

from repro.clocks.dependence import Dependence, DependenceList
from repro.clocks.lamport import IntervalCounter, LamportClock
from repro.clocks.vector import (
    CLOCK_BACKENDS,
    PackedVectorClock,
    VectorClock,
    clock_class,
    require_clock_backend,
)

__all__ = [
    "CLOCK_BACKENDS",
    "VectorClock",
    "PackedVectorClock",
    "clock_class",
    "require_clock_backend",
    "IntervalCounter",
    "LamportClock",
    "Dependence",
    "DependenceList",
]
