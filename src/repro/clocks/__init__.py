"""Logical clock substrate: vector clocks, interval counters, dependences."""

from repro.clocks.dependence import Dependence, DependenceList
from repro.clocks.lamport import IntervalCounter, LamportClock
from repro.clocks.vector import VectorClock

__all__ = [
    "VectorClock",
    "IntervalCounter",
    "LamportClock",
    "Dependence",
    "DependenceList",
]
