"""Logical (scalar) counters for the direct-dependence algorithm (§4.1).

The direct-dependence algorithm replaces vector clocks with a per-process
*logical counter* that is incremented on every send and receive and
attached (as a single integer) to every application message.  Unlike a
Lamport clock it performs **no** max-merge on receive: the counter only
identifies local intervals, exactly as the paper specifies ("Each
application process uses a logical counter to uniquely identify candidate
states").

:class:`IntervalCounter` implements that scheme.  :class:`LamportClock`
(classic max-merge semantics) is provided as well because the trace layer
and a few tests use it for sanity cross-checks.
"""

from __future__ import annotations

from repro.common.errors import ClockError

__all__ = ["IntervalCounter", "LamportClock"]


class IntervalCounter:
    """Per-process interval counter per §4.1 of the paper.

    Starts at 1 (the first interval) and increments after each
    communication event.  The current value labels the interval the
    process is presently executing in.
    """

    __slots__ = ("_value",)

    def __init__(self, start: int = 1) -> None:
        if start < 1:
            raise ClockError(f"interval counter starts at >= 1, got {start}")
        self._value = start

    @property
    def value(self) -> int:
        """The current interval index (1-based)."""
        return self._value

    def advance(self) -> int:
        """Increment after a send/receive; return the *new* interval index."""
        self._value += 1
        return self._value

    def __repr__(self) -> str:
        return f"IntervalCounter({self._value})"


class LamportClock:
    """A classic Lamport scalar clock (max-merge on receive).

    Not used by the paper's algorithms directly; retained for test
    cross-checks of the trace layer (a Lamport clock must respect any
    topological order of the happened-before relation).
    """

    __slots__ = ("_value",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ClockError(f"Lamport clock starts at >= 0, got {start}")
        self._value = start

    @property
    def value(self) -> int:
        """The current clock value."""
        return self._value

    def tick(self) -> int:
        """Advance for a local or send event; return the new value."""
        self._value += 1
        return self._value

    def receive(self, message_clock: int) -> int:
        """Merge with the timestamp of a received message; return new value."""
        if message_clock < 0:
            raise ClockError(f"message clock must be >= 0, got {message_clock}")
        self._value = max(self._value, message_clock) + 1
        return self._value

    def __repr__(self) -> str:
        return f"LamportClock({self._value})"
