"""Direct-dependence records for the §4 algorithm.

When application process ``P_i`` receives a message from ``P_j`` tagged
with interval counter ``k``, it records the pair ``(j, k)`` as a *direct
dependence*: every subsequent state of ``P_i`` causally depends on state
``(j, k)``.  The paper accumulates these pairs in a linked list that is
flushed into each local snapshot and then cleared.

:class:`Dependence` is the ``(j, k)`` pair; :class:`DependenceList` is the
accumulating container with the flush-on-snapshot behaviour of §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.common.errors import ClockError
from repro.common.types import Pid

__all__ = ["Dependence", "DependenceList"]


@dataclass(frozen=True, slots=True, order=True)
class Dependence:
    """A direct dependence ``(source, clock)``: the receiver's states
    depend on interval ``clock`` of process ``source``."""

    source: Pid
    clock: int

    def __post_init__(self) -> None:
        if self.source < 0:
            raise ClockError(f"dependence source must be >= 0, got {self.source}")
        if self.clock < 1:
            raise ClockError(f"dependence clock must be >= 1, got {self.clock}")

    def size_words(self) -> int:
        """A dependence is a pair of integers: two machine words."""
        return 2


class DependenceList:
    """The per-process dependence accumulator of §4.1.

    Dependences are recorded in receive order.  :meth:`flush` returns the
    accumulated list and clears the container, matching the paper's "the
    dependence list is reinitialized to be empty after generating the
    local snapshot".
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Dependence] = ()) -> None:
        self._items: list[Dependence] = list(items)

    def record(self, source: Pid, clock: int) -> Dependence:
        """Record a dependence on interval ``clock`` of ``source``."""
        dep = Dependence(source, clock)
        self._items.append(dep)
        return dep

    def flush(self) -> tuple[Dependence, ...]:
        """Return all accumulated dependences and clear the list."""
        items = tuple(self._items)
        self._items.clear()
        return items

    def peek(self) -> tuple[Dependence, ...]:
        """Return accumulated dependences without clearing."""
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Dependence]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:
        return f"DependenceList({self._items!r})"
