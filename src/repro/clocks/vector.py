"""Vector clocks with the paper's interval semantics (Fig. 2).

The application-process algorithm in Fig. 2 of the paper maintains a
vector ``vclock`` of width ``n`` with ``vclock[i]`` initialized to 1 and
incremented *after* every send and after every receive.  A clock value
therefore identifies a *communication interval*: a maximal block of local
states with no intervening send/receive.  The two properties the
correctness proofs rely on are:

1. ``alpha -> beta`` iff ``alpha.v < beta.v`` (componentwise ``<=`` with
   at least one strict inequality), and
2. for a vector ``v`` taken on process ``P_i`` and any ``j != i``, the
   state ``(j, v[j])`` happened before ``(i, v[i])``.

:class:`VectorClock` is an immutable value type.  Mutation-style
operations (``tick``, ``merged``) return new instances, which keeps
snapshots safe to share between simulated processes without copying
discipline at every call site.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.common.errors import ClockError
from repro.common.types import Pid

__all__ = ["VectorClock"]


class VectorClock:
    """An immutable vector clock of fixed width.

    Parameters
    ----------
    components:
        The clock components; copied defensively.

    Use :meth:`initial` to obtain the paper's starting clock for a
    process (all zeros except 1 in the owner's component).
    """

    __slots__ = ("_components",)

    def __init__(self, components: Sequence[int]) -> None:
        comps = tuple(int(c) for c in components)
        if not comps:
            raise ClockError("vector clock must have at least one component")
        if any(c < 0 for c in comps):
            raise ClockError(f"vector clock components must be >= 0, got {comps}")
        self._components = comps

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, owner: Pid, width: int) -> "VectorClock":
        """The paper's initial clock on process ``owner``: ``v[owner]=1``."""
        if not 0 <= owner < width:
            raise ClockError(f"owner {owner} out of range for width {width}")
        comps = [0] * width
        comps[owner] = 1
        return cls(comps)

    @classmethod
    def zero(cls, width: int) -> "VectorClock":
        """An all-zero clock of the given width (pre-initial sentinel)."""
        if width <= 0:
            raise ClockError(f"width must be positive, got {width}")
        return cls([0] * width)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of components (the paper's ``n``)."""
        return len(self._components)

    @property
    def components(self) -> tuple[int, ...]:
        """The components as an immutable tuple."""
        return self._components

    def __getitem__(self, pid: Pid) -> int:
        return self._components[pid]

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    # ------------------------------------------------------------------
    # Clock operations
    # ------------------------------------------------------------------
    def tick(self, owner: Pid) -> "VectorClock":
        """Return a copy with ``owner``'s component incremented by one.

        This is the ``vclock[i]++`` step performed after each send and
        each receive in Fig. 2.
        """
        self._check_pid(owner)
        comps = list(self._components)
        comps[owner] += 1
        return VectorClock(comps)

    def merged(self, other: "VectorClock") -> "VectorClock":
        """Componentwise maximum with ``other`` (the receive-merge step)."""
        self._check_width(other)
        return VectorClock(
            max(a, b) for a, b in zip(self._components, other._components)
        )

    # ------------------------------------------------------------------
    # Causal comparison
    # ------------------------------------------------------------------
    def __le__(self, other: "VectorClock") -> bool:
        self._check_width(other)
        return all(a <= b for a, b in zip(self._components, other._components))

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict causal precedence: ``self <= other`` and ``self != other``."""
        self._check_width(other)
        return self <= other and self._components != other._components

    def __ge__(self, other: "VectorClock") -> bool:
        self._check_width(other)
        return other <= self

    def __gt__(self, other: "VectorClock") -> bool:
        self._check_width(other)
        return other < self

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True iff neither clock causally precedes the other (``||``)."""
        return not self < other and not other < self and self != other

    def happened_before(self, other: "VectorClock") -> bool:
        """Property 1 from the paper: ``alpha -> beta`` iff ``alpha.v < beta.v``."""
        return self < other

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __repr__(self) -> str:
        return f"VectorClock({list(self._components)!r})"

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def size_words(self) -> int:
        """Message-size accounting: one machine word per component."""
        return len(self._components)

    # ------------------------------------------------------------------
    # Internal checks
    # ------------------------------------------------------------------
    def _check_width(self, other: "VectorClock") -> None:
        if not isinstance(other, VectorClock):
            raise ClockError(f"expected VectorClock, got {type(other).__name__}")
        if other.width != self.width:
            raise ClockError(
                f"vector clock width mismatch: {self.width} vs {other.width}"
            )

    def _check_pid(self, pid: Pid) -> None:
        if not 0 <= pid < self.width:
            raise ClockError(f"pid {pid} out of range for width {self.width}")
