"""Vector clocks with the paper's interval semantics (Fig. 2).

The application-process algorithm in Fig. 2 of the paper maintains a
vector ``vclock`` of width ``n`` with ``vclock[i]`` initialized to 1 and
incremented *after* every send and after every receive.  A clock value
therefore identifies a *communication interval*: a maximal block of local
states with no intervening send/receive.  The two properties the
correctness proofs rely on are:

1. ``alpha -> beta`` iff ``alpha.v < beta.v`` (componentwise ``<=`` with
   at least one strict inequality), and
2. for a vector ``v`` taken on process ``P_i`` and any ``j != i``, the
   state ``(j, v[j])`` happened before ``(i, v[i])``.

:class:`VectorClock` is an immutable value type.  Mutation-style
operations (``tick``, ``merged``) return new instances, which keeps
snapshots safe to share between simulated processes without copying
discipline at every call site.

:class:`PackedVectorClock` is the drop-in *packed* fast path: the same
value semantics over an ``array('q')`` buffer, plus explicitly unsafe
in-place mutators (``tick_in_place`` / ``merge_in_place``) for owners of
a private working copy — the trace sweep in
:mod:`repro.trace.intervals` mutates one owned buffer per process and
freezes an immutable snapshot per interval, instead of allocating two
validated clocks per communication event.  Which class a computation's
causal analysis uses is selected by the ``clock_backend`` knob
(``"list"`` | ``"packed"``) threaded through
:func:`repro.detect.runner.run_detector`; both backends produce
bit-identical clock values, cuts and paper units.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

from repro.common.errors import ClockError, ConfigurationError
from repro.common.types import Pid

__all__ = [
    "CLOCK_BACKENDS",
    "VectorClock",
    "PackedVectorClock",
    "clock_class",
    "require_clock_backend",
]

#: The selectable causal-analysis backends (see module docstring).
CLOCK_BACKENDS = ("list", "packed")

# Interned identity projections: tuple(range(n)) per width.  Predicates
# over all N processes project every snapshot with the same pid tuple,
# so the fast path below compares against one shared interned object
# instead of re-deriving the index list per snapshot.
_IOTA_CACHE: dict[int, tuple[int, ...]] = {}


def _iota(width: int) -> tuple[int, ...]:
    cached = _IOTA_CACHE.get(width)
    if cached is None:
        cached = _IOTA_CACHE[width] = tuple(range(width))
    return cached


class VectorClock:
    """An immutable vector clock of fixed width.

    Parameters
    ----------
    components:
        The clock components; copied defensively.

    Use :meth:`initial` to obtain the paper's starting clock for a
    process (all zeros except 1 in the owner's component).
    """

    __slots__ = ("_components",)

    def __init__(self, components: Sequence[int]) -> None:
        comps = tuple(int(c) for c in components)
        if not comps:
            raise ClockError("vector clock must have at least one component")
        if any(c < 0 for c in comps):
            raise ClockError(f"vector clock components must be >= 0, got {comps}")
        self._components = comps

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, owner: Pid, width: int) -> "VectorClock":
        """The paper's initial clock on process ``owner``: ``v[owner]=1``."""
        if not 0 <= owner < width:
            raise ClockError(f"owner {owner} out of range for width {width}")
        comps = [0] * width
        comps[owner] = 1
        return cls(comps)

    @classmethod
    def zero(cls, width: int) -> "VectorClock":
        """An all-zero clock of the given width (pre-initial sentinel)."""
        if width <= 0:
            raise ClockError(f"width must be positive, got {width}")
        return cls([0] * width)

    @classmethod
    def _trusted(cls, comps: tuple[int, ...]) -> "VectorClock":
        """Wrap already-validated components without re-checking.

        Internal fast path for :meth:`tick` / :meth:`merged`, whose
        outputs are nonnegative by construction from validated inputs.
        """
        clock = object.__new__(cls)
        clock._components = comps
        return clock

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of components (the paper's ``n``)."""
        return len(self._components)

    @property
    def components(self) -> tuple[int, ...]:
        """The components as an immutable tuple."""
        return self._components

    def __getitem__(self, pid: Pid) -> int:
        return self._components[pid]

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    # ------------------------------------------------------------------
    # Clock operations
    # ------------------------------------------------------------------
    def tick(self, owner: Pid) -> "VectorClock":
        """Return a copy with ``owner``'s component incremented by one.

        This is the ``vclock[i]++`` step performed after each send and
        each receive in Fig. 2.
        """
        self._check_pid(owner)
        comps = list(self._components)
        comps[owner] += 1
        return VectorClock._trusted(tuple(comps))

    def merged(self, other: "VectorClock") -> "VectorClock":
        """Componentwise maximum with ``other`` (the receive-merge step)."""
        self._check_width(other)
        return VectorClock._trusted(
            tuple(map(max, self._components, other._components))
        )

    # ------------------------------------------------------------------
    # Causal comparison
    # ------------------------------------------------------------------
    def __le__(self, other: "VectorClock") -> bool:
        self._check_width(other)
        return all(a <= b for a, b in zip(self._components, other._components))

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict causal precedence: ``self <= other`` and ``self != other``."""
        self._check_width(other)
        return self <= other and self._components != other._components

    def __ge__(self, other: "VectorClock") -> bool:
        self._check_width(other)
        return other <= self

    def __gt__(self, other: "VectorClock") -> bool:
        self._check_width(other)
        return other < self

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True iff neither clock causally precedes the other (``||``)."""
        return not self < other and not other < self and self != other

    def happened_before(self, other: "VectorClock") -> bool:
        """Property 1 from the paper: ``alpha -> beta`` iff ``alpha.v < beta.v``."""
        return self < other

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __repr__(self) -> str:
        return f"VectorClock({list(self._components)!r})"

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def project(self, pids: Sequence[Pid]) -> tuple[int, ...]:
        """The components restricted to ``pids``, in order, as a tuple.

        The common full-width identity projection (a predicate over all
        ``N`` processes) short-circuits to :attr:`components` instead of
        indexing element by element.
        """
        comps = self._components
        if tuple(pids) == _iota(len(comps)):
            return comps
        return tuple(comps[p] for p in pids)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def size_words(self) -> int:
        """Message-size accounting: one machine word per component."""
        return len(self._components)

    # ------------------------------------------------------------------
    # Internal checks
    # ------------------------------------------------------------------
    def _check_width(self, other: "VectorClock") -> None:
        if not isinstance(other, VectorClock):
            raise ClockError(f"expected VectorClock, got {type(other).__name__}")
        if other.width != self.width:
            raise ClockError(
                f"vector clock width mismatch: {self.width} vs {other.width}"
            )

    def _check_pid(self, pid: Pid) -> None:
        if not 0 <= pid < self.width:
            raise ClockError(f"pid {pid} out of range for width {self.width}")


class PackedVectorClock:
    """A vector clock packed into a contiguous ``array('q')`` buffer.

    Value-semantics drop-in for :class:`VectorClock`: every query and
    every copying operation (``tick``, ``merged``, comparisons,
    ``project``) produces bit-identical results.  What the packing buys:

    * one machine-word C buffer instead of a tuple of boxed ints;
    * ``tick_in_place`` / ``merge_in_place`` for owners of a private
      working copy — O(1) ticks and single-pass merges with **zero**
      allocation, where the immutable path allocates and re-validates a
      clock per communication event;
    * ``snapshot()`` freezes the working copy via a C-level buffer copy;
    * O(n) comparisons that never materialize intermediate tuples.

    The in-place mutators are deliberately *not* part of the
    :class:`VectorClock` interface: call them only on clocks you own
    exclusively (see :mod:`repro.trace.intervals` for the idiom).
    """

    __slots__ = ("_buf",)

    def __init__(self, components: Sequence[int] | Iterable[int]) -> None:
        buf = array("q", (int(c) for c in components))
        if not buf:
            raise ClockError("vector clock must have at least one component")
        for c in buf:
            if c < 0:
                raise ClockError(
                    f"vector clock components must be >= 0, got {tuple(buf)}"
                )
        self._buf = buf

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, owner: Pid, width: int) -> "PackedVectorClock":
        """The paper's initial clock on process ``owner``: ``v[owner]=1``."""
        if not 0 <= owner < width:
            raise ClockError(f"owner {owner} out of range for width {width}")
        buf = array("q", bytes(8 * width))
        buf[owner] = 1
        return cls._trusted(buf)

    @classmethod
    def zero(cls, width: int) -> "PackedVectorClock":
        """An all-zero clock of the given width (pre-initial sentinel)."""
        if width <= 0:
            raise ClockError(f"width must be positive, got {width}")
        return cls._trusted(array("q", bytes(8 * width)))

    @classmethod
    def _trusted(cls, buf: array) -> "PackedVectorClock":
        """Adopt an already-validated buffer without copying."""
        clock = object.__new__(cls)
        clock._buf = buf
        return clock

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of components (the paper's ``n``)."""
        return len(self._buf)

    @property
    def components(self) -> tuple[int, ...]:
        """The components as an immutable tuple."""
        return tuple(self._buf)

    def __getitem__(self, pid: Pid) -> int:
        return self._buf[pid]

    def __iter__(self) -> Iterator[int]:
        return iter(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    # ------------------------------------------------------------------
    # Clock operations (copying — VectorClock-compatible)
    # ------------------------------------------------------------------
    def tick(self, owner: Pid) -> "PackedVectorClock":
        """Return a copy with ``owner``'s component incremented by one."""
        self._check_pid(owner)
        buf = array("q", self._buf)
        buf[owner] += 1
        return PackedVectorClock._trusted(buf)

    def merged(self, other: "PackedVectorClock") -> "PackedVectorClock":
        """Componentwise maximum with ``other`` (the receive-merge step)."""
        self._check_width(other)
        buf = array("q", self._buf)
        for k, v in enumerate(other._buf):
            if v > buf[k]:
                buf[k] = v
        return PackedVectorClock._trusted(buf)

    # ------------------------------------------------------------------
    # Clock operations (in place — owned working copies only)
    # ------------------------------------------------------------------
    def tick_in_place(self, owner: Pid) -> None:
        """``vclock[owner]++`` on an exclusively-owned working copy."""
        self._buf[owner] += 1

    def merge_in_place(self, other: "PackedVectorClock") -> None:
        """Absorb ``other`` (componentwise max) into an owned copy."""
        buf = self._buf
        for k, v in enumerate(other._buf):
            if v > buf[k]:
                buf[k] = v

    def snapshot(self) -> "PackedVectorClock":
        """An immutable-by-convention frozen copy of the current value."""
        return PackedVectorClock._trusted(array("q", self._buf))

    # ------------------------------------------------------------------
    # Causal comparison
    # ------------------------------------------------------------------
    def __le__(self, other: "PackedVectorClock") -> bool:
        self._check_width(other)
        for a, b in zip(self._buf, other._buf):
            if a > b:
                return False
        return True

    def __lt__(self, other: "PackedVectorClock") -> bool:
        """Strict causal precedence: ``self <= other`` and ``self != other``."""
        self._check_width(other)
        strict = False
        for a, b in zip(self._buf, other._buf):
            if a > b:
                return False
            if a < b:
                strict = True
        return strict

    def __ge__(self, other: "PackedVectorClock") -> bool:
        self._check_width(other)
        return other <= self

    def __gt__(self, other: "PackedVectorClock") -> bool:
        self._check_width(other)
        return other < self

    def concurrent_with(self, other: "PackedVectorClock") -> bool:
        """True iff neither clock causally precedes the other (``||``)."""
        return not self < other and not other < self and self != other

    def happened_before(self, other: "PackedVectorClock") -> bool:
        """Property 1 from the paper: ``alpha -> beta`` iff ``alpha.v < beta.v``."""
        return self < other

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedVectorClock):
            return NotImplemented
        return self._buf == other._buf

    def __hash__(self) -> int:
        return hash(tuple(self._buf))

    def __repr__(self) -> str:
        return f"PackedVectorClock({list(self._buf)!r})"

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def project(self, pids: Sequence[Pid]) -> tuple[int, ...]:
        """The components restricted to ``pids``, in order, as a tuple.

        The full-width identity projection converts the whole buffer at
        C speed instead of indexing element by element.
        """
        buf = self._buf
        if tuple(pids) == _iota(len(buf)):
            return tuple(buf)
        return tuple(buf[p] for p in pids)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def size_words(self) -> int:
        """Message-size accounting: one machine word per component."""
        return len(self._buf)

    # ------------------------------------------------------------------
    # Internal checks
    # ------------------------------------------------------------------
    def _check_width(self, other: "PackedVectorClock") -> None:
        if not isinstance(other, PackedVectorClock):
            raise ClockError(
                f"expected PackedVectorClock, got {type(other).__name__}"
            )
        if other.width != self.width:
            raise ClockError(
                f"vector clock width mismatch: {self.width} vs {other.width}"
            )

    def _check_pid(self, pid: Pid) -> None:
        if not 0 <= pid < self.width:
            raise ClockError(f"pid {pid} out of range for width {self.width}")


def require_clock_backend(backend: str) -> str:
    """Validate and return a ``clock_backend`` knob value."""
    if backend not in CLOCK_BACKENDS:
        raise ConfigurationError(
            f"clock_backend must be one of {CLOCK_BACKENDS}, got {backend!r}"
        )
    return backend


def clock_class(backend: str) -> type[VectorClock] | type[PackedVectorClock]:
    """The clock implementation class for a backend name."""
    require_clock_backend(backend)
    return PackedVectorClock if backend == "packed" else VectorClock
