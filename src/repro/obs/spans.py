"""Causal spans: the unit of the tracing subsystem.

A :class:`Span` is one named interval (or instant) of simulated time on
one actor's lane, with an optional parent link to the span that caused
it.  The model is OpenTelemetry-flavored — ``trace_id`` / ``span_id`` /
``parent_id`` / ``attrs`` — but timestamps are *simulated* time, so a
trace is deterministic for a given ``(workload, seed, fault plan)``.

Span names used by :class:`~repro.obs.tracer.SpanTracer`:

========================  ====================================================
``run``                   the root span covering the whole simulation
``token_hop``             one token transfer ``src -> dest`` (sent→consumed)
``token_visit``           one monitor's elimination round while holding a token
``candidate``             one app→monitor snapshot message (enqueue→dequeue)
``poll`` / ``poll_response``  direct-dependence poll traffic
``poll_rtt``              a poll round-trip as seen by the polling monitor
``halt``                  one halt-handshake message
``msg:<kind>``            any other message kind
``fault:drop``            instant marker: a send was dropped by fault injection
``fault:lost``            instant marker: a message died with a crashed actor
``crash``                 a crash epoch (crash → restart, or → end of run)
========================  ====================================================

:class:`Trace` collects spans and offers the in-memory query API
(:meth:`~Trace.spans_by_actor`, :meth:`~Trace.critical_path`,
:meth:`~Trace.token_itinerary`) plus structural validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.common.errors import ObservabilityError

__all__ = ["Span", "TokenHop", "Trace"]


@dataclass
class Span:
    """One traced interval of simulated time.

    ``end`` is ``None`` while the span is open; instant markers have
    ``end == start``.  ``parent_id`` links to the causing span within the
    same trace (``None`` only for the root).
    """

    trace_id: str
    span_id: int
    name: str
    actor: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed simulated time (0.0 while open or for instants)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def is_open(self) -> bool:
        return self.end is None

    def close(self, at: float) -> "Span":
        """Close the span at simulated time ``at`` (idempotent)."""
        if self.end is None:
            if at < self.start:
                raise ObservabilityError(
                    f"span {self.name!r} would end at {at} before its "
                    f"start {self.start}"
                )
            self.end = at
        return self

    def as_dict(self) -> dict[str, Any]:
        """The JSONL wire form (see :mod:`repro.obs.export`)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "actor": self.actor,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Inverse of :meth:`as_dict`; raises on missing required keys."""
        try:
            return cls(
                trace_id=str(data["trace_id"]),
                span_id=int(data["span_id"]),
                parent_id=(
                    None if data.get("parent_id") is None
                    else int(data["parent_id"])
                ),
                name=str(data["name"]),
                actor=str(data["actor"]),
                start=float(data["start"]),
                end=(None if data.get("end") is None else float(data["end"])),
                attrs=dict(data.get("attrs") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed span record: {exc}") from exc


@dataclass(frozen=True, slots=True)
class TokenHop:
    """One row of a token itinerary (derived from a ``token_hop`` span).

    ``why`` explains the forward in the paper's terms: which slots were
    red when the holder gave the token up (or that it was the initial
    injection).
    """

    gid: int
    hop: int | None
    src: str
    dest: str
    sent_at: float
    arrived_at: float | None
    why: str

    def describe(self) -> str:
        arrived = "lost" if self.arrived_at is None else f"{self.arrived_at:g}"
        return (
            f"t={self.sent_at:g}->{arrived}  {self.src} -> {self.dest}  "
            f"({self.why})"
        )


class Trace:
    """A collection of spans from one run, with the query API.

    ``meta`` holds the run header written next to the spans in a JSONL
    file (detector name, verdict, metrics snapshot, fault summary...);
    it is empty for traces built purely in memory.
    """

    def __init__(
        self,
        trace_id: str,
        spans: Iterable[Span] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        if not trace_id:
            raise ObservabilityError("trace_id must be non-empty")
        self.trace_id = trace_id
        self.spans: list[Span] = list(spans or [])
        self.meta: dict[str, Any] = dict(meta or {})

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def add(self, span: Span) -> Span:
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def by_name(self, name: str) -> list[Span]:
        """All spans with the given name, in creation order."""
        return [s for s in self.spans if s.name == name]

    def spans_by_actor(self) -> dict[str, list[Span]]:
        """Spans grouped by actor lane, each list in creation order."""
        lanes: dict[str, list[Span]] = {}
        for span in self.spans:
            lanes.setdefault(span.actor, []).append(span)
        return lanes

    def span(self, span_id: int) -> Span:
        """Look up one span by id; raises if unknown."""
        for s in self.spans:
            if s.span_id == span_id:
                return s
        raise ObservabilityError(
            f"trace {self.trace_id} has no span {span_id}"
        )

    def critical_path(self) -> list[Span]:
        """The parent chain ending at the latest-finishing span.

        The tracer threads token visits and hops through parent links,
        so for the token protocols this is the causal chain of the
        token from injection to the final verdict — the run's critical
        path in the §3.4 sense (everything else overlaps it).
        Returned root-first.
        """
        if not self.spans:
            return []
        by_id = {s.span_id: s for s in self.spans}

        depths: dict[int, int] = {}

        def depth(s: Span) -> int:
            cached = depths.get(s.span_id)
            if cached is not None:
                return cached
            depths[s.span_id] = 0  # breaks accidental cycles
            parent = by_id.get(s.parent_id) if s.parent_id is not None else None
            d = 0 if parent is None else depth(parent) + 1
            depths[s.span_id] = d
            return d

        def sort_key(s: Span) -> tuple[int, float, int]:
            end = s.end if s.end is not None else s.start
            return (depth(s), end, s.span_id)

        leaf = max(self.spans, key=sort_key)
        chain: list[Span] = []
        seen: set[int] = set()
        node: Span | None = leaf
        while node is not None and node.span_id not in seen:
            seen.add(node.span_id)
            chain.append(node)
            node = by_id.get(node.parent_id) if node.parent_id is not None else None
        chain.reverse()
        return chain

    def token_itinerary(self) -> list[TokenHop]:
        """Which monitor held which token when, and why it moved.

        Derived from ``token_hop`` spans in send order; the multi-token
        algorithm's tokens are distinguished by ``gid``.
        """
        hops: list[TokenHop] = []
        for span in self.spans:
            if span.name != "token_hop":
                continue
            a = span.attrs
            reds = a.get("reds")
            if a.get("injected"):
                why = "initial injection (all slots red)"
            elif reds:
                why = f"slots {list(reds)} still red"
            else:
                why = "forwarded"
            hops.append(
                TokenHop(
                    gid=int(a.get("gid", 0)),
                    hop=a.get("hop"),
                    src=span.actor,
                    dest=str(a.get("dest", "?")),
                    sent_at=span.start,
                    arrived_at=(
                        None if a.get("terminal") in ("dropped", "lost")
                        else span.end
                    ),
                    why=why,
                )
            )
        hops.sort(key=lambda h: (h.sent_at, h.gid))
        return hops

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ObservabilityError`.

        Every span must carry this trace's id, a unique span id and a
        simulated start time; parent links must resolve within the
        trace and be acyclic.
        """
        by_id: dict[int, Span] = {}
        for span in self.spans:
            if span.trace_id != self.trace_id:
                raise ObservabilityError(
                    f"span {span.span_id} has trace_id {span.trace_id!r}, "
                    f"expected {self.trace_id!r}"
                )
            if span.span_id in by_id:
                raise ObservabilityError(f"duplicate span_id {span.span_id}")
            if not isinstance(span.start, (int, float)):
                raise ObservabilityError(
                    f"span {span.span_id} has no simulated start time"
                )
            by_id[span.span_id] = span
        for span in self.spans:
            seen = {span.span_id}
            node = span
            while node.parent_id is not None:
                if node.parent_id not in by_id:
                    raise ObservabilityError(
                        f"span {node.span_id} references unknown parent "
                        f"{node.parent_id}"
                    )
                node = by_id[node.parent_id]
                if node.span_id in seen:
                    raise ObservabilityError(
                        f"cyclic parent links through span {node.span_id}"
                    )
                seen.add(node.span_id)

    # ------------------------------------------------------------------
    def bounds(self) -> tuple[float, float]:
        """(earliest start, latest end/start) over all spans."""
        if not self.spans:
            return (0.0, 0.0)
        start = min(s.start for s in self.spans)
        end = max(s.end if s.end is not None else s.start for s in self.spans)
        return (start, end)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Trace {self.trace_id} spans={len(self.spans)}>"
