"""SpanTracer: a kernel observer that synthesizes causal spans.

Attach an instance via the kernel/detector ``observers`` hook — actors
stay unmodified — and call :meth:`SpanTracer.finish` after the run to
obtain the :class:`~repro.obs.spans.Trace`:

    tracer = SpanTracer()
    report = run_detector("token_vc", comp, wcp, observers=[tracer])
    trace = tracer.finish(report.sim.time)

Span synthesis rules (all timestamps are simulated time):

* every message becomes a span from SENT to its terminal phase
  (CONSUMED / DROPPED / LOST), named by kind (``token_hop``,
  ``candidate``, ``poll``, ``halt``, ...) with ``delivered_at``
  recorded as an attribute, so queue residence (enqueue→dequeue) is
  visible inside the message span;
* a ``token_visit`` span opens on the monitor that consumes a token and
  closes when that monitor forwards the token or broadcasts halt — the
  paper's elimination round.  Candidates consumed during the visit are
  counted on the span;
* token spans carry the candidate cut ``G``, the red slot set and hop /
  gid numbers read (not copied) from the token payload at send time, so
  the itinerary can say *why* each hop happened;
* ``poll_rtt`` spans pair a direct-dependence poll with its response at
  the polling monitor;
* fault injection overlays instant ``fault:drop`` / ``fault:lost``
  markers on the same timeline, and crash/restart lifecycle events
  become ``crash`` epoch spans on the crashed actor's lane;
* network partitions become ``partition`` epoch spans on a synthetic
  ``net`` lane (start → heal, or run end if the partition never
  heals), and failure-detector traffic (``heartbeat`` / ``elect`` /
  ``elect_ok`` / ``regen_request``) gets first-class span names so
  takeover elections are visible in the report overlay.

Parent links thread visits and hops alternately, which makes
:meth:`Trace.critical_path` the token's causal chain through the run.
"""

from __future__ import annotations

import itertools
import uuid
from collections import deque
from typing import Any

from repro.detect.base import HALT_KIND, POLL_KIND, POLL_RESPONSE_KIND, RED, TOKEN_KIND
from repro.obs.invariants import KIND_SPAN_NAMES, message_facts
from repro.obs.spans import Span, Trace
from repro.simulation.observers import (
    ActorEvent,
    ActorPhase,
    MessageEvent,
    MessagePhase,
    PartitionNotice,
    PartitionPhase,
)
from repro.simulation.replay import CANDIDATE_KIND

__all__ = ["SpanTracer"]

#: Message kinds that get first-class span names; anything else becomes
#: ``msg:<kind>``.  Shared with the invariant monitors and the flight
#: recorder so every span producer agrees on naming.
_KIND_NAMES = KIND_SPAN_NAMES


def _token_attrs(payload: object) -> dict[str, Any]:
    """Read hop/gid/G/colors off a token payload, whatever its wrapper.

    Handles a bare ``VCToken``, a ``GroupToken`` (multi-token variant)
    and a transport-layer ``TokenFrame`` around either.  Unknown
    payloads simply yield no extra attributes.
    """
    attrs: dict[str, Any] = {}
    body = payload
    if hasattr(body, "hop") and hasattr(body, "body"):  # TokenFrame
        attrs["hop"] = body.hop
        attrs["gid"] = getattr(body, "gid", 0)
        attrs["epoch"] = getattr(body, "epoch", 0)
        body = body.body
    if hasattr(body, "group") and hasattr(body, "token"):  # GroupToken
        attrs.setdefault("gid", body.group)
        body = body.token
    color = getattr(body, "color", None)
    if isinstance(color, list):
        attrs["reds"] = [i for i, c in enumerate(color) if c == RED]
        attrs["greens"] = len(color) - len(attrs["reds"])
    cut = getattr(body, "G", None)
    if isinstance(cut, list):
        attrs["G"] = list(cut)
    return attrs


class SpanTracer:
    """Observer building a :class:`Trace` from kernel message events."""

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace = Trace(trace_id or uuid.uuid4().hex[:16])
        self._ids = itertools.count(1)
        self._root = self._new_span("run", actor="kernel", start=0.0)
        # Open message spans by kernel message seq.
        self._messages: dict[int, Span] = {}
        # Open token_visit span per actor, and the last visit either way
        # (retransmissions parent onto a closed visit).
        self._open_visit: dict[str, Span] = {}
        self._last_visit: dict[str, Span] = {}
        # Outstanding poll round-trips per (poller, pollee).
        self._polls: dict[tuple[str, str], deque[Span]] = {}
        # Open crash-epoch span per actor.
        self._crashes: dict[str, Span] = {}
        # Open partition-epoch spans keyed by their component sets.
        self._partitions: dict[tuple[tuple[str, ...], ...], Span] = {}
        self._finished = False

    # ------------------------------------------------------------------
    def _new_span(
        self,
        name: str,
        actor: str,
        start: float,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        span = Span(
            trace_id=self.trace.trace_id,
            span_id=next(self._ids),
            name=name,
            actor=actor,
            start=start,
            parent_id=None if parent is None else parent.span_id,
            attrs=attrs,
        )
        return self.trace.add(span)

    def _instant(
        self, name: str, actor: str, at: float, parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        span = self._new_span(name, actor, at, parent=parent, **attrs)
        span.end = at
        return span

    # ------------------------------------------------------------------
    # Message events
    # ------------------------------------------------------------------
    def __call__(self, event: MessageEvent) -> None:
        handler = {
            MessagePhase.SENT: self._on_sent,
            MessagePhase.DELIVERED: self._on_delivered,
            MessagePhase.CONSUMED: self._on_consumed,
            MessagePhase.DROPPED: self._on_dropped,
            MessagePhase.LOST: self._on_lost,
        }[event.phase]
        handler(event)

    def _open_message(self, event: MessageEvent, **extra: Any) -> Span:
        msg = event.message
        name = _KIND_NAMES.get(msg.kind, f"msg:{msg.kind}")
        attrs: dict[str, Any] = {
            "src": msg.src,
            "dest": msg.dest,
            "kind": msg.kind,
            "seq": msg.seq,
            "size_bits": msg.size_bits,
            **extra,
        }
        parent: Span | None = self._root
        # Stamp the invariant-relevant facts (frame epochs, candidate
        # seq/vc, election epochs, gossip updates) onto the span so
        # `repro verify-trace` can replay the monitors offline.
        attrs.update(message_facts(msg.kind, msg.payload))
        if msg.kind == TOKEN_KIND:
            attrs.update(_token_attrs(msg.payload))
            if not msg.src.startswith("mon-"):
                attrs["injected"] = True
        if msg.kind in (TOKEN_KIND, HALT_KIND, POLL_KIND):
            # Thread protocol messages onto the elimination round that
            # emitted them; critical_path() then follows the token.
            visit = self._open_visit.get(msg.src) or self._last_visit.get(msg.src)
            if visit is not None:
                parent = visit
        span = self._new_span(
            name, actor=msg.src, start=event.time, parent=parent, **attrs
        )
        self._messages[msg.seq] = span
        return span

    def _on_sent(self, event: MessageEvent) -> None:
        msg = event.message
        if msg.kind == TOKEN_KIND:
            # Forwarding the token ends the sender's elimination round.
            self._close_visit(msg.src, event.time, outcome="forwarded")
        elif msg.kind == HALT_KIND:
            self._close_visit(msg.src, event.time, outcome="verdict")
        self._open_message(event)
        if msg.kind == POLL_KIND and msg.src.startswith("mon-"):
            parent = (
                self._open_visit.get(msg.src)
                or self._last_visit.get(msg.src)
                or self._root
            )
            self._polls.setdefault((msg.src, msg.dest), deque()).append(
                self._new_span(
                    "poll_rtt", actor=msg.src, start=event.time,
                    parent=parent, dest=msg.dest,
                )
            )

    def _on_delivered(self, event: MessageEvent) -> None:
        msg = event.message
        span = self._messages.get(msg.seq)
        if span is None:
            # A fault-injected duplicate copy: its SENT was reported on
            # the first copy only, so open a span at the original send
            # time and mark it.
            span = self._open_message(event, duplicate=True)
            span.start = msg.sent_at
        span.attrs["delivered_at"] = event.time

    def _on_consumed(self, event: MessageEvent) -> None:
        msg = event.message
        span = self._messages.pop(msg.seq, None)
        if span is not None:
            span.attrs["terminal"] = "consumed"
            span.close(event.time)
        if msg.kind == TOKEN_KIND:
            self._begin_visit(msg.dest, event.time, hop=span)
        elif msg.kind == CANDIDATE_KIND:
            visit = self._open_visit.get(msg.dest)
            if visit is not None:
                visit.attrs["candidates"] = visit.attrs.get("candidates", 0) + 1
        elif msg.kind == POLL_RESPONSE_KIND:
            queue = self._polls.get((msg.dest, msg.src))
            if queue:
                queue.popleft().close(event.time)

    def _on_dropped(self, event: MessageEvent) -> None:
        msg = event.message
        span = self._messages.pop(msg.seq, None)
        if span is not None:  # pragma: no cover - drops precede SENT today
            span.attrs["terminal"] = "dropped"
            span.close(event.time)
        self._instant(
            "fault:drop", actor=msg.src, at=event.time, parent=self._root,
            kind=msg.kind, dest=msg.dest, seq=msg.seq,
        )

    def _on_lost(self, event: MessageEvent) -> None:
        msg = event.message
        span = self._messages.pop(msg.seq, None)
        if span is not None:
            span.attrs["terminal"] = "lost"
            span.close(event.time)
        self._instant(
            "fault:lost", actor=msg.dest, at=event.time, parent=self._root,
            kind=msg.kind, src=msg.src, seq=msg.seq,
        )

    # ------------------------------------------------------------------
    # Token visits
    # ------------------------------------------------------------------
    def _begin_visit(self, actor: str, at: float, hop: Span | None) -> None:
        open_visit = self._open_visit.get(actor)
        if open_visit is not None:
            # A retransmitted token arrived mid-visit (hardened mode);
            # count it rather than opening a nested round.
            open_visit.attrs["dup_tokens"] = (
                open_visit.attrs.get("dup_tokens", 0) + 1
            )
            return
        attrs: dict[str, Any] = {}
        if hop is not None:
            for key in ("gid", "hop"):
                if key in hop.attrs:
                    attrs[key] = hop.attrs[key]
        span = self._new_span(
            "token_visit", actor=actor, start=at,
            parent=hop or self._root, **attrs,
        )
        self._open_visit[actor] = span
        self._last_visit[actor] = span

    def _close_visit(self, actor: str, at: float, outcome: str) -> None:
        span = self._open_visit.pop(actor, None)
        if span is not None:
            span.attrs.setdefault("outcome", outcome)
            span.close(at)

    # ------------------------------------------------------------------
    # Actor lifecycle (fault overlay)
    # ------------------------------------------------------------------
    def on_actor_event(self, event: ActorEvent) -> None:
        if event.phase is ActorPhase.CRASHED:
            self._close_visit(event.actor, event.time, outcome="crashed")
            if event.actor not in self._crashes:
                self._crashes[event.actor] = self._new_span(
                    "crash", actor=event.actor, start=event.time,
                    parent=self._root,
                )
        elif event.phase is ActorPhase.RESTARTED:
            span = self._crashes.pop(event.actor, None)
            if span is not None:
                span.attrs["restarted"] = True
                span.close(event.time)
        elif event.phase is ActorPhase.JOINED:
            span = self._new_span(
                "joined", actor=event.actor, start=event.time,
                parent=self._root,
            )
            span.close(event.time)
        elif event.phase is ActorPhase.LEFT:
            span = self._new_span(
                "left", actor=event.actor, start=event.time,
                parent=self._root,
            )
            span.close(event.time)

    # ------------------------------------------------------------------
    # Network partitions (fault overlay)
    # ------------------------------------------------------------------
    def on_partition_event(self, event: PartitionNotice) -> None:
        key = tuple(sorted(tuple(sorted(g)) for g in event.groups))
        if event.phase is PartitionPhase.STARTED:
            if key not in self._partitions:
                self._partitions[key] = self._new_span(
                    "partition", actor="net", start=event.time,
                    parent=self._root,
                    groups=[" + ".join(g) for g in key],
                )
        elif event.phase is PartitionPhase.HEALED:
            span = self._partitions.pop(key, None)
            if span is not None:
                span.attrs["healed"] = True
                span.close(event.time)

    # ------------------------------------------------------------------
    def finish(self, at: float | None = None, **meta: Any) -> Trace:
        """Close all open spans at ``at`` and return the trace.

        ``at`` defaults to the latest timestamp seen; extra keyword
        arguments land in ``trace.meta``.  Idempotent — later calls only
        merge additional meta.
        """
        if not self._finished:
            end = at
            if end is None:
                end = max(
                    (s.end if s.end is not None else s.start
                     for s in self.trace.spans),
                    default=0.0,
                )
            for actor in list(self._open_visit):
                self._close_visit(actor, max(end, self._open_visit[actor].start),
                                  outcome="unfinished")
            for span in self._messages.values():
                span.attrs.setdefault("terminal", "in_flight")
                span.close(max(end, span.start))
            self._messages.clear()
            for queue in self._polls.values():
                for span in queue:
                    span.attrs["unanswered"] = True
                    span.close(max(end, span.start))
            self._polls.clear()
            for span in self._crashes.values():
                span.attrs.setdefault("restarted", False)
                span.close(max(end, span.start))
            self._crashes.clear()
            for span in self._partitions.values():
                span.attrs.setdefault("healed", False)
                span.close(max(end, span.start))
            self._partitions.clear()
            self._root.close(max(end, self._root.start))
            self._finished = True
        self.trace.meta.update(meta)
        return self.trace
