"""Observability: causal span tracing, run reports, profiling, telemetry.

The paper's contribution is an accounting argument — messages, bits,
work and space per process (§3.4, §4.4).  This package makes those
quantities *observable* on live runs:

* :mod:`repro.obs.spans` — the span model (:class:`Span`,
  :class:`Trace`) with parent links, simulated timestamps and the query
  API (``spans_by_actor`` / ``critical_path`` / ``token_itinerary``);
* :mod:`repro.obs.tracer` — :class:`SpanTracer`, a kernel observer that
  synthesizes protocol-phase spans (token hops, elimination rounds,
  candidate queueing, poll round-trips, halts) and overlays injected
  faults and crash epochs on the same timeline;
* :mod:`repro.obs.export` — the OTel-flavored JSONL trace format;
* :mod:`repro.obs.invariants` — runtime verification: streaming
  protocol-invariant monitors (:class:`InvariantMonitor`) over the same
  observer hook, the always-on crash :class:`FlightRecorder`, and
  offline trace replay (``repro verify-trace``);
* :mod:`repro.obs.report` — ASCII run reports (``repro report``);
* :mod:`repro.obs.profiling` — wall-clock counters for kernel hot paths;
* :mod:`repro.obs.benchjson` — the structured benchmark-result schema.

Quickstart::

    from repro.obs import SpanTracer, dump_jsonl, render_report

    tracer = SpanTracer()
    report = run_detector("token_vc", comp, wcp, observers=[tracer])
    trace = tracer.finish(report.sim.time, detector="token_vc")
    dump_jsonl(trace, "run.jsonl")
    print(render_report(trace))
"""

from repro.obs.benchjson import (
    BENCH_SCHEMA,
    load_benchmark_json,
    structured_result,
    write_benchmark_json,
)
from repro.obs.export import (
    dump_jsonl,
    dumps_jsonl,
    iter_spans,
    load_jsonl,
    loads_jsonl,
)
from repro.obs.invariants import (
    INVARIANT_FAMILIES,
    FlightRecorder,
    InvariantMonitor,
    InvariantViolation,
    message_facts,
    replay_trace,
)
from repro.obs.profiling import HotPathProfiler, profiled
from repro.obs.report import render_report, render_timeline
from repro.obs.spans import Span, TokenHop, Trace
from repro.obs.tracer import SpanTracer

__all__ = [
    "Span",
    "TokenHop",
    "Trace",
    "SpanTracer",
    "dump_jsonl",
    "dumps_jsonl",
    "iter_spans",
    "load_jsonl",
    "loads_jsonl",
    "INVARIANT_FAMILIES",
    "FlightRecorder",
    "InvariantMonitor",
    "InvariantViolation",
    "message_facts",
    "replay_trace",
    "render_report",
    "render_timeline",
    "HotPathProfiler",
    "profiled",
    "BENCH_SCHEMA",
    "structured_result",
    "write_benchmark_json",
    "load_benchmark_json",
]
