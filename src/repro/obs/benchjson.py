"""Machine-readable benchmark results.

Every ``benchmarks/bench_e*`` target emits, next to its ``.txt`` table,
a JSON document with a stable schema so future PRs can regress the
paper's cost quantities (messages, bits, work, space) and wall-clock
time automatically::

    {
      "schema": "repro-bench/1",
      "experiment": "E1 ...",
      "params": {"ns": [...], "ms": [...], "seed": 0},
      "headers": [...], "rows": [...],
      "summary": {"messages": ..., "bits": ..., "work": ..., "space": ...},
      "fits": {"total_work": {"n_exponent": ..., "r_squared": ...}},
      "notes": [...],
      "wall_time_s": 1.23
    }

``summary`` totals are extracted from well-known column names when the
experiment reports them; ``fits`` include both the human string and any
numeric attributes the fit object exposes.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

__all__ = [
    "BENCH_SCHEMA",
    "structured_result",
    "write_benchmark_json",
    "load_benchmark_json",
]

BENCH_SCHEMA = "repro-bench/1"

#: summary key -> column names that feed it (first match wins).
_SUMMARY_COLUMNS: dict[str, tuple[str, ...]] = {
    "messages": ("mon_msgs", "messages", "msgs", "total_msgs"),
    "bits": ("mon_bits", "bits", "total_bits"),
    "work": ("total_work", "work"),
    "space": ("max_space_bits", "max_space", "space_bits"),
}

_FIT_ATTRS = ("exponent", "intercept", "n_exponent", "m_exponent", "r_squared")


def _fit_dict(fit: Any) -> dict[str, Any]:
    data: dict[str, Any] = {"text": str(fit)}
    for attr in _FIT_ATTRS:
        value = getattr(fit, attr, None)
        if isinstance(value, (int, float)):
            data[attr] = value
    return data


def _summary(headers: list[str], rows: list[list[Any]]) -> dict[str, Any]:
    summary: dict[str, Any] = {}
    for key, candidates in _SUMMARY_COLUMNS.items():
        for name in candidates:
            if name in headers:
                idx = headers.index(name)
                values = [
                    r[idx] for r in rows if isinstance(r[idx], (int, float))
                ]
                if values:
                    agg = max(values) if key == "space" else sum(values)
                    summary[key] = agg
                break
    return summary


def structured_result(
    result: Any,
    params: Mapping[str, Any] | None = None,
    wall_time_s: float | None = None,
) -> dict[str, Any]:
    """Build the schema dict from an ``ExperimentResult``-shaped object."""
    headers = list(result.headers)
    rows = [list(r) for r in result.rows]
    return {
        "schema": BENCH_SCHEMA,
        "experiment": result.experiment,
        "params": dict(params or {}),
        "headers": headers,
        "rows": rows,
        "summary": _summary(headers, rows),
        "fits": {name: _fit_dict(fit) for name, fit in result.fits.items()},
        "notes": list(result.notes),
        "wall_time_s": wall_time_s,
    }


def load_benchmark_json(path: str | pathlib.Path) -> dict[str, Any]:
    """Load and validate a ``repro-bench/1`` document.

    Raises :class:`~repro.common.errors.ObservabilityError` when the
    file is missing, not JSON, or carries a different schema — the
    baseline comparator relies on this to reject stale or foreign files
    instead of producing a nonsense diff.
    """
    from repro.common.errors import ObservabilityError

    path = pathlib.Path(path)
    if not path.exists():
        raise ObservabilityError(f"no such benchmark file: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path} is not JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
        found = payload.get("schema") if isinstance(payload, dict) else None
        raise ObservabilityError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, found {found!r}"
        )
    return payload


def write_benchmark_json(
    result: Any,
    path: str | pathlib.Path,
    params: Mapping[str, Any] | None = None,
    wall_time_s: float | None = None,
) -> pathlib.Path:
    """Write the structured result to ``path``; returns the path."""
    path = pathlib.Path(path)
    payload = structured_result(result, params, wall_time_s)
    path.write_text(
        json.dumps(payload, indent=2, default=str) + "\n", encoding="utf-8"
    )
    return path
