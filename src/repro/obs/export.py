"""JSONL trace export/import.

The wire format is line-delimited JSON.  The first line is a run header
(``"type": "run"``) carrying the trace id plus whatever run metadata the
producer attached (detector, verdict, metrics snapshot, fault summary);
every following line is one span (``"type": "span"``) in OTel-flavored
form::

    {"type": "run", "trace_id": "…", "detector": "token_vc", ...}
    {"type": "span", "trace_id": "…", "span_id": 1, "parent_id": null,
     "name": "run", "actor": "kernel", "start": 0.0, "end": 42.0,
     "attrs": {}}

Readers tolerate a missing header and ignore unknown record types, so
the format can grow (e.g. profiler sections) without breaking old
consumers.  A *torn final line* — the signature of a writer that died
mid-record (crash dumps, killed sweeps) — is tolerated too: the partial
record is discarded and the parsed trace carries ``truncated: True`` in
its meta so tooling can surface the data loss.  Garbage anywhere before
the final line still raises, since that indicates corruption rather
than truncation.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from repro.common.errors import ObservabilityError
from repro.obs.spans import Span, Trace

__all__ = [
    "dump_jsonl",
    "dumps_jsonl",
    "iter_spans",
    "load_jsonl",
    "loads_jsonl",
]


def _json_default(value: Any) -> Any:
    if isinstance(value, (set, frozenset, tuple)):
        return list(value)
    return str(value)


def dumps_jsonl(trace: Trace) -> str:
    """Serialize a trace (header line + one line per span)."""
    header = {"type": "run", "trace_id": trace.trace_id, **trace.meta}
    lines = [json.dumps(header, default=_json_default)]
    for span in trace.spans:
        lines.append(
            json.dumps(
                {"type": "span", **span.as_dict()}, default=_json_default
            )
        )
    return "\n".join(lines) + "\n"


def dump_jsonl(trace: Trace, path: str | pathlib.Path) -> pathlib.Path:
    """Write a trace to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.write_text(dumps_jsonl(trace), encoding="utf-8")
    return path


def loads_jsonl(text: str, validate: bool = True) -> Trace:
    """Parse a JSONL trace; optionally validate structural invariants.

    A torn final line (crash-truncated file) sets ``truncated: True``
    in the trace meta instead of raising; see the module docstring.
    """
    meta: dict[str, Any] = {}
    trace_id: str | None = None
    spans: list[Span] = []
    lines = text.splitlines()
    last_content = max(
        (i for i, line in enumerate(lines, start=1) if line.strip()),
        default=0,
    )
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == last_content:
                # The writer died mid-record; keep everything before it.
                meta["truncated"] = True
                break
            raise ObservabilityError(
                f"line {lineno}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ObservabilityError(f"line {lineno}: expected an object")
        rtype = record.get("type", "span")
        if rtype == "run":
            trace_id = record.get("trace_id") or trace_id
            meta.update(
                {k: v for k, v in record.items()
                 if k not in ("type", "trace_id")}
            )
        elif rtype == "span":
            spans.append(Span.from_dict(record))
        # Unknown record types are skipped for forward compatibility.
    if trace_id is None:
        if not spans:
            raise ObservabilityError("empty trace: no header and no spans")
        trace_id = spans[0].trace_id
    trace = Trace(trace_id, spans, meta)
    if validate:
        trace.validate()
    return trace


def load_jsonl(path: str | pathlib.Path, validate: bool = True) -> Trace:
    """Read a JSONL trace file written by :func:`dump_jsonl`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ObservabilityError(f"no such trace file: {path}")
    return loads_jsonl(path.read_text(encoding="utf-8"), validate=validate)


def iter_spans(path: str | pathlib.Path) -> Iterable[Span]:
    """Stream spans from a JSONL file without building a Trace."""
    path = pathlib.Path(path)
    with path.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if isinstance(record, dict) and record.get("type", "span") == "span":
                yield Span.from_dict(record)
