"""Run reports: render a span trace as human-readable ASCII.

:func:`render_report` produces, from one :class:`~repro.obs.spans.Trace`:

* a **per-actor timeline** — one lane per actor over simulated time,
  with token arrivals (``T``), elimination rounds (``=``), candidate
  consumptions (``c``), poll round-trips (``~``), halts (``H``), crash
  epochs (``X``/``x``/``R``), injected faults (``!``), takeover
  election proposals (``E``), SWIM probe traffic (``p``/``a``/``q``),
  live joins and departures (``J``/``L``) and suspect/confirm
  membership verdicts (``s``/``C``) overlaid;
  network partition epochs paint ``#`` on a synthetic ``net`` lane;
* the **token itinerary** — who held which token when and why it moved;
* a **work/space breakdown** in the paper's units (messages, bits, work
  units, buffered-bit high-water marks) from the run header's metrics
  snapshot;
* a **gossip / liveness** section — probe counts, join-handshake
  message counts, joined/left lifecycle events, first suspect /
  confirm announcements per member and the liveness-bytes total (with a
  by-kind breakdown when the metrics snapshot carries one);
* a **fault overlay** summary and the run's **critical path**.

The renderer needs nothing but the trace, so ``repro report run.jsonl``
works on any trace file regardless of which detector produced it.
"""

from __future__ import annotations

from repro.obs.spans import Span, Trace

__all__ = ["render_report", "render_timeline"]

#: Paint priority, low to high: later entries overwrite earlier marks.
_LEGEND = [
    ("=", "token visit (elimination round)"),
    ("~", "poll round-trip"),
    ("p", "SWIM probe (a = ack, q = ping-req)"),
    ("c", "candidate consumed"),
    ("H", "halt delivered"),
    ("T", "token arrival"),
    ("!", "injected fault (drop / loss)"),
    ("E", "takeover election proposal"),
    ("x", "crashed (X = crash, R = restart)"),
    ("J", "joined live (L = left for good)"),
    ("s", "suspected (C = confirmed failed)"),
    ("#", "network partition epoch (net lane)"),
]

#: Gossip probe span names and their timeline mark characters.
_PROBE_MARKS = {"ping": "p", "ping_ack": "a", "ping_req": "q"}


def _lane_order(actor: str) -> tuple[int, int | str, str]:
    """Monitors first (numeric order), then feeders, then the rest."""
    for rank, prefix in ((0, "mon-"), (1, "app-")):
        if actor.startswith(prefix):
            suffix = actor[len(prefix):]
            key: int | str = int(suffix) if suffix.isdigit() else suffix
            return (rank, key, actor)
    return (2, actor, actor)


def _membership_events(trace: Trace, status: str) -> list[tuple[float, int]]:
    """First emission time of each ``status`` verdict, per (slot, inc).

    Gossip piggybacks the same update on many probes; only the earliest
    carrier matters for the timeline and the report section.
    """
    first: dict[tuple[object, object], float] = {}
    for span in trace.spans:
        for update in span.attrs.get("updates") or ():
            slot, got, inc = update[0], update[1], update[2]
            if got != status:
                continue
            key = (slot, inc)
            if key not in first or span.start < first[key]:
                first[key] = span.start
    return sorted((t, int(slot)) for (slot, _inc), t in first.items())


def render_timeline(trace: Trace, width: int = 72) -> str:
    """The per-actor ASCII timeline (one lane per actor)."""
    t0, t1 = trace.bounds()
    extent = t1 - t0
    scale = extent / (width - 1) if extent > 0 else 1.0

    def col(t: float) -> int:
        return max(0, min(width - 1, round((t - t0) / scale)))

    actors = sorted(
        {s.actor for s in trace.spans if s.actor != "kernel"},
        key=_lane_order,
    )
    lanes = {a: ["."] * width for a in actors}

    def paint(actor: str, c0: int, c1: int, char: str) -> None:
        lane = lanes.get(actor)
        if lane is None:
            return
        for i in range(c0, max(c0, c1) + 1):
            lane[i] = char

    def mark(actor: str, t: float, char: str) -> None:
        lane = lanes.get(actor)
        if lane is not None:
            lane[col(t)] = char

    def end_of(span: Span) -> float:
        return span.end if span.end is not None else t1

    # Paint in priority order so critical marks stay visible.
    for span in trace.spans:
        if span.name == "token_visit":
            paint(span.actor, col(span.start), col(end_of(span)), "=")
        elif span.name == "poll_rtt":
            paint(span.actor, col(span.start), col(end_of(span)), "~")
        elif span.name == "partition":
            paint(span.actor, col(span.start), col(end_of(span)), "#")
    # Probe traffic is frequent background noise, so it paints early and
    # loses to every protocol-level mark.
    for span in trace.spans:
        probe = _PROBE_MARKS.get(span.name)
        if probe is not None:
            mark(span.actor, span.start, probe)
    for span in trace.spans:
        if span.name == "candidate" and span.attrs.get("terminal") == "consumed":
            mark(span.actor, span.start, "c")  # emission, on the app lane
            mark(str(span.attrs.get("dest", span.actor)), end_of(span), "c")
        elif span.name == "halt" and span.attrs.get("terminal") == "consumed":
            mark(str(span.attrs.get("dest", span.actor)), end_of(span), "H")
    for span in trace.spans:
        if span.name == "token_hop" and span.attrs.get("terminal") == "consumed":
            mark(str(span.attrs.get("dest", span.actor)), end_of(span), "T")
    for span in trace.spans:
        if span.name in ("fault:drop", "fault:lost"):
            mark(span.actor, span.start, "!")
    # Election proposals mark the initiating monitor's lane; they stay
    # visible over drop marks because a takeover explains the gap.
    for span in trace.spans:
        if span.name == "elect":
            mark(span.actor, span.start, "E")
    # Crash epochs: losses at the crash instant are implied by the X
    # itself, so the boundary marks stay visible.
    for span in trace.spans:
        if span.name == "crash":
            c0, c1 = col(span.start), col(end_of(span))
            paint(span.actor, c0, c1, "x")
            mark(span.actor, span.start, "X")
            if span.attrs.get("restarted"):
                mark(span.actor, end_of(span), "R")
    # Elastic-membership lifecycle shares the crash band's priority: a
    # joiner's lane is all dots until its J, so the mark anchors where
    # the lane becomes meaningful; L closes it the same way.
    for span in trace.spans:
        if span.name == "joined":
            mark(span.actor, span.start, "J")
        elif span.name == "left":
            mark(span.actor, span.start, "L")
    # Membership verdicts last, marking the *subject* monitor's lane at
    # the first emission carrying the update.  They land mid-crash-epoch
    # by construction, so they must overwrite the ``x`` band — the mark
    # shows *when the cluster noticed*; confirms overwrite suspects.
    for status, char in (("suspect", "s"), ("confirm", "C")):
        for time, slot in _membership_events(trace, status):
            mark(f"mon-{slot}", time, char)

    name_w = max((len(a) for a in actors), default=5)
    lines = [
        f"{'':<{name_w}}  t={t0:<8g}{'':{max(0, width - 18)}}t={t1:g}",
    ]
    for actor in actors:
        lines.append(f"{actor:<{name_w}}  {''.join(lanes[actor])}")
    legend = "  ".join(f"{char}={label}" for char, label in _LEGEND)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def _format_meta(trace: Trace) -> list[str]:
    meta = trace.meta
    lines = [f"trace {trace.trace_id}: {len(trace.spans)} spans"]
    summary = []
    for key in ("detector", "predicate", "outcome", "cut", "detection_time",
                "seed", "n_predicates"):
        if meta.get(key) is not None:
            summary.append(f"{key}={meta[key]}")
    if summary:
        lines.append("  ".join(summary))
    return lines


def _predicate_lines(trace: Trace) -> list[str]:
    """Per-predicate rows of a multi-predicate service run.

    Rendered when the trace header carries ``predicates`` (a list of
    per-predicate outcome dicts written by ``repro service`` /
    ``run_service``); the ``service`` meta dict contributes the
    amortization headline — predicates/sec sustained and the marginal
    bits each extra predicate cost on top of the shared stream.
    """
    preds = trace.meta.get("predicates")
    if not preds:
        return []
    from repro.analysis.tables import render_table

    headers = ["predicate", "outcome", "cut", "t_detect"]
    rows = []
    for p in preds:
        cut = p.get("cut")
        t = p.get("detection_time")
        rows.append([
            p.get("pred_id", "?"),
            p.get("outcome", "?"),
            "-" if cut is None else str(tuple(cut)),
            "-" if t is None else f"{t:g}",
        ])
    lines = render_table(headers, rows).splitlines()
    service = trace.meta.get("service") or {}
    parts = []
    if service.get("predicates_per_sec") is not None:
        parts.append(f"predicates/sec={service['predicates_per_sec']:.1f}")
    if service.get("marginal_bits_per_predicate") is not None:
        parts.append(
            f"marginal bits/predicate={service['marginal_bits_per_predicate']:.0f}"
        )
    if service.get("shared_stream_bits") is not None:
        parts.append(f"shared stream bits={service['shared_stream_bits']}")
    if parts:
        lines.append("service: " + " ".join(parts))
    return lines


def _breakdown_table(trace: Trace) -> str:
    metrics = trace.meta.get("metrics")
    if not metrics or not metrics.get("actors"):
        return "(no metrics snapshot in the trace header)"
    from repro.analysis.tables import render_table

    headers = ["actor", "msgs sent", "bits sent", "msgs recv", "bits recv",
               "work", "space hwm (bits)"]
    rows = []
    for name, m in metrics["actors"].items():
        rows.append([
            name,
            m.get("messages_sent", 0),
            m.get("bits_sent", 0),
            m.get("messages_received", 0),
            m.get("bits_received", 0),
            m.get("work_units", 0),
            m.get("space_high_water_bits", 0),
        ])
    totals = metrics.get("totals", {})
    table = render_table(headers, rows)
    extra = (
        f"totals: messages={totals.get('messages')} bits={totals.get('bits')} "
        f"work={totals.get('work')} "
        f"max_work/actor={totals.get('max_work_per_actor')} "
        f"max_space/actor={totals.get('max_space_bits_per_actor')} bits"
    )
    return table + "\n" + extra


def _itinerary_lines(trace: Trace) -> list[str]:
    hops = trace.token_itinerary()
    if not hops:
        return ["(no token traffic in this trace)"]
    multi = len({h.gid for h in hops}) > 1
    lines = []
    for h in hops:
        tag = f"[gid {h.gid}] " if multi else ""
        hop = f"hop {h.hop} " if h.hop is not None else ""
        lines.append(f"{tag}{hop}{h.describe()}")
    return lines


def _fault_lines(trace: Trace) -> list[str]:
    lines = []
    for span in trace.spans:
        if span.name == "fault:drop":
            lines.append(
                f"t={span.start:g}  drop     {span.actor} -> "
                f"{span.attrs.get('dest')} [{span.attrs.get('kind')}]"
            )
        elif span.name == "fault:lost":
            lines.append(
                f"t={span.start:g}  lost     {span.attrs.get('src')} -> "
                f"{span.actor} [{span.attrs.get('kind')}]"
            )
        elif span.name == "crash":
            back = (
                f"restarted t={span.end:g}" if span.attrs.get("restarted")
                else "never restarted"
            )
            lines.append(f"t={span.start:g}  crash    {span.actor} ({back})")
        elif span.name == "partition":
            groups = " | ".join(span.attrs.get("groups", []))
            back = (
                f"healed t={span.end:g}" if span.attrs.get("healed")
                else "never healed"
            )
            lines.append(f"t={span.start:g}  partition {groups} ({back})")
    faults = trace.meta.get("faults")
    if faults:
        lines.append(
            "summary: " + " ".join(f"{k}={v}" for k, v in faults.items())
        )
    return lines


def _gossip_lines(trace: Trace) -> list[str]:
    """The gossip / liveness section: probes, verdicts, liveness bytes."""
    counts = {name: 0 for name in _PROBE_MARKS}
    for span in trace.spans:
        if span.name in counts:
            counts[span.name] += 1
    lines: list[str] = []
    if any(counts.values()):
        lines.append(
            "probes: " + " ".join(f"{k}={v}" for k, v in counts.items())
        )
    handshake = {name: 0 for name in
                 ("join", "join_welcome", "state_sync", "feed_join")}
    for span in trace.spans:
        if span.name in handshake:
            handshake[span.name] += 1
    if any(handshake.values()):
        lines.append(
            "join handshake: "
            + " ".join(f"{k}={v}" for k, v in handshake.items())
        )
    for span in sorted(trace.spans, key=lambda s: s.start):
        if span.name in ("joined", "left"):
            lines.append(f"t={span.start:g}  {span.name:<8} {span.actor}")
    for status, label in (("suspect", "suspect"), ("confirm", "confirm")):
        for time, slot in _membership_events(trace, status):
            lines.append(f"t={time:g}  {label:<8} mon-{slot}")
    totals = (trace.meta.get("metrics") or {}).get("totals", {})
    liveness = totals.get("liveness_bytes")
    if liveness:
        line = f"liveness bytes: {liveness}"
        by_kind = totals.get("liveness_by_kind") or {}
        if by_kind:
            parts = (
                f"{kind}={entry.get('bits', 0) // 8}B"
                f"/{entry.get('messages', 0)}msg"
                for kind, entry in by_kind.items()
            )
            line += " (" + " ".join(parts) + ")"
        lines.append(line)
    return lines


def _critical_path_lines(trace: Trace, limit: int = 14) -> list[str]:
    chain = trace.critical_path()
    if not chain:
        return []
    lines = []
    shown = chain if len(chain) <= limit else chain[-limit:]
    if len(chain) > limit:
        lines.append(f"... {len(chain) - limit} earlier span(s) elided ...")
    for span in shown:
        where = span.actor
        if span.name == "token_hop":
            where = f"{span.actor} -> {span.attrs.get('dest')}"
        end = f"{span.end:g}" if span.end is not None else "?"
        lines.append(f"t=[{span.start:g}, {end}]  {span.name:<12} {where}")
    return lines


def render_report(trace: Trace, width: int = 72) -> str:
    """The full ASCII run report for one trace."""
    sections: list[tuple[str | None, list[str]]] = [
        (None, _format_meta(trace)),
        ("timeline", render_timeline(trace, width).splitlines()),
        ("token itinerary", _itinerary_lines(trace)),
        ("work/space breakdown (paper units)",
         _breakdown_table(trace).splitlines()),
    ]
    pred_lines = _predicate_lines(trace)
    if pred_lines:
        sections.insert(1, ("per-predicate outcomes", pred_lines))
    gossip_lines = _gossip_lines(trace)
    if gossip_lines:
        sections.append(("gossip / liveness", gossip_lines))
    fault_lines = _fault_lines(trace)
    if fault_lines:
        sections.append(("fault overlay", fault_lines))
    cp = _critical_path_lines(trace)
    if cp:
        sections.append(("critical path", cp))
    out: list[str] = []
    for title, lines in sections:
        if title is not None:
            out.append("")
            out.append(f"--- {title} ---")
        out.extend(lines)
    return "\n".join(out)
