"""Runtime verification: streaming protocol invariant monitors.

The hardened detector stack (transport / membership / compose, SWIM
gossip, takeover elections) is itself a distributed protocol.  This
module turns the kernel observer hook into a *runtime-verification
layer*: :class:`InvariantMonitor` subscribes to the live message stream
and checks six invariant families online, with bounded memory:

``token_conservation``
    At most one live token per color (``gid``): every ``(gid, epoch,
    hop)`` frame has a unique origin, fresh hops advance by exactly one,
    and regenerated tokens fence stale epochs.  Plain (unframed) tokens
    must travel a single hand-to-hand chain.

``vc_monotonicity``
    Vector clocks on each candidate stream are component-wise
    non-decreasing — a feeder's successive snapshots respect causality.

``candidate_order``
    Exactly-once, in-order candidate delivery per (feeder, monitor):
    fresh sequence numbers are gapless, retransmissions carry the
    original payload, nothing follows the final (end-of-trace) item.

``election_safety``
    Election epochs never regress per initiator, and every frame-epoch
    advance is fenced by an election that proposed that epoch — a
    regenerated epoch nobody ever proposed is forged.

``swim_lifecycle``
    SWIM membership gossip is legal: suspect→confirm only after the
    refutation window, confirmations are preceded by a suspicion, and
    per-sender update precedence ``(incarnation, status rank)`` never
    decreases.

``membership_join``
    Elastic joins follow the handshake: a joiner stays out of the frame
    and candidate paths until its ``join`` is acked, its advertised
    incarnation starts at 0, and a confirm for a just-joined member
    inside the refutation window of its welcome is premature.  Observed
    ``state_sync`` / ``feed_join`` messages teach the candidate-order
    checker each joiner stream's mid-sequence baseline, so a subscribed
    stream legitimately opening at ``baseline + 1`` is not a gap.

Violations become structured :class:`InvariantViolation` records (never
exceptions — the monitor is a passive observer) that callers fold into
``DetectionReport.extras`` / sweep paper units.

The same checker cores run *offline*: :func:`replay_trace` feeds a
recorded span trace (``repro detect --trace-out`` or a flight-recorder
dump) through a fresh monitor, which is what ``repro verify-trace``
does.  :func:`message_facts` is the single extraction point both paths
share — the tracer stamps its output onto spans at send time, so a span
carries exactly the facts the monitors need.

:class:`FlightRecorder` is the crash-forensics companion: an always-on
ring buffer of the last K message events per actor, serialized to a
valid trace JSONL file only on crash, violation or degraded outcome.

Soundness note: while a network partition is live (and for a grace
window after it heals) concurrent elections on both sides can
legitimately originate the same epoch, so token-conservation and
epoch-advance violations are *suppressed* (counted, not reported)
during that window.  Everything else stays armed.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.detect.base import (
    HALT_KIND,
    POLL_KIND,
    POLL_RESPONSE_KIND,
    TOKEN_KIND,
)
from repro.detect.stack import (
    ELECT_KIND,
    ELECT_OK_KIND,
    FEED_JOIN_KIND,
    HEARTBEAT_KIND,
    JOIN_ACK_KIND,
    JOIN_KIND,
    PING_ACK_KIND,
    PING_KIND,
    PING_REQ_KIND,
    REGEN_KIND,
    STATE_SYNC_KIND,
)
from repro.obs.export import dump_jsonl
from repro.obs.spans import Span, Trace
from repro.simulation.observers import (
    ActorEvent,
    MessageEvent,
    MessagePhase,
    PartitionNotice,
    PartitionPhase,
)
from repro.simulation.replay import CANDIDATE_KIND, END_OF_TRACE_KIND

__all__ = [
    "INVARIANT_FAMILIES",
    "KIND_SPAN_NAMES",
    "FlightRecorder",
    "InvariantMonitor",
    "InvariantViolation",
    "message_facts",
    "replay_trace",
]

#: The invariant families this module enforces (ISSUE 7 tentpole, plus
#: the elastic-membership lifecycle from the live-join work).
INVARIANT_FAMILIES = (
    "token_conservation",
    "vc_monotonicity",
    "candidate_order",
    "election_safety",
    "swim_lifecycle",
    "membership_join",
)

#: Message kinds -> first-class span names.  The tracer renders with
#: these; the flight recorder and the replay front-end use the same
#: table so every producer of spans agrees on naming.
KIND_SPAN_NAMES = {
    TOKEN_KIND: "token_hop",
    CANDIDATE_KIND: "candidate",
    END_OF_TRACE_KIND: "end_of_trace",
    POLL_KIND: "poll",
    POLL_RESPONSE_KIND: "poll_response",
    HALT_KIND: "halt",
    HEARTBEAT_KIND: "heartbeat",
    PING_KIND: "ping",
    PING_ACK_KIND: "ping_ack",
    PING_REQ_KIND: "ping_req",
    ELECT_KIND: "elect",
    ELECT_OK_KIND: "elect_ok",
    REGEN_KIND: "regen_request",
    JOIN_KIND: "join",
    JOIN_ACK_KIND: "join_welcome",
    STATE_SYNC_KIND: "state_sync",
    FEED_JOIN_KIND: "feed_join",
}

_SPAN_NAME_KINDS = {name: kind for kind, name in KIND_SPAN_NAMES.items()}

#: SWIM status ranks, mirroring ``repro.detect.stack.gossip._RANK``
#: (named by string so this module stays decoupled from gossip
#: internals — only the facade constants above are imported).
_SWIM_RANK = {"alive": 0, "suspect": 1, "confirm": 2}

_GOSSIP_KINDS = frozenset({PING_KIND, PING_ACK_KIND, PING_REQ_KIND})

_CANDIDATE_KINDS = frozenset({CANDIDATE_KIND, END_OF_TRACE_KIND})

_JOIN_KINDS = frozenset(
    {JOIN_KIND, JOIN_ACK_KIND, STATE_SYNC_KIND, FEED_JOIN_KIND}
)

#: Kinds the monitor inspects at all — everything else early-outs.
_INTERESTING_KINDS = (
    frozenset({TOKEN_KIND, ELECT_KIND})
    | _GOSSIP_KINDS
    | _CANDIDATE_KINDS
    | _JOIN_KINDS
)


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One detected protocol-invariant violation.

    ``invariant`` names the family (:data:`INVARIANT_FAMILIES`);
    ``key`` identifies the violating protocol object (frame identity,
    stream endpoint pair, membership slot...) so repeated reports of
    the same object can be correlated.
    """

    invariant: str
    time: float
    actor: str
    detail: str
    key: tuple[Any, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (embedded in report extras and CLI output)."""
        return {
            "invariant": self.invariant,
            "time": self.time,
            "actor": self.actor,
            "detail": self.detail,
            "key": list(self.key),
        }

    def describe(self) -> str:
        return f"t={self.time:g}  {self.invariant:<18} {self.actor}: {self.detail}"


def _vc_of(inner: object) -> tuple[float, ...] | None:
    """Extract a causal stamp from a candidate payload, if it has one.

    Handles the vector-clock detectors' int tuples, the
    direct-dependence scalar clock (as a 1-vector) and the centralized
    detector's ``(slot, vc_tuple)`` pairs.  Anything else has no
    checkable stamp.
    """
    clock = getattr(inner, "clock", None)
    if isinstance(clock, (int, float)):
        return (clock,)
    if isinstance(inner, tuple) and inner:
        if all(isinstance(x, (int, float)) for x in inner):
            return tuple(inner)
        if len(inner) == 2 and isinstance(inner[1], tuple) and all(
            isinstance(x, (int, float)) for x in inner[1]
        ):
            return tuple(inner[1])
    return None


def message_facts(kind: str, payload: object) -> dict[str, Any]:
    """The invariant-relevant facts of one message payload.

    Duck-types the protocol stack's wire objects (``TokenFrame``,
    ``Sequenced``, ``Elect``, SWIM probes) without importing their
    internals.  The tracer stamps this dict onto message spans, which
    is what lets :func:`replay_trace` re-run the *same* checks offline
    from a recorded trace.
    """
    facts: dict[str, Any] = {}
    if kind == TOKEN_KIND:
        body = payload
        if hasattr(body, "hop") and hasattr(body, "body"):  # TokenFrame
            facts["frame"] = True
            facts["hop"] = body.hop
            facts["gid"] = getattr(body, "gid", 0)
            facts["epoch"] = getattr(body, "epoch", 0)
            gossip = getattr(body, "gossip", ()) or ()
            if gossip:
                _fold_entries(gossip, facts)
            body = body.body
        if hasattr(body, "group") and hasattr(body, "token"):  # GroupToken
            facts.setdefault("gid", body.group)
    elif kind in _CANDIDATE_KINDS:
        inner = payload
        if hasattr(payload, "seq") and hasattr(payload, "payload"):  # Sequenced
            facts["cseq"] = payload.seq
            facts["final"] = bool(getattr(payload, "final", False))
            inner = payload.payload
        vc = _vc_of(inner)
        if vc is not None:
            facts["vc"] = list(vc)
    elif kind in (ELECT_KIND, ELECT_OK_KIND):
        epoch = getattr(payload, "epoch", None)
        slot = getattr(payload, "slot", None)
        if epoch is not None:
            facts["epoch"] = epoch
        if slot is not None:
            facts["slot"] = slot
    elif kind in _GOSSIP_KINDS:
        _fold_entries(getattr(payload, "updates", ()) or (), facts)
    elif kind == JOIN_KIND:
        facts["slot"] = getattr(payload, "slot", None)
        facts["incarnation"] = getattr(payload, "incarnation", 0)
    elif kind == JOIN_ACK_KIND:
        facts["epoch"] = getattr(payload, "epoch", 0)
        facts["members"] = len(getattr(payload, "members", ()) or ())
    elif kind == STATE_SYNC_KIND:
        facts["baselines"] = [
            [str(stream), int(ack)]
            for stream, ack in getattr(payload, "baselines", ()) or ()
        ]
    elif kind == FEED_JOIN_KIND:
        facts["subscriber"] = getattr(payload, "subscriber", None)
        facts["baseline"] = getattr(payload, "baseline", 0)
    return facts


def _fold_entries(entries: Iterable[object], facts: dict[str, Any]) -> None:
    """Split piggybacked gossip entries into updates and announcements."""
    for entry in entries:
        status = getattr(entry, "status", None)
        if status is not None:  # GossipUpdate
            facts.setdefault("updates", []).append(
                [entry.slot, status, entry.incarnation]  # type: ignore[attr-defined]
            )
            continue
        ann = getattr(entry, "kind", None)
        if ann is not None:  # Announcement
            facts.setdefault("announcements", []).append(
                [ann, entry.epoch, entry.slot]  # type: ignore[attr-defined]
            )


class _Bounded(OrderedDict):
    """An insertion-ordered dict evicting its oldest entries at ``cap``."""

    def __init__(self, cap: int) -> None:
        super().__init__()
        self.cap = cap

    def put(self, key: Any, value: Any) -> None:
        self[key] = value
        while len(self) > self.cap:
            self.popitem(last=False)


@dataclass
class _Stream:
    """Per-(feeder, monitor) candidate-stream state."""

    max_seen: int = 0
    final_seq: int | None = None
    last_vc: tuple[float, ...] | None = None
    fingerprints: _Bounded = field(default_factory=lambda: _Bounded(256))


class InvariantMonitor:
    """A kernel observer enforcing the protocol invariant families.

    Attach via the ``observers`` hook (or let ``run_detector(...,
    check_invariants=True)`` do it); read :attr:`violations` after the
    run.  The monitor is strictly passive and never raises on a
    violation — detection outcomes are unchanged by its presence.

    All checks key off SENT-phase events (plus partition notices), so
    live observation and offline trace replay see the identical event
    stream: a span's ``start`` *is* its send time.  Kernel-injected
    duplicate copies surface only at DELIVERED and are therefore never
    mistaken for a protocol-level double-send.

    ``refutation_window`` / ``probe_interval`` parameterize the SWIM
    suspect→confirm timing check (pass the failure-detector config's
    ``suspicion_after`` / ``heartbeat_interval``); with
    ``refutation_window=None`` the timing check is skipped and only the
    ordering/precedence checks run.  ``partition_grace`` extends the
    post-heal suppression window for the partition-ambiguous checks
    (see the module docstring).
    """

    def __init__(
        self,
        refutation_window: float | None = None,
        probe_interval: float = 4.0,
        partition_grace: float = 30.0,
        max_tracked: int = 512,
        max_violations: int = 1000,
        windowed: bool = False,
    ) -> None:
        self.refutation_window = refutation_window
        self.probe_interval = probe_interval
        self.partition_grace = partition_grace
        self.max_tracked = max_tracked
        self.max_violations = max_violations
        #: ``windowed=True`` means the event stream is a *suffix window*
        #: per actor (a flight-recorder ring dump): events before the
        #: window — or ring-evicted within it — are simply absent, so
        #: every continuity check (epoch fencing, hop advance-by-one,
        #: plain-token hand-to-hand chains, candidate-stream baselines,
        #: suspect→confirm timing) is relaxed.  The window-sound checks
        #: stay armed: duplicate origins, mutated retransmissions, VC
        #: regressions, precedence and epoch regressions.
        self.windowed = windowed
        self.violations: list[InvariantViolation] = []
        #: Violations observed past ``max_violations`` (count only).
        self.overflowed = 0
        #: Partition-ambiguous findings swallowed by the suppression
        #: window — kept as a count so reports can say "n suppressed".
        self.suppressed = 0
        # --- token conservation -------------------------------------
        self._hw: dict[int, tuple[int, int]] = {}
        self._origins: dict[int, _Bounded] = {}
        self._plain_holder: dict[int, str] = {}
        # --- candidate streams / vc ---------------------------------
        self._streams: dict[tuple[str, str], _Stream] = {}
        self._plain_vc: dict[tuple[str, str], tuple[float, ...]] = {}
        # --- elections ----------------------------------------------
        self._elect_epochs: dict[str, int] = {}
        self._announced_epochs: set[int] = set()
        # --- SWIM ----------------------------------------------------
        self._swim_prec: _Bounded = _Bounded(max_tracked * 4)
        self._suspect_first: _Bounded = _Bounded(max_tracked * 4)
        self._confirm_first: _Bounded = _Bounded(max_tracked * 4)
        # --- elastic joins --------------------------------------------
        #: joiner actor -> (slot, welcomed) — created at the first JOIN.
        self._join_state: dict[str, tuple[Any, bool]] = {}
        #: joiner slot -> welcome time (arms the premature-confirm check).
        self._join_welcomed: dict[Any, float] = {}
        #: (feeder, subscriber) -> candidate baseline taught by observed
        #: state_sync / feed_join anti-entropy traffic.
        self._stream_baselines: dict[tuple[str, str], int] = {}
        # --- partition suppression ----------------------------------
        self._live_partitions = 0
        self._suppress_until = float("-inf")

    # ------------------------------------------------------------------
    # Observer protocol
    # ------------------------------------------------------------------
    def __call__(self, event: MessageEvent) -> None:
        if event.phase is not MessagePhase.SENT:
            return
        msg = event.message
        if msg.kind not in _INTERESTING_KINDS:
            return
        self.ingest(event.time, msg.kind, msg.src, msg.dest, msg.payload)

    def on_partition_event(self, event: PartitionNotice) -> None:
        if event.phase is PartitionPhase.STARTED:
            self._live_partitions += 1
        elif event.phase is PartitionPhase.HEALED:
            self._live_partitions = max(0, self._live_partitions - 1)
            self._suppress_until = max(
                self._suppress_until, event.time + self.partition_grace
            )

    # ------------------------------------------------------------------
    # Normalized ingestion (shared by live and replay paths)
    # ------------------------------------------------------------------
    def ingest(
        self, time: float, kind: str, src: str, dest: str, payload: object
    ) -> None:
        """Check one sent message given its live payload object."""
        self.ingest_facts(time, kind, src, dest, message_facts(kind, payload))

    def ingest_facts(
        self,
        time: float,
        kind: str,
        src: str,
        dest: str,
        facts: dict[str, Any],
    ) -> None:
        """Check one sent message given its extracted fact dict."""
        if kind == TOKEN_KIND:
            self._check_unwelcome(time, src, dest, "frame")
            self._check_token(time, src, dest, facts)
            if "updates" in facts or "announcements" in facts:
                self._check_swim(time, src, facts)
        elif kind in _CANDIDATE_KINDS:
            self._check_unwelcome(time, src, dest, "candidate")
            self._check_candidate(time, src, dest, facts)
        elif kind == ELECT_KIND:
            self._check_elect(time, src, facts.get("epoch"))
        elif kind in _GOSSIP_KINDS:
            self._check_swim(time, src, facts)
        elif kind in _JOIN_KINDS:
            self._check_join(time, kind, src, dest, facts)

    # ------------------------------------------------------------------
    def _report(
        self,
        invariant: str,
        time: float,
        actor: str,
        detail: str,
        key: tuple[Any, ...] = (),
        suppressible: bool = False,
    ) -> None:
        if suppressible and (
            self._live_partitions > 0 or time < self._suppress_until
        ):
            self.suppressed += 1
            return
        if len(self.violations) >= self.max_violations:
            self.overflowed += 1
            return
        self.violations.append(
            InvariantViolation(invariant, time, actor, detail, key)
        )

    # ------------------------------------------------------------------
    # (a) token conservation
    # ------------------------------------------------------------------
    def _check_token(
        self, time: float, src: str, dest: str, facts: dict[str, Any]
    ) -> None:
        gid = int(facts.get("gid", 0))
        if not facts.get("frame"):
            # Plain (unframed) token: a single object moving hand to
            # hand, so each send's source must be the previous send's
            # destination.
            holder = self._plain_holder.get(gid)
            if holder is not None and src != holder and not self.windowed:
                self._report(
                    "token_conservation",
                    time,
                    src,
                    f"token gid={gid} sent by {src} while held by "
                    f"{holder} — duplicated token",
                    key=(gid,),
                    suppressible=True,
                )
            self._plain_holder[gid] = dest
            return
        epoch = int(facts.get("epoch", 0))
        hop = int(facts.get("hop", 0))
        key = (epoch, hop)
        origins = self._origins.get(gid)
        if origins is None:
            origins = self._origins[gid] = _Bounded(self.max_tracked)
        seen = origins.get(key)
        if seen is not None:
            if seen != src:
                self._report(
                    "token_conservation",
                    time,
                    src,
                    f"frame gid={gid} epoch={epoch} hop={hop} sent by "
                    f"{src} but originally by {seen} — two live tokens",
                    key=(gid, epoch, hop),
                    suppressible=True,
                )
            return  # retransmission of a known frame
        hw = self._hw.get(gid)
        if hw is None:
            self._hw[gid] = key
        elif key > hw:
            hw_epoch, hw_hop = hw
            if epoch == hw_epoch and hop != hw_hop + 1 and not self.windowed:
                self._report(
                    "token_conservation",
                    time,
                    src,
                    f"gid={gid} epoch={epoch} hop jumped {hw_hop} -> "
                    f"{hop} (a forward advances by exactly one)",
                    key=(gid, epoch, hop),
                    suppressible=True,
                )
            # Epoch advances may legitimately skip numbers: every
            # election *attempt* consumes an epoch, and failed or
            # contested attempts (common around partitions) leave gaps.
            # Strict increase is the invariant, and regression is
            # impossible here by construction (key > hw); two winners
            # fencing the same epoch surface as duplicate origins.
            # What an advance *does* require is a fencing election: a
            # regenerated epoch nobody proposed is a forged epoch.
            if (
                not self.windowed
                and epoch > hw_epoch
                and epoch not in self._announced_epochs
            ):
                self._report(
                    "election_safety",
                    time,
                    src,
                    f"gid={gid} frame advanced to epoch {epoch} but no "
                    f"election ever proposed epoch {epoch} — forged or "
                    f"flipped frame epoch",
                    key=(gid, epoch),
                )
            self._hw[gid] = key
        # else: at-or-below the high water — stale-epoch or deposed
        # lineage traffic, which the transport ack-and-discards; that
        # *is* the epoch fencing working, not a violation.
        origins.put(key, src)

    # ------------------------------------------------------------------
    # (b) + (c) candidate streams
    # ------------------------------------------------------------------
    def _check_candidate(
        self, time: float, src: str, dest: str, facts: dict[str, Any]
    ) -> None:
        raw_vc = facts.get("vc")
        vc = tuple(raw_vc) if raw_vc is not None else None
        if "cseq" not in facts:
            # Plain stream: FIFO channel, no retransmission — check
            # causal monotonicity in send order only.
            if vc is not None:
                self._check_vc(time, src, dest, vc)
                self._plain_vc[(src, dest)] = vc
            return
        seq = int(facts["cseq"])
        final = bool(facts.get("final", False))
        stream = self._streams.get((src, dest))
        if stream is None:
            stream = self._streams[(src, dest)] = _Stream()
            # A subscribed joiner stream opens mid-sequence at the
            # anti-entropy baseline; observed state_sync / feed_join
            # traffic taught us that baseline, so it is not a gap.
            baseline = self._stream_baselines.get((src, dest))
            if baseline:
                stream.max_seen = baseline
        fingerprint = (vc, final)
        if seq <= stream.max_seen:
            # Retransmission: must be byte-for-byte the original.
            original = stream.fingerprints.get(seq)
            if original is not None and original != fingerprint:
                self._report(
                    "candidate_order",
                    time,
                    src,
                    f"{src}->{dest} seq {seq} retransmitted with a "
                    f"different payload (was {original}, now "
                    f"{fingerprint}) — reordered or mutated candidate",
                    key=(src, dest, seq),
                )
            return
        # Fresh sequence number.
        if stream.final_seq is not None and seq > stream.final_seq:
            self._report(
                "candidate_order",
                time,
                src,
                f"{src}->{dest} seq {seq} sent after the final "
                f"(end-of-trace) seq {stream.final_seq}",
                key=(src, dest, seq),
            )
        elif seq != stream.max_seen + 1 and not (
            self.windowed and stream.max_seen == 0
        ):
            # A windowed recording may open mid-stream: the first seq a
            # fresh stream shows is the baseline, not a gap.  Later gaps
            # are real — the ring keeps a contiguous suffix per sender.
            self._report(
                "candidate_order",
                time,
                src,
                f"{src}->{dest} fresh seq {seq} skips "
                f"{stream.max_seen + 1} — candidate gap",
                key=(src, dest, seq),
            )
        stream.max_seen = seq
        if final:
            stream.final_seq = seq
        stream.fingerprints.put(seq, fingerprint)
        if vc is not None:
            if stream.last_vc is not None:
                self._check_vc(time, src, dest, vc, last=stream.last_vc)
            stream.last_vc = vc

    def _check_vc(
        self,
        time: float,
        src: str,
        dest: str,
        vc: tuple[float, ...],
        last: tuple[float, ...] | None = None,
    ) -> None:
        if last is None:
            last = self._plain_vc.get((src, dest))
        if last is None or len(last) != len(vc):
            return
        if any(a < b for a, b in zip(vc, last)):
            self._report(
                "vc_monotonicity",
                time,
                src,
                f"{src}->{dest} vector clock regressed {list(last)} -> "
                f"{list(vc)} — causality violated on the stream",
                key=(src, dest),
            )

    # ------------------------------------------------------------------
    # (d) election-epoch safety
    # ------------------------------------------------------------------
    def _check_elect(
        self, time: float, src: str, epoch: object, via: str = "proposal"
    ) -> None:
        if not isinstance(epoch, (int, float)):
            return
        epoch = int(epoch)
        self._announced_epochs.add(epoch)
        last = self._elect_epochs.get(src)
        if last is not None and epoch < last:
            self._report(
                "election_safety",
                time,
                src,
                f"{src} issued election {via} for epoch {epoch} after "
                f"epoch {last} — epochs must never regress",
                key=(src, epoch),
            )
            return
        self._elect_epochs[src] = epoch

    # ------------------------------------------------------------------
    # (f) elastic-membership join lifecycle
    # ------------------------------------------------------------------
    def _check_unwelcome(
        self, time: float, src: str, dest: str, path: str
    ) -> None:
        """A joiner must stay out of the frame/candidate paths until its
        join is acked (only actors whose JOIN we observed are checked,
        so windowed recordings that missed the handshake stay quiet)."""
        for actor in (src, dest):
            state = self._join_state.get(actor)
            if state is not None and not state[1]:
                self._report(
                    "membership_join",
                    time,
                    src,
                    f"{actor} appeared on the {path} path "
                    f"({src}->{dest}) before its join was acked",
                    key=(actor, path),
                )

    def _check_join(
        self,
        time: float,
        kind: str,
        src: str,
        dest: str,
        facts: dict[str, Any],
    ) -> None:
        if kind == JOIN_KIND:
            slot = facts.get("slot")
            incarnation = int(facts.get("incarnation", 0) or 0)
            if incarnation != 0:
                self._report(
                    "membership_join",
                    time,
                    src,
                    f"{src} advertised incarnation {incarnation} in its "
                    f"join — a joiner's incarnation starts at 0",
                    key=(src, slot),
                )
            self._join_state.setdefault(src, (slot, False))
        elif kind == JOIN_ACK_KIND:
            state = self._join_state.get(dest)
            slot = state[0] if state is not None else None
            self._join_state[dest] = (slot, True)
            if slot is not None:
                self._join_welcomed.setdefault(slot, time)
        elif kind == STATE_SYNC_KIND:
            for stream, ack in facts.get("baselines", ()):
                key = (str(stream), dest)
                self._stream_baselines[key] = max(
                    self._stream_baselines.get(key, 0), int(ack)
                )
        elif kind == FEED_JOIN_KIND:
            subscriber = facts.get("subscriber")
            if subscriber is not None:
                key = (dest, str(subscriber))
                self._stream_baselines[key] = max(
                    self._stream_baselines.get(key, 0),
                    int(facts.get("baseline", 0) or 0),
                )

    # ------------------------------------------------------------------
    # (e) SWIM lifecycle legality
    # ------------------------------------------------------------------
    def _check_swim(
        self, time: float, sender: str, facts: dict[str, Any]
    ) -> None:
        for entry in facts.get("updates", ()):
            slot, status, incarnation = entry[0], entry[1], entry[2]
            precedence = (incarnation, _SWIM_RANK.get(status, 0))
            pkey = (sender, slot)
            last = self._swim_prec.get(pkey)
            if last is not None and precedence < last:
                self._report(
                    "swim_lifecycle",
                    time,
                    sender,
                    f"{sender} gossiped {status}@{incarnation} for slot "
                    f"{slot} after already emitting precedence {last} — "
                    f"incarnation precedence violated",
                    key=(sender, slot),
                )
            else:
                self._swim_prec.put(pkey, precedence)
            skey = (slot, incarnation)
            if status == "suspect":
                if skey not in self._suspect_first:
                    self._suspect_first.put(skey, time)
            elif status == "confirm":
                if skey in self._confirm_first:
                    continue
                self._confirm_first.put(skey, time)
                if self.windowed:
                    # The suspicion gossip may predate the window, so
                    # neither its absence nor its apparent lateness is
                    # evidence of anything.
                    continue
                since = self._suspect_first.get(skey)
                if since is None:
                    self._report(
                        "swim_lifecycle",
                        time,
                        sender,
                        f"slot {slot} confirmed dead at incarnation "
                        f"{incarnation} without any gossiped suspicion",
                        key=(slot, incarnation),
                    )
                elif self.refutation_window is not None:
                    # First suspicion is *emitted* up to one probe
                    # interval after the suspecting node started its
                    # local window, so allow that much slack.
                    floor = self.refutation_window - self.probe_interval
                    if time - since < floor - 1e-9:
                        self._report(
                            "swim_lifecycle",
                            time,
                            sender,
                            f"slot {slot} confirmed {time - since:g} "
                            f"after first suspicion; refutation window "
                            f"is {self.refutation_window:g}",
                            key=(slot, incarnation),
                        )
                # A just-joined member gets a full refutation window
                # from its welcome, whatever earlier suspicion gossip
                # claims — stale pre-join suspicion must not justify a
                # quick confirm of the newcomer.
                welcomed = self._join_welcomed.get(slot)
                if (
                    welcomed is not None
                    and self.refutation_window is not None
                ):
                    floor = self.refutation_window - self.probe_interval
                    if time - welcomed < floor - 1e-9:
                        self._report(
                            "membership_join",
                            time,
                            sender,
                            f"just-joined slot {slot} confirmed dead "
                            f"{time - welcomed:g} after its welcome; "
                            f"refutation window is "
                            f"{self.refutation_window:g}",
                            key=(slot, incarnation),
                        )
        for entry in facts.get("announcements", ()):
            kind, epoch = entry[0], entry[1]
            if kind == "elect":
                self._check_elect(time, sender, epoch, via="announcement")

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Violation count per invariant family (zero entries included)."""
        out = {family: 0 for family in INVARIANT_FAMILIES}
        for violation in self.violations:
            out[violation.invariant] = out.get(violation.invariant, 0) + 1
        return out

    def summary(self) -> dict[str, Any]:
        """A JSON-ready digest for report extras and CLI output."""
        return {
            "violations": len(self.violations),
            "suppressed": self.suppressed,
            "overflowed": self.overflowed,
            "by_family": self.counts(),
        }


class FlightRecorder:
    """An always-on ring buffer of the last K message events per actor.

    Recording is a tuple append per event — cheap enough to leave on
    for every run.  Nothing is serialized until :meth:`dump`, which
    callers invoke only on crash, violation or degraded outcome.  The
    dump is a *valid trace JSONL file*: every buffered event becomes an
    instant span (named via :data:`KIND_SPAN_NAMES`, carrying
    :func:`message_facts` plus the observed phase), so ``repro report``
    and ``repro verify-trace`` read flight dumps directly.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rings: dict[str, deque] = {}
        self._events = 0

    def _ring(self, actor: str) -> deque:
        ring = self._rings.get(actor)
        if ring is None:
            ring = self._rings[actor] = deque(maxlen=self.capacity)
        return ring

    # ------------------------------------------------------------------
    def __call__(self, event: MessageEvent) -> None:
        msg = event.message
        actor = msg.src if event.phase is MessagePhase.SENT else msg.dest
        self._events += 1
        self._ring(actor).append(
            (
                event.time,
                event.phase.value,
                msg.kind,
                msg.src,
                msg.dest,
                msg.seq,
                msg.size_bits,
                msg.payload,
            )
        )

    def on_actor_event(self, event: ActorEvent) -> None:
        self._events += 1
        self._ring(event.actor).append(
            (event.time, event.phase.value, None, event.actor, "", -1, 0, None)
        )

    def __len__(self) -> int:
        """Events currently buffered (across all rings)."""
        return sum(len(ring) for ring in self._rings.values())

    @property
    def events_seen(self) -> int:
        """Total events observed (buffered + already evicted)."""
        return self._events

    # ------------------------------------------------------------------
    def to_trace(self, trace_id: str = "flight", **meta: Any) -> Trace:
        """Materialize the rings as a span trace (newest K per actor)."""
        entries = [
            entry for ring in self._rings.values() for entry in ring
        ]
        entries.sort(key=lambda e: (e[0], e[5]))
        trace = Trace(
            trace_id,
            meta={
                "flight_recorder": True,
                "capacity": self.capacity,
                "events_seen": self._events,
                **meta,
            },
        )
        for span_id, entry in enumerate(entries, start=1):
            time, phase, kind, src, dest, seq, size_bits, payload = entry
            if kind is None:
                name = phase  # actor lifecycle marker: crashed/restarted
                attrs: dict[str, Any] = {"phase": phase}
            else:
                name = KIND_SPAN_NAMES.get(kind, f"msg:{kind}")
                attrs = {
                    "phase": phase,
                    "kind": kind,
                    "src": src,
                    "dest": dest,
                    "seq": seq,
                    "size_bits": size_bits,
                    **message_facts(kind, payload),
                }
            trace.add(
                Span(
                    trace_id=trace_id,
                    span_id=span_id,
                    name=name,
                    actor=src,
                    start=time,
                    end=time,
                    attrs=attrs,
                )
            )
        return trace

    def dump(self, path: Any, **meta: Any) -> Any:
        """Write the ring contents to ``path`` as trace JSONL."""
        return dump_jsonl(self.to_trace(**meta), path)


def replay_trace(
    trace: Trace, monitor: InvariantMonitor | None = None, **options: Any
) -> list[InvariantViolation]:
    """Re-run the invariant monitors over a recorded span trace.

    Walks message spans in send order (a span's ``start`` is its send
    time) feeding the facts the tracer stamped onto each span through
    the same checker cores the live monitor uses; partition epoch spans
    replay as partition start/heal notices.  Kernel-duplicate spans
    (``duplicate=True``) and non-SENT flight-recorder entries are
    skipped, exactly as the live monitor never sees them.

    Keyword options construct the monitor (``refutation_window`` etc.)
    when one isn't passed in.  Returns the violation list.
    """
    if monitor is not None:
        mon = monitor
    else:
        if trace.meta.get("flight_recorder"):
            # A ring dump is a *window*: fencing elections, earlier
            # hops, stream prefixes or suspicion gossip may have been
            # evicted while later traffic survived.
            options.setdefault("windowed", True)
        mon = InvariantMonitor(**options)
    events: list[tuple[float, int, int, Span | None]] = []
    for order, span in enumerate(sorted(trace.spans, key=lambda s: s.span_id)):
        if span.name == "partition":
            events.append((span.start, 0, order, span))
            if span.end is not None and span.attrs.get("healed"):
                events.append((span.end, 1, order, None))
            continue
        if span.name.startswith("fault:"):
            # Drop/loss markers stamp the victim message's kind and
            # endpoints but are not sends; the live monitor never sees
            # them, and feeding them here would corrupt the hand-to-
            # hand token chains.
            continue
        kind = span.attrs.get("kind") or _SPAN_NAME_KINDS.get(span.name)
        if kind not in _INTERESTING_KINDS:
            continue
        if span.attrs.get("duplicate"):
            continue
        phase = span.attrs.get("phase")
        if phase is not None and phase != "sent":
            continue
        events.append((span.start, 2, order, span))
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    for time, tag, _, span in events:
        if tag == 0 and span is not None:
            mon.on_partition_event(
                PartitionNotice(time, PartitionPhase.STARTED, ())
            )
        elif tag == 1:
            mon.on_partition_event(
                PartitionNotice(time, PartitionPhase.HEALED, ())
            )
        elif span is not None:
            kind = span.attrs.get("kind") or _SPAN_NAME_KINDS[span.name]
            src = str(span.attrs.get("src", span.actor))
            dest = str(span.attrs.get("dest", ""))
            mon.ingest_facts(time, str(kind), src, dest, span.attrs)
    return mon.violations
