"""Wall-clock profiling of kernel hot paths.

Simulated-time spans answer *where a token spent its run*; this module
answers *where the wall clock went* — scheduling, delivery, vector-clock
merges — so perf work PR-over-PR has hard numbers instead of vibes.

Usage with the kernel (zero overhead when not passed)::

    prof = HotPathProfiler()
    kernel = Kernel(profiler=prof)
    ...
    print(prof.render())          # per-section calls / total / mean
    data = prof.snapshot()        # JSON-ready

Arbitrary functions can be wrapped too::

    VectorClock.merged = profiled(prof, "vc.merge")(VectorClock.merged)

The profiler is intentionally dumb — a dict of ``name -> (calls,
seconds)`` fed by ``perf_counter`` pairs — so its own overhead stays
in the noise.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable

__all__ = ["HotPathProfiler", "profiled"]


class HotPathProfiler:
    """Named wall-clock counters: calls and cumulative seconds."""

    __slots__ = ("_sections",)

    def __init__(self) -> None:
        self._sections: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    # Hot-path primitives (kept free of allocation where possible)
    # ------------------------------------------------------------------
    def start(self) -> float:
        """A timestamp to later pass to :meth:`stop`."""
        return perf_counter()

    def stop(self, name: str, t0: float) -> None:
        """Charge ``perf_counter() - t0`` seconds to section ``name``."""
        elapsed = perf_counter() - t0
        cell = self._sections.get(name)
        if cell is None:
            cell = self._sections[name] = [0, 0.0]
        cell[0] += 1
        cell[1] += elapsed

    @contextmanager
    def section(self, name: str):
        """``with prof.section("phase"): ...`` convenience wrapper."""
        t0 = perf_counter()
        try:
            yield self
        finally:
            self.stop(name, t0)

    # ------------------------------------------------------------------
    # Reading results
    # ------------------------------------------------------------------
    def calls(self, name: str) -> int:
        """Times section ``name`` was stopped (0 if never)."""
        cell = self._sections.get(name)
        return 0 if cell is None else int(cell[0])

    def seconds(self, name: str) -> float:
        """Cumulative wall-clock seconds charged to ``name``."""
        cell = self._sections.get(name)
        return 0.0 if cell is None else cell[1]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """JSON-ready per-section totals, sorted by cumulative time."""
        return {
            name: {
                "calls": int(calls),
                "seconds": seconds,
                "mean_us": (seconds / calls * 1e6) if calls else 0.0,
            }
            for name, (calls, seconds) in sorted(
                self._sections.items(), key=lambda kv: -kv[1][1]
            )
        }

    def render(self) -> str:
        """An aligned text table of the snapshot (debugging aid)."""
        rows = self.snapshot()
        if not rows:
            return "(no profiled sections)"
        width = max(len(name) for name in rows)
        lines = [f"{'section':<{width}}  {'calls':>9}  {'total s':>10}  "
                 f"{'mean µs':>10}"]
        for name, cell in rows.items():
            lines.append(
                f"{name:<{width}}  {cell['calls']:>9}  "
                f"{cell['seconds']:>10.6f}  {cell['mean_us']:>10.3f}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self._sections.clear()


def profiled(
    profiler: HotPathProfiler, name: str
) -> Callable[[Callable], Callable]:
    """Decorator charging each call of the wrapped function to ``name``."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                profiler.stop(name, t0)

        return wrapper

    return decorate
