"""Fault injection: reproducible message- and process-failure schedules.

The paper's model (§2) assumes reliable channels and ever-live monitors.
A :class:`FaultPlan` relaxes both, per run, without touching protocol
code: it wraps the kernel's delivery path with per-channel message
**drop**, **duplication** and **corruption-marking**, and schedules
actor **crash / restart** lifecycle events with mailbox loss.

Design points:

* **Composable** — a plan is a sequence of :class:`FaultRule` filters
  (matched first-to-last on ``(src, dest, kind)``) plus a list of
  :class:`CrashEvent` schedules; plans are immutable values and can be
  merged with :meth:`FaultPlan.merge`.
* **Reproducible** — all probability draws use a dedicated RNG the
  kernel derives from its seed (label ``"faults"``), so a fault schedule
  is a pure function of ``(seed, plan, workload)`` and never perturbs
  the latency stream existing runs draw from.
* **Marking, not mangling** — "corruption" sets
  :attr:`~repro.simulation.effects.Message.corrupted`; this models a
  checksum that lets the *receiver* detect and discard garbage, which is
  exactly what the hardened protocols (``repro.detect.stack``) do.
  Unhardened protocols see the flag and nothing else.

Crash semantics: at ``at`` the actor's coroutine is destroyed and its
mailbox is emptied (messages in flight to a down actor are lost); at
``restart_at`` (if any) the kernel calls
:meth:`~repro.simulation.actors.Actor.restart`, which by default re-runs
the actor from scratch.  Ordinary Python attributes on the actor object
survive — they model the process's persisted local state, which the
hardened detectors use to regenerate protocol state after a restart.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = [
    "FaultRule",
    "CrashEvent",
    "PartitionEvent",
    "ChurnEvent",
    "JoinEvent",
    "LeaveEvent",
    "FaultPlan",
    "MATCH_ANY",
]

#: Wildcard accepted by :meth:`FaultPlan.parse` and rule fields.
MATCH_ANY = "*"


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class FaultRule:
    """Per-channel fault probabilities for messages matching a filter.

    ``kind``, ``src`` and ``dest`` are exact matches; ``None`` (or
    ``"*"``) matches anything.  The first matching rule in a plan wins,
    so put specific rules before broad ones.
    """

    kind: str | None = None
    src: str | None = None
    dest: str | None = None
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("drop", self.drop)
        _check_probability("duplicate", self.duplicate)
        _check_probability("corrupt", self.corrupt)
        for attr in ("kind", "src", "dest"):
            if getattr(self, attr) == MATCH_ANY:
                object.__setattr__(self, attr, None)

    def matches(self, src: str, dest: str, kind: str) -> bool:
        """Whether this rule applies to a message on ``(src, dest, kind)``."""
        return (
            (self.kind is None or self.kind == kind)
            and (self.src is None or self.src == src)
            and (self.dest is None or self.dest == dest)
        )


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """One scheduled crash (and optional restart) of a named actor.

    ``restart_at=None`` means the actor stays down for the rest of the
    run (a *crash-stop* failure); otherwise it must be strictly after
    ``at``.
    """

    actor: str
    at: float
    restart_at: float | None = None

    def __post_init__(self) -> None:
        if not self.actor:
            raise ConfigurationError("crash event needs an actor name")
        if self.at < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.at}")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ConfigurationError(
                f"restart_at must be after the crash "
                f"({self.restart_at} <= {self.at})"
            )


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """A scheduled stream of monitor leave/join cycles (membership churn).

    Starting at ``start``, the named actors crash round-robin — one
    every ``period`` seconds — and each restarts ``downtime`` seconds
    after it went down; ``rounds`` repeats the whole rotation.  A churn
    event is sugar over :class:`CrashEvent`: :meth:`crashes` expands it
    deterministically, so the kernel, metrics and describe/parse paths
    all see ordinary crash/restart lifecycle events.
    """

    actors: tuple[str, ...]
    start: float
    period: float
    downtime: float
    rounds: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "actors", tuple(self.actors))
        if not self.actors or any(not a for a in self.actors):
            raise ConfigurationError("churn needs non-empty actor names")
        if self.start < 0:
            raise ConfigurationError(
                f"churn start must be >= 0, got {self.start}"
            )
        if self.period <= 0:
            raise ConfigurationError(
                f"churn period must be > 0, got {self.period}"
            )
        if self.downtime <= 0:
            raise ConfigurationError(
                f"churn downtime must be > 0, got {self.downtime}"
            )
        if self.rounds < 1:
            raise ConfigurationError(
                f"churn rounds must be >= 1, got {self.rounds}"
            )

    def crashes(self) -> tuple[CrashEvent, ...]:
        """The round-robin crash/restart expansion of this churn."""
        events = []
        for r in range(self.rounds):
            for i, actor in enumerate(self.actors):
                at = self.start + (r * len(self.actors) + i) * self.period
                events.append(CrashEvent(actor, at, at + self.downtime))
        return tuple(events)

    def describe(self) -> str:
        """A compact human-readable rendering (used by the CLI)."""
        names = "+".join(self.actors)
        text = f"churn:{names}@{self.start:g}x{self.period:g}~{self.downtime:g}"
        if self.rounds != 1:
            text += f"*{self.rounds}"
        return text


@dataclass(frozen=True, slots=True)
class JoinEvent:
    """One genuinely *new* actor joining the run at a scheduled time.

    Unlike a :class:`CrashEvent` restart (a known member coming back),
    a join introduces an actor the run did not start with.  The harness
    (e.g. ``repro.detect``) constructs the joining actor and registers
    it via :meth:`~repro.simulation.kernel.Kernel.spawn_new`; the kernel
    reports the start as an ``ActorEvent`` with phase ``joined``.

    ``seed_contact`` names the existing member the joiner bootstraps
    from (its first handshake target); ``None`` lets the harness pick a
    default (conventionally the lowest-slot monitor).
    """

    actor: str
    at: float
    seed_contact: str | None = None

    def __post_init__(self) -> None:
        if not self.actor:
            raise ConfigurationError("join event needs an actor name")
        if self.at < 0:
            raise ConfigurationError(f"join time must be >= 0, got {self.at}")
        if self.seed_contact == self.actor:
            raise ConfigurationError(
                f"join seed contact must differ from the joiner "
                f"({self.actor!r})"
            )

    def describe(self) -> str:
        """A compact human-readable rendering (used by the CLI)."""
        text = f"join:{self.actor}@{self.at:g}"
        if self.seed_contact is not None:
            text += f"<{self.seed_contact}"
        return text


@dataclass(frozen=True, slots=True)
class LeaveEvent:
    """One scheduled graceful, permanent departure of a named actor.

    At ``at`` the actor's coroutine is destroyed and its mailbox
    emptied, like a crash-stop — but the kernel reports it as an
    ``ActorEvent`` with phase ``left`` and it is not counted as a
    crash.  Survivors learn of the departure through their failure
    detector exactly as they would for a silent death.
    """

    actor: str
    at: float

    def __post_init__(self) -> None:
        if not self.actor:
            raise ConfigurationError("leave event needs an actor name")
        if self.at < 0:
            raise ConfigurationError(
                f"leave time must be >= 0, got {self.at}"
            )

    def describe(self) -> str:
        """A compact human-readable rendering (used by the CLI)."""
        return f"leave:{self.actor}@{self.at:g}"


@dataclass(frozen=True, slots=True)
class PartitionEvent:
    """A time-windowed network partition of the actor population.

    From ``at`` until ``heal_at`` (exclusive; ``None`` means the
    partition never heals), actors in different *components* cannot
    exchange messages — every cross-component send is dropped at the
    network and recorded as a ``partitioned`` channel fault.  ``groups``
    lists the explicit components; any actor named in no group belongs
    to one shared implicit *rest* component, so a single explicit group
    isolates it from everyone else.
    """

    at: float
    groups: tuple[frozenset[str], ...]
    heal_at: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "groups", tuple(frozenset(g) for g in self.groups)
        )
        if self.at < 0:
            raise ConfigurationError(
                f"partition time must be >= 0, got {self.at}"
            )
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ConfigurationError(
                f"heal_at must be after the partition start "
                f"({self.heal_at} <= {self.at})"
            )
        if not self.groups:
            raise ConfigurationError("partition needs at least one group")
        if any(not g for g in self.groups):
            raise ConfigurationError("partition groups must be non-empty")
        seen: set[str] = set()
        for group in self.groups:
            overlap = seen & group
            if overlap:
                raise ConfigurationError(
                    f"partition groups overlap on {sorted(overlap)}"
                )
            seen |= group

    def component_of(self, actor: str) -> int:
        """The component index of ``actor`` (-1 = implicit rest group)."""
        for index, group in enumerate(self.groups):
            if actor in group:
                return index
        return -1

    def separates(self, src: str, dest: str) -> bool:
        """Whether this partition blocks messages from ``src`` to ``dest``."""
        return self.component_of(src) != self.component_of(dest)

    def describe(self) -> str:
        """A compact human-readable rendering (used by the CLI)."""
        when = f"@{self.at:g}"
        when += f"..{self.heal_at:g}" if self.heal_at is not None else ".."
        sides = "|".join("+".join(sorted(g)) for g in self.groups)
        return f"partition:{sides}{when}"


@dataclass(frozen=True)
class FaultPlan:
    """A complete, immutable fault schedule for one simulation run.

    Pass to :class:`~repro.simulation.kernel.Kernel` (or any online
    detector via ``faults=``).  ``rules`` drive per-message draws;
    ``crashes`` are fired at their scheduled simulated times.
    """

    rules: tuple[FaultRule, ...] = ()
    crashes: tuple[CrashEvent, ...] = ()
    partitions: tuple[PartitionEvent, ...] = ()
    churns: tuple[ChurnEvent, ...] = ()
    joins: tuple[JoinEvent, ...] = ()
    leaves: tuple[LeaveEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "churns", tuple(self.churns))
        object.__setattr__(self, "joins", tuple(self.joins))
        object.__setattr__(self, "leaves", tuple(self.leaves))
        joined = [j.actor for j in self.joins]
        if len(set(joined)) != len(joined):
            raise ConfigurationError(
                f"duplicate join actors in plan: {joined}"
            )

    def all_crashes(self) -> tuple[CrashEvent, ...]:
        """Explicit crashes plus every churn's expansion (kernel view)."""
        expanded = list(self.crashes)
        for churn in self.churns:
            expanded.extend(churn.crashes())
        return tuple(expanded)

    # ------------------------------------------------------------------
    # Kernel interface
    # ------------------------------------------------------------------
    def draw(
        self, src: str, dest: str, kind: str, rng: random.Random
    ) -> list[bool]:
        """Decide the fate of one message: a list of delivery copies.

        The returned list holds one ``corrupted`` flag per copy to
        deliver — ``[]`` drops the message, ``[False]`` is a clean
        delivery, ``[False, True]`` is a duplication whose second copy
        arrives corruption-marked.
        """
        rule = None
        for candidate in self.rules:
            if candidate.matches(src, dest, kind):
                rule = candidate
                break
        if rule is None:
            return [False]
        if rule.drop > 0.0 and rng.random() < rule.drop:
            return []
        copies = 1
        if rule.duplicate > 0.0 and rng.random() < rule.duplicate:
            copies = 2
        return [
            rule.corrupt > 0.0 and rng.random() < rule.corrupt
            for _ in range(copies)
        ]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """A plan applying ``self``'s rules first, then ``other``'s."""
        return FaultPlan(
            rules=self.rules + other.rules,
            crashes=self.crashes + other.crashes,
            partitions=self.partitions + other.partitions,
            churns=self.churns + other.churns,
            joins=self.joins + other.joins,
            leaves=self.leaves + other.leaves,
        )

    @property
    def affects_messages(self) -> bool:
        """Whether any rule can drop, duplicate or corrupt anything."""
        return any(
            r.drop > 0 or r.duplicate > 0 or r.corrupt > 0 for r in self.rules
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact CLI spec.

        The spec is a comma-separated list of clauses::

            drop:<kind>:<p>          e.g. drop:token:0.2
            dup:<kind>:<p>           e.g. dup:*:0.05
            corrupt:<kind>:<p>       e.g. corrupt:candidate:0.1
            crash:<actor>:<at>[:<restart_at>]   e.g. crash:mon-1:4:9
            partition:<at>:<heal_at>:<g1>|<g2>|...
                                     e.g. partition:4:20:mon-0+app-0|mon-1
            churn:<a1+a2+...>:<start>:<period>:<downtime>[:<rounds>]
                                     e.g. churn:mon-1+mon-2:5:12:6:2
            join:<actor>:<at>[:<seed_contact>]   e.g. join:mon-3:8:mon-0
            leave:<actor>:<at>       e.g. leave:mon-3:30

        ``<kind>`` may be ``*`` for all message kinds.  Repeated
        drop/dup/corrupt clauses for the same kind merge into one rule.
        Partition group members are ``+``-separated actor names; an
        empty ``<heal_at>`` means the partition never heals, and actors
        in no listed group share one implicit rest component.
        """
        per_kind: dict[str | None, dict[str, float]] = {}
        order: list[str | None] = []
        crashes: list[CrashEvent] = []
        partitions: list[PartitionEvent] = []
        churns: list[ChurnEvent] = []
        joins: list[JoinEvent] = []
        leaves: list[LeaveEvent] = []
        for raw in spec.split(","):
            clause = raw.strip()
            if not clause:
                continue
            parts = clause.split(":")
            op = parts[0].strip().lower()
            if op == "partition":
                if len(parts) != 4:
                    raise ConfigurationError(
                        f"bad partition clause {clause!r}; expected "
                        f"partition:<at>:<heal_at>:<g1>|<g2>|..."
                    )
                try:
                    at = float(parts[1])
                    heal_raw = parts[2].strip()
                    heal = float(heal_raw) if heal_raw else None
                except ValueError:
                    raise ConfigurationError(
                        f"bad partition times in {clause!r}"
                    ) from None
                groups = tuple(
                    frozenset(
                        name.strip()
                        for name in side.split("+")
                        if name.strip()
                    )
                    for side in parts[3].split("|")
                )
                partitions.append(PartitionEvent(at, groups, heal))
                continue
            if op == "churn":
                if len(parts) not in (5, 6):
                    raise ConfigurationError(
                        f"bad churn clause {clause!r}; expected "
                        f"churn:<a1+a2+...>:<start>:<period>:<downtime>"
                        f"[:<rounds>]"
                    )
                actors = tuple(
                    name.strip()
                    for name in parts[1].split("+")
                    if name.strip()
                )
                try:
                    start = float(parts[2])
                    period = float(parts[3])
                    downtime = float(parts[4])
                    rounds = int(parts[5]) if len(parts) == 6 else 1
                except ValueError:
                    raise ConfigurationError(
                        f"bad churn numbers in {clause!r}"
                    ) from None
                churns.append(
                    ChurnEvent(actors, start, period, downtime, rounds)
                )
                continue
            if op == "join":
                if len(parts) not in (3, 4):
                    raise ConfigurationError(
                        f"bad join clause {clause!r}; expected "
                        f"join:<actor>:<at>[:<seed_contact>]"
                    )
                try:
                    at = float(parts[2])
                except ValueError:
                    raise ConfigurationError(
                        f"bad join time in {clause!r}"
                    ) from None
                contact = parts[3].strip() if len(parts) == 4 else None
                joins.append(JoinEvent(parts[1].strip(), at, contact or None))
                continue
            if op == "leave":
                if len(parts) != 3:
                    raise ConfigurationError(
                        f"bad leave clause {clause!r}; expected "
                        f"leave:<actor>:<at>"
                    )
                try:
                    at = float(parts[2])
                except ValueError:
                    raise ConfigurationError(
                        f"bad leave time in {clause!r}"
                    ) from None
                leaves.append(LeaveEvent(parts[1].strip(), at))
                continue
            if op == "crash":
                if len(parts) not in (3, 4):
                    raise ConfigurationError(
                        f"bad crash clause {clause!r}; expected "
                        f"crash:<actor>:<at>[:<restart_at>]"
                    )
                try:
                    at = float(parts[2])
                    restart = float(parts[3]) if len(parts) == 4 else None
                except ValueError:
                    raise ConfigurationError(
                        f"bad crash times in {clause!r}"
                    ) from None
                crashes.append(CrashEvent(parts[1], at, restart))
                continue
            if op not in ("drop", "dup", "corrupt"):
                raise ConfigurationError(
                    f"unknown fault clause {clause!r}; expected "
                    f"drop/dup/corrupt/crash/partition/churn/join/leave"
                )
            if len(parts) != 3:
                raise ConfigurationError(
                    f"bad fault clause {clause!r}; expected {op}:<kind>:<p>"
                )
            kind: str | None = parts[1].strip() or MATCH_ANY
            if kind == MATCH_ANY:
                kind = None
            try:
                p = float(parts[2])
            except ValueError:
                raise ConfigurationError(
                    f"bad probability in {clause!r}"
                ) from None
            _check_probability(op, p)
            if kind not in per_kind:
                per_kind[kind] = {"drop": 0.0, "duplicate": 0.0, "corrupt": 0.0}
                order.append(kind)
            key = {"drop": "drop", "dup": "duplicate", "corrupt": "corrupt"}[op]
            per_kind[kind][key] = p
        rules = tuple(FaultRule(kind=k, **per_kind[k]) for k in order)
        return cls(
            rules=rules,
            crashes=tuple(crashes),
            partitions=tuple(partitions),
            churns=tuple(churns),
            joins=tuple(joins),
            leaves=tuple(leaves),
        )

    def describe(self) -> str:
        """A short human-readable summary (used by the CLI)."""
        bits: list[str] = []
        for r in self.rules:
            scope = r.kind if r.kind is not None else MATCH_ANY
            if r.src or r.dest:
                scope += f"@{r.src or MATCH_ANY}->{r.dest or MATCH_ANY}"
            probs = []
            if r.drop:
                probs.append(f"drop={r.drop:g}")
            if r.duplicate:
                probs.append(f"dup={r.duplicate:g}")
            if r.corrupt:
                probs.append(f"corrupt={r.corrupt:g}")
            bits.append(f"{scope}[{','.join(probs) or 'noop'}]")
        for c in self.crashes:
            when = f"@{c.at:g}"
            if c.restart_at is not None:
                when += f"..{c.restart_at:g}"
            bits.append(f"crash:{c.actor}{when}")
        for p in self.partitions:
            bits.append(p.describe())
        for ch in self.churns:
            bits.append(ch.describe())
        for j in self.joins:
            bits.append(j.describe())
        for lv in self.leaves:
            bits.append(lv.describe())
        return " ".join(bits) if bits else "(no faults)"
