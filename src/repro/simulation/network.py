"""Channel models: latency and ordering of simulated message delivery.

The paper's model (§2) assumes reliable asynchronous channels with no
FIFO guarantee for application traffic, but *requires* FIFO ordering
between an application process and its monitor.  A
:class:`ChannelModel` decides, per (src, dest, kind), the delivery
latency and whether FIFO order is enforced; the kernel enforces FIFO by
clamping each delivery to be no earlier than the previous delivery on
the same directed channel.

All latency draws use the kernel's seeded RNG, so simulations are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = [
    "ChannelModel",
    "FixedLatency",
    "ExponentialLatency",
    "UniformLatency",
    "KindBiasedLatency",
    "NonFifoLatency",
]


class ChannelModel:
    """Base channel model: fixed unit latency, FIFO everywhere.

    Subclasses override :meth:`latency` (and possibly :meth:`is_fifo`).
    FIFO-everywhere is the safe default — the paper only *requires* FIFO
    on application->monitor channels, and a FIFO channel is a legal
    asynchronous channel.  Protocol correctness must not depend on it
    except where required; tests exercise non-FIFO orderings explicitly.
    """

    def latency(self, src: str, dest: str, kind: str, rng: random.Random) -> float:
        """Delivery latency for one message (simulated time units)."""
        return 1.0

    def is_fifo(self, src: str, dest: str, kind: str) -> bool:
        """Whether deliveries on (src, dest) preserve send order."""
        return True


@dataclass
class FixedLatency(ChannelModel):
    """Every message takes exactly ``value`` time units."""

    value: float = 1.0
    fifo: bool = True

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.value}")

    def latency(self, src: str, dest: str, kind: str, rng: random.Random) -> float:
        return self.value

    def is_fifo(self, src: str, dest: str, kind: str) -> bool:
        return self.fifo


@dataclass
class ExponentialLatency(ChannelModel):
    """Exponentially distributed latency with the given mean.

    With ``fifo=False`` this reorders messages freely (subject only to
    causality), modelling the paper's asynchronous non-FIFO channels.
    """

    mean: float = 1.0
    fifo: bool = True

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"mean latency must be > 0, got {self.mean}")

    def latency(self, src: str, dest: str, kind: str, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def is_fifo(self, src: str, dest: str, kind: str) -> bool:
        return self.fifo


class KindBiasedLatency(ChannelModel):
    """Per-message-kind latencies: an adversarial scheduling knob.

    Detection correctness must not depend on the relative speed of
    tokens, polls and snapshots; tests starve one kind (e.g. a very slow
    token while candidates race ahead) and assert the detected cut is
    unchanged.  ``kind_means`` maps message kinds to mean exponential
    latencies; unknown kinds use ``default_mean``.
    """

    def __init__(
        self,
        kind_means: dict[str, float],
        default_mean: float = 1.0,
        fifo: bool = True,
    ) -> None:
        for kind, mean in kind_means.items():
            if mean <= 0:
                raise ConfigurationError(
                    f"mean latency for kind {kind!r} must be > 0, got {mean}"
                )
        if default_mean <= 0:
            raise ConfigurationError("default_mean must be > 0")
        self._means = dict(kind_means)
        self._default = default_mean
        self._fifo = fifo

    def latency(self, src: str, dest: str, kind: str, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._means.get(kind, self._default))

    def is_fifo(self, src: str, dest: str, kind: str) -> bool:
        return self._fifo


@dataclass
class NonFifoLatency(ChannelModel):
    """The paper's §2 channel assumptions, made explicit.

    Application channels are asynchronous and may reorder freely
    (exponential latency, non-FIFO); only the application->monitor
    snapshot channels — which the paper *requires* to be FIFO — preserve
    send order.  Use this instead of the FIFO-everywhere default to
    catch protocols that silently lean on ordering the model does not
    grant ("the default-FIFO footgun").

    The FIFO exemption is matched on actor-name prefixes, defaulting to
    the library's ``app-`` -> ``mon-`` naming convention.
    """

    mean: float = 1.0
    fifo_src_prefix: str = "app-"
    fifo_dest_prefix: str = "mon-"

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"mean latency must be > 0, got {self.mean}")

    def latency(self, src: str, dest: str, kind: str, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def is_fifo(self, src: str, dest: str, kind: str) -> bool:
        return src.startswith(self.fifo_src_prefix) and dest.startswith(
            self.fifo_dest_prefix
        )


@dataclass
class UniformLatency(ChannelModel):
    """Uniformly distributed latency in ``[low, high]``."""

    low: float = 0.5
    high: float = 1.5
    fifo: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ConfigurationError(
                f"need 0 <= low <= high, got [{self.low}, {self.high}]"
            )

    def latency(self, src: str, dest: str, kind: str, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def is_fifo(self, src: str, dest: str, kind: str) -> bool:
        return self.fifo
