"""Kernel observers: watch every send/delivery/consumption as it happens.

Observers power two things:

* **Protocol traces** — :class:`EventLog` records the full message
  history of a run for debugging and for rendering;
* **Invariant checking** — :class:`InvariantChecker` evaluates protocol
  invariants online and fails fast at the exact violating instant
  (e.g. "at most one token exists", "poll responses pair with polls"),
  which turns liveness-and-safety arguments from the paper's proofs into
  executable checks used by the test suite.

Observers are passive: they must not mutate kernel or actor state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ProtocolError
from repro.simulation.effects import Message

__all__ = [
    "ActorEvent",
    "ActorPhase",
    "MessageEvent",
    "MessagePhase",
    "Observer",
    "PartitionNotice",
    "PartitionPhase",
    "TERMINAL_PHASES",
    "EventLog",
    "InvariantChecker",
    "token_uniqueness_checker",
]


class MessagePhase(enum.Enum):
    """Lifecycle points the kernel reports for every message."""

    SENT = "sent"
    DELIVERED = "delivered"  # placed in the destination mailbox
    CONSUMED = "consumed"    # returned from a Receive
    DROPPED = "dropped"      # discarded by fault injection, never delivered
    LOST = "lost"            # arrived at (or was queued in) a crashed actor


#: Phases that end a message's lifecycle.  Every observed message must
#: eventually reach one of these — or remain buffered/in flight when the
#: run ends, which :meth:`EventLog.unterminated` makes visible.
TERMINAL_PHASES = frozenset(
    {MessagePhase.CONSUMED, MessagePhase.DROPPED, MessagePhase.LOST}
)


class ActorPhase(enum.Enum):
    """Actor lifecycle points the kernel reports (fault injection only)."""

    CRASHED = "crashed"
    RESTARTED = "restarted"
    JOINED = "joined"
    LEFT = "left"


@dataclass(frozen=True, slots=True)
class MessageEvent:
    """One observed message lifecycle step."""

    time: float
    phase: MessagePhase
    message: Message


class PartitionPhase(enum.Enum):
    """Partition lifecycle points the kernel reports."""

    STARTED = "started"
    HEALED = "healed"


@dataclass(frozen=True, slots=True)
class PartitionNotice:
    """One observed partition lifecycle step (start or heal).

    Delivered only to observers that define an ``on_partition_event``
    method.  ``groups`` echoes the partition's explicit components;
    actors in none of them share the implicit rest component.
    """

    time: float
    phase: PartitionPhase
    groups: tuple[frozenset[str], ...]


@dataclass(frozen=True, slots=True)
class ActorEvent:
    """One observed actor lifecycle step (crash, restart, join or leave).

    Delivered only to observers that define an ``on_actor_event``
    method, so plain message observers need not know about it.
    """

    time: float
    phase: ActorPhase
    actor: str


Observer = Callable[[MessageEvent], None]


class EventLog:
    """An observer that records every message event, queryable afterwards.

    Also records actor lifecycle events (crash/restart) in
    ``actor_events``, and keeps a per-message ledger so runs can assert
    that every message reached a terminal phase (consumed, dropped or
    lost) rather than silently vanishing.
    """

    def __init__(self) -> None:
        self.events: list[MessageEvent] = []
        self.actor_events: list[ActorEvent] = []
        self.partition_events: list[PartitionNotice] = []

    def __call__(self, event: MessageEvent) -> None:
        self.events.append(event)

    def on_actor_event(self, event: ActorEvent) -> None:
        self.actor_events.append(event)

    def on_partition_event(self, event: PartitionNotice) -> None:
        self.partition_events.append(event)

    # ------------------------------------------------------------------
    def of_phase(self, phase: MessagePhase) -> list[MessageEvent]:
        """All events of one phase, in time order."""
        return [e for e in self.events if e.phase is phase]

    def of_kind(self, kind: str) -> list[MessageEvent]:
        """All events whose message has the given kind."""
        return [e for e in self.events if e.message.kind == kind]

    def sends(self, kind: str | None = None) -> list[Message]:
        """Messages sent (optionally filtered by kind), in send order."""
        return [
            e.message
            for e in self.events
            if e.phase is MessagePhase.SENT
            and (kind is None or e.message.kind == kind)
        ]

    def timeline(self) -> list[str]:
        """A human-readable line per event (debugging aid)."""
        return [
            f"t={e.time:9.3f}  {e.phase.value:9s}  "
            f"{e.message.src} -> {e.message.dest}  [{e.message.kind}]"
            for e in self.events
        ]

    # ------------------------------------------------------------------
    # Terminal-phase accounting
    # ------------------------------------------------------------------
    def message_ledger(self) -> dict[int, list[MessagePhase]]:
        """Observed phases per message ``seq``, in observation order.

        Note that fault-injected duplicate copies carry their own seq
        and first appear at DELIVERED, and dropped sends appear only as
        DROPPED (the kernel reports the drop in place of the send).
        """
        ledger: dict[int, list[MessagePhase]] = {}
        for e in self.events:
            ledger.setdefault(e.message.seq, []).append(e.phase)
        return ledger

    def unterminated(self) -> list[Message]:
        """Messages whose lifecycle never reached a terminal phase.

        A message is *terminal* once consumed, dropped or lost
        (:data:`TERMINAL_PHASES`).  Anything else was still in flight or
        buffered unread when observation stopped — e.g. an end-of-trace
        marker delivered to a monitor that had already finished.  Returns
        the last observed :class:`Message` per offending seq, in first-
        seen order.
        """
        last_seen: dict[int, Message] = {}
        terminal: set[int] = set()
        for e in self.events:
            seq = e.message.seq
            if seq not in last_seen:
                last_seen[seq] = e.message
            if e.phase in TERMINAL_PHASES:
                terminal.add(seq)
            else:
                last_seen[seq] = e.message
        return [m for seq, m in last_seen.items() if seq not in terminal]

    def assert_terminal(self) -> None:
        """Raise :class:`ProtocolError` unless every message terminated.

        Use in tests that expect a fully drained run: every sent or
        delivered message must have been consumed, dropped or lost.
        """
        leftovers = self.unterminated()
        if leftovers:
            detail = ", ".join(
                f"#{m.seq} {m.src}->{m.dest} [{m.kind}]" for m in leftovers[:10]
            )
            raise ProtocolError(
                f"{len(leftovers)} message(s) never reached a terminal "
                f"phase: {detail}"
            )


class InvariantChecker:
    """An observer that raises :class:`ProtocolError` on violation.

    Register invariant callbacks with :meth:`add`; each receives the
    event and this checker (for cross-event state, use attributes on a
    closure or subclass).
    """

    def __init__(self) -> None:
        self._invariants: list[tuple[str, Callable[[MessageEvent], bool]]] = []

    def add(
        self, name: str, predicate: Callable[[MessageEvent], bool]
    ) -> "InvariantChecker":
        """Register an invariant; ``predicate`` returns False on violation."""
        self._invariants.append((name, predicate))
        return self

    def __call__(self, event: MessageEvent) -> None:
        for name, predicate in self._invariants:
            if not predicate(event):
                raise ProtocolError(
                    f"invariant {name!r} violated at t={event.time}: "
                    f"{event.phase.value} {event.message.src} -> "
                    f"{event.message.dest} [{event.message.kind}]"
                )


def token_uniqueness_checker(token_kind: str = "token") -> InvariantChecker:
    """An invariant checker asserting a single token in the system.

    Counts token messages in flight plus "held" (consumed but not yet
    re-sent): at any instant, sends must alternate with consumptions —
    a second token send before the previous one was consumed means the
    token was duplicated.
    """
    state = {"in_flight": 0}
    checker = InvariantChecker()

    def track(event: MessageEvent) -> bool:
        if event.message.kind != token_kind:
            return True
        if event.phase is MessagePhase.SENT:
            state["in_flight"] += 1
            return state["in_flight"] <= 1
        if event.phase is MessagePhase.CONSUMED:
            state["in_flight"] -= 1
            return state["in_flight"] >= 0
        return True

    checker.add("single_token", track)
    return checker
