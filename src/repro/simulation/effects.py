"""Effects: the vocabulary actor coroutines use to talk to the kernel.

Actors are written as Python generators that *yield* effect objects and
receive results back, giving the blocking-receive style of the paper's
pseudocode directly::

    def run(self):
        msg = yield Receive(kind_is("candidate"))   # blocks
        yield Send("M3", token, kind="token", size_bits=64)
        yield Work(5)                               # charge 5 work units

The kernel interprets each effect and resumes the generator with the
effect's result (the received :class:`Message` for ``Receive``, ``None``
otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["Message", "Send", "Receive", "Sleep", "Work", "kind_is"]


@dataclass(frozen=True, slots=True)
class Message:
    """A delivered message, as seen by the receiving actor.

    ``size_bits`` is the accounting size used for the paper's
    bit-complexity measurements; it is declared by the sender, not
    derived from the payload.

    ``corrupted`` is set by the fault-injection layer
    (:mod:`repro.simulation.faults`): it models a payload whose checksum
    fails at the receiver.  Hardened protocols discard such messages and
    rely on retransmission; plain protocols see the flag and nothing
    else.
    """

    seq: int
    src: str
    dest: str
    kind: str
    payload: object
    size_bits: int
    sent_at: float
    delivered_at: float
    corrupted: bool = False


@dataclass(frozen=True, slots=True)
class Send:
    """Asynchronously send ``payload`` to actor ``dest``.

    The send itself takes no simulated time; delivery is scheduled by the
    kernel's channel model.
    """

    dest: str
    payload: object
    kind: str = "msg"
    size_bits: int = 0

    def __post_init__(self) -> None:
        if self.size_bits < 0:
            raise ValueError(f"size_bits must be >= 0, got {self.size_bits}")


@dataclass(frozen=True, slots=True)
class Receive:
    """Block until a message matching ``match`` is available.

    ``match`` is a predicate over :class:`Message`; ``None`` matches any
    message.  Among buffered matching messages the earliest-delivered one
    is returned (ties broken by sequence number).  ``description`` is
    used in deadlock reports.

    With a ``timeout``, the receive resolves to ``None`` after that many
    simulated time units without a matching message — the primitive
    timeout-based protocols (e.g. election algorithms) are built on.
    """

    match: Callable[[Message], bool] | None = None
    description: str = ""
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")


@dataclass(frozen=True, slots=True)
class Sleep:
    """Suspend the actor for ``duration`` simulated time units."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")


@dataclass(frozen=True, slots=True)
class Work:
    """Charge ``units`` work units to the actor.

    Simulated time advances by ``units * kernel.work_time_scale`` (zero
    by default, so work is pure accounting unless a makespan experiment
    turns the scale up).
    """

    units: int = 1

    def __post_init__(self) -> None:
        if self.units < 0:
            raise ValueError(f"units must be >= 0, got {self.units}")


def kind_is(*kinds: str) -> Callable[[Message], bool]:
    """A ``Receive`` matcher accepting any of the given message kinds."""
    allowed = frozenset(kinds)

    def match(message: Message) -> bool:
        return message.kind in allowed

    return match
