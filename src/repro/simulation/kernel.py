"""Deterministic discrete-event simulation kernel.

The kernel schedules actor coroutines over simulated time:

* **Sends** are non-blocking; delivery is scheduled per the channel
  model's latency, with FIFO clamping on FIFO channels.
* **Receives** block until a matching message is buffered.
* **Deadlock** — an empty event queue with blocked actors — is reported,
  not raised: the paper's online detection protocols legitimately block
  forever when the monitored predicate never becomes true, and the
  detection runner maps that outcome to "not detected".

Determinism: the event queue is ordered by ``(time, sequence)``; all
randomness (latency draws) comes from one seeded generator; equal-time
events fire in schedule order.  Fault injection (drop / duplication /
corruption-marking / crash-restart, see :mod:`.faults`) draws from a
*separate* generator derived from the same seed, so enabling faults
never perturbs the latency stream, and a fault schedule is reproducible
from ``(seed, plan)`` alone.

Envelope interning: every send allocates a :class:`Message`, the
dominant allocation of a protocol run.  When nothing outside the
kernel can retain an envelope — no observers (tracers keep ``Message``
references) and ``work_time_scale == 0`` (``Work`` never suspends an
actor mid-message) — consumed envelopes park in a graveyard and are
recycled for later sends, flushed to the free pool only at event
boundaries so the consuming actor's synchronous slice always sees its
fields intact.  Actors must copy any envelope field they need past
their next *blocking* yield (``Receive``/``Sleep``); payloads are
never recycled.  The pool changes allocation behaviour only — message
contents, ordering and metrics are byte-identical either way.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Generator

from repro.common.errors import SimulationError
from repro.common.rng import spawn_rng
from repro.simulation.actors import Actor
from repro.simulation.effects import Message, Receive, Send, Sleep, Work
from repro.simulation.faults import (
    CrashEvent,
    FaultPlan,
    LeaveEvent,
    PartitionEvent,
)
from repro.simulation.instrumentation import FaultSummary, MetricsBoard
from repro.simulation.network import ChannelModel, FixedLatency
from repro.simulation.observers import (
    ActorEvent,
    ActorPhase,
    MessageEvent,
    MessagePhase,
    PartitionNotice,
    PartitionPhase,
)

__all__ = ["Kernel", "SimulationResult"]


class _Status(Enum):
    NEW = "new"
    READY = "ready"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    FINISHED = "finished"
    CRASHED = "crashed"
    LEFT = "left"


@dataclass(slots=True)
class _ActorState:
    actor: Actor
    gen: Generator | None = None
    status: _Status = _Status.NEW
    mailbox: list[Message] = field(default_factory=list)
    pending_receive: Receive | None = None
    # Incremented on every block; lets stale receive-timeout events be
    # recognized and ignored after the actor has already been resumed.
    block_epoch: int = 0
    # Incremented on every crash; lets stale resume events (sleeps and
    # work scheduled before the crash) be recognized and ignored after
    # the actor has restarted.
    incarnation: int = 0
    # True for actors registered via spawn_new — genuinely new members
    # whose start is reported to observers as a "joined" lifecycle event.
    joiner: bool = False


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of a kernel run.

    ``deadlocked`` is True when the run ended with at least one actor
    still blocked on a receive; ``blocked`` maps those actors to the
    description of what they were waiting for.  ``faults`` summarizes
    injected failures (``None`` unless the kernel ran with a fault
    plan); ``crashed`` names actors that were down when the run ended.
    """

    time: float
    steps: int
    deadlocked: bool
    blocked: dict[str, str]
    messages_delivered: int
    faults: FaultSummary | None = None
    crashed: tuple[str, ...] = ()


class Kernel:
    """The simulation engine.

    Parameters
    ----------
    channel_model:
        Latency/ordering policy (default: fixed unit latency, FIFO).
    seed:
        Seed for latency draws.
    work_time_scale:
        Simulated time consumed per ``Work`` unit (0 = work is pure
        accounting; set > 0 for makespan experiments).
    max_steps:
        Safety bound on processed events.
    faults:
        Optional :class:`~repro.simulation.faults.FaultPlan`.  With
        ``None`` (the default) the delivery hot path is unchanged apart
        from a single ``is None`` check per event.
    profiler:
        Optional :class:`~repro.obs.profiling.HotPathProfiler`; when set,
        the kernel wall-clocks its hot paths (event dispatch per action,
        plus event scheduling) under ``kernel.*`` section names.  With
        ``None`` (the default) the loop pays one ``is None`` check per
        event and nothing else.
    """

    def __init__(
        self,
        channel_model: ChannelModel | None = None,
        seed: int = 0,
        work_time_scale: float = 0.0,
        max_steps: int = 5_000_000,
        observers: list | None = None,
        faults: FaultPlan | None = None,
        profiler=None,
    ) -> None:
        if work_time_scale < 0:
            raise SimulationError("work_time_scale must be >= 0")
        if max_steps <= 0:
            raise SimulationError("max_steps must be positive")
        self._observers = list(observers or [])
        self._channel = channel_model or FixedLatency(1.0)
        self._rng = spawn_rng(seed, "kernel")
        self._work_time_scale = work_time_scale
        self._max_steps = max_steps
        self._states: dict[str, _ActorState] = {}
        self._queue: list[tuple[float, int, str, object]] = []
        self._time = 0.0
        self._seq = 0
        self._steps = 0
        self._messages_delivered = 0
        self._last_fifo_delivery: dict[tuple[str, str], float] = {}
        self.metrics = MetricsBoard()
        self._profiler = profiler
        # Envelope interning (see module docstring): free envelopes ready
        # for reuse, plus a graveyard of consumed envelopes that become
        # free only at the next event boundary.  Active only while no
        # observer can retain a Message and Work never suspends a slice.
        self._pool: list[Message] = []
        self._graveyard: list[Message] = []
        self._intern = work_time_scale == 0 and not self._observers
        self._faults = faults
        self._fault_rng = spawn_rng(seed, "faults") if faults is not None else None
        self._live_partitions: list[PartitionEvent] = []
        if faults is not None:
            for crash in faults.all_crashes():
                self._schedule(crash.at, "crash", crash)
            for partition in faults.partitions:
                self._schedule(partition.at, "partition_start", partition)
                if partition.heal_at is not None:
                    self._schedule(
                        partition.heal_at, "partition_heal", partition
                    )
            for leave in faults.leaves:
                self._schedule(leave.at, "leave", leave)
            # Joins are realized by the harness constructing the joining
            # actor and registering it via spawn_new; the kernel itself
            # only needs the leave side of the elastic lifecycle.

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Register a message observer (see :mod:`..observers`).

        Observers are called synchronously at every message send,
        delivery and consumption; they must not mutate simulation state.
        Registering one permanently disables envelope interning, since
        observers may retain the ``Message`` objects they are handed.
        """
        self._observers.append(observer)
        self._intern = False
        self._pool.clear()
        self._graveyard.clear()

    def _notify(self, phase, message: Message) -> None:
        if not self._observers:
            return
        event = MessageEvent(self._time, phase, message)
        for observer in self._observers:
            observer(event)

    def _notify_actor(self, phase_name: str, name: str) -> None:
        """Report a crash/restart to observers that opt in.

        Only observers defining ``on_actor_event`` receive these, so
        message-only observers (and their invariant predicates) are
        unaffected.
        """
        if not self._observers:
            return
        event = ActorEvent(self._time, ActorPhase(phase_name), name)
        for observer in self._observers:
            handler = getattr(observer, "on_actor_event", None)
            if handler is not None:
                handler(event)

    def _notify_partition(
        self, phase_name: str, partition: PartitionEvent
    ) -> None:
        """Report a partition start/heal to observers that opt in."""
        if not self._observers:
            return
        event = PartitionNotice(
            self._time, PartitionPhase(phase_name), partition.groups
        )
        for observer in self._observers:
            handler = getattr(observer, "on_partition_event", None)
            if handler is not None:
                handler(event)

    def add_actor(self, actor: Actor) -> None:
        """Register an actor; it starts when :meth:`run` is next called."""
        if actor.name in self._states:
            raise SimulationError(f"duplicate actor name {actor.name!r}")
        state = _ActorState(actor)
        self._states[actor.name] = state
        actor.attach(self.metrics.register(actor.name), lambda: self._time)
        self._schedule(self._time, "start", actor.name)

    def spawn_at(self, at: float, actor: Actor) -> None:
        """Register an actor that joins the simulation at time ``at``.

        Like :meth:`add_actor`, but the start event is scheduled in the
        future — the kernel-level *join* primitive membership-churn
        experiments build on.  Messages sent to the actor before its
        start time simply wait in its mailbox.
        """
        if at < self._time:
            raise SimulationError(
                f"spawn_at({at}) is in the past (now={self._time})"
            )
        if actor.name in self._states:
            raise SimulationError(f"duplicate actor name {actor.name!r}")
        state = _ActorState(actor)
        self._states[actor.name] = state
        actor.attach(self.metrics.register(actor.name), lambda: self._time)
        self._schedule(at, "start", actor.name)

    def spawn_new(self, at: float, actor: Actor) -> None:
        """Register a *genuinely new* member joining the run at ``at``.

        Like :meth:`spawn_at`, but the actor's start is reported to
        observers as an :class:`~repro.simulation.observers.ActorEvent`
        with phase ``joined`` — the kernel-level primitive behind
        :class:`~repro.simulation.faults.JoinEvent` scale-out faults.
        ``spawn_at`` models a *known* member whose start is merely
        delayed (churn restarts); ``spawn_new`` models elastic growth of
        the membership itself.  Messages sent to the joiner before its
        start time wait in its mailbox, exactly as for ``spawn_at``.
        """
        self.spawn_at(at, actor)
        self._states[actor.name].joiner = True

    def actor(self, name: str) -> Actor:
        """Look up a registered actor by name."""
        try:
            return self._states[name].actor
        except KeyError:
            raise SimulationError(f"unknown actor {name!r}") from None

    @property
    def time(self) -> float:
        """Current simulated time."""
        return self._time

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> SimulationResult:
        """Process events until quiescence (or simulated time ``until``).

        May be called repeatedly; each call continues from the previous
        state (useful after adding more actors).
        """
        queue = self._queue
        pop = heapq.heappop
        horizon = until if until is not None else float("inf")
        while queue:
            if queue[0][0] > horizon:
                break
            self._steps += 1
            if self._steps > self._max_steps:
                raise SimulationError(
                    f"exceeded max_steps={self._max_steps}; "
                    f"likely livelock in a protocol"
                )
            time, _seq, action, payload = pop(queue)
            self._time = time
            if self._graveyard:
                # Event boundary: every actor slice from the previous
                # event has returned, so consumed envelopes are free.
                self._pool.extend(self._graveyard)
                self._graveyard.clear()
            _prof_t0 = (
                self._profiler.start() if self._profiler is not None else 0.0
            )
            if action == "deliver":
                # Delivers dominate every protocol run; dispatch them
                # first and, off the profiler path, drain all remaining
                # same-timestamp delivers in one dispatch.  New events
                # scheduled by a delivery always carry a higher seq than
                # anything queued, so draining in heap order preserves
                # the (time, seq) total order exactly.
                self._deliver(payload)  # type: ignore[arg-type]
                if self._profiler is None:
                    while (
                        queue
                        and queue[0][0] == time
                        and queue[0][2] == "deliver"
                    ):
                        self._steps += 1
                        if self._steps > self._max_steps:
                            raise SimulationError(
                                f"exceeded max_steps={self._max_steps}; "
                                f"likely livelock in a protocol"
                            )
                        if self._graveyard:
                            self._pool.extend(self._graveyard)
                            self._graveyard.clear()
                        self._deliver(pop(queue)[3])  # type: ignore[arg-type]
            elif action == "resume":
                name, value, incarnation = payload  # type: ignore[misc]
                state = self._states[name]
                if state.incarnation != incarnation:
                    continue  # scheduled before a crash; the wakeup died with it
                self._advance(state, value)
            elif action == "start":
                self._start(str(payload))
            elif action == "timeout":
                name, epoch = payload  # type: ignore[misc]
                state = self._states[name]
                if state.status is _Status.BLOCKED and state.block_epoch == epoch:
                    state.pending_receive = None
                    self._advance(state, None)
            elif action == "crash":
                self._crash(payload)  # type: ignore[arg-type]
            elif action == "restart":
                self._restart(str(payload))
            elif action == "leave":
                self._leave(payload)  # type: ignore[arg-type]
            elif action == "partition_start":
                self._live_partitions.append(payload)  # type: ignore[arg-type]
                self.metrics.record_partition()
                self._notify_partition("started", payload)  # type: ignore[arg-type]
            elif action == "partition_heal":
                self._live_partitions.remove(payload)  # type: ignore[arg-type]
                self._notify_partition("healed", payload)  # type: ignore[arg-type]
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown action {action!r}")
            if self._profiler is not None:
                self._profiler.stop(f"kernel.{action}", _prof_t0)
        blocked = {
            name: (state.pending_receive.description if state.pending_receive else "")
            for name, state in self._states.items()
            if state.status is _Status.BLOCKED
        }
        crashed = tuple(
            name
            for name, state in self._states.items()
            if state.status is _Status.CRASHED
        )
        return SimulationResult(
            time=self._time,
            steps=self._steps,
            deadlocked=bool(blocked) and not self._queue,
            blocked=blocked,
            messages_delivered=self._messages_delivered,
            faults=(
                self.metrics.fault_summary() if self._faults is not None else None
            ),
            crashed=crashed,
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _start(self, name: str) -> None:
        state = self._states[name]
        if state.status in (_Status.CRASHED, _Status.LEFT):
            return  # crashed/left before its start event fired
        if state.status is not _Status.NEW:  # pragma: no cover - defensive
            raise SimulationError(f"actor {name} started twice")
        if state.joiner:
            self.metrics.record_join()
            self._notify_actor("joined", name)
        state.gen = state.actor.run()
        if not isinstance(state.gen, Generator):
            raise SimulationError(
                f"{name}.run() must be a generator (did you forget a yield?)"
            )
        self._advance(state, None)

    def _crash(self, crash: CrashEvent) -> None:
        state = self._states.get(crash.actor)
        if state is None:
            raise SimulationError(
                f"fault plan crashes unknown actor {crash.actor!r}"
            )
        if state.status in (_Status.FINISHED, _Status.CRASHED, _Status.LEFT):
            return  # nothing left to kill
        self._notify_actor("crashed", crash.actor)
        self._stop_actor(state, _Status.CRASHED)
        self.metrics.record_crash(crash.actor)
        if crash.restart_at is not None:
            self._schedule(crash.restart_at, "restart", crash.actor)

    def _leave(self, leave: LeaveEvent) -> None:
        """A graceful permanent departure — crash-stop mechanics, but
        reported as a ``left`` lifecycle event and not counted as a
        crash."""
        state = self._states.get(leave.actor)
        if state is None:
            raise SimulationError(
                f"fault plan removes unknown actor {leave.actor!r}"
            )
        if state.status in (_Status.FINISHED, _Status.CRASHED, _Status.LEFT):
            return  # already gone
        self.metrics.record_leave()
        self._notify_actor("left", leave.actor)
        self._stop_actor(state, _Status.LEFT)

    def _stop_actor(self, state: _ActorState, status: _Status) -> None:
        """Destroy an actor's coroutine and mailbox (crash/leave core)."""
        if state.gen is not None:
            state.gen.close()
            state.gen = None
        for msg in state.mailbox:  # mailbox loss
            state.actor.metrics.adjust_space(-msg.size_bits)  # type: ignore[union-attr]
            self.metrics.record_channel_fault(msg.src, msg.dest, "lost_to_crash")
            self._notify_fault(msg, lost=True)
        if self._intern:
            self._graveyard.extend(state.mailbox)
        state.mailbox.clear()
        state.pending_receive = None
        state.block_epoch += 1
        state.incarnation += 1
        state.status = status

    def _restart(self, name: str) -> None:
        state = self._states[name]
        if state.status is not _Status.CRASHED:  # pragma: no cover - defensive
            return
        state.gen = state.actor.restart()
        if not isinstance(state.gen, Generator):
            raise SimulationError(
                f"{name}.restart() must be a generator "
                f"(did you forget a yield?)"
            )
        self.metrics.record_restart(name)
        self._notify_actor("restarted", name)
        self._advance(state, None)

    def _notify_fault(self, message: Message, lost: bool) -> None:
        if not self._observers:
            return
        phase = MessagePhase.LOST if lost else MessagePhase.DROPPED
        self._notify(phase, message)

    def _deliver(self, message: Message) -> None:
        state = self._states.get(message.dest)
        if state is None:
            raise SimulationError(
                f"message {message.kind!r} addressed to unknown actor "
                f"{message.dest!r}"
            )
        if self._faults is not None and state.status in (
            _Status.CRASHED,
            _Status.LEFT,
        ):
            # The destination is down: the message is lost with its mailbox.
            self.metrics.record_channel_fault(
                message.src, message.dest, "lost_to_crash"
            )
            self._notify_fault(message, lost=True)
            if self._intern:
                self._graveyard.append(message)
            return
        self._messages_delivered += 1
        state.mailbox.append(message)
        state.actor.metrics.adjust_space(message.size_bits)  # type: ignore[union-attr]
        if self._observers:
            self._notify(MessagePhase.DELIVERED, message)
        if state.status is _Status.BLOCKED:
            assert state.pending_receive is not None
            msg = self._match_from_mailbox(state, state.pending_receive)
            if msg is not None:
                state.pending_receive = None
                state.status = _Status.READY
                self._advance(state, msg)

    # ------------------------------------------------------------------
    # Coroutine driving
    # ------------------------------------------------------------------
    def _advance(self, state: _ActorState, value: object) -> None:
        assert state.gen is not None
        name = state.actor.name
        state.status = _Status.READY
        while True:
            try:
                effect = state.gen.send(value)
            except StopIteration:
                state.status = _Status.FINISHED
                return
            except Exception as exc:
                state.status = _Status.FINISHED
                raise SimulationError(f"actor {name} raised: {exc!r}") from exc
            value = None
            if isinstance(effect, Send):
                self._handle_send(state, effect)
            elif isinstance(effect, (list, tuple)):
                for item in effect:
                    if not isinstance(item, Send):
                        raise SimulationError(
                            f"actor {name} yielded a sequence containing "
                            f"{type(item).__name__}; only Send lists are allowed"
                        )
                    self._handle_send(state, item)
            elif isinstance(effect, Work):
                state.actor.metrics.charge_work(effect.units)  # type: ignore[union-attr]
                if self._work_time_scale > 0 and effect.units > 0:
                    state.status = _Status.SLEEPING
                    self._schedule(
                        self._time + effect.units * self._work_time_scale,
                        "resume",
                        (name, None, state.incarnation),
                    )
                    return
            elif isinstance(effect, Sleep):
                state.status = _Status.SLEEPING
                self._schedule(
                    self._time + effect.duration,
                    "resume",
                    (name, None, state.incarnation),
                )
                return
            elif isinstance(effect, Receive):
                msg = self._match_from_mailbox(state, effect)
                if msg is not None:
                    value = msg
                    continue
                state.status = _Status.BLOCKED
                state.pending_receive = effect
                state.block_epoch += 1
                if effect.timeout is not None:
                    self._schedule(
                        self._time + effect.timeout,
                        "timeout",
                        (name, state.block_epoch),
                    )
                return
            else:
                raise SimulationError(
                    f"actor {name} yielded unsupported effect "
                    f"{type(effect).__name__}"
                )

    def _handle_send(self, state: _ActorState, effect: Send) -> None:
        src = state.actor.name
        if effect.dest not in self._states:
            raise SimulationError(
                f"actor {src} sends to unknown actor {effect.dest!r}"
            )
        state.actor.metrics.charge_send(effect.kind, effect.size_bits)  # type: ignore[union-attr]
        if self._faults is not None:
            self._handle_send_faulty(src, effect)
            return
        latency = self._channel.latency(src, effect.dest, effect.kind, self._rng)
        if latency < 0:  # pragma: no cover - defensive
            raise SimulationError("channel model produced negative latency")
        delivery = self._time + latency
        if self._channel.is_fifo(src, effect.dest, effect.kind):
            key = (src, effect.dest)
            delivery = max(delivery, self._last_fifo_delivery.get(key, 0.0))
            self._last_fifo_delivery[key] = delivery
        message = self._make_message(src, effect, delivery)
        if self._observers:
            self._notify(MessagePhase.SENT, message)
        self._schedule(delivery, "deliver", message)

    def _make_message(
        self, src: str, effect: Send, delivery: float, corrupted: bool = False
    ) -> Message:
        """Build a delivery envelope, reusing a pooled one when possible.

        Reuse mutates a frozen dataclass in place; that is sound only
        because pooled envelopes are provably unreferenced (see the
        module docstring's interning contract).
        """
        pool = self._pool
        if pool:
            msg = pool.pop()
            set_field = object.__setattr__
            set_field(msg, "seq", self._next_seq())
            set_field(msg, "src", src)
            set_field(msg, "dest", effect.dest)
            set_field(msg, "kind", effect.kind)
            set_field(msg, "payload", effect.payload)
            set_field(msg, "size_bits", effect.size_bits)
            set_field(msg, "sent_at", self._time)
            set_field(msg, "delivered_at", delivery)
            set_field(msg, "corrupted", corrupted)
            return msg
        return Message(
            seq=self._next_seq(),
            src=src,
            dest=effect.dest,
            kind=effect.kind,
            payload=effect.payload,
            size_bits=effect.size_bits,
            sent_at=self._time,
            delivered_at=delivery,
            corrupted=corrupted,
        )

    def _handle_send_faulty(self, src: str, effect: Send) -> None:
        """Fault-plan delivery path: drop / duplicate / corruption-mark.

        The sender is always charged for exactly one send (the fault is
        the channel's, not the protocol's); each surviving copy draws
        its own latency and respects the FIFO clamp in schedule order.
        A live partition separating src and dest drops the send before
        any probability draw, so partitions never perturb the fault RNG
        stream of the surviving components.
        """
        assert self._faults is not None and self._fault_rng is not None
        for partition in self._live_partitions:
            if partition.separates(src, effect.dest):
                self.metrics.record_channel_fault(src, effect.dest, "partitioned")
                if self._observers:
                    self._notify_fault(
                        Message(
                            seq=self._next_seq(),
                            src=src,
                            dest=effect.dest,
                            kind=effect.kind,
                            payload=effect.payload,
                            size_bits=effect.size_bits,
                            sent_at=self._time,
                            delivered_at=float("inf"),
                        ),
                        lost=False,
                    )
                return
        copies = self._faults.draw(src, effect.dest, effect.kind, self._fault_rng)
        if not copies:
            self.metrics.record_channel_fault(src, effect.dest, "dropped")
            if self._observers:
                self._notify_fault(
                    Message(
                        seq=self._next_seq(),
                        src=src,
                        dest=effect.dest,
                        kind=effect.kind,
                        payload=effect.payload,
                        size_bits=effect.size_bits,
                        sent_at=self._time,
                        delivered_at=float("inf"),
                    ),
                    lost=False,
                )
            return
        if len(copies) > 1:
            self.metrics.record_channel_fault(src, effect.dest, "duplicated")
        fifo = self._channel.is_fifo(src, effect.dest, effect.kind)
        first = True
        for corrupted in copies:
            latency = self._channel.latency(
                src, effect.dest, effect.kind, self._rng
            )
            if latency < 0:  # pragma: no cover - defensive
                raise SimulationError("channel model produced negative latency")
            delivery = self._time + latency
            if fifo:
                key = (src, effect.dest)
                delivery = max(delivery, self._last_fifo_delivery.get(key, 0.0))
                self._last_fifo_delivery[key] = delivery
            if corrupted:
                self.metrics.record_channel_fault(src, effect.dest, "corrupted")
            message = self._make_message(src, effect, delivery, corrupted)
            if first and self._observers:
                self._notify(MessagePhase.SENT, message)
            first = False
            self._schedule(delivery, "deliver", message)

    def _match_from_mailbox(
        self, state: _ActorState, receive: Receive
    ) -> Message | None:
        for i, msg in enumerate(state.mailbox):
            if receive.match is None or receive.match(msg):
                del state.mailbox[i]
                metrics = state.actor.metrics
                assert metrics is not None
                metrics.charge_receive(msg.kind, msg.size_bits)
                metrics.adjust_space(-msg.size_bits)
                if self._observers:
                    self._notify(MessagePhase.CONSUMED, msg)
                elif self._intern:
                    # Parked until the next event boundary; the consuming
                    # actor's synchronous slice still sees it intact.
                    self._graveyard.append(msg)
                return msg
        return None

    # ------------------------------------------------------------------
    def _schedule(self, time: float, action: str, payload: object) -> None:
        if self._profiler is not None:
            t0 = self._profiler.start()
            self._seq = seq = self._seq + 1
            heapq.heappush(self._queue, (time, seq, action, payload))
            self._profiler.stop("kernel.schedule", t0)
            return
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (time, seq, action, payload))

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq
