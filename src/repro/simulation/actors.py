"""Actor base class for kernel-scheduled coroutines.

Subclasses implement :meth:`Actor.run` as a generator yielding effects
(:mod:`repro.simulation.effects`).  The kernel wires in ``metrics``
(an :class:`~repro.simulation.instrumentation.ActorMetrics`) and a
``now`` callback before starting the coroutine; actors may read both at
any point during execution.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable

from repro.common.errors import SimulationError
from repro.simulation.effects import Message, Receive, Send, Sleep, Work, kind_is
from repro.simulation.instrumentation import ActorMetrics

__all__ = ["Actor"]


class Actor:
    """A named simulated process.

    Attributes
    ----------
    name:
        Unique actor name within a kernel.
    metrics:
        This actor's counters; available once registered with a kernel.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise SimulationError("actor name must be non-empty")
        self.name = name
        self.metrics: ActorMetrics | None = None
        self._now: Callable[[], float] | None = None

    # ------------------------------------------------------------------
    # Kernel wiring
    # ------------------------------------------------------------------
    def attach(self, metrics: ActorMetrics, now: Callable[[], float]) -> None:
        """Called by the kernel when the actor is registered."""
        self.metrics = metrics
        self._now = now

    @property
    def now(self) -> float:
        """Current simulated time (valid once running)."""
        if self._now is None:
            raise SimulationError(f"actor {self.name} is not attached to a kernel")
        return self._now()

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def run(self) -> Generator:
        """The actor's behaviour: a generator yielding effects.

        Subclasses must override.
        """
        raise NotImplementedError

    def restart(self) -> Generator:
        """The actor's behaviour after a crash-restart.

        Called by the kernel when a :class:`~repro.simulation.faults.
        CrashEvent` schedules a restart.  The default re-runs
        :meth:`run` from the top; instance attributes survive the crash
        (they model persisted local state), so crash-tolerant actors can
        either override this or write ``run`` to resume from persisted
        attributes.
        """
        return self.run()

    # ------------------------------------------------------------------
    # Effect constructors (so subclass code reads `yield self.send(...)`)
    # ------------------------------------------------------------------
    def send(
        self, dest: str, payload: object, kind: str = "msg", size_bits: int = 0
    ) -> Send:
        """Construct a Send effect."""
        return Send(dest, payload, kind, size_bits)

    def receive(self, *kinds: str, description: str = "") -> Receive:
        """Construct a Receive effect matching the given kinds (or any)."""
        match = kind_is(*kinds) if kinds else None
        return Receive(match, description or f"{self.name} awaiting {kinds or 'any'}")

    def receive_matching(
        self, match: Callable[[Message], bool], description: str = ""
    ) -> Receive:
        """Construct a Receive effect with an arbitrary matcher."""
        return Receive(match, description)

    def receive_timeout(
        self, *kinds: str, timeout: float, description: str = ""
    ) -> Receive:
        """A Receive that resolves to ``None`` after ``timeout`` time units."""
        match = kind_is(*kinds) if kinds else None
        return Receive(
            match,
            description or f"{self.name} awaiting {kinds or 'any'} (t/o {timeout})",
            timeout=timeout,
        )

    def sleep(self, duration: float) -> Sleep:
        """Construct a Sleep effect."""
        return Sleep(duration)

    def work(self, units: int = 1) -> Work:
        """Construct a Work effect."""
        return Work(units)

    def broadcast(
        self,
        dests: Iterable[str],
        payload: object,
        kind: str = "msg",
        size_bits: int = 0,
    ) -> list[Send]:
        """Construct one Send per destination (yield them one by one)."""
        return [Send(dest, payload, kind, size_bits) for dest in dests]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
