"""Metrics: first-class measurement of the paper's complexity quantities.

The paper's analysis sections (§3.4, §4.4) count four things:

* **messages** — how many, of which kind, per process and in total;
* **bits** — total communication volume (token and candidate sizes);
* **work** — elimination steps, vector scans, dependence processing;
* **space** — buffered snapshots / queues, as a high-water mark.

:class:`ActorMetrics` tracks all four per actor; :class:`MetricsBoard`
aggregates across actors.  The kernel charges message counts/bits and
mailbox buffering automatically; actors charge work via the ``Work``
effect and internal storage via :meth:`ActorMetrics.adjust_space`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError

__all__ = [
    "LIVENESS_KINDS",
    "ActorMetrics",
    "ChannelFaultStats",
    "FaultSummary",
    "MetricsBoard",
]

#: Message kinds that exist only to keep the failure detector alive —
#: heartbeat broadcasts, the SWIM probe traffic, and the elastic-join
#: handshake (join / welcome / anti-entropy state sync).  Named by
#: string so the simulation layer never imports from ``repro.detect``
#: (layering).
LIVENESS_KINDS = frozenset(
    {
        "heartbeat",
        "ping",
        "ping_ack",
        "ping_req",
        "join",
        "join_ack",
        "state_sync",
        "feed_join",
    }
)


@dataclass
class ChannelFaultStats:
    """Injected-fault counters for one directed channel ``(src, dest)``.

    Populated by the kernel only when a fault plan is active; the
    ``lost_to_crash`` counter also covers mailbox loss at crash time.
    """

    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    lost_to_crash: int = 0
    partitioned: int = 0


@dataclass(frozen=True, slots=True)
class FaultSummary:
    """Whole-run fault totals, attached to ``SimulationResult.faults``."""

    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    lost_to_crash: int = 0
    partitioned: int = 0
    crashes: int = 0
    restarts: int = 0
    partitions: int = 0
    joins: int = 0
    leaves: int = 0
    liveness_bytes: int = 0

    @property
    def total_message_faults(self) -> int:
        """All message-level fault events (excludes crash lifecycle)."""
        return (
            self.dropped + self.duplicated + self.corrupted
            + self.lost_to_crash + self.partitioned
        )

    def as_dict(self) -> dict[str, int]:
        """JSON-ready totals (includes the derived message-fault total)."""
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "lost_to_crash": self.lost_to_crash,
            "partitioned": self.partitioned,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "partitions": self.partitions,
            "joins": self.joins,
            "leaves": self.leaves,
            "liveness_bytes": self.liveness_bytes,
            "total_message_faults": self.total_message_faults,
        }


@dataclass
class ActorMetrics:
    """Counters for one actor."""

    name: str
    messages_sent: int = 0
    bits_sent: int = 0
    messages_received: int = 0
    bits_received: int = 0
    work_units: int = 0
    buffered_bits: int = 0
    buffered_bits_high_water: int = 0
    sent_by_kind: dict[str, int] = field(default_factory=dict)
    sent_bits_by_kind: dict[str, int] = field(default_factory=dict)
    received_by_kind: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def charge_send(self, kind: str, size_bits: int) -> None:
        """Record an outgoing message (called by the kernel)."""
        self.messages_sent += 1
        self.bits_sent += size_bits
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1
        self.sent_bits_by_kind[kind] = (
            self.sent_bits_by_kind.get(kind, 0) + size_bits
        )

    def charge_receive(self, kind: str, size_bits: int) -> None:
        """Record a consumed message (called by the kernel)."""
        self.messages_received += 1
        self.bits_received += size_bits
        self.received_by_kind[kind] = self.received_by_kind.get(kind, 0) + 1

    def charge_work(self, units: int) -> None:
        """Record work units (called by the kernel for ``Work`` effects)."""
        self.work_units += units

    def adjust_space(self, delta_bits: int) -> None:
        """Adjust the buffered-storage gauge by ``delta_bits``.

        Called by the kernel for mailbox occupancy and by actors for
        internal queues they retain after consuming messages.  The gauge
        must never go negative — that indicates a double release.
        """
        self.buffered_bits += delta_bits
        if self.buffered_bits < 0:
            raise SimulationError(
                f"actor {self.name}: buffered bits went negative "
                f"({self.buffered_bits})"
            )
        if self.buffered_bits > self.buffered_bits_high_water:
            self.buffered_bits_high_water = self.buffered_bits


class MetricsBoard:
    """Per-actor metrics plus cross-actor aggregation."""

    def __init__(self) -> None:
        self._actors: dict[str, ActorMetrics] = {}
        self._channel_faults: dict[tuple[str, str], ChannelFaultStats] = {}
        self._crashes: dict[str, int] = {}
        self._restarts: dict[str, int] = {}
        self._partitions: int = 0
        self._joins: int = 0
        self._leaves: int = 0

    def register(self, name: str) -> ActorMetrics:
        """Create (or return) the metrics record for ``name``."""
        if name not in self._actors:
            self._actors[name] = ActorMetrics(name)
        return self._actors[name]

    def of(self, name: str) -> ActorMetrics:
        """The metrics record for ``name``; raises if unknown."""
        try:
            return self._actors[name]
        except KeyError:
            raise SimulationError(f"no metrics for unknown actor {name!r}") from None

    def actors(self) -> dict[str, ActorMetrics]:
        """All actor metrics, keyed by name (live references)."""
        return dict(self._actors)

    # ------------------------------------------------------------------
    # Fault accounting (populated by the kernel's fault layer)
    # ------------------------------------------------------------------
    def record_channel_fault(self, src: str, dest: str, what: str) -> None:
        """Count one injected fault on the directed channel ``src->dest``.

        ``what`` names a :class:`ChannelFaultStats` counter (``dropped``
        / ``duplicated`` / ``corrupted`` / ``lost_to_crash`` /
        ``partitioned``).
        """
        stats = self._channel_faults.get((src, dest))
        if stats is None:
            stats = self._channel_faults[(src, dest)] = ChannelFaultStats()
        setattr(stats, what, getattr(stats, what) + 1)

    def record_crash(self, actor: str) -> None:
        """Count one crash of ``actor``."""
        self._crashes[actor] = self._crashes.get(actor, 0) + 1

    def record_restart(self, actor: str) -> None:
        """Count one restart of ``actor``."""
        self._restarts[actor] = self._restarts.get(actor, 0) + 1

    def record_partition(self) -> None:
        """Count one partition window becoming live."""
        self._partitions += 1

    def record_join(self) -> None:
        """Count one live join (a genuinely new member starting)."""
        self._joins += 1

    def record_leave(self) -> None:
        """Count one graceful permanent departure."""
        self._leaves += 1

    def channel_faults(self) -> dict[tuple[str, str], ChannelFaultStats]:
        """Per-channel fault counters, keyed by ``(src, dest)``."""
        return dict(self._channel_faults)

    def crash_counts(self) -> dict[str, int]:
        """Crashes per actor name."""
        return dict(self._crashes)

    def restart_counts(self) -> dict[str, int]:
        """Restarts per actor name."""
        return dict(self._restarts)

    def fault_summary(self) -> FaultSummary:
        """Whole-run totals across all channels and actors."""
        return FaultSummary(
            dropped=sum(s.dropped for s in self._channel_faults.values()),
            duplicated=sum(s.duplicated for s in self._channel_faults.values()),
            corrupted=sum(s.corrupted for s in self._channel_faults.values()),
            lost_to_crash=sum(
                s.lost_to_crash for s in self._channel_faults.values()
            ),
            partitioned=sum(
                s.partitioned for s in self._channel_faults.values()
            ),
            crashes=sum(self._crashes.values()),
            restarts=sum(self._restarts.values()),
            partitions=self._partitions,
            joins=self._joins,
            leaves=self._leaves,
            liveness_bytes=self.liveness_bytes(),
        )

    # ------------------------------------------------------------------
    # Aggregates used by the experiment harness
    # ------------------------------------------------------------------
    def total_messages(self, prefix: str | None = None) -> int:
        """Total messages sent (optionally only by actors whose name
        starts with ``prefix``)."""
        return sum(
            m.messages_sent
            for m in self._actors.values()
            if prefix is None or m.name.startswith(prefix)
        )

    def total_bits(self, prefix: str | None = None) -> int:
        """Total bits sent (optionally filtered by actor-name prefix)."""
        return sum(
            m.bits_sent
            for m in self._actors.values()
            if prefix is None or m.name.startswith(prefix)
        )

    def total_work(self, prefix: str | None = None) -> int:
        """Total work units (optionally filtered by actor-name prefix)."""
        return sum(
            m.work_units
            for m in self._actors.values()
            if prefix is None or m.name.startswith(prefix)
        )

    def max_work_per_actor(self, prefix: str | None = None) -> int:
        """The heaviest single actor's work — the paper's "work per process"."""
        values = [
            m.work_units
            for m in self._actors.values()
            if prefix is None or m.name.startswith(prefix)
        ]
        return max(values, default=0)

    def max_space_per_actor(self, prefix: str | None = None) -> int:
        """The largest per-actor buffered-bits high-water mark."""
        values = [
            m.buffered_bits_high_water
            for m in self._actors.values()
            if prefix is None or m.name.startswith(prefix)
        ]
        return max(values, default=0)

    def messages_of_kind(self, kind: str) -> int:
        """Total messages of one kind sent across all actors."""
        return sum(m.sent_by_kind.get(kind, 0) for m in self._actors.values())

    def bits_of_kind(self, kind: str) -> int:
        """Total bits of one message kind sent across all actors."""
        return sum(
            m.sent_bits_by_kind.get(kind, 0) for m in self._actors.values()
        )

    def liveness_bytes(self) -> int:
        """Bytes spent purely on failure-detection traffic.

        Sums the :data:`LIVENESS_KINDS` message kinds — heartbeats plus
        SWIM pings/acks/ping-reqs (piggybacked membership entries ride
        inside those sizes).  This is the quantity the membership-scale
        benchmark compares across detector modes.
        """
        bits = sum(self.bits_of_kind(kind) for kind in LIVENESS_KINDS)
        return bits // 8

    # ------------------------------------------------------------------
    # Telemetry snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready snapshot of the whole board.

        Used by ``repro detect --json`` and embedded in span-trace run
        headers; the units are the paper's (messages, bits, work units,
        buffered-bit high-water marks).
        """
        actors = {
            name: {
                "messages_sent": m.messages_sent,
                "bits_sent": m.bits_sent,
                "messages_received": m.messages_received,
                "bits_received": m.bits_received,
                "work_units": m.work_units,
                "space_high_water_bits": m.buffered_bits_high_water,
                "sent_by_kind": dict(m.sent_by_kind),
                "sent_bits_by_kind": dict(m.sent_bits_by_kind),
                "received_by_kind": dict(m.received_by_kind),
            }
            for name, m in sorted(self._actors.items())
        }
        snap: dict = {
            "totals": {
                "messages": self.total_messages(),
                "bits": self.total_bits(),
                "work": self.total_work(),
                "max_work_per_actor": self.max_work_per_actor(),
                "max_space_bits_per_actor": self.max_space_per_actor(),
                "liveness_bytes": self.liveness_bytes(),
            },
            "actors": actors,
        }
        by_kind = {
            kind: {
                "messages": self.messages_of_kind(kind),
                "bits": self.bits_of_kind(kind),
            }
            for kind in sorted(LIVENESS_KINDS)
            if self.messages_of_kind(kind)
        }
        if by_kind:
            snap["totals"]["liveness_by_kind"] = by_kind
        if self._channel_faults or self._crashes or self._restarts:
            snap["channel_faults"] = {
                f"{src}->{dest}": {
                    "dropped": s.dropped,
                    "duplicated": s.duplicated,
                    "corrupted": s.corrupted,
                    "lost_to_crash": s.lost_to_crash,
                    "partitioned": s.partitioned,
                }
                for (src, dest), s in sorted(self._channel_faults.items())
            }
            snap["crashes"] = dict(self._crashes)
            snap["restarts"] = dict(self._restarts)
        return snap
