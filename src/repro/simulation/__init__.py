"""Discrete-event simulation: kernel, actors, effects, channels, replay."""

from repro.simulation.actors import Actor
from repro.simulation.effects import Message, Receive, Send, Sleep, Work, kind_is
from repro.simulation.instrumentation import ActorMetrics, MetricsBoard
from repro.simulation.kernel import Kernel, SimulationResult
from repro.simulation.network import (
    ChannelModel,
    ExponentialLatency,
    FixedLatency,
    KindBiasedLatency,
    UniformLatency,
)
from repro.simulation.observers import (
    EventLog,
    InvariantChecker,
    MessageEvent,
    MessagePhase,
    token_uniqueness_checker,
)
from repro.simulation.replay import (
    CANDIDATE_KIND,
    END_OF_TRACE_KIND,
    FeedItem,
    SnapshotFeeder,
)

__all__ = [
    "Actor",
    "Message",
    "Send",
    "Receive",
    "Sleep",
    "Work",
    "kind_is",
    "Kernel",
    "SimulationResult",
    "ActorMetrics",
    "MetricsBoard",
    "ChannelModel",
    "FixedLatency",
    "ExponentialLatency",
    "UniformLatency",
    "KindBiasedLatency",
    "CANDIDATE_KIND",
    "END_OF_TRACE_KIND",
    "FeedItem",
    "SnapshotFeeder",
    "EventLog",
    "InvariantChecker",
    "MessageEvent",
    "MessagePhase",
    "token_uniqueness_checker",
]
