"""Discrete-event simulation: kernel, actors, effects, channels, replay."""

from repro.simulation.actors import Actor
from repro.simulation.effects import Message, Receive, Send, Sleep, Work, kind_is
from repro.simulation.faults import CrashEvent, FaultPlan, FaultRule
from repro.simulation.instrumentation import (
    ActorMetrics,
    ChannelFaultStats,
    FaultSummary,
    MetricsBoard,
)
from repro.simulation.kernel import Kernel, SimulationResult
from repro.simulation.network import (
    ChannelModel,
    ExponentialLatency,
    FixedLatency,
    KindBiasedLatency,
    NonFifoLatency,
    UniformLatency,
)
from repro.simulation.observers import (
    TERMINAL_PHASES,
    ActorEvent,
    ActorPhase,
    EventLog,
    InvariantChecker,
    MessageEvent,
    MessagePhase,
    token_uniqueness_checker,
)
from repro.simulation.replay import (
    CANDIDATE_KIND,
    END_OF_TRACE_KIND,
    FeedItem,
    SnapshotFeeder,
)

__all__ = [
    "Actor",
    "Message",
    "Send",
    "Receive",
    "Sleep",
    "Work",
    "kind_is",
    "Kernel",
    "SimulationResult",
    "ActorMetrics",
    "ChannelFaultStats",
    "FaultSummary",
    "MetricsBoard",
    "FaultPlan",
    "FaultRule",
    "CrashEvent",
    "ChannelModel",
    "FixedLatency",
    "ExponentialLatency",
    "UniformLatency",
    "KindBiasedLatency",
    "NonFifoLatency",
    "CANDIDATE_KIND",
    "END_OF_TRACE_KIND",
    "FeedItem",
    "SnapshotFeeder",
    "EventLog",
    "InvariantChecker",
    "MessageEvent",
    "MessagePhase",
    "ActorEvent",
    "ActorPhase",
    "TERMINAL_PHASES",
    "token_uniqueness_checker",
]
