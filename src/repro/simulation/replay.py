"""Trace replay: application-side actors that feed monitors.

In the paper's architecture (Fig. 1) application processes send *local
snapshots* to their monitor processes over FIFO channels.  For detection
experiments we replay a recorded computation: a :class:`SnapshotFeeder`
actor plays the role of one application process, delivering that
process's snapshot stream at the timestamps recorded in the trace and
then an **end-of-trace marker**.

The end-of-trace marker is this library's termination extension (see
DESIGN.md): the paper's monitors block forever when no further candidate
will arrive; the marker lets a monitor conclude "this process has no
further candidates" and abort the protocol with a definitive
"not detected" verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.simulation.actors import Actor

__all__ = [
    "CANDIDATE_KIND",
    "END_OF_TRACE_KIND",
    "FeedItem",
    "SnapshotFeeder",
]

# Message kinds on the application -> monitor channel.
CANDIDATE_KIND = "candidate"
END_OF_TRACE_KIND = "end_of_trace"


@dataclass(frozen=True, slots=True)
class FeedItem:
    """One snapshot to deliver: payload, accounting size, and emission time.

    ``time`` is the simulated instant the application process emits the
    snapshot (transit latency is added by the channel model).  ``None``
    means "one spacing unit after the previous item".
    """

    payload: object
    size_bits: int
    time: float | None = None


class SnapshotFeeder(Actor):
    """Replays one process's snapshot stream into its monitor.

    Parameters
    ----------
    name:
        Actor name (conventionally ``app-<pid>``).
    monitor:
        Destination actor name (the mated monitor process).
    items:
        The snapshot stream, in emission order; item times must be
        nondecreasing.
    spacing:
        Gap used for items without explicit timestamps.
    """

    def __init__(
        self,
        name: str,
        monitor: str,
        items: list[FeedItem],
        spacing: float = 1.0,
    ) -> None:
        super().__init__(name)
        if spacing <= 0:
            raise ConfigurationError(f"spacing must be > 0, got {spacing}")
        timed = [i.time for i in items if i.time is not None]
        if timed != sorted(timed):
            raise ConfigurationError("feed item times must be nondecreasing")
        self._monitor = monitor
        self._items = list(items)
        self._spacing = spacing

    def run(self):
        for item in self._items:
            if item.time is not None:
                if item.time > self.now:
                    yield self.sleep(item.time - self.now)
            else:
                yield self.sleep(self._spacing)
            yield self.send(
                self._monitor,
                item.payload,
                kind=CANDIDATE_KIND,
                size_bits=item.size_bits,
            )
        yield self.send(self._monitor, None, kind=END_OF_TRACE_KIND, size_bits=1)
