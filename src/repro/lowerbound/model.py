"""The §5 computation model: queues of chain elements, steps S1 and S2.

Theorem 5.1 models online conjunctive-predicate detection as a game on a
poset of size ``n*m`` decomposed into ``n`` chains of ``m`` elements,
each accessed through a queue showing only its head:

* **S1** — compare all queue heads in parallel (learn the pairwise
  order relations among current heads);
* **S2** — delete the heads of any number of queues.

A deletion is *legal* only for a head known to be dominated (smaller
than some other current head); deleting anything else is unsound — an
adversary could exhibit a consistent cut containing it.  The algorithm
must decide whether the poset contains an antichain of size ``n``
(equivalently: whether the WCP has a consistent satisfying cut).

:class:`Oracle` is the game interface; :class:`ExplicitPosetOracle`
answers from a concrete poset (used to check strategies for
correctness); the adaptive adversary lives in
:mod:`repro.lowerbound.adversary`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.common.errors import LowerBoundError
from repro.common.types import StateRef
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.evaluator import candidate_intervals
from repro.trace.computation import Computation

__all__ = ["HeadComparison", "Oracle", "ExplicitPosetOracle"]


@dataclass(frozen=True, slots=True)
class HeadComparison:
    """Result of one S1 step.

    ``alive`` flags which queues are non-empty; ``relations`` lists the
    known dominations among current heads as ``(loser, winner)`` queue
    index pairs (head of ``loser`` < head of ``winner``).  Queues not
    mentioned in any relation have pairwise-concurrent heads.
    """

    alive: tuple[bool, ...]
    relations: tuple[tuple[int, int], ...]

    def dominated(self) -> set[int]:
        """Queue indices whose head is known to be dominated."""
        return {loser for loser, _winner in self.relations}


class Oracle(ABC):
    """One game instance: ``n`` queues of at most ``m`` elements.

    Tracks the step counts the theorem bounds: S1 comparisons, S2
    deletion steps, and total elements deleted.
    """

    def __init__(self, n: int, m: int) -> None:
        if n < 1 or m < 1:
            raise LowerBoundError(f"need n, m >= 1, got n={n}, m={m}")
        self.n = n
        self.m = m
        self.s1_steps = 0
        self.s2_steps = 0
        self.deletions = 0

    # ------------------------------------------------------------------
    def compare_heads(self) -> HeadComparison:
        """Step S1."""
        self.s1_steps += 1
        return self._compare()

    def delete_heads(self, queues: set[int]) -> None:
        """Step S2.  Every queue must currently have a *dominated* head."""
        if not queues:
            raise LowerBoundError("S2 must delete at least one head")
        self.s2_steps += 1
        legal = self._compare_silent().dominated()
        for q in sorted(queues):
            if q not in legal:
                raise LowerBoundError(
                    f"illegal deletion: head of queue {q} is not dominated"
                )
        for q in sorted(queues):
            self._delete(q)
            self.deletions += 1

    # ------------------------------------------------------------------
    @abstractmethod
    def _compare(self) -> HeadComparison:
        """Answer S1 (may be adaptive)."""

    def _compare_silent(self) -> HeadComparison:
        """The current truth, for legality checks (not counted as a step)."""
        return self._compare_for_legality()

    @abstractmethod
    def _compare_for_legality(self) -> HeadComparison:
        """Relations used to validate deletions (must not mutate state)."""

    @abstractmethod
    def _delete(self, queue: int) -> None:
        """Remove the head of ``queue``."""

    @abstractmethod
    def queue_size(self, queue: int) -> int:
        """Remaining elements in ``queue`` (the model lets algorithms
        count their own deletions, so exposing sizes loses no generality)."""


class ExplicitPosetOracle(Oracle):
    """An honest oracle over a concrete poset.

    The poset is given by ``n`` chains of element labels plus a
    happened-before predicate over labels.  S1 reports *all* dominations
    among current heads.
    """

    def __init__(self, chains, happened_before) -> None:
        chains = [list(c) for c in chains]
        if not chains:
            raise LowerBoundError("need at least one chain")
        super().__init__(n=len(chains), m=max((len(c) for c in chains), default=0) or 1)
        self._chains = chains
        self._hb = happened_before

    @classmethod
    def from_computation(
        cls, computation: Computation, wcp: WeakConjunctivePredicate
    ) -> "ExplicitPosetOracle":
        """The WCP instance as a §5 game: chains of candidate states.

        An antichain of size ``n`` picking one element per chain is
        exactly a consistent cut satisfying the WCP.
        """
        analysis = computation.analysis()
        chains = [
            [StateRef(pid, interval) for interval in intervals]
            for pid, intervals in sorted(
                candidate_intervals(computation, wcp).items()
            )
        ]
        return cls(chains, analysis.happened_before)

    # ------------------------------------------------------------------
    def _relations(self) -> HeadComparison:
        alive = tuple(bool(c) for c in self._chains)
        relations: list[tuple[int, int]] = []
        for i in range(self.n):
            if not self._chains[i]:
                continue
            for j in range(self.n):
                if i == j or not self._chains[j]:
                    continue
                if self._hb(self._chains[i][0], self._chains[j][0]):
                    relations.append((i, j))
        return HeadComparison(alive, tuple(relations))

    def _compare(self) -> HeadComparison:
        return self._relations()

    def _compare_for_legality(self) -> HeadComparison:
        return self._relations()

    def _delete(self, queue: int) -> None:
        if not self._chains[queue]:
            raise LowerBoundError(f"queue {queue} is already empty")
        self._chains[queue].pop(0)

    def queue_size(self, queue: int) -> int:
        return len(self._chains[queue])
