"""Driving the §5 lower-bound game and collecting its step counts."""

from __future__ import annotations

from dataclasses import dataclass

from repro.lowerbound.adversary import AdversaryOracle
from repro.lowerbound.model import ExplicitPosetOracle, Oracle
from repro.lowerbound.strategies import Strategy
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.trace.computation import Computation

__all__ = ["GameResult", "play", "play_against_adversary", "play_on_computation"]


@dataclass(frozen=True, slots=True)
class GameResult:
    """Outcome and cost of one game."""

    strategy: str
    answer: bool
    s1_steps: int
    s2_steps: int
    deletions: int
    n: int
    m: int

    @property
    def total_steps(self) -> int:
        """S1 + S2 steps — the quantity Theorem 5.1 bounds by Ω(nm)."""
        return self.s1_steps + self.s2_steps

    @property
    def theorem_bound(self) -> int:
        """The theorem's deletion floor for adversarial instances: nm - n."""
        return self.n * self.m - self.n


def play(strategy: Strategy, oracle: Oracle) -> GameResult:
    """Run ``strategy`` against ``oracle`` to completion."""
    answer = strategy.decide(oracle)
    return GameResult(
        strategy=strategy.name,
        answer=answer,
        s1_steps=oracle.s1_steps,
        s2_steps=oracle.s2_steps,
        deletions=oracle.deletions,
        n=oracle.n,
        m=oracle.m,
    )


def play_against_adversary(strategy: Strategy, n: int, m: int) -> GameResult:
    """Play against the Theorem 5.1 adversary (always answers 'no')."""
    return play(strategy, AdversaryOracle(n, m))


def play_on_computation(
    strategy: Strategy,
    computation: Computation,
    wcp: WeakConjunctivePredicate,
) -> GameResult:
    """Play on the honest oracle derived from a real computation.

    The answer equals WCP detectability, connecting the §5 abstraction
    back to the detection algorithms.
    """
    oracle = ExplicitPosetOracle.from_computation(computation, wcp)
    return play(strategy, oracle)
