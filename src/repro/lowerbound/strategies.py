"""Detection strategies restricted to the §5 steps S1/S2.

Each strategy plays the antichain game against an
:class:`~repro.lowerbound.model.Oracle`: repeatedly compare heads (S1),
delete dominated heads (S2), and answer

* **True** (antichain of size n exists — the WCP is detectable) when a
  comparison reports all queues alive and no dominations, or
* **False** when some queue empties.

Against honest oracles all strategies answer identically (they all
implement sound elimination); against the Theorem 5.1 adversary they
all pay ``>= nm - n`` deletions, which is the point of experiment E6.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.lowerbound.model import HeadComparison, Oracle

__all__ = [
    "Strategy",
    "GreedyStrategy",
    "OneAtATimeStrategy",
    "LargestQueueStrategy",
    "SmallestQueueStrategy",
    "available_strategies",
]


class Strategy(ABC):
    """A §5-restricted detection algorithm."""

    name: str = "strategy"

    def decide(self, oracle: Oracle) -> bool:
        """Play the game to completion; return the antichain verdict."""
        while True:
            comparison = oracle.compare_heads()
            if not all(comparison.alive):
                return False
            dominated = comparison.dominated()
            if not dominated:
                return True
            oracle.delete_heads(self.select(comparison, oracle))

    @abstractmethod
    def select(self, comparison: HeadComparison, oracle: Oracle) -> set[int]:
        """Choose which dominated heads to delete this S2 step."""


class GreedyStrategy(Strategy):
    """Delete every dominated head in one S2 step."""

    name = "greedy"

    def select(self, comparison: HeadComparison, oracle: Oracle) -> set[int]:
        return comparison.dominated()


class OneAtATimeStrategy(Strategy):
    """Delete a single dominated head per step (lowest queue index)."""

    name = "one_at_a_time"

    def select(self, comparison: HeadComparison, oracle: Oracle) -> set[int]:
        return {min(comparison.dominated())}


class LargestQueueStrategy(Strategy):
    """Delete the dominated head of the largest remaining queue."""

    name = "largest_queue"

    def select(self, comparison: HeadComparison, oracle: Oracle) -> set[int]:
        return {max(comparison.dominated(), key=lambda q: (oracle.queue_size(q), -q))}


class SmallestQueueStrategy(Strategy):
    """Delete the dominated head of the smallest remaining queue.

    Intuitively tries to finish a queue fast and answer 'no' early; the
    adversary neutralizes this, which makes it a good E6 datapoint.
    """

    name = "smallest_queue"

    def select(self, comparison: HeadComparison, oracle: Oracle) -> set[int]:
        return {min(comparison.dominated(), key=lambda q: (oracle.queue_size(q), q))}


def available_strategies() -> list[Strategy]:
    """One instance of every strategy, for sweeps."""
    return [
        GreedyStrategy(),
        OneAtATimeStrategy(),
        LargestQueueStrategy(),
        SmallestQueueStrategy(),
    ]
