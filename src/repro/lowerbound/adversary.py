"""The adaptive adversary of Theorem 5.1.

The adversary answers S1 comparisons so that **exactly one** head is
ever deletable per step, forcing any S1/S2-restricted algorithm to spend
``Ω(nm)`` steps before it can soundly answer:

* On the first comparison it declares all heads concurrent except that
  the head of the largest queue is smaller than one other head.
* After the algorithm deletes from queue ``i``, the freshly exposed head
  of ``i`` is declared greater than the head of the largest *other*
  queue — and everything else concurrent.  Using the fresh head as the
  dominator keeps the answer history consistent: the fresh element has
  never been compared before, so placing it above one old head
  contradicts nothing.

The game ends when a queue empties; by then at least ``nm - n`` heads
have been deleted one at a time.  (The construction needs ``n >= 2``;
with one chain there is nothing to compare.)
"""

from __future__ import annotations

from repro.common.errors import LowerBoundError
from repro.lowerbound.model import HeadComparison, Oracle

__all__ = ["AdversaryOracle"]


class AdversaryOracle(Oracle):
    """The Theorem 5.1 adversary as an oracle.

    ``n`` chains of exactly ``m`` elements; answers are generated
    adaptively and are mutually consistent (a realizable poset always
    exists extending them).
    """

    def __init__(self, n: int, m: int) -> None:
        if n < 2:
            raise LowerBoundError("the adversary construction needs n >= 2")
        super().__init__(n, m)
        self._sizes = [m] * n
        # Queue whose head was deleted most recently (the fresh dominator).
        self._last_deleted: int | None = None
        # The single (loser, winner) pair currently announced, fixed
        # until the loser's head is deleted (answers must be stable).
        self._current_pair: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    def _choose_pair(self) -> tuple[int, int] | None:
        if any(size == 0 for size in self._sizes):
            return None  # game over: some chain exhausted
        if self._current_pair is not None:
            return self._current_pair
        if self._last_deleted is None:
            # First round: dominate the largest queue's head.
            loser = max(range(self.n), key=lambda q: (self._sizes[q], -q))
            winner = (loser + 1) % self.n
        else:
            winner = self._last_deleted
            candidates = [q for q in range(self.n) if q != winner]
            loser = max(candidates, key=lambda q: (self._sizes[q], -q))
        self._current_pair = (loser, winner)
        return self._current_pair

    def _answer(self) -> HeadComparison:
        alive = tuple(size > 0 for size in self._sizes)
        pair = self._choose_pair()
        relations = () if pair is None else (pair,)
        return HeadComparison(alive, relations)

    def _compare(self) -> HeadComparison:
        return self._answer()

    def _compare_for_legality(self) -> HeadComparison:
        return self._answer()

    def _delete(self, queue: int) -> None:
        if self._sizes[queue] == 0:
            raise LowerBoundError(f"queue {queue} is already empty")
        self._sizes[queue] -= 1
        self._last_deleted = queue
        self._current_pair = None

    def queue_size(self, queue: int) -> int:
        return self._sizes[queue]

    # ------------------------------------------------------------------
    def exhausted(self) -> bool:
        """True once some chain is empty (the algorithm may answer 'no')."""
        return any(size == 0 for size in self._sizes)
