"""The §5 lower-bound game: model, adversary, strategies, driver."""

from repro.lowerbound.adversary import AdversaryOracle
from repro.lowerbound.game import (
    GameResult,
    play,
    play_against_adversary,
    play_on_computation,
)
from repro.lowerbound.model import ExplicitPosetOracle, HeadComparison, Oracle
from repro.lowerbound.strategies import (
    GreedyStrategy,
    LargestQueueStrategy,
    OneAtATimeStrategy,
    SmallestQueueStrategy,
    Strategy,
    available_strategies,
)

__all__ = [
    "Oracle",
    "HeadComparison",
    "ExplicitPosetOracle",
    "AdversaryOracle",
    "Strategy",
    "GreedyStrategy",
    "OneAtATimeStrategy",
    "LargestQueueStrategy",
    "SmallestQueueStrategy",
    "available_strategies",
    "GameResult",
    "play",
    "play_against_adversary",
    "play_on_computation",
]
