"""repro — Distributed detection of weak conjunctive predicates.

A complete, from-scratch reproduction of

    Vijay K. Garg and Craig M. Chase,
    "Distributed Algorithms for Detecting Conjunctive Predicates",
    ICDCS 1995.

The library provides:

* a deterministic discrete-event simulation of asynchronous
  message-passing systems (:mod:`repro.simulation`);
* a trace model of distributed computations with vector clocks,
  communication intervals, consistent cuts and the global-state lattice
  (:mod:`repro.trace`, :mod:`repro.clocks`);
* weak conjunctive predicates and channel predicates
  (:mod:`repro.predicates`);
* the paper's detection algorithms — the §3 single-token vector-clock
  algorithm, the §3.5 multi-token variant, the §4 direct-dependence
  algorithm, the §4.5 parallel variant — plus the centralized checker
  and Cooper–Marzullo lattice baselines (:mod:`repro.detect`);
* live example applications with online detection attached
  (:mod:`repro.apps`);
* the §5 lower-bound game (:mod:`repro.lowerbound`);
* the experiment harness reproducing every complexity claim
  (:mod:`repro.analysis`);
* a parallel sweep harness with workload caching and perf-regression
  baselines gated in CI (:mod:`repro.sweep`).

Quickstart::

    from repro import (
        random_computation, WeakConjunctivePredicate, run_detector,
    )

    comp = random_computation(num_processes=4, sends_per_process=8,
                              seed=7, plant_final_cut=True)
    wcp = WeakConjunctivePredicate.of_flags([0, 1, 2, 3])
    report = run_detector("token_vc", comp, wcp)
    print(report.detected, report.cut)
"""

from repro.clocks import Dependence, DependenceList, IntervalCounter, VectorClock
from repro.common import (
    ClockError,
    ConfigurationError,
    CutError,
    DeadlockError,
    DetectionError,
    InvalidComputationError,
    LowerBoundError,
    ProtocolError,
    ReproError,
    SerializationError,
    SimulationError,
)
from repro.detect import DetectionReport
from repro.predicates import (
    ChannelPredicate,
    LocalPredicate,
    WeakConjunctivePredicate,
    brute_force_first_cut,
    cut_satisfies,
    empty_channel,
    flag_predicate,
    var_true,
)
from repro.trace import (
    Computation,
    ComputationBuilder,
    Cut,
    Event,
    EventKind,
    IntervalAnalysis,
    ProcessTrace,
    WorkloadSpec,
    generate,
    is_consistent_cut,
    never_true_computation,
    random_computation,
    ring_computation,
    worst_case_computation,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "InvalidComputationError",
    "ClockError",
    "CutError",
    "SimulationError",
    "DeadlockError",
    "ProtocolError",
    "DetectionError",
    "ConfigurationError",
    "SerializationError",
    "LowerBoundError",
    # clocks
    "VectorClock",
    "IntervalCounter",
    "Dependence",
    "DependenceList",
    # trace
    "Computation",
    "ComputationBuilder",
    "ProcessTrace",
    "Event",
    "EventKind",
    "IntervalAnalysis",
    "Cut",
    "is_consistent_cut",
    "WorkloadSpec",
    "generate",
    "random_computation",
    "worst_case_computation",
    "never_true_computation",
    "ring_computation",
    # predicates
    "LocalPredicate",
    "flag_predicate",
    "var_true",
    "WeakConjunctivePredicate",
    "ChannelPredicate",
    "empty_channel",
    "cut_satisfies",
    "brute_force_first_cut",
    # detection
    "DetectionReport",
    "run_detector",
    "DETECTORS",
]


def __getattr__(name: str):
    # Loaded lazily: the runner imports every detector module.
    if name in ("run_detector", "DETECTORS"):
        from repro.detect import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
