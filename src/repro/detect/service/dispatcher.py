"""Shared-causality dispatch: N registered predicates, one event stream.

The dispatcher is the service's runtime.  For the flagship §3 detector
(``token_vc``) it *multiplexes*: one simulation kernel hosts

* one hardened :class:`~repro.detect.stack.ReliableFeeder` per app
  process in the registered **union** — the vector-clock snapshot
  stream is extracted once per process and projected to the union's
  width, so the causality layer is computed and shipped exactly once
  however many predicates are registered;
* one :class:`ServiceMonitor` per union process, hosting one small
  per-predicate **token machine** for every registered predicate that
  names its pid.  Each machine runs the exact Fig. 3 visit logic; its
  token travels in :class:`~repro.detect.stack.TokenFrame`\\ s tagged
  with the predicate's ``pred_id`` and multiplexed over the same
  hop-acked transport as a single-predicate run.

Because all co-located predicates read the same ``Sequenced`` stream,
one cumulative candidate ack serves every predicate on the monitor —
the batched-ack half of the multiplexing win; the marginal per-predicate
traffic is just that predicate's token hops plus one done-notification.

Exactness: a machine consumes the pid's candidate stream through a
per-machine cursor over the shared buffer.  The stream is a function of
``(computation, pid, clause)`` (Fig. 2 emission points), the visit logic
is a function of the stream and the token, and Theorem 3.2 makes the
first consistent cut schedule-independent — so every registered
predicate's verdict and cut are byte-identical to an independent
single-predicate run, under any fault schedule the hardened transport
survives.

Detectors without a multiplexed implementation (``token_vc_multi``,
``direct_dep``, ``direct_dep_parallel``, and the offline baselines) run
through the *amortized* path: one independent run per predicate against
the **same** :class:`~repro.trace.computation.Computation` object, whose
per-backend interval analysis is computed once and cached — the shared
causality layer without transport multiplexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.common.errors import ConfigurationError
from repro.common.types import WORD_BITS
from repro.detect.base import (
    GREEN,
    MONITOR_PREFIX,
    RED,
    TOKEN_KIND,
    DetectionReport,
    app_name,
    monitor_name,
    outcome_label,
)
from repro.detect.service.registry import PredicateRegistry
from repro.detect.stack import (
    AdaptiveRetryPolicy,
    ReliableFeeder,
    ReliableInjector,
    RetryPolicy,
    StackGlue,
    TokenFrame,
    harden,
)
from repro.detect.token_vc import TokenVCMonitor, VCToken, candidate_feed_items
from repro.simulation.actors import Actor
from repro.simulation.instrumentation import MetricsBoard
from repro.simulation.kernel import Kernel, SimulationResult
from repro.simulation.network import ChannelModel
from repro.trace.computation import Computation
from repro.trace.cuts import Cut

if TYPE_CHECKING:  # annotation-only: the service stays fault-layer-agnostic
    from repro.simulation.faults import FaultPlan

__all__ = [
    "MUX_DETECTORS",
    "PredicateOutcome",
    "ServiceReport",
    "ServiceMonitor",
    "SharedCausalityDispatcher",
    "service_units",
]

#: Detectors with a true transport-multiplexed service implementation;
#: every other detector runs through the amortized shared-causality path.
MUX_DETECTORS = frozenset({"token_vc"})

#: Frame gid of per-predicate done-notifications (tokens travel on gid 0;
#: the composite dedup key is ``(pred_id, gid)``, so each predicate's
#: notification has its own hop sequence).
_DONE_GID = 1


@dataclass(frozen=True, slots=True)
class _PredDone:
    """Resolver -> coordinator: one predicate's committed verdict."""

    pred_idx: int
    detected: bool
    cut: tuple[int, ...] | None
    detected_at: float | None
    aborted: bool

    def size_bits(self) -> int:
        return WORD_BITS * (2 + len(self.cut or ()))


class _PredMachine:
    """One predicate's Fig. 3 state on one service monitor.

    Plain mutable object stored in a persisted monitor attribute, so
    (like every transport buffer) it survives a crash/restart.  The
    ``cursor`` indexes the monitor's shared candidate buffer;
    ``accepted`` is the §3 persisted acceptance used for crash-resumed
    and re-presented visits.
    """

    __slots__ = (
        "pred_idx", "pred_id", "slot", "n", "itinerary", "proj", "routing",
        "cursor", "accepted", "done", "detected", "detected_cut",
        "detected_at", "aborted", "token_visits",
    )

    def __init__(
        self,
        pred_idx: int,
        pred_id: str,
        slot: int,
        n: int,
        itinerary: list[str],
        proj: tuple[int, ...],
        routing: str,
    ) -> None:
        self.pred_idx = pred_idx
        self.pred_id = pred_id
        self.slot = slot
        self.n = n
        self.itinerary = itinerary
        self.proj = proj
        self.routing = routing
        self.cursor = 0
        self.accepted: tuple[int, ...] | None = None
        self.done = False
        self.detected = False
        self.detected_cut: tuple[int, ...] | None = None
        self.detected_at: float | None = None
        self.aborted = False
        self.token_visits = 0

    def next_red_slot(self, token: VCToken) -> int:
        """The §3 red-slot routing, per this machine's policy."""
        reds = [j for j in range(self.n) if token.color[j] == RED]
        if not reds:
            raise AssertionError("no red slot despite not all green")
        if self.routing == "first":
            return reds[0]
        if self.routing == "most_stale":
            return min(reds, key=lambda j: (token.G[j], j))
        for step in range(1, self.n + 1):  # cyclic
            j = (self.slot + step) % self.n
            if token.color[j] == RED:
                return j
        raise AssertionError("unreachable")


class ServiceCore(Actor):
    """The plain core of a service monitor: per-predicate machine state.

    Only ever run hardened (the service *is* the stack); the composed
    :class:`ServiceMonitor` supplies the run loop.
    """

    def __init__(
        self,
        pid: int,
        u_index: int,
        monitor_names: list[str],
        machines: list[_PredMachine],
        total_predicates: int,
        coordinator: str,
    ) -> None:
        super().__init__(monitor_name(pid))
        self._pid = pid
        self._u_index = u_index
        self._monitors = list(monitor_names)
        self._machines: dict[int, _PredMachine] = {
            m.pred_idx: m for m in machines
        }
        self._total = total_predicates
        self._coordinator = coordinator
        #: Coordinator-only: committed verdicts, keyed by pred_idx.
        self._resolved: dict[int, _PredDone] = {}
        self.token_visits = 0
        self.aborted = False

    def run(self):  # pragma: no cover - the composition always overrides
        raise NotImplementedError(
            "ServiceCore only runs as the hardened ServiceMonitor composition"
        )


class ServiceGlue(StackGlue):
    """Stack glue multiplexing N Fig. 3 machines over one endpoint.

    Differences from the single-predicate
    :class:`~repro.detect.token_vc.TokenVCGlue`:

    * frames are demuxed on ``pred_id`` to the owning machine, which
      runs the identical visit logic with its own persisted acceptance;
    * the candidate inbox drains into a shared persisted buffer read
      through per-machine cursors (a destructive pop would starve the
      other co-located predicates); buffered bits are released from the
      space gauge once every live machine's cursor has passed them;
    * a resolving machine commits its verdict locally and reliably
      notifies the coordinator (the first union monitor), which halts
      the run once **all** registered predicates have resolved.
    """

    def _init_visit_state(self) -> None:
        self._stream: list[tuple[object, int]] = []
        self._stream_released = 0

    # ------------------------------------------------------------------
    def _snapshot_frame(self, frame: TokenFrame) -> TokenFrame:
        body = frame.body
        if isinstance(body, VCToken):
            body = VCToken(G=list(body.G), color=list(body.color))
        return TokenFrame(
            frame.hop, body, frame.gid, frame.epoch, (), frame.pred_id
        )

    def _on_token_accepted(self, frame: TokenFrame) -> None:
        if isinstance(frame.body, VCToken):
            self.token_visits += 1
            machine = self._machines.get(frame.pred_id)
            if machine is not None:
                machine.token_visits += 1

    def _fd_slot(self) -> int:
        return self._u_index

    def _fd_peers(self) -> dict[int, str]:
        return {
            i: name
            for i, name in enumerate(self._monitors)
            if i != self._u_index
        }

    def _halt_targets(self) -> list[str]:
        peers = [m for m in self._monitors if m != self.name]
        feeders = [
            app_name(int(m.removeprefix(MONITOR_PREFIX)))
            for m in self._monitors
        ]
        return peers + feeders

    def _stack_finished(self) -> bool:
        return (
            self.name == self._coordinator
            and len(self._resolved) >= self._total
        )

    def _idle_description(self) -> str:
        return f"{self.name} awaiting service frames"

    # ------------------------------------------------------------------
    # Shared candidate buffer
    # ------------------------------------------------------------------
    def _drain_inbox(self) -> None:
        """Move every in-order candidate into the persisted buffer."""
        while True:
            entry = self._inbox.pop()
            if entry is None:
                return
            self._stream.append(entry)

    def _settle_stream_space(self) -> None:
        """Release buffered bits every live machine has consumed."""
        live = [m.cursor for m in self._machines.values() if not m.done]
        upto = min(live) if live else len(self._stream)
        while self._stream_released < upto:
            self.metrics.adjust_space(-self._stream[self._stream_released][1])
            self._stream_released += 1

    def _machine_candidate(self, machine: _PredMachine):
        """The next candidate for ``machine``, projected to its pids.

        Returns the projected tuple, ``None`` once the stream is
        exhausted, or ``"halt"``.  The cursor advance and the caller's
        token mutation form one atomic block (no yields between them),
        exactly like the single-predicate inbox pop.
        """
        while True:
            self._drain_inbox()
            if machine.cursor < len(self._stream):
                payload = self._stream[machine.cursor][0]
                machine.cursor += 1
                self._settle_stream_space()
                return tuple(payload[u] for u in machine.proj)
            if self._inbox.exhausted:
                return None
            msg = yield from self._fd_receive(
                f"{self.name} awaiting candidate"
            )
            if msg is None:
                if self.halted:
                    return "halt"
                continue  # idle heartbeat tick
            code = yield from self._dispatch(msg)
            if code == "halt":
                return "halt"

    # ------------------------------------------------------------------
    # Frame handling (the StackedMonitor host hooks)
    # ------------------------------------------------------------------
    def _handle_frame(self, frame: TokenFrame):
        body = frame.body
        if isinstance(body, _PredDone):
            return "record"
        machine = self._machines.get(frame.pred_id)
        if machine is None or machine.done:
            # A predicate resolved (or was never hosted here): any
            # straggler token for it is acked by the transport and
            # simply dropped at this layer.
            return "discard"
        token: VCToken = body
        slot = machine.slot
        while token.color[slot] == RED:
            if (
                machine.accepted is not None
                and machine.accepted[slot] > token.G[slot]
            ):
                # Re-presented bound already advanced past: replay the
                # persisted acceptance (see TokenVCGlue._handle_frame).
                token.G[slot] = machine.accepted[slot]
                token.color[slot] = GREEN
                yield self.work(1)
                continue
            entry = yield from self._machine_candidate(machine)
            if entry == "halt":
                return "halt"
            if entry is None:
                return "abort"
            if entry[slot] > token.G[slot]:
                token.G[slot] = entry[slot]
                token.color[slot] = GREEN
                machine.accepted = entry
            yield self.work(1)
        candidate = machine.accepted
        if candidate is not None and token.G[slot] == candidate[slot]:
            for j in range(machine.n):
                if j == slot:
                    continue
                if candidate[j] >= token.G[j]:
                    token.G[j] = candidate[j]
                    token.color[j] = RED
                yield self.work(1)
        yield self.work(machine.n)
        if token.all_green():
            return "detected"
        return "forward"

    def _resolve_frame(self, frame: TokenFrame, code: str) -> None:
        # Atomic with the frame's retirement (no yields).
        if code == "record":
            done: _PredDone = frame.body
            self._resolved[done.pred_idx] = done
            return
        if code == "discard":
            return
        machine = self._machines[frame.pred_id]
        token: VCToken = frame.body
        if code == "abort":
            machine.aborted = True
            self.aborted = True
            self._finish_machine(machine)
        elif code == "detected":
            machine.detected = True
            machine.detected_cut = tuple(token.G)
            machine.detected_at = self.now
            self._finish_machine(machine)
        else:  # forward
            target = machine.next_red_slot(token)
            self._begin_transfer(
                machine.itinerary[target],
                TokenFrame(
                    frame.hop + 1, token, frame.gid, frame.epoch, (),
                    frame.pred_id,
                ),
                token.size_bits() + 2 * WORD_BITS,
            )

    def _finish_machine(self, machine: _PredMachine) -> None:
        """Commit a verdict: mark done, free buffer space, tell the
        coordinator (directly, or via a reliable done-notification)."""
        machine.done = True
        self._settle_stream_space()
        done = _PredDone(
            machine.pred_idx,
            machine.detected,
            machine.detected_cut,
            machine.detected_at,
            machine.aborted,
        )
        if self.name == self._coordinator:
            self._resolved[machine.pred_idx] = done
        else:
            self._begin_transfer(
                self._coordinator,
                TokenFrame(1, done, _DONE_GID, self._epoch, (), machine.pred_idx),
                done.size_bits(),
            )


#: The hardened service monitor: per-predicate machines over the shared
#: stack run loop, composed exactly like every other hardened detector.
ServiceMonitor = harden(ServiceCore, glue=ServiceGlue, name="ServiceMonitor")


@dataclass(frozen=True, slots=True)
class PredicateOutcome:
    """One registered predicate's verdict within a service run."""

    pred_id: str
    detected: bool
    cut: Cut | None = None
    detection_time: float | None = None
    aborted: bool = False
    degraded: bool = False
    report: DetectionReport | None = None

    def __post_init__(self) -> None:
        if self.detected and self.cut is None:
            raise ValueError("a detected outcome must carry the detected cut")

    @property
    def outcome(self) -> str:
        """Three-way verdict, matching :class:`DetectionReport.outcome`."""
        return outcome_label(self.detected, self.degraded)


@dataclass(frozen=True, slots=True)
class ServiceReport:
    """Per-predicate outcomes of one multi-predicate service run."""

    detector: str
    multiplexed: bool
    outcomes: dict[str, PredicateOutcome]
    sim: SimulationResult | None = None
    metrics: MetricsBoard | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def n_predicates(self) -> int:
        return len(self.outcomes)

    @property
    def degraded(self) -> bool:
        """Whether any predicate's verdict is unreliable."""
        return any(out.degraded for out in self.outcomes.values())

    @property
    def summary(self) -> str:
        """An aggregate outcome label (per-predicate detail is in
        :attr:`outcomes`; this feeds trace metadata and sweep records)."""
        if self.degraded:
            return "degraded"
        detected = sum(1 for out in self.outcomes.values() if out.detected)
        return f"detected:{detected}/{self.n_predicates}"

    def outcome(self, pred_id: str) -> PredicateOutcome:
        try:
            return self.outcomes[pred_id]
        except KeyError:
            raise ConfigurationError(
                f"service run has no outcome for predicate {pred_id!r}"
            ) from None


def service_units(report: ServiceReport) -> dict[str, object]:
    """Deterministic counted costs of a service run (cf. ``paper_units``).

    Aggregate counts plus one ``outcome:<pred_id>`` entry per predicate,
    so sweep baselines pin every verdict exactly; wall time is tracked
    separately by the harness.
    """
    units: dict[str, object] = {
        "n_predicates": report.n_predicates,
        "detected_count": sum(
            1 for o in report.outcomes.values() if o.detected
        ),
        "aborted_count": sum(
            1 for o in report.outcomes.values() if o.aborted
        ),
        "degraded_count": sum(
            1 for o in report.outcomes.values() if o.degraded
        ),
    }
    for pred_id, out in report.outcomes.items():
        units[f"outcome:{pred_id}"] = out.outcome
    board = report.metrics
    if board is not None:
        units["mon_msgs"] = board.total_messages(MONITOR_PREFIX)
        units["mon_bits"] = board.total_bits(MONITOR_PREFIX)
        units["total_work"] = board.total_work()
        units["max_work"] = board.max_work_per_actor(MONITOR_PREFIX)
        units["max_space_bits"] = board.max_space_per_actor(MONITOR_PREFIX)
        units["token_hops"] = board.messages_of_kind(TOKEN_KIND)
    for key, value in report.extras.items():
        if isinstance(value, bool):
            units.setdefault(key, int(value))
        elif isinstance(value, (int, float)):
            units.setdefault(key, value)
    return units


def service_trace_meta(
    report: ServiceReport, wall_seconds: float | None = None
) -> dict[str, Any]:
    """Trace-header meta for a service run (consumed by ``repro report``).

    ``predicates`` carries one row per registered predicate;
    ``service`` carries the amortization headline: predicates/sec
    sustained (when the caller measured ``wall_seconds``), the shared
    candidate-stream bits, and the marginal token-traffic bits each
    predicate added on top of that shared stream.
    """
    preds = [
        {
            "pred_id": out.pred_id,
            "outcome": out.outcome,
            "cut": None if out.cut is None else list(out.cut.intervals),
            "detection_time": out.detection_time,
        }
        for out in report.outcomes.values()
    ]
    service: dict[str, Any] = {}
    board = report.metrics
    if board is not None:
        # Imported here: replay sits above detect in the layering.
        from repro.simulation.replay import CANDIDATE_KIND

        token_bits = board.bits_of_kind(TOKEN_KIND)
        service["shared_stream_bits"] = board.bits_of_kind(CANDIDATE_KIND)
        service["marginal_bits_per_predicate"] = (
            token_bits / report.n_predicates if report.n_predicates else 0.0
        )
    if wall_seconds is not None and wall_seconds > 0:
        service["predicates_per_sec"] = report.n_predicates / wall_seconds
    return {
        "n_predicates": report.n_predicates,
        "predicates": preds,
        "service": service,
    }


class SharedCausalityDispatcher:
    """Launch one service run over a snapshot of a predicate registry.

    Parameters mirror :func:`repro.detect.token_vc.detect` where they
    apply; ``detector`` picks the algorithm family.  Detectors in
    :data:`MUX_DETECTORS` run the transport-multiplexed service;
    everything else runs the amortized path (independent runs sharing
    the computation's cached causality analysis).
    """

    def __init__(
        self,
        registry: PredicateRegistry,
        computation: Computation,
        *,
        detector: str = "token_vc",
        seed: int = 0,
        channel_model: ChannelModel | None = None,
        spacing: float = 1.0,
        routing: str = "cyclic",
        observers: list | None = None,
        faults: "FaultPlan | None" = None,
        retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
        clock_backend: str = "list",
        **detector_options: object,
    ) -> None:
        registry.check_against(computation.num_processes)
        if routing not in TokenVCMonitor.ROUTINGS:
            raise ConfigurationError(
                f"routing must be one of {TokenVCMonitor.ROUTINGS}, got {routing!r}"
            )
        if "failure_detector" in detector_options and detector in MUX_DETECTORS:
            raise ConfigurationError(
                "the multiplexed service manages its own membership; "
                "failure_detector is not supported for mux detectors"
            )
        # Snapshot: registry mutations after construction don't affect this run.
        self._entries = list(registry.items())
        self._predicate_map = registry.predicate_map()
        self._computation = computation
        self._detector = detector
        self._seed = seed
        self._channel_model = channel_model
        self._spacing = spacing
        self._routing = routing
        self._observers = observers
        self._faults = faults
        self._retry = retry
        self._clock_backend = clock_backend
        self._detector_options = dict(detector_options)

    # ------------------------------------------------------------------
    def run(self) -> ServiceReport:
        if self._detector in MUX_DETECTORS:
            return self._run_mux()
        return self._run_amortized()

    # ------------------------------------------------------------------
    # The multiplexed path (token_vc)
    # ------------------------------------------------------------------
    def _run_mux(self) -> ServiceReport:
        comp = self._computation
        entries = self._entries
        total = len(entries)
        upids = tuple(sorted({p for _, wcp in entries for p in wcp.pids}))
        u_of = {pid: i for i, pid in enumerate(upids)}
        names = [monitor_name(pid) for pid in upids]
        coordinator = names[0]
        retry = self._retry
        if retry is None:
            retry = AdaptiveRetryPolicy(seed=self._seed)

        kernel = Kernel(
            channel_model=self._channel_model,
            seed=self._seed,
            observers=self._observers,
            faults=self._faults,
        )
        # Per-predicate machine specs, indexed 1..P (tag 0 = untagged).
        machines_of: dict[int, list[_PredMachine]] = {pid: [] for pid in upids}
        for idx, (pred_id, wcp) in enumerate(entries, start=1):
            itinerary = [monitor_name(p) for p in wcp.pids]
            proj = tuple(u_of[p] for p in wcp.pids)
            for slot, pid in enumerate(wcp.pids):
                machines_of[pid].append(
                    _PredMachine(
                        idx, pred_id, slot, wcp.n, itinerary, proj,
                        self._routing,
                    )
                )
        monitors = [
            ServiceMonitor(
                pid, u_index, names, machines_of[pid], total, coordinator,
                retry=retry, failure_detector=None,
            )
            for u_index, pid in enumerate(upids)
        ]
        for mon in monitors:
            kernel.add_actor(mon)
        # One shared feeder stream per union pid, union-projected.
        items_by_pid = candidate_feed_items(
            comp, self._predicate_map, upids, self._clock_backend
        )
        feeders = [
            ReliableFeeder(
                app_name(pid), monitor_name(pid), items_by_pid[pid],
                self._spacing, retry,
            )
            for pid in upids
        ]
        for feeder in feeders:
            kernel.add_actor(feeder)
        injectors = []
        for idx, (pred_id, wcp) in enumerate(entries, start=1):
            token = VCToken.initial(wcp.n)
            injector = ReliableInjector(
                monitor_name(wcp.pids[0]),
                TokenFrame(1, token, 0, 0, (), idx),
                token.size_bits() + 2 * WORD_BITS,
                retry,
                name=f"svc-injector-p{idx}",
            )
            injectors.append(injector)
            kernel.add_actor(injector)
        sim = kernel.run()

        resolved = monitors[0]._resolved
        outcomes: dict[str, PredicateOutcome] = {}
        for idx, (pred_id, wcp) in enumerate(entries, start=1):
            done = resolved.get(idx)
            if done is None:
                # Never resolved (or the notification never reached the
                # coordinator): no verdict was committed for this
                # predicate — an honest degraded outcome.
                outcomes[pred_id] = PredicateOutcome(
                    pred_id, detected=False, degraded=True
                )
            elif done.detected:
                assert done.cut is not None
                outcomes[pred_id] = PredicateOutcome(
                    pred_id,
                    detected=True,
                    cut=Cut(wcp.pids, done.cut),
                    detection_time=done.detected_at,
                )
            else:
                outcomes[pred_id] = PredicateOutcome(
                    pred_id, detected=False, aborted=done.aborted
                )
        participants = [*monitors, *feeders, *injectors]
        extras: dict[str, Any] = {
            "n_predicates": total,
            "union_width": len(upids),
            "token_visits": sum(m.token_visits for m in monitors),
            "candidates_fed": sum(len(items_by_pid[p]) for p in upids),
            # Verdicts that travelled as done-notifications (resolved on a
            # non-coordinator monitor): resolved but not locally done.
            "pred_done_msgs": sum(
                1
                for i in resolved
                if not (
                    i in monitors[0]._machines and monitors[0]._machines[i].done
                )
            ),
            "gave_up": any(getattr(a, "gave_up", False) for a in participants),
            "halt_incomplete": any(
                getattr(a, "halt_incomplete", False) for a in participants
            ),
            "hardened": True,
            "multiplexed": True,
        }
        return ServiceReport(
            detector=self._detector,
            multiplexed=True,
            outcomes=outcomes,
            sim=sim,
            metrics=kernel.metrics,
            extras=extras,
        )

    # ------------------------------------------------------------------
    # The amortized path (every other detector)
    # ------------------------------------------------------------------
    def _run_amortized(self) -> ServiceReport:
        # Imported lazily: the runner imports this package for
        # run_service, so a module-level import would be circular.
        from repro.detect.runner import FAULT_CAPABLE, _OFFLINE, run_detector

        options: dict[str, object] = dict(self._detector_options)
        if self._detector not in _OFFLINE:
            options.setdefault("seed", self._seed)
            options.setdefault("spacing", self._spacing)
            options.setdefault("clock_backend", self._clock_backend)
            if self._channel_model is not None:
                options.setdefault("channel_model", self._channel_model)
            if self._observers is not None:
                options.setdefault("observers", self._observers)
        if self._detector in FAULT_CAPABLE:
            if self._faults is not None:
                options.setdefault("faults", self._faults)
            if self._retry is not None:
                options.setdefault("retry", self._retry)
        elif self._faults is not None:
            raise ConfigurationError(
                f"detector {self._detector!r} cannot run under faults"
            )
        outcomes: dict[str, PredicateOutcome] = {}
        mon_msgs = mon_bits = total_work = 0
        for pred_id, wcp in self._entries:
            report = run_detector(self._detector, self._computation, wcp, **options)
            outcomes[pred_id] = PredicateOutcome(
                pred_id,
                detected=report.detected,
                cut=report.cut,
                detection_time=report.detection_time,
                aborted=bool(report.extras.get("aborted", False)),
                degraded=report.degraded,
                report=report,
            )
            if report.metrics is not None:
                mon_msgs += report.metrics.total_messages(MONITOR_PREFIX)
                mon_bits += report.metrics.total_bits(MONITOR_PREFIX)
                total_work += report.metrics.total_work()
        extras = {
            "n_predicates": len(self._entries),
            "amortized_mon_msgs": mon_msgs,
            "amortized_mon_bits": mon_bits,
            "amortized_total_work": total_work,
            "multiplexed": False,
        }
        return ServiceReport(
            detector=self._detector,
            multiplexed=False,
            outcomes=outcomes,
            extras=extras,
        )
