"""Predicate registry: the service's mutable catalogue of WCPs.

A registry maps caller-chosen predicate ids to
:class:`~repro.predicates.conjunctive.WeakConjunctivePredicate` values.
The :class:`~repro.detect.service.dispatcher.SharedCausalityDispatcher`
snapshots the registry at launch; register/deregister between runs is
cheap (no causality state lives here).

Sharing contract
----------------
Two predicates may bind different *pid sets*, overlapping or disjoint.
But every predicate that names a given pid must bind the **same-named**
local predicate to it: the service runs one candidate stream per app
process (the Fig. 2 ``firstflag`` emission points are a function of the
process and its clause), and a shared stream can only be exact for
clauses with identical emission points.  Same name is the contract for
"same clause" (the workload generators' ``flag_predicate(var)`` obeys
it); :meth:`PredicateRegistry.clause_for` enforces the rule at launch.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import ConfigurationError
from repro.common.types import Pid
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.local import LocalPredicate

__all__ = ["PredicateRegistry"]


class PredicateRegistry:
    """Register / deregister conjunctive predicates by id.

    Ids are caller-chosen non-empty strings; registration order is the
    service's deterministic predicate order (token group tags follow
    it).  The registry may be mutated between service runs; mutating it
    while a dispatcher built from it is running has no effect on that
    run (the dispatcher snapshots the entries at launch).
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[str, WeakConjunctivePredicate] = {}

    # ------------------------------------------------------------------
    def register(self, pred_id: str, wcp: WeakConjunctivePredicate) -> None:
        """Add ``wcp`` under ``pred_id``; duplicate ids are an error."""
        if not isinstance(pred_id, str) or not pred_id:
            raise ConfigurationError(
                f"predicate id must be a non-empty string, got {pred_id!r}"
            )
        if pred_id in self._entries:
            raise ConfigurationError(
                f"predicate id {pred_id!r} is already registered; "
                f"deregister it first or pick a fresh id"
            )
        if not isinstance(wcp, WeakConjunctivePredicate):
            raise ConfigurationError(
                f"can only register WeakConjunctivePredicate, got {type(wcp).__name__}"
            )
        self._entries[pred_id] = wcp

    def deregister(self, pred_id: str) -> WeakConjunctivePredicate:
        """Remove and return the predicate registered under ``pred_id``."""
        try:
            return self._entries.pop(pred_id)
        except KeyError:
            raise ConfigurationError(
                f"no predicate registered under id {pred_id!r}"
            ) from None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pred_id: str) -> bool:
        return pred_id in self._entries

    def ids(self) -> tuple[str, ...]:
        """Registered ids, in registration order."""
        return tuple(self._entries)

    def get(self, pred_id: str) -> WeakConjunctivePredicate:
        """The predicate registered under ``pred_id``."""
        try:
            return self._entries[pred_id]
        except KeyError:
            raise ConfigurationError(
                f"no predicate registered under id {pred_id!r}"
            ) from None

    def items(self) -> Iterator[tuple[str, WeakConjunctivePredicate]]:
        """Iterate ``(pred_id, wcp)`` in registration order."""
        return iter(tuple(self._entries.items()))

    # ------------------------------------------------------------------
    def union_pids(self) -> tuple[Pid, ...]:
        """All pids named by any registered predicate, ascending."""
        pids: set[Pid] = set()
        for wcp in self._entries.values():
            pids.update(wcp.pids)
        return tuple(sorted(pids))

    def clause_for(self, pid: Pid) -> LocalPredicate:
        """The (unique) local predicate bound to ``pid``.

        Raises :class:`~repro.common.errors.ConfigurationError` when two
        registered predicates bind differently-named clauses to the same
        pid — a shared candidate stream cannot serve both exactly.
        Identity is compared through the WCP's registry-facing
        :meth:`~repro.predicates.conjunctive.WeakConjunctivePredicate.bindings`
        spec (clause names, not callables).
        """
        clause: LocalPredicate | None = None
        owner: str | None = None
        for pred_id, wcp in self._entries.items():
            bound = dict(wcp.bindings())
            if pid not in bound:
                continue
            candidate = wcp.clause(pid)
            if clause is None:
                clause, owner = candidate, pred_id
            elif bound[pid] != clause.name:
                raise ConfigurationError(
                    f"predicates {owner!r} and {pred_id!r} bind different "
                    f"local predicates ({clause.name!r} vs "
                    f"{candidate.name!r}) to P{pid}; a shared candidate "
                    f"stream requires one clause per process — run them "
                    f"in separate services"
                )
        if clause is None:
            raise ConfigurationError(
                f"no registered predicate names P{pid}"
            )
        return clause

    def predicate_map(self) -> dict[Pid, LocalPredicate]:
        """One clause per union pid (validated via :meth:`clause_for`)."""
        return {pid: self.clause_for(pid) for pid in self.union_pids()}

    def check_against(self, num_processes: int) -> None:
        """Validate every registered predicate against an ``N``-process
        system, and the one-clause-per-pid sharing contract."""
        if not self._entries:
            raise ConfigurationError(
                "the registry is empty; register at least one predicate"
            )
        for pred_id, wcp in self._entries.items():
            try:
                wcp.check_against(num_processes)
            except ConfigurationError as exc:
                raise ConfigurationError(f"predicate {pred_id!r}: {exc}") from None
        self.predicate_map()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PredicateRegistry({len(self._entries)} predicates)"
