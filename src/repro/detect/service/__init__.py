"""The multi-predicate detection service (the slicer/detector split).

The paper's detectors each own an entire computation: one WCP, one set
of app->monitor streams, one causality layer.  The service amortizes all
of that across many registered predicates:

* :class:`~repro.detect.service.registry.PredicateRegistry` — register /
  deregister conjunctive predicates by id, each mapping app processes to
  local predicates;
* :class:`~repro.detect.service.dispatcher.SharedCausalityDispatcher` —
  runs ONE hardened feeder stream per app process (vector-clock state
  extracted once, candidates projected to the union of registered pids)
  and fans candidate intervals out to exactly the predicates whose
  local-predicate set matches, with one per-predicate §3 token machine
  multiplexed over the shared transport (frames tagged with ``pred_id``,
  see :class:`repro.detect.stack.TokenFrame`).

Exactness contract: every registered predicate's verdict and first cut
are byte-identical to an independent single-predicate run — Theorem 3.2
makes the first consistent cut a function of (computation, predicate)
alone, so multiplexing changes message timing but never the verdict.
"""

from repro.detect.service.dispatcher import (
    PredicateOutcome,
    ServiceReport,
    SharedCausalityDispatcher,
    service_trace_meta,
    service_units,
)
from repro.detect.service.registry import PredicateRegistry

__all__ = [
    "PredicateRegistry",
    "PredicateOutcome",
    "ServiceReport",
    "SharedCausalityDispatcher",
    "service_trace_meta",
    "service_units",
]
