"""Shared detection-protocol vocabulary and the report type.

Every detector — offline baseline or simulated distributed protocol —
produces a :class:`DetectionReport` so experiments can compare them
uniformly.  The wire-kind constants name the message types exchanged by
the simulated protocols; instrumentation filters on them (e.g. counting
token hops is ``metrics.messages_of_kind(TOKEN_KIND)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.simulation.instrumentation import MetricsBoard
from repro.simulation.kernel import SimulationResult
from repro.trace.cuts import Cut

__all__ = [
    "TOKEN_KIND",
    "POLL_KIND",
    "POLL_RESPONSE_KIND",
    "HALT_KIND",
    "RED",
    "GREEN",
    "DetectionReport",
    "MONITOR_PREFIX",
    "APP_PREFIX",
    "monitor_name",
    "app_name",
    "outcome_label",
    "partial_cut_extras",
]

# Message kinds on monitor <-> monitor channels.
TOKEN_KIND = "token"
POLL_KIND = "poll"
POLL_RESPONSE_KIND = "poll_response"
HALT_KIND = "halt"

# Candidate-state colors (paper §3.2).  Red: eliminated, must advance.
# Green: live candidate, no known happened-before violation.
RED = "red"
GREEN = "green"

# Actor naming conventions, used by metrics filtering.
MONITOR_PREFIX = "mon-"
APP_PREFIX = "app-"


def monitor_name(pid: int) -> str:
    """The canonical actor name of process ``pid``'s monitor."""
    return f"{MONITOR_PREFIX}{pid}"


def app_name(pid: int) -> str:
    """The canonical actor name of process ``pid``'s snapshot feeder."""
    return f"{APP_PREFIX}{pid}"


def outcome_label(detected: bool, degraded: bool) -> str:
    """The three-way verdict label shared by every report shape.

    ``detected`` wins; otherwise ``degraded`` distinguishes "ended
    without a verdict under faults" from a definitive ``not_detected``.
    Single-predicate :class:`DetectionReport` and the service's
    per-predicate outcomes both classify through here, so sweep
    baselines and report rows agree on the vocabulary.
    """
    if detected:
        return "detected"
    if degraded:
        return "degraded"
    return "not_detected"


def partial_cut_extras(
    pids: tuple[int, ...] | list[int],
    accepted: list,
    crashed: tuple[str, ...],
) -> dict[str, Any]:
    """Observability report for a *degraded* hardened run.

    ``accepted`` holds each slot's persisted accepted candidate (the
    monitor's full candidate vector, or ``None`` if it never accepted
    one); ``crashed`` names the actors still down when the run ended.
    A pid is **unobservable** when its feeder or monitor was among them:
    no further candidate from that conjunct can ever be observed, so no
    verdict over it is possible and the best the protocol can report is
    the partial cut it had committed to.  ``partial_cut`` gives that
    commitment per slot — the accepted interval index, or ``None``.
    """
    dead = set(crashed)
    unobservable = [
        pid
        for pid in pids
        if app_name(pid) in dead or monitor_name(pid) in dead
    ]
    partial = [
        cand[slot] if cand is not None else None
        for slot, cand in enumerate(accepted)
    ]
    return {"unobservable": unobservable, "partial_cut": partial}


@dataclass(frozen=True, slots=True)
class DetectionReport:
    """Uniform outcome of one detection run.

    Parameters
    ----------
    detector:
        Registry name of the algorithm that produced this report.
    detected:
        Whether the WCP held at some consistent cut of the run.
    cut:
        The detected cut over the WCP's pids (``None`` when undetected).
        All correct detectors return the unique *first* satisfying cut.
    full_cut:
        For algorithms that compute a cut over all ``N`` processes (the
        direct-dependence family), that full cut; otherwise ``None``.
    detection_time:
        Simulated time at which detection was declared (``None`` for
        offline detectors or undetected runs).
    sim:
        Kernel result for simulated protocols (``None`` offline).
    metrics:
        The kernel metrics board for simulated protocols (``None``
        offline; offline detectors report costs in ``extras``).
    extras:
        Algorithm-specific measurements (token hops, comparisons,
        lattice states explored, ...).
    degraded:
        True when a run under fault injection ended without a verdict —
        the protocol neither detected the predicate nor proved it absent
        (e.g. a monitor stayed crashed, or a retransmission budget was
        exhausted).  Always False for fault-free runs: without injected
        faults every detector terminates with a definitive verdict.
    """

    detector: str
    detected: bool
    cut: Cut | None = None
    full_cut: Cut | None = None
    detection_time: float | None = None
    sim: SimulationResult | None = None
    metrics: MetricsBoard | None = None
    extras: dict[str, Any] = field(default_factory=dict)
    degraded: bool = False

    def __post_init__(self) -> None:
        if self.detected and self.cut is None:
            raise ValueError("a detected report must carry the detected cut")
        if not self.detected and self.cut is not None:
            raise ValueError("an undetected report must not carry a cut")
        if self.detected and self.degraded:
            raise ValueError("a detected report cannot be degraded")

    @property
    def outcome(self) -> str:
        """Three-way verdict: ``detected`` / ``not_detected`` / ``degraded``."""
        return outcome_label(self.detected, self.degraded)
