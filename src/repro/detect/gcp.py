"""Generalized conjunctive predicates (GCP) — the [6] extension.

The paper's introduction builds on Garg, Chase, Mitchell & Kilgore's
extension of WCP detection to predicates over *channel states* (e.g.
"the channel from P1 to P2 is empty").  A GCP is a conjunction of local
predicates and channel predicates.

Channel predicates are not monotone in general, so the elimination
arguments behind the paper's token algorithms do not apply; we provide
the centralized detector of the cited work in its general form — a
level-order search of the consistent-cut lattice restricted to the
processes the GCP mentions, testing channel clauses at each
WCP-satisfying cut.  Level order guarantees the returned cut is a
*minimal-level* satisfying cut (for a pure WCP it is the unique first
cut; with channel clauses the satisfying set need not be a lattice, so
minimality is by level only).
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.detect.base import DetectionReport
from repro.predicates.channel import ChannelPredicate
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.evaluator import candidate_intervals
from repro.trace.computation import Computation
from repro.trace.cuts import Cut
from repro.trace.lattice import consistent_successors, initial_cut

__all__ = ["GeneralizedConjunctivePredicate", "detect_gcp"]


class GeneralizedConjunctivePredicate:
    """A WCP plus channel predicates on directed channels.

    The predicate's process set is the union of the WCP's pids and all
    channel endpoints; detection searches cuts over that set.
    """

    def __init__(
        self,
        wcp: WeakConjunctivePredicate,
        channels: Sequence[ChannelPredicate] = (),
    ) -> None:
        self._wcp = wcp
        self._channels = tuple(channels)
        pids = set(wcp.pids)
        for ch in self._channels:
            pids.add(ch.src)
            pids.add(ch.dest)
        self._pids = tuple(sorted(pids))

    @property
    def wcp(self) -> WeakConjunctivePredicate:
        """The local-predicate conjunction."""
        return self._wcp

    @property
    def channels(self) -> tuple[ChannelPredicate, ...]:
        """The channel clauses."""
        return self._channels

    @property
    def pids(self) -> tuple[int, ...]:
        """All processes the predicate mentions (sorted)."""
        return self._pids

    def check_against(self, num_processes: int) -> None:
        """Validate every mentioned pid against the system size."""
        self._wcp.check_against(num_processes)
        bad = [p for p in self._pids if p >= num_processes]
        if bad:
            raise ConfigurationError(
                f"GCP names processes {bad} but the computation has only "
                f"{num_processes}"
            )


def detect_gcp(
    computation: Computation, gcp: GeneralizedConjunctivePredicate
) -> DetectionReport:
    """Detect a GCP by level-order lattice search over its process set."""
    gcp.check_against(computation.num_processes)
    analysis = computation.analysis()
    truth = {
        pid: set(ivs)
        for pid, ivs in candidate_intervals(computation, gcp.wcp).items()
    }

    def satisfies(cut: Cut) -> bool:
        for pid in gcp.wcp.pids:
            if cut.component(pid) not in truth[pid]:
                return False
        return all(ch.evaluate(computation, cut) for ch in gcp.channels)

    start = initial_cut(analysis, gcp.pids)
    frontier = {start.intervals: start}
    explored = 0
    while frontier:
        next_frontier: dict[tuple[int, ...], Cut] = {}
        for cut in frontier.values():
            explored += 1
            if satisfies(cut):
                return DetectionReport(
                    detector="gcp",
                    detected=True,
                    cut=cut.project(gcp.wcp.pids),
                    full_cut=cut,
                    extras={"states_explored": explored},
                )
            for succ in consistent_successors(analysis, cut):
                next_frontier.setdefault(succ.intervals, succ)
        frontier = next_frontier
    return DetectionReport(
        detector="gcp", detected=False, extras={"states_explored": explored}
    )
