"""§4.5: the parallel variant of the direct-dependence algorithm.

In the base §4 algorithm only the token holder is active.  §4.5 observes
that *any red process can safely search for a new candidate state*: it
consumes candidates, accumulates dependences, and polls the dependence
sources — splicing newly red processes into the red chain through its
own chain pointer — all before the token arrives.  When the token does
arrive, the pre-validated candidate is adopted immediately and the token
moves on, so candidate searches across processes overlap in time.

Safety hinges on two rules the paper states:

* poll messages are acknowledged, so a process cannot be inserted into
  the chain twice (a second poll finds it already red: "no change");
* only the token removes a process from the chain, so the chain is never
  broken by concurrent insertions.

Implementation notes: because many monitors are concurrently active,
every blocking wait (for candidates or poll responses) must also *serve*
incoming polls, otherwise two searchers polling each other would
deadlock.  A proactively found candidate is re-validated against ``G``
before use — an intervening poll may have eliminated it, in which case
the search resumes.

As a termination extension, a red searcher whose candidate stream ends
aborts immediately (its eliminated states can never satisfy the WCP), so
even token-less monitors produce a prompt "not detected".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.types import WORD_BITS
from repro.detect.base import (
    GREEN,
    HALT_KIND,
    POLL_KIND,
    POLL_RESPONSE_KIND,
    RED,
    TOKEN_KIND,
    DetectionReport,
    app_name,
    monitor_name,
)
from repro.detect.direct_dep import (
    POLL_BITS,
    RESPONSE_BITS,
    TOKEN_BITS,
    DirectDepGlue,
    Poll,
    PollResponse,
    dd_feed_items,
)
from repro.detect.stack import (
    AdaptiveRetryPolicy,
    FailureDetectorConfig,
    ReliableFeeder,
    ReliableInjector,
    RetryPolicy,
    TokenFrame,
    TokenInjector,
    harden,
    register_glue,
    spawn_joiners,
)
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.simulation.actors import Actor
from repro.simulation.kernel import Kernel
from repro.simulation.network import ChannelModel
from repro.simulation.replay import (
    CANDIDATE_KIND,
    END_OF_TRACE_KIND,
    SnapshotFeeder,
)
from repro.trace.computation import Computation
from repro.trace.cuts import Cut
from repro.trace.snapshots import DDSnapshot

if TYPE_CHECKING:  # annotation-only: cores stay decoupled from the fault layer
    from repro.simulation.faults import FaultPlan

__all__ = [
    "ParallelDDMonitor",
    "HardenedParallelDDMonitor",
    "detect",
]


class ParallelDDMonitor(Actor):
    """A §4.5 monitor: searches proactively while red, serves polls always."""

    def __init__(
        self, pid: int, num_processes: int, initial_next_red: int | None
    ) -> None:
        super().__init__(monitor_name(pid))
        self._pid = pid
        self._n = num_processes
        self.G = 0
        self.color = RED
        self.next_red: int | None = initial_next_red
        self.pending: int | None = None  # pre-validated candidate clock
        self.has_token = False
        # True while this monitor occupies the chain-head position (from
        # entering its token phase until it passes the token on).  A
        # head that is repainted red by a poll must NOT adopt the
        # poller's chain pointer — it is already on the chain, at the
        # head — otherwise its own tail would be orphaned.
        self.holding = False
        self.exhausted = False
        self.detected = False
        self.detected_at: float | None = None
        self.aborted = False
        self.token_visits = 0
        self.proactive_searches = 0

    # ------------------------------------------------------------------
    def run(self):
        while True:
            if self.has_token:
                self.has_token = False
                if (yield from self._token_phase()):
                    return
                continue
            if self.color == RED and not self.exhausted and not self._pending_valid():
                if (yield from self._search_phase()):
                    return
                continue
            msg = yield self.receive(TOKEN_KIND, POLL_KIND, HALT_KIND)
            if msg.kind == HALT_KIND:
                return
            if msg.kind == POLL_KIND:
                yield from self._respond_poll(msg)
                continue
            self.has_token = True

    def _pending_valid(self) -> bool:
        return self.pending is not None and self.pending > self.G

    # ------------------------------------------------------------------
    def _search_phase(self):
        """Proactive candidate search + dependence polling (token-less).

        Returns True when the actor should terminate (halt/abort).
        """
        self.proactive_searches += 1
        deplist: list = []
        found: int | None = None
        while found is None:
            msg = yield self.receive(
                CANDIDATE_KIND,
                END_OF_TRACE_KIND,
                TOKEN_KIND,
                POLL_KIND,
                HALT_KIND,
            )
            if msg.kind == HALT_KIND:
                return True
            if msg.kind == TOKEN_KIND:
                self.has_token = True  # keep searching; adopt result on exit
                continue
            if msg.kind == POLL_KIND:
                yield from self._respond_poll(msg)
                continue
            if msg.kind == END_OF_TRACE_KIND:
                self.aborted = True
                yield self._halt_others()
                return True
            yield self.work(1)
            snapshot: DDSnapshot = msg.payload
            deplist.extend(snapshot.deps)
            if snapshot.clock > self.G:
                found = snapshot.clock
        if (yield from self._poll_deps(deplist)):
            return True
        # Commit only if no intervening poll eliminated the candidate.
        self.pending = found if found > self.G else None
        return False

    # ------------------------------------------------------------------
    def _token_phase(self):
        """Token visit: adopt the pre-validated candidate or search inline.

        While the visit is in progress a concurrent searcher may poll us
        and eliminate the candidate we just went green on; the
        ``holding`` flag makes that repaint keep our chain pointer, and
        the outer loop simply acquires another candidate before the
        token moves on.
        """
        self.token_visits += 1
        self.holding = True
        while True:
            if self._pending_valid():
                assert self.pending is not None
                self.G = self.pending
                self.pending = None
                self.color = GREEN
            else:
                deplist: list = []
                while True:
                    msg = yield self.receive(
                        CANDIDATE_KIND, END_OF_TRACE_KIND, POLL_KIND, HALT_KIND
                    )
                    if msg.kind == HALT_KIND:
                        return True
                    if msg.kind == POLL_KIND:
                        yield from self._respond_poll(msg)
                        continue
                    if msg.kind == END_OF_TRACE_KIND:
                        self.aborted = True
                        yield self._halt_others()
                        return True
                    yield self.work(1)
                    snapshot: DDSnapshot = msg.payload
                    deplist.extend(snapshot.deps)
                    if snapshot.clock > self.G:
                        self.G = snapshot.clock
                        break
                self.color = GREEN
                if (yield from self._poll_deps(deplist)):
                    return True
            if self.color == GREEN:
                break
            # A poll served during this visit eliminated our fresh
            # candidate; stay at the head and search again.
        if self.next_red is None:
            self.detected = True
            self.detected_at = self.now
            yield self._halt_others()
            return True
        target = self.next_red
        self.holding = False
        yield self.send(
            monitor_name(target), None, kind=TOKEN_KIND, size_bits=TOKEN_BITS
        )
        return False

    # ------------------------------------------------------------------
    def _poll_deps(self, deplist):
        """Poll every dependence source, serving polls/token meanwhile."""
        for dep in deplist:
            yield self.work(1)
            yield self.send(
                monitor_name(dep.source),
                Poll(dep.clock, self.next_red),
                kind=POLL_KIND,
                size_bits=POLL_BITS,
            )
            while True:
                msg = yield self.receive(
                    POLL_RESPONSE_KIND, POLL_KIND, TOKEN_KIND, HALT_KIND
                )
                if msg.kind == HALT_KIND:
                    return True
                if msg.kind == TOKEN_KIND:
                    self.has_token = True
                    continue
                if msg.kind == POLL_KIND:
                    yield from self._respond_poll(msg)
                    continue
                if msg.payload.became_red:
                    self.next_red = dep.source
                break
        return False

    # ------------------------------------------------------------------
    def _respond_poll(self, msg):
        """Fig. 5, plus the head rule for the parallel variant.

        A monitor in its token phase is the chain *head*; if a poll
        repaints it red it must keep its own chain pointer and answer
        "no change" — it is already on the chain and will retry before
        releasing the token.
        """
        poll: Poll = msg.payload
        yield self.work(1)
        old_color = self.color
        if poll.clock >= self.G:
            self.color = RED
            self.G = poll.clock
        if self.color == RED and old_color == GREEN and not self.holding:
            self.next_red = poll.next_red
            response = PollResponse(became_red=True)
        else:
            response = PollResponse(became_red=False)
        yield self.send(
            msg.src, response, kind=POLL_RESPONSE_KIND, size_bits=RESPONSE_BITS
        )

    def _halt_others(self):
        others = [monitor_name(p) for p in range(self._n) if p != self._pid]
        return self.broadcast(others, None, kind=HALT_KIND, size_bits=1)


class ParallelDDGlue(DirectDepGlue):
    """Stack glue for the crash/loss-tolerant §4.5 monitor.

    Inherits every hook from :class:`~repro.detect.direct_dep.DirectDepGlue`
    unchanged — the hardened composition *serialises* visits, running the
    §4 protocol over the §4.5 core's state (``G`` / ``color`` /
    ``next_red`` are the same Table 1 fields).  The proactive search is
    a fault-free *latency* optimisation: it finds candidates earlier but
    never changes which cut is first (Lemmas 4.1/4.2 fix the answer), so
    under faults the stack falls back to token-driven visits, where
    retransmission, crash resume and exactly-once polls are already
    proved out.  ``proactive_searches`` is therefore 0 in hardened runs.
    """


register_glue(ParallelDDMonitor, ParallelDDGlue)

#: The hardened §4.5 monitor — pure composition, no new protocol code.
HardenedParallelDDMonitor = harden(
    ParallelDDMonitor, name="HardenedParallelDDMonitor"
)


def detect(
    computation: Computation,
    wcp: WeakConjunctivePredicate,
    *,
    seed: int = 0,
    channel_model: ChannelModel | None = None,
    spacing: float = 1.0,
    observers: list | None = None,
    faults: FaultPlan | None = None,
    hardened: bool | None = None,
    retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
    failure_detector: FailureDetectorConfig | None = None,
    clock_backend: str = "list",
) -> DetectionReport:
    """Run the §4.5 parallel direct-dependence algorithm.

    ``faults`` / ``hardened`` / ``retry`` / ``failure_detector`` /
    ``clock_backend`` behave as in
    :func:`repro.detect.token_vc.detect`; the hardened variant is
    :class:`HardenedParallelDDMonitor` (see :class:`ParallelDDGlue` for
    why hardened runs serialise the §4.5 search).
    """
    wcp.check_against(computation.num_processes)
    big_n = computation.num_processes
    use_hardened = (faults is not None) if hardened is None else hardened
    if use_hardened and retry is None:
        retry = AdaptiveRetryPolicy(seed=seed)
    kernel = Kernel(
        channel_model=channel_model, seed=seed, observers=observers, faults=faults
    )
    monitor_cls = HardenedParallelDDMonitor if use_hardened else ParallelDDMonitor
    options = (
        {"retry": retry, "failure_detector": failure_detector}
        if use_hardened
        else {}
    )
    monitors = [
        monitor_cls(
            pid,
            big_n,
            initial_next_red=(pid + 1 if pid + 1 < big_n else None),
            **options,
        )
        for pid in range(big_n)
    ]
    for mon in monitors:
        kernel.add_actor(mon)
    items_by_pid = dd_feed_items(computation, wcp.predicate_map(), clock_backend)
    feeders = []
    for pid in range(big_n):
        items = items_by_pid[pid]
        if use_hardened:
            feeder = ReliableFeeder(
                app_name(pid), monitor_name(pid), items, spacing, retry
            )
        else:
            feeder = SnapshotFeeder(app_name(pid), monitor_name(pid), items, spacing)
        feeders.append(feeder)
        kernel.add_actor(feeder)
    injector = None
    if use_hardened:
        injector = ReliableInjector(
            monitor_name(0),
            TokenFrame(hop=1, body=None),
            TOKEN_BITS + WORD_BITS,
            retry,
        )
        kernel.add_actor(injector)
    else:
        kernel.add_actor(TokenInjector(monitor_name(0), None, TOKEN_BITS))
    joiners = spawn_joiners(
        kernel, faults, [monitor_name(pid) for pid in range(big_n)],
        hardened=use_hardened, config=failure_detector, retry=retry,
    )
    sim = kernel.run()

    winner = next((m for m in monitors if m.detected), None)
    aborted = any(m.aborted for m in monitors)
    actor_metrics = kernel.metrics.actors()
    extras = {
        "token_hops": sum(
            m.sent_by_kind.get(TOKEN_KIND, 0)
            for name, m in actor_metrics.items()
            if name.startswith("mon-")
        ),
        "polls": kernel.metrics.messages_of_kind(POLL_KIND),
        "token_visits": sum(m.token_visits for m in monitors),
        "proactive_searches": sum(m.proactive_searches for m in monitors),
        "aborted": aborted,
        "hardened": use_hardened,
    }
    if use_hardened:
        participants = [*monitors, *feeders, injector]
        extras["gave_up"] = any(
            getattr(a, "gave_up", False) for a in participants
        )
        extras["halt_incomplete"] = any(
            getattr(a, "halt_incomplete", False) for a in participants
        )
        extras["elections"] = sum(
            getattr(m, "elections", 0) for m in monitors
        )
        extras["takeovers"] = sum(
            getattr(m, "takeovers", 0) for m in monitors
        )
        if joiners:
            extras["joiners"] = len(joiners)
            extras["joined"] = sum(1 for j in joiners if j.joined)
            extras["synced"] = sum(1 for j in joiners if j.synced)
    if winner is not None:
        full = Cut(
            tuple(range(big_n)), tuple(monitors[p].G for p in range(big_n))
        )
        return DetectionReport(
            detector="direct_dep_parallel",
            detected=True,
            cut=full.project(wcp.pids),
            full_cut=full,
            detection_time=winner.detected_at,
            sim=sim,
            metrics=kernel.metrics,
            extras=extras,
        )
    degraded = faults is not None and not aborted
    if use_hardened and degraded:
        dead = set(sim.crashed)
        extras["unobservable"] = [
            p
            for p in range(big_n)
            if app_name(p) in dead or monitor_name(p) in dead
        ]
        # The §4 candidate is a scalar clock per process (0 = none yet).
        extras["partial_cut"] = [m.G if m.G > 0 else None for m in monitors]
    return DetectionReport(
        detector="direct_dep_parallel",
        detected=False,
        sim=sim,
        metrics=kernel.metrics,
        extras=extras,
        degraded=degraded,
    )
