"""§4: the direct-dependence WCP detection algorithm (Figs. 4 and 5).

No vector clocks: application processes tag messages with a scalar
interval counter and record each receive as a *direct dependence*
``(source, clock)``.  All ``N`` processes participate (Lemma 4.1 only
equates direct- and transitive-dependence consistency when the cut has
a component on every process); processes without a local predicate run
with the constant-true predicate.

Monitor state is fully distributed — the token is empty:

* ``G`` / ``color`` — this process's candidate clock and color (Table 1:
  the distributed counterparts of the vector-clock token's fields);
* ``next_red`` — the red-chain pointer.  All red monitors are linked in
  a null-terminated chain whose head holds the token.

The token holder (Fig. 4) consumes candidates until one has
``clock > G``, accumulating their flushed dependence lists; turns green;
then *polls* the source of every accumulated dependence.  A polled
monitor (Fig. 5) whose candidate is dominated (``poll.clock >= G``)
turns red, adopts the poll's ``next_red`` (splicing itself into the
chain right after the holder), and answers "became red"; the holder then
points its own ``next_red`` at it.  An empty chain after polling means
every monitor is green: by Lemmas 4.1/4.2 the ``G`` values form the
first consistent cut satisfying the WCP.

Cost accounting (experiment E2): one work unit per candidate consumed,
per dependence processed, and per poll handled; polls are two words,
responses and the token one bit each; a snapshot is ``1 + 2·|deps|``
words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.types import WORD_BITS
from repro.detect.base import (
    GREEN,
    HALT_KIND,
    POLL_KIND,
    POLL_RESPONSE_KIND,
    RED,
    TOKEN_KIND,
    DetectionReport,
    app_name,
    monitor_name,
)
from repro.detect.stack import (
    AdaptiveRetryPolicy,
    FailureDetectorConfig,
    ReliableFeeder,
    ReliableInjector,
    RetryPolicy,
    StackGlue,
    Tagged,
    TokenFrame,
    TokenInjector,
    harden,
    register_glue,
    spawn_joiners,
)
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.simulation.actors import Actor
from repro.simulation.kernel import Kernel
from repro.simulation.network import ChannelModel
from repro.simulation.replay import (
    CANDIDATE_KIND,
    END_OF_TRACE_KIND,
    FeedItem,
    SnapshotFeeder,
)
from repro.trace.computation import Computation
from repro.trace.cuts import Cut
from repro.trace.snapshots import DDSnapshot, dd_snapshots

if TYPE_CHECKING:  # annotation-only: cores stay decoupled from the fault layer
    from repro.simulation.faults import FaultPlan

__all__ = [
    "Poll",
    "PollResponse",
    "DirectDepMonitor",
    "DirectDepGlue",
    "HardenedDirectDepMonitor",
    "dd_feed_items",
    "detect",
]

POLL_BITS = 2 * WORD_BITS
RESPONSE_BITS = 1
TOKEN_BITS = 1


@dataclass(frozen=True, slots=True)
class Poll:
    """A poll message: the dependence clock and the sender's chain pointer."""

    clock: int
    next_red: int | None


@dataclass(frozen=True, slots=True)
class PollResponse:
    """Reply to a poll: did the polled monitor turn red just now?"""

    became_red: bool


def snapshot_bits(snapshot: DDSnapshot) -> int:
    """Accounting size of a §4.1 local snapshot: clock + dependence pairs."""
    return (1 + 2 * len(snapshot.deps)) * WORD_BITS


def dd_feed_items(
    computation: Computation,
    predicates,
    clock_backend: str = "list",
) -> dict[int, list[FeedItem]]:
    """The §4.1 snapshot streams as feeder-ready items, one per process.

    Extracted from :func:`detect` (mirroring
    :func:`repro.detect.token_vc.candidate_feed_items`) so multi-
    predicate callers can evaluate several predicates against one
    interval stream; all ``N`` processes participate (§4's requirement),
    with the constant-true predicate where none is registered.
    """
    streams = dd_snapshots(computation, dict(predicates), clock_backend)
    return {
        pid: [
            FeedItem(payload=snap, size_bits=snapshot_bits(snap), time=snap.time)
            for snap in stream
        ]
        for pid, stream in streams.items()
    }


class DirectDepMonitor(Actor):
    """One §4 monitor process (there is one per system process).

    Runner-visible attributes: ``G``, ``color``, ``detected`` (on the
    declaring monitor), ``aborted``.
    """

    def __init__(
        self, pid: int, num_processes: int, initial_next_red: int | None
    ) -> None:
        super().__init__(monitor_name(pid))
        self._pid = pid
        self._n = num_processes
        self.G = 0
        self.color = RED
        self.next_red: int | None = initial_next_red
        self.detected = False
        self.detected_at: float | None = None
        self.aborted = False
        self.token_visits = 0

    # ------------------------------------------------------------------
    def run(self):
        while True:
            msg = yield self.receive(TOKEN_KIND, POLL_KIND, HALT_KIND)
            if msg.kind == HALT_KIND:
                return
            if msg.kind == POLL_KIND:
                yield from self._handle_poll(msg)
                continue
            finished = yield from self._handle_token()
            if finished:
                return

    # ------------------------------------------------------------------
    def _handle_poll(self, msg):
        """Fig. 5: update (G, color), splice into the chain if newly red."""
        poll: Poll = msg.payload
        yield self.work(1)
        old_color = self.color
        if poll.clock >= self.G:
            self.color = RED
            self.G = poll.clock
        if self.color == RED and old_color == GREEN:
            self.next_red = poll.next_red
            response = PollResponse(became_red=True)
        else:
            response = PollResponse(became_red=False)
        yield self.send(
            msg.src, response, kind=POLL_RESPONSE_KIND, size_bits=RESPONSE_BITS
        )

    # ------------------------------------------------------------------
    def _handle_token(self):
        """Fig. 4: find a fresh candidate, poll its dependences, pass on."""
        self.token_visits += 1
        deplist = []
        # repeat ... until candidate.clock > G
        while True:
            cmsg = yield self.receive(CANDIDATE_KIND, END_OF_TRACE_KIND)
            if cmsg.kind == END_OF_TRACE_KIND:
                self.aborted = True
                yield self._halt_others()
                return True
            yield self.work(1)
            snapshot: DDSnapshot = cmsg.payload
            deplist.extend(snapshot.deps)
            if snapshot.clock > self.G:
                self.G = snapshot.clock
                break
        self.color = GREEN
        # Add dependence sources to the red chain.
        for dep in deplist:
            yield self.work(1)
            yield self.send(
                monitor_name(dep.source),
                Poll(dep.clock, self.next_red),
                kind=POLL_KIND,
                size_bits=POLL_BITS,
            )
            rmsg = yield self.receive(POLL_RESPONSE_KIND)
            if rmsg.payload.became_red:
                self.next_red = dep.source
        if self.next_red is None:
            self.detected = True
            self.detected_at = self.now
            yield self._halt_others()
            return True
        target = self.next_red
        yield self.send(
            monitor_name(target), None, kind=TOKEN_KIND, size_bits=TOKEN_BITS
        )
        return False

    def _halt_others(self):
        others = [
            monitor_name(p) for p in range(self._n) if p != self._pid
        ]
        return self.broadcast(others, None, kind=HALT_KIND, size_bits=1)


class DirectDepGlue(StackGlue):
    """Stack glue for the crash/loss-tolerant §4 monitor.

    On top of the shared transport (sequenced candidates, hop-numbered
    token frames — see ``docs/faults.md``), the poll exchange is made
    exactly-once: every poll carries a unique request tag, the polled
    monitor applies the Fig. 5 state change at most once per tag and
    caches the response (a retransmitted poll replays the cached
    response instead of turning the monitor red a second time — the
    ``became_red`` answer is only true once per splice, so blind
    re-execution would corrupt the red chain), and the polling holder
    ignores responses whose tag is not the one outstanding.

    The visit in progress is persisted (``_visit_phase`` / ``_deplist``
    / ``_dep_idx`` / ``_current_tag``): a crash-restart re-drives the
    in-flight poll with the *same* tag, and ``next_red`` is never
    mutated while a tag is outstanding, so the retransmitted poll is
    byte-identical to the original.

    The failure detector heartbeats and answers elections but never
    *initiates* a takeover (``_fd_can_take_over = False``): the §4 token
    is an empty baton, so all recoverable protocol state — including the
    red-chain ``next_red`` pointers — lives in the holder.  A regenerated
    baton installed at an arbitrary red monitor would walk that monitor's
    stale chain fragment and could declare detection while unvisited red
    monitors exist.  Instead, a crashed holder's persisted frame *is* the
    token: restart resumes the visit exactly, and a permanently dead
    holder honestly degrades the run rather than mis-detecting.
    """

    _fd_can_take_over = False

    def _init_visit_state(self) -> None:
        self._visit_phase = "gather"
        self._deplist: list = []
        self._dep_idx = 0
        self._current_tag: tuple | None = None
        self._poll_serial = 0
        self._poll_replies: dict[tuple, PollResponse] = {}

    # ------------------------------------------------------------------
    def _on_token_accepted(self, frame: TokenFrame) -> None:
        self.token_visits += 1
        if self.color == GREEN:
            # A regenerated token re-visiting a green monitor: the visit
            # that turned us green already ran (or is persisted mid-poll)
            # — keep its state so the re-visit only finishes outstanding
            # polls and forwards, consuming no fresh candidates.
            return
        self._visit_phase = "gather"
        # Dependences gathered by an interrupted visit were never
        # polled; dropping them could leave a dominated green monitor
        # unpainted and declare a wrong cut.  Carry them over.
        self._deplist = self._deplist[self._dep_idx:]
        self._dep_idx = 0

    def _fd_slot(self) -> int:
        return self._pid

    def _fd_peers(self) -> dict[int, str]:
        return {
            p: monitor_name(p) for p in range(self._n) if p != self._pid
        }

    def _fd_is_red(self) -> bool:
        # The empty token may only sit at a red monitor (Fig. 4); a
        # green monitor's persisted visit state must not be re-entered.
        return self.color == RED

    def _dispatch(self, msg):
        if msg.kind == POLL_KIND:
            yield from self._handle_poll_tagged(msg)
            return "handled"
        if msg.kind == POLL_RESPONSE_KIND:
            return "handled"  # stale duplicate outside a poll exchange
        code = yield from super()._dispatch(msg)
        return code

    def _halt_targets(self) -> list[str]:
        peers = [monitor_name(p) for p in range(self._n) if p != self._pid]
        feeders = [app_name(p) for p in range(self._n)]
        return peers + feeders

    # ------------------------------------------------------------------
    def _handle_poll_tagged(self, msg):
        """Fig. 5 with at-most-once semantics per request tag."""
        if msg.corrupted:
            return  # the holder will retransmit
        tagged: Tagged = msg.payload
        cached = self._poll_replies.get(tagged.tag)
        if cached is None:
            poll: Poll = tagged.payload
            # Atomic: the state change and the response cache entry
            # commit together, so a crash can never re-apply the splice.
            old_color = self.color
            if poll.clock >= self.G:
                self.color = RED
                self.G = poll.clock
            if self.color == RED and old_color == GREEN:
                self.next_red = poll.next_red
                cached = PollResponse(became_red=True)
            else:
                cached = PollResponse(became_red=False)
            self._poll_replies[tagged.tag] = cached
            yield self.work(1)
        yield self.send(
            msg.src,
            Tagged(tagged.tag, cached),
            kind=POLL_RESPONSE_KIND,
            size_bits=RESPONSE_BITS + WORD_BITS,
        )

    # ------------------------------------------------------------------
    def _resolve_frame(self, frame: TokenFrame, code: str) -> None:
        if code == "abort":
            self.aborted = True
        elif code == "detected":
            self.detected = True
            self.detected_at = self.now
        else:  # forward along the red chain
            target = self.next_red
            assert target is not None
            self._begin_transfer(
                monitor_name(target),
                TokenFrame(frame.hop + 1, None, frame.gid, frame.epoch),
                TOKEN_BITS + WORD_BITS,
            )

    def _handle_frame(self, frame: TokenFrame):
        """One (possibly crash-resumed) Fig. 4 token visit."""
        if self._visit_phase == "gather":
            # repeat ... until candidate.clock > G
            while True:
                entry = yield from self._next_candidate()
                if entry == "halt":
                    return "halt"
                if entry is None:
                    return "abort"
                snap: DDSnapshot = entry[0]
                # Atomic: dependences and acceptance commit together.
                self._deplist.extend(snap.deps)
                if snap.clock > self.G:
                    self.G = snap.clock
                    self.color = GREEN
                    self._visit_phase = "poll"
                    yield self.work(1)
                    break
                yield self.work(1)
        # Poll the source of every accumulated dependence, exactly once.
        while self._dep_idx < len(self._deplist):
            dep = self._deplist[self._dep_idx]
            if self._current_tag is None:
                self._current_tag = (self.name, self._poll_serial)
                self._poll_serial += 1
            tag = self._current_tag
            dest = monitor_name(dep.source)
            request = Tagged(tag, Poll(dep.clock, self.next_red))
            yield self.work(1)
            self._retry.on_send(tag, self.now)
            yield self.send(
                dest, request, kind=POLL_KIND, size_bits=POLL_BITS + WORD_BITS
            )
            attempt = 0
            while True:
                msg = yield self.receive_timeout(
                    timeout=self._retry.timeout(attempt),
                    description=f"{self.name} awaiting poll response",
                )
                if msg is None:
                    attempt += 1
                    if attempt > self._retry.max_attempts:
                        self.gave_up = True
                        return "gave_up"
                    self._retry.on_send(tag, self.now)
                    yield self.send(
                        dest,
                        request,
                        kind=POLL_KIND,
                        size_bits=POLL_BITS + WORD_BITS,
                    )
                    continue
                if msg.kind == POLL_RESPONSE_KIND:
                    if msg.corrupted:
                        continue
                    tagged: Tagged = msg.payload
                    if tagged.tag != tag:
                        continue  # duplicate of an earlier exchange
                    self._retry.on_ack(tag, self.now)
                    # Atomic completion: chain update and poll
                    # retirement commit together.
                    if tagged.payload.became_red:
                        self.next_red = dep.source
                    self._dep_idx += 1
                    self._current_tag = None
                    break
                code = yield from self._dispatch(msg)
                if code == "halt":
                    return "halt"
        if self.next_red is None:
            return "detected"
        return "forward"


register_glue(DirectDepMonitor, DirectDepGlue)

#: The hardened §4 monitor: plain core + protocol stack, by composition.
HardenedDirectDepMonitor = harden(DirectDepMonitor)


def build_monitors(
    num_processes: int,
    hardened: bool = False,
    retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
    failure_detector: FailureDetectorConfig | None = None,
) -> list[DirectDepMonitor]:
    """Monitors with the initial red chain 0 -> 1 -> ... -> N-1 -> null."""
    if hardened:
        return [
            HardenedDirectDepMonitor(
                pid,
                num_processes,
                initial_next_red=(pid + 1 if pid + 1 < num_processes else None),
                retry=retry,
                failure_detector=failure_detector,
            )
            for pid in range(num_processes)
        ]
    return [
        DirectDepMonitor(
            pid,
            num_processes,
            initial_next_red=(pid + 1 if pid + 1 < num_processes else None),
        )
        for pid in range(num_processes)
    ]


def detect(
    computation: Computation,
    wcp: WeakConjunctivePredicate,
    *,
    seed: int = 0,
    channel_model: ChannelModel | None = None,
    spacing: float = 1.0,
    observers: list | None = None,
    faults: FaultPlan | None = None,
    hardened: bool | None = None,
    retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
    failure_detector: FailureDetectorConfig | None = None,
    clock_backend: str = "list",
) -> DetectionReport:
    """Run the §4 algorithm on a recorded computation.

    Every one of the ``N`` processes gets a feeder and a monitor; the
    detected full cut is projected onto the WCP's pids for the report.
    ``faults`` / ``hardened`` / ``retry`` / ``failure_detector`` /
    ``clock_backend`` behave as in :func:`repro.detect.token_vc.detect`.
    """
    wcp.check_against(computation.num_processes)
    big_n = computation.num_processes
    use_hardened = (faults is not None) if hardened is None else hardened
    if use_hardened and retry is None:
        retry = AdaptiveRetryPolicy(seed=seed)
    kernel = Kernel(
        channel_model=channel_model, seed=seed, observers=observers, faults=faults
    )
    monitors = build_monitors(
        big_n, hardened=use_hardened, retry=retry,
        failure_detector=failure_detector,
    )
    for mon in monitors:
        kernel.add_actor(mon)
    items_by_pid = dd_feed_items(computation, wcp.predicate_map(), clock_backend)
    feeders = []
    for pid in range(big_n):
        items = items_by_pid[pid]
        if use_hardened:
            feeder = ReliableFeeder(
                app_name(pid), monitor_name(pid), items, spacing, retry
            )
        else:
            feeder = SnapshotFeeder(app_name(pid), monitor_name(pid), items, spacing)
        feeders.append(feeder)
        kernel.add_actor(feeder)
    injector = None
    if use_hardened:
        injector = ReliableInjector(
            monitor_name(0),
            TokenFrame(hop=1, body=None),
            TOKEN_BITS + WORD_BITS,
            retry,
        )
        kernel.add_actor(injector)
    else:
        kernel.add_actor(TokenInjector(monitor_name(0), None, TOKEN_BITS))
    joiners = spawn_joiners(
        kernel, faults, [monitor_name(pid) for pid in range(big_n)],
        hardened=use_hardened, config=failure_detector, retry=retry,
    )
    sim = kernel.run()

    winner = next((m for m in monitors if m.detected), None)
    aborted = any(m.aborted for m in monitors)
    actor_metrics = kernel.metrics.actors()
    extras = {
        "token_hops": sum(
            m.sent_by_kind.get(TOKEN_KIND, 0)
            for name, m in actor_metrics.items()
            if name.startswith("mon-")
        ),
        "polls": kernel.metrics.messages_of_kind(POLL_KIND),
        "token_visits": sum(m.token_visits for m in monitors),
        "aborted": aborted,
        "hardened": use_hardened,
    }
    if use_hardened:
        participants = [*monitors, *feeders, injector]
        extras["gave_up"] = any(
            getattr(a, "gave_up", False) for a in participants
        )
        extras["halt_incomplete"] = any(
            getattr(a, "halt_incomplete", False) for a in participants
        )
        extras["elections"] = sum(
            getattr(m, "elections", 0) for m in monitors
        )
        extras["takeovers"] = sum(
            getattr(m, "takeovers", 0) for m in monitors
        )
        if joiners:
            extras["joiners"] = len(joiners)
            extras["joined"] = sum(1 for j in joiners if j.joined)
            extras["synced"] = sum(1 for j in joiners if j.synced)
    if winner is not None:
        full = Cut(
            tuple(range(big_n)), tuple(monitors[p].G for p in range(big_n))
        )
        return DetectionReport(
            detector="direct_dep",
            detected=True,
            cut=full.project(wcp.pids),
            full_cut=full,
            detection_time=winner.detected_at,
            sim=sim,
            metrics=kernel.metrics,
            extras=extras,
        )
    degraded = faults is not None and not aborted
    if use_hardened and degraded:
        dead = set(sim.crashed)
        extras["unobservable"] = [
            p
            for p in range(big_n)
            if app_name(p) in dead or monitor_name(p) in dead
        ]
        # The §4 candidate is a scalar clock per process (0 = none yet).
        extras["partial_cut"] = [m.G if m.G > 0 else None for m in monitors]
    return DetectionReport(
        detector="direct_dep",
        detected=False,
        sim=sim,
        metrics=kernel.metrics,
        extras=extras,
        degraded=degraded,
    )
