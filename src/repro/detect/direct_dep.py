"""§4: the direct-dependence WCP detection algorithm (Figs. 4 and 5).

No vector clocks: application processes tag messages with a scalar
interval counter and record each receive as a *direct dependence*
``(source, clock)``.  All ``N`` processes participate (Lemma 4.1 only
equates direct- and transitive-dependence consistency when the cut has
a component on every process); processes without a local predicate run
with the constant-true predicate.

Monitor state is fully distributed — the token is empty:

* ``G`` / ``color`` — this process's candidate clock and color (Table 1:
  the distributed counterparts of the vector-clock token's fields);
* ``next_red`` — the red-chain pointer.  All red monitors are linked in
  a null-terminated chain whose head holds the token.

The token holder (Fig. 4) consumes candidates until one has
``clock > G``, accumulating their flushed dependence lists; turns green;
then *polls* the source of every accumulated dependence.  A polled
monitor (Fig. 5) whose candidate is dominated (``poll.clock >= G``)
turns red, adopts the poll's ``next_red`` (splicing itself into the
chain right after the holder), and answers "became red"; the holder then
points its own ``next_red`` at it.  An empty chain after polling means
every monitor is green: by Lemmas 4.1/4.2 the ``G`` values form the
first consistent cut satisfying the WCP.

Cost accounting (experiment E2): one work unit per candidate consumed,
per dependence processed, and per poll handled; polls are two words,
responses and the token one bit each; a snapshot is ``1 + 2·|deps|``
words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import WORD_BITS
from repro.detect.base import (
    GREEN,
    HALT_KIND,
    POLL_KIND,
    POLL_RESPONSE_KIND,
    RED,
    TOKEN_KIND,
    DetectionReport,
    app_name,
    monitor_name,
)
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.simulation.actors import Actor
from repro.simulation.kernel import Kernel
from repro.simulation.network import ChannelModel
from repro.simulation.replay import (
    CANDIDATE_KIND,
    END_OF_TRACE_KIND,
    FeedItem,
    SnapshotFeeder,
)
from repro.trace.computation import Computation
from repro.trace.cuts import Cut
from repro.trace.snapshots import DDSnapshot, dd_snapshots

__all__ = ["Poll", "PollResponse", "DirectDepMonitor", "detect"]

POLL_BITS = 2 * WORD_BITS
RESPONSE_BITS = 1
TOKEN_BITS = 1


@dataclass(frozen=True, slots=True)
class Poll:
    """A poll message: the dependence clock and the sender's chain pointer."""

    clock: int
    next_red: int | None


@dataclass(frozen=True, slots=True)
class PollResponse:
    """Reply to a poll: did the polled monitor turn red just now?"""

    became_red: bool


def snapshot_bits(snapshot: DDSnapshot) -> int:
    """Accounting size of a §4.1 local snapshot: clock + dependence pairs."""
    return (1 + 2 * len(snapshot.deps)) * WORD_BITS


class DirectDepMonitor(Actor):
    """One §4 monitor process (there is one per system process).

    Runner-visible attributes: ``G``, ``color``, ``detected`` (on the
    declaring monitor), ``aborted``.
    """

    def __init__(
        self, pid: int, num_processes: int, initial_next_red: int | None
    ) -> None:
        super().__init__(monitor_name(pid))
        self._pid = pid
        self._n = num_processes
        self.G = 0
        self.color = RED
        self.next_red: int | None = initial_next_red
        self.detected = False
        self.detected_at: float | None = None
        self.aborted = False
        self.token_visits = 0

    # ------------------------------------------------------------------
    def run(self):
        while True:
            msg = yield self.receive(TOKEN_KIND, POLL_KIND, HALT_KIND)
            if msg.kind == HALT_KIND:
                return
            if msg.kind == POLL_KIND:
                yield from self._handle_poll(msg)
                continue
            finished = yield from self._handle_token()
            if finished:
                return

    # ------------------------------------------------------------------
    def _handle_poll(self, msg):
        """Fig. 5: update (G, color), splice into the chain if newly red."""
        poll: Poll = msg.payload
        yield self.work(1)
        old_color = self.color
        if poll.clock >= self.G:
            self.color = RED
            self.G = poll.clock
        if self.color == RED and old_color == GREEN:
            self.next_red = poll.next_red
            response = PollResponse(became_red=True)
        else:
            response = PollResponse(became_red=False)
        yield self.send(
            msg.src, response, kind=POLL_RESPONSE_KIND, size_bits=RESPONSE_BITS
        )

    # ------------------------------------------------------------------
    def _handle_token(self):
        """Fig. 4: find a fresh candidate, poll its dependences, pass on."""
        self.token_visits += 1
        deplist = []
        # repeat ... until candidate.clock > G
        while True:
            cmsg = yield self.receive(CANDIDATE_KIND, END_OF_TRACE_KIND)
            if cmsg.kind == END_OF_TRACE_KIND:
                self.aborted = True
                yield self._halt_others()
                return True
            yield self.work(1)
            snapshot: DDSnapshot = cmsg.payload
            deplist.extend(snapshot.deps)
            if snapshot.clock > self.G:
                self.G = snapshot.clock
                break
        self.color = GREEN
        # Add dependence sources to the red chain.
        for dep in deplist:
            yield self.work(1)
            yield self.send(
                monitor_name(dep.source),
                Poll(dep.clock, self.next_red),
                kind=POLL_KIND,
                size_bits=POLL_BITS,
            )
            rmsg = yield self.receive(POLL_RESPONSE_KIND)
            if rmsg.payload.became_red:
                self.next_red = dep.source
        if self.next_red is None:
            self.detected = True
            self.detected_at = self.now
            yield self._halt_others()
            return True
        target = self.next_red
        yield self.send(
            monitor_name(target), None, kind=TOKEN_KIND, size_bits=TOKEN_BITS
        )
        return False

    def _halt_others(self):
        others = [
            monitor_name(p) for p in range(self._n) if p != self._pid
        ]
        return self.broadcast(others, None, kind=HALT_KIND, size_bits=1)


class _TokenInjector(Actor):
    """Starts the protocol: the empty token goes to the chain head."""

    def __init__(self, first_monitor: str) -> None:
        super().__init__("token-injector")
        self._first = first_monitor

    def run(self):
        yield self.send(self._first, None, kind=TOKEN_KIND, size_bits=TOKEN_BITS)


def build_monitors(num_processes: int) -> list[DirectDepMonitor]:
    """Monitors with the initial red chain 0 -> 1 -> ... -> N-1 -> null."""
    return [
        DirectDepMonitor(
            pid,
            num_processes,
            initial_next_red=(pid + 1 if pid + 1 < num_processes else None),
        )
        for pid in range(num_processes)
    ]


def detect(
    computation: Computation,
    wcp: WeakConjunctivePredicate,
    *,
    seed: int = 0,
    channel_model: ChannelModel | None = None,
    spacing: float = 1.0,
    observers: list | None = None,
) -> DetectionReport:
    """Run the §4 algorithm on a recorded computation.

    Every one of the ``N`` processes gets a feeder and a monitor; the
    detected full cut is projected onto the WCP's pids for the report.
    """
    wcp.check_against(computation.num_processes)
    big_n = computation.num_processes
    kernel = Kernel(channel_model=channel_model, seed=seed, observers=observers)
    monitors = build_monitors(big_n)
    for mon in monitors:
        kernel.add_actor(mon)
    streams = dd_snapshots(computation, wcp.predicate_map())
    for pid in range(big_n):
        items = [
            FeedItem(payload=snap, size_bits=snapshot_bits(snap), time=snap.time)
            for snap in streams[pid]
        ]
        kernel.add_actor(
            SnapshotFeeder(app_name(pid), monitor_name(pid), items, spacing)
        )
    kernel.add_actor(_TokenInjector(monitor_name(0)))
    sim = kernel.run()

    winner = next((m for m in monitors if m.detected), None)
    actor_metrics = kernel.metrics.actors()
    extras = {
        "token_hops": sum(
            m.sent_by_kind.get(TOKEN_KIND, 0)
            for name, m in actor_metrics.items()
            if name.startswith("mon-")
        ),
        "polls": kernel.metrics.messages_of_kind(POLL_KIND),
        "token_visits": sum(m.token_visits for m in monitors),
        "aborted": any(m.aborted for m in monitors),
    }
    if winner is not None:
        full = Cut(
            tuple(range(big_n)), tuple(monitors[p].G for p in range(big_n))
        )
        return DetectionReport(
            detector="direct_dep",
            detected=True,
            cut=full.project(wcp.pids),
            full_cut=full,
            detection_time=winner.detected_at,
            sim=sim,
            metrics=kernel.metrics,
            extras=extras,
        )
    return DetectionReport(
        detector="direct_dep",
        detected=False,
        sim=sim,
        metrics=kernel.metrics,
        extras=extras,
    )
