"""§3: the single-token, vector-clock WCP detection algorithm.

This is the paper's first contribution (Figs. 2 and 3), implemented as
simulated monitor actors:

* Application processes (replayed by
  :class:`~repro.simulation.replay.SnapshotFeeder`) send one vector-clock
  snapshot per predicate-true interval to their monitor over a FIFO
  channel.
* A unique token carries the candidate cut ``G`` and a ``color`` vector.
  ``color[i] = red`` means state ``(i, G[i])`` and all predecessors are
  eliminated; ``green`` means no state in ``G`` is known to follow it.
* The monitor holding the token (Fig. 3) advances its own candidate past
  ``G[i]``, then scans the accepted candidate's vector: any ``j`` with
  ``candidate[j] >= G[j]`` has ``(j, G[j]) -> (i, G[i])`` (vector-clock
  property 2) and is repainted red with ``G[j] := candidate[j]``.
* All green ⇒ the cut is consistent and the WCP is detected — and by
  Theorem 3.2 it is the *first* such cut.

Termination extension (see DESIGN.md): an end-of-trace marker from the
application aborts the protocol with "not detected" when a red process
has no further candidates.

Cost accounting (experiment E1): one work unit per candidate consumed,
one per vector-component comparison in the Fig. 3 for-loop, ``n`` per
token visit for the red-scan; the token message is ``2n`` words, a
candidate message ``n`` words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import ConfigurationError
from repro.common.types import WORD_BITS
from repro.detect.base import (
    GREEN,
    HALT_KIND,
    RED,
    TOKEN_KIND,
    DetectionReport,
    app_name,
    monitor_name,
    partial_cut_extras,
)
from repro.detect.stack import (
    AdaptiveRetryPolicy,
    FailureDetectorConfig,
    ReliableFeeder,
    ReliableInjector,
    RetryPolicy,
    StackGlue,
    TokenFrame,
    TokenInjector,
    harden,
    register_glue,
    spawn_joiners,
)
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.simulation.actors import Actor
from repro.simulation.kernel import Kernel
from repro.simulation.network import ChannelModel
from repro.simulation.replay import (
    CANDIDATE_KIND,
    END_OF_TRACE_KIND,
    FeedItem,
    SnapshotFeeder,
)
from repro.trace.computation import Computation
from repro.trace.cuts import Cut
from repro.trace.snapshots import vc_snapshots

if TYPE_CHECKING:  # annotation-only: cores stay decoupled from the fault layer
    from repro.simulation.faults import FaultPlan

__all__ = [
    "VCToken",
    "TokenVCMonitor",
    "HardenedTokenVCMonitor",
    "candidate_feed_items",
    "detect",
]


def candidate_feed_items(
    computation: Computation,
    predicates,
    pids: tuple[int, ...],
    clock_backend: str = "list",
) -> dict[int, list[FeedItem]]:
    """The Fig. 2 candidate streams as feeder-ready items, one per pid.

    ``predicates`` maps each emitting pid to its local predicate;
    ``pids`` is the projection target (the WCP's pids for a
    single-predicate run, the registered union for the multi-predicate
    service).  Extracted from :func:`detect` so N predicates can be
    evaluated against one interval stream: the emission points depend
    only on ``(computation, pid, clause)``, so every consumer of the
    same clause sees the identical stream.
    """
    streams = vc_snapshots(computation, dict(predicates), clock_backend)
    width = len(pids)
    return {
        pid: [
            FeedItem(
                payload=snap.vector.project(pids),
                size_bits=width * WORD_BITS,
                time=snap.time,
            )
            for snap in stream
        ]
        for pid, stream in streams.items()
    }


@dataclass
class VCToken:
    """The unique token: candidate cut ``G`` plus per-slot colors.

    Slot ``k`` corresponds to ``wcp.pids[k]``.  ``G`` holds 1-based
    interval indices (0 = no candidate yet); exactly one monitor holds
    the token at any time, so in-place mutation is safe.
    """

    G: list[int]
    color: list[str]

    @classmethod
    def initial(cls, n: int) -> "VCToken":
        """The paper's initialization: all zeros, all red."""
        return cls(G=[0] * n, color=[RED] * n)

    def size_bits(self) -> int:
        """Accounting size: two n-vectors (G in words, colors counted as
        words too, matching the paper's O(n)-words token)."""
        return 2 * len(self.G) * WORD_BITS

    def all_green(self) -> bool:
        """True iff every slot is green (detection condition)."""
        return all(c == GREEN for c in self.color)


class TokenVCMonitor(Actor):
    """The Fig. 3 monitor process for one predicate slot.

    Exposes the detection outcome to the runner via attributes:
    ``detected`` / ``detected_cut`` / ``detected_at`` on the declaring
    monitor, ``aborted`` on a monitor that exhausted its candidates.
    """

    #: Token-routing policies for choosing which red slot receives the
    #: token next.  The paper leaves the choice open ("sends the token to
    #: a process whose color is red"); the ablation benchmark compares:
    #: ``cyclic`` — first red slot after ours, round robin (default);
    #: ``first`` — lowest-index red slot;
    #: ``most_stale`` — the red slot with the smallest eliminated bound
    #: (the candidate furthest behind).
    ROUTINGS = ("cyclic", "first", "most_stale")

    def __init__(
        self,
        pid: int,
        slot: int,
        monitor_names: list[str],
        routing: str = "cyclic",
    ) -> None:
        super().__init__(monitor_name(pid))
        if routing not in self.ROUTINGS:
            raise ConfigurationError(
                f"routing must be one of {self.ROUTINGS}, got {routing!r}"
            )
        self._pid = pid
        self._slot = slot
        self._monitors = list(monitor_names)
        self._n = len(monitor_names)
        self._routing = routing
        self.detected = False
        self.detected_cut: tuple[int, ...] | None = None
        self.detected_at: float | None = None
        self.aborted = False
        self.token_visits = 0

    # ------------------------------------------------------------------
    def run(self):
        while True:
            msg = yield self.receive(TOKEN_KIND, HALT_KIND)
            if msg.kind == HALT_KIND:
                return
            finished = yield from self._handle_token(msg.payload)
            if finished:
                return

    def _handle_token(self, token: VCToken):
        """One token visit; returns True when the protocol is over."""
        slot = self._slot
        self.token_visits += 1
        candidate: tuple[int, ...] | None = None
        # Fig. 3 while-loop: advance own candidate past the eliminated G[i].
        while token.color[slot] == RED:
            cmsg = yield self.receive(CANDIDATE_KIND, END_OF_TRACE_KIND)
            if cmsg.kind == END_OF_TRACE_KIND:
                # No further candidate can exist for an eliminated state:
                # by Lemma 3.1(4) the WCP cannot hold in this run.
                self.aborted = True
                yield self._halt_others()
                return True
            yield self.work(1)
            cand = cmsg.payload
            if cand[slot] > token.G[slot]:
                token.G[slot] = cand[slot]
                token.color[slot] = GREEN
                candidate = cand
        assert candidate is not None
        # Fig. 3 for-loop: repaint every j whose current candidate
        # happened before ours (vector-clock property 2).
        for j in range(self._n):
            if j == slot:
                continue
            yield self.work(1)
            if candidate[j] >= token.G[j]:
                token.G[j] = candidate[j]
                token.color[j] = RED
        # Scan for a red slot to forward the token to.
        yield self.work(self._n)
        if token.all_green():
            self.detected = True
            self.detected_cut = tuple(token.G)
            self.detected_at = self.now
            yield self._halt_others()
            return True
        target = self._next_red_slot(token)
        yield self.send(
            self._monitors[target], token, kind=TOKEN_KIND,
            size_bits=token.size_bits(),
        )
        return False

    def _next_red_slot(self, token: VCToken) -> int:
        """Pick the red slot to forward the token to, per the routing."""
        reds = [j for j in range(self._n) if token.color[j] == RED]
        if not reds:
            raise AssertionError("no red slot despite not all green")
        if self._routing == "first":
            return reds[0]
        if self._routing == "most_stale":
            return min(reds, key=lambda j: (token.G[j], j))
        for step in range(1, self._n + 1):  # cyclic
            j = (self._slot + step) % self._n
            if token.color[j] == RED:
                return j
        raise AssertionError("unreachable")

    def _halt_others(self):
        others = [m for m in self._monitors if m != self.name]
        return self.broadcast(others, None, kind=HALT_KIND, size_bits=1)


class TokenVCGlue(StackGlue):
    """Stack glue for the crash/loss-tolerant §3 monitor.

    ``harden(TokenVCMonitor)`` composes this glue with the shared
    :class:`~repro.detect.stack.StackedMonitor` run loop and the plain
    Fig. 3 core; the composition is semantically identical to
    :class:`TokenVCMonitor` — under any fault schedule with eventual
    delivery it declares the same first consistent cut — because:

    * candidates arrive through the sequence-numbered
      :class:`~repro.detect.stack.CandidateInbox` (duplicates
      discarded, order restored);
    * the token travels in hop-numbered frames, acked per hop and
      retransmitted by the previous holder until acked — a lost or
      crash-swallowed token is regenerated from the sender's persisted
      copy;
    * a crash-restart re-enters the stack run loop, which resumes the
      visit in progress from the held frame and the persisted
      ``_accepted`` candidate (the Fig. 3 repaint loop is idempotent);
    * with a :class:`~repro.detect.stack.FailureDetectorConfig`,
      permanent monitor death is survived too: the surviving monitors
      elect a takeover, regenerate the token under a new epoch, and
      replay persisted ``_accepted`` candidates on re-visits so the
      detected cut is unchanged.
    """

    def _init_visit_state(self) -> None:
        # The candidate accepted during the current visit, persisted so
        # the repaint loop can resume after a crash mid-visit and so a
        # re-visit by a regenerated token can replay it (see
        # :mod:`repro.detect.stack.membership`).
        self._accepted: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    def _snapshot_frame(self, frame: TokenFrame) -> TokenFrame:
        token: VCToken = frame.body
        return TokenFrame(
            frame.hop,
            VCToken(G=list(token.G), color=list(token.color)),
            frame.gid,
            frame.epoch,
        )

    def _on_token_accepted(self, frame: TokenFrame) -> None:
        self.token_visits += 1

    def _fd_slot(self) -> int:
        return self._slot

    def _fd_peers(self) -> dict[int, str]:
        return {
            slot: name
            for slot, name in enumerate(self._monitors)
            if slot != self._slot
        }

    def _halt_targets(self) -> list[str]:
        peers = [m for m in self._monitors if m != self.name]
        feeders = [app_name(int(m.removeprefix("mon-"))) for m in self._monitors]
        return peers + feeders

    def _resolve_frame(self, frame: TokenFrame, code: str) -> None:
        token: VCToken = frame.body
        if code == "abort":
            self.aborted = True
        elif code == "detected":
            self.detected = True
            self.detected_cut = tuple(token.G)
            self.detected_at = self.now
        else:  # forward
            target = self._next_red_slot(token)
            self._begin_transfer(
                self._monitors[target],
                TokenFrame(frame.hop + 1, token, frame.gid, frame.epoch),
                token.size_bits() + WORD_BITS,
            )

    def _handle_frame(self, frame: TokenFrame):
        """One (possibly resumed) token visit over the held frame.

        Returns ``"halt"`` / ``"abort"`` / ``"detected"`` / ``"forward"``.
        Safe to re-enter after a crash: every token mutation is in the
        same atomic block as the inbox pop or persisted-attribute write
        that justified it, and the repaint loop is idempotent.
        """
        token: VCToken = frame.body
        slot = self._slot
        while token.color[slot] == RED:
            if (
                self._accepted is not None
                and self._accepted[slot] > token.G[slot]
            ):
                # A regenerated token re-presents a bound this monitor
                # already advanced past: replay the persisted candidate
                # instead of consuming fresh ones, so re-visits leave
                # the candidate stream where the first visit left it.
                token.G[slot] = self._accepted[slot]
                token.color[slot] = GREEN
                yield self.work(1)
                continue
            entry = yield from self._next_candidate()
            if entry == "halt":
                return "halt"
            if entry is None:
                # End of trace while eliminated: the WCP cannot hold.
                return "abort"
            cand = entry[0]
            if cand[slot] > token.G[slot]:
                token.G[slot] = cand[slot]
                token.color[slot] = GREEN
                self._accepted = cand
            yield self.work(1)
        candidate = self._accepted
        # Repaint only when the token's bound for this slot is the one
        # ``candidate`` justified — on a regenerated token installed at
        # a green slot the persisted candidate may predate the bound,
        # and repainting with it could eliminate states it cannot see.
        if candidate is not None and token.G[slot] == candidate[slot]:
            for j in range(self._n):
                if j == slot:
                    continue
                if candidate[j] >= token.G[j]:
                    token.G[j] = candidate[j]
                    token.color[j] = RED
                yield self.work(1)
        yield self.work(self._n)
        if token.all_green():
            return "detected"
        return "forward"


register_glue(TokenVCMonitor, TokenVCGlue)

#: The hardened §3 monitor: plain core + protocol stack, by composition.
HardenedTokenVCMonitor = harden(TokenVCMonitor)


def detect(
    computation: Computation,
    wcp: WeakConjunctivePredicate,
    *,
    seed: int = 0,
    channel_model: ChannelModel | None = None,
    spacing: float = 1.0,
    routing: str = "cyclic",
    observers: list | None = None,
    faults: FaultPlan | None = None,
    hardened: bool | None = None,
    retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
    failure_detector: FailureDetectorConfig | None = None,
    clock_backend: str = "list",
) -> DetectionReport:
    """Run the §3 algorithm on a recorded computation.

    Builds a simulation with one snapshot feeder and one monitor per
    predicate process, injects the token, runs to quiescence, and reads
    the verdict off the monitor actors.  ``routing`` selects the
    red-slot forwarding policy (see :attr:`TokenVCMonitor.ROUTINGS`).

    ``faults`` injects failures (see :mod:`repro.simulation.faults`);
    ``hardened`` selects the loss/crash-tolerant actors and defaults to
    "on exactly when faults are injected" — pass ``hardened=True`` with
    no faults to measure the reliability layer's overhead, or
    ``hardened=False`` with faults to watch the plain protocol fail.
    ``retry`` tunes the hardened actors' retransmission schedule and
    defaults to the RTT-adaptive policy; ``failure_detector`` enables
    heartbeat failure detection with token takeover (self-healing
    against *permanent* monitor death — see ``docs/faults.md``).
    ``clock_backend`` selects the vector-clock representation used to
    extract snapshot streams (``"list"`` or ``"packed"``); verdicts and
    paper units are bit-identical either way, ``"packed"`` is just
    faster on large cells.
    """
    wcp.check_against(computation.num_processes)
    pids = wcp.pids
    n = wcp.n
    use_hardened = (faults is not None) if hardened is None else hardened
    if use_hardened and retry is None:
        retry = AdaptiveRetryPolicy(seed=seed)
    kernel = Kernel(
        channel_model=channel_model, seed=seed, observers=observers, faults=faults
    )
    names = [monitor_name(pid) for pid in pids]
    if use_hardened:
        monitors = [
            HardenedTokenVCMonitor(
                pid, slot, names, routing=routing, retry=retry,
                failure_detector=failure_detector,
            )
            for slot, pid in enumerate(pids)
        ]
    else:
        monitors = [
            TokenVCMonitor(pid, slot, names, routing=routing)
            for slot, pid in enumerate(pids)
        ]
    for mon in monitors:
        kernel.add_actor(mon)
    items_by_pid = candidate_feed_items(
        computation, wcp.predicate_map(), pids, clock_backend
    )
    feeders = []
    for pid in pids:
        items = items_by_pid[pid]
        if use_hardened:
            feeder = ReliableFeeder(
                app_name(pid), monitor_name(pid), items, spacing, retry
            )
        else:
            feeder = SnapshotFeeder(app_name(pid), monitor_name(pid), items, spacing)
        feeders.append(feeder)
        kernel.add_actor(feeder)
    injector = None
    if use_hardened:
        token = VCToken.initial(n)
        injector = ReliableInjector(
            names[0],
            TokenFrame(hop=1, body=token),
            token.size_bits() + WORD_BITS,
            retry,
        )
        kernel.add_actor(injector)
    else:
        token = VCToken.initial(n)
        kernel.add_actor(TokenInjector(names[0], token, token.size_bits()))
    joiners = spawn_joiners(
        kernel, faults, names,
        hardened=use_hardened, config=failure_detector, retry=retry,
    )
    sim = kernel.run()

    winner = next((m for m in monitors if m.detected), None)
    aborted = any(m.aborted for m in monitors)
    actor_metrics = kernel.metrics.actors()
    token_hops = sum(
        m.sent_by_kind.get(TOKEN_KIND, 0)
        for name, m in actor_metrics.items()
        if name.startswith("mon-")
    )
    extras = {
        "token_hops": token_hops,
        "token_visits": sum(m.token_visits for m in monitors),
        "candidates_sent": sum(
            m.sent_by_kind.get(CANDIDATE_KIND, 0) for m in actor_metrics.values()
        ),
        "aborted": aborted,
        "hardened": use_hardened,
    }
    if use_hardened:
        participants = [*monitors, *feeders, injector]
        extras["gave_up"] = any(
            getattr(a, "gave_up", False) for a in participants
        )
        extras["halt_incomplete"] = any(
            getattr(a, "halt_incomplete", False) for a in participants
        )
        extras["elections"] = sum(m.elections for m in monitors)
        extras["takeovers"] = sum(m.takeovers for m in monitors)
    if joiners:
        extras["joiners"] = len(joiners)
        extras["joined"] = sum(1 for j in joiners if j.joined)
        extras["synced"] = sum(1 for j in joiners if j.synced)
    if winner is not None:
        assert winner.detected_cut is not None
        return DetectionReport(
            detector="token_vc",
            detected=True,
            cut=Cut(pids, winner.detected_cut),
            detection_time=winner.detected_at,
            sim=sim,
            metrics=kernel.metrics,
            extras=extras,
        )
    degraded = faults is not None and not aborted
    if use_hardened and degraded:
        extras.update(
            partial_cut_extras(
                pids, [m._accepted for m in monitors], sim.crashed
            )
        )
    return DetectionReport(
        detector="token_vc",
        detected=False,
        sim=sim,
        metrics=kernel.metrics,
        extras=extras,
        degraded=degraded,
    )
