"""Back-compat shim: failure detection is now stack layer 2.

The heartbeat detector and takeover elections live in
:mod:`repro.detect.stack.membership`; import from
:mod:`repro.detect.stack` in new code.  This module re-exports the old
names so existing imports keep working.
"""

import warnings

warnings.warn(
    "repro.detect.failuredetect is deprecated; import from "
    "repro.detect.stack instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.detect.stack.membership import *  # noqa: E402,F401,F403
from repro.detect.stack.membership import _frame_bits  # noqa: E402,F401
